//! The PKES relay attack of §II-A (Fig. 2), end to end.
//!
//! Recreates the classic car-theft scenario: the owner's key fob is
//! 40+ m away inside the house; a two-sided relay amplifies the
//! handshake. The legacy RSSI system opens the door; UWB time-of-flight
//! with LRP distance bounding does not — and the HRP receiver comparison
//! shows *why* the physical layer needs integrity checks.
//!
//! ```sh
//! cargo run --example pkes_relay
//! ```

use autosec::phy::attacks::{HrpAttack, RelayAttack};
use autosec::phy::hrp::{HrpConfig, HrpRanging, ReceiverKind};
use autosec::phy::pkes::{Pkes, PkesState, ProximityBackend};
use autosec::sim::SimRng;

fn main() {
    let relay = RelayAttack::typical();
    println!("=== PKES relay attack (paper §II-A) ===");
    println!(
        "fob is {:.0} m away; relay bridges {:.0} m with {:.0} ns per-hop latency\n",
        relay.total_path_m(),
        relay.relay_span_m,
        relay.processing_ns
    );

    let mut rng = SimRng::seed(7);
    for backend in [ProximityBackend::LegacyRssi, ProximityBackend::UwbToF] {
        let pkes = Pkes::new(backend, 2.0);
        let out = pkes.try_unlock(43.0, Some(&relay), &mut rng);
        println!(
            "{backend:?}: perceived distance {:>6.1} m -> {}",
            out.perceived_distance_m,
            match out.state {
                PkesState::Unlocked => "UNLOCKED (car stolen)",
                _ => "denied (relay cannot beat light)",
            }
        );
    }

    println!("\n=== Why HRP needs receiver integrity checks (Fig. 2) ===");
    println!("Cicada-style early-pulse injection, 500 trials, 20 m true distance:\n");
    let attack = HrpAttack::cicada(8.0, 3.0);
    for kind in [
        ReceiverKind::NaiveLeadingEdge,
        ReceiverKind::IntegrityChecked,
    ] {
        let session = HrpRanging::new(HrpConfig::default(), kind);
        let mut rng = SimRng::seed(8);
        let mut reduced = 0;
        let mut rejected = 0;
        let trials = 500;
        for _ in 0..trials {
            let out = session.measure(20.0, Some(&attack), &mut rng);
            if out.rejected {
                rejected += 1;
            } else if out.reduction_m > 1.0 {
                reduced += 1;
            }
        }
        println!("{kind:?}: distance reduced in {reduced}/{trials} trials, rejected {rejected}");
    }
}
