//! Collaborative perception under attack (§VII): external injection,
//! internal ghost fabrication, misbehaviour detection — and the §VII-A
//! intersection competition.
//!
//! ```sh
//! cargo run --example collaborative_perception
//! ```

use autosec::collab::attacks::{ExternalInjector, FabricationStrategy, InternalFabricator};
use autosec::collab::intersection::{simulate, Agent};
use autosec::collab::misbehavior::{MisbehaviorConfig, MisbehaviorDetector};
use autosec::collab::perception::{fuse, perception_round, verify_message};
use autosec::collab::world::{Point, SensorModel, VehicleId, World};
use autosec::sim::SimRng;

const KEY: &[u8] = b"fleet v2x group key";

fn main() {
    let mut rng = SimRng::seed(47);
    let world = World::new(
        vec![
            Point { x: 0.0, y: 0.0 },
            Point { x: 30.0, y: 0.0 },
            Point { x: 0.0, y: 30.0 },
            Point { x: 30.0, y: 30.0 },
        ],
        vec![Point { x: 15.0, y: 15.0 }, Point { x: 8.0, y: 22.0 }],
    );
    let sensor = SensorModel {
        miss_rate: 0.02,
        noise_m: 0.3,
        range_m: 60.0,
    };

    println!("=== §VII-B: external attacker (no credentials) ===");
    let forged = ExternalInjector {
        spoofed_sender: VehicleId(1),
    }
    .forge(0, Point { x: 10.0, y: 10.0 });
    println!(
        "forged message authenticates: {} -> dropped by every receiver\n",
        verify_message(KEY, &forged)
    );

    println!("=== §VII-B: internal attacker (valid credentials) ===");
    let attacker = InternalFabricator {
        vehicle: VehicleId(0),
        strategy: FabricationStrategy::GhostObject {
            at: Point { x: 22.0, y: 8.0 },
        },
    };
    let mut detector = MisbehaviorDetector::new(MisbehaviorConfig::default());
    for round in 0..4u64 {
        let mut msgs = perception_round(&world, &sensor, KEY, round, &mut rng);
        let honest = msgs[0].detections.clone();
        msgs[0] = attacker.emit(&world, honest, KEY, round, &mut rng);
        println!(
            "round {round}: ghost authenticates: {}",
            verify_message(KEY, &msgs[0])
        );
        let fused = fuse(&msgs, 3.0);
        let ghost_fused = fused
            .iter()
            .any(|f| f.position.dist(&Point { x: 22.0, y: 8.0 }) < 3.0);
        let flags = detector.process_round(&world, &sensor, KEY, &msgs);
        println!(
            "         fused objects: {} (ghost present: {ghost_fused}), flags: {}, attacker trust: {:.2}{}",
            fused.len(),
            flags.len(),
            detector.trust(VehicleId(0)),
            if detector.is_excluded(VehicleId(0)) {
                "  -> EXCLUDED from fusion"
            } else {
                ""
            }
        );
        if detector.is_excluded(VehicleId(0)) {
            break;
        }
    }

    println!("\n=== §VII-A: competing collaborative systems at an intersection ===\n");
    println!(
        "{:<34} {:>11} {:>10} {:>10} {:>11}",
        "agent mix", "throughput", "conflicts", "deadlocks", "self gain"
    );
    let mixes: [(&str, [Agent; 4]); 3] = [
        ("all cooperative", [Agent::cooperative(); 4]),
        ("one selfish (p=0.3)", {
            let mut a = [Agent::cooperative(); 4];
            a[0] = Agent::selfish(0.3);
            a
        }),
        ("all selfish (p=0.5)", [Agent::selfish(0.5); 4]),
    ];
    for (label, agents) in mixes {
        let r = simulate(&agents, 10_000, &mut rng);
        println!(
            "{:<34} {:>11.2} {:>9.0}% {:>9.0}% {:>11.0}",
            label,
            r.throughput,
            r.conflict_rate * 100.0,
            r.deadlock_rate * 100.0,
            r.selfish_advantage
        );
    }
    println!("\nthe optimization battle: defection pays individually, collapses collectively");
}
