//! Quickstart: the layered workbench in one run (Fig. 1 / E1).
//!
//! Prints the attack/defense inventory per layer, then runs the
//! cross-layer attack campaign twice — undefended and fully defended —
//! and shows the defense-in-depth curve.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use autosec::core::assessment::{depth_sweep, layer_summary, score};
use autosec::core::campaign::{run_campaign, DefensePosture};

fn main() {
    println!("=== autosec: layered security workbench (Fig. 1) ===\n");
    println!("{}", layer_summary());

    for (label, posture) in [
        ("UNDEFENDED (legacy vehicle)", DefensePosture::none()),
        ("FULLY DEFENDED", DefensePosture::full()),
    ] {
        let report = run_campaign(&posture, 2025);
        let card = score(&report);
        println!("--- campaign: {label} ---");
        for step in &report.steps {
            println!(
                "  [{:<18}] {:<26} success={:<5} prevented={:<5} detected={}",
                step.layer.to_string(),
                step.attack,
                step.succeeded,
                step.prevented,
                step.detected
            );
        }
        println!(
            "  => attack success {:.0}%, detection {:.0}%, synergy gain +{:.0}pp\n",
            card.attack_success_rate * 100.0,
            card.detection_rate * 100.0,
            card.synergy_gain * 100.0
        );
    }

    println!("--- defense-in-depth sweep (layers defended bottom-up) ---");
    println!(
        "{:>8} {:>16} {:>12}",
        "layers", "attack success", "detection"
    );
    for p in depth_sweep(2025) {
        println!(
            "{:>8} {:>15.0}% {:>11.0}%",
            p.defended_layers,
            p.attack_success_rate * 100.0,
            p.detection_rate * 100.0
        );
    }
}
