//! The Fig. 3 zonal network with the S1/S2/S3 protocol stacks of
//! Figs. 4–6 and the Table I matrix (§III).
//!
//! ```sh
//! cargo run --example secure_onboard_network
//! ```

use autosec::ivn::topology::{EndpointLink, TrafficSpec, ZonalNetwork};
use autosec::secproto::scenarios::{evaluate, table1, Scenario};
use autosec::sim::{SimDuration, SimTime};

fn main() {
    println!("=== Table I: security protocols for in-vehicle communication ===\n");
    println!(
        "{:<4} {:<14} {:<12} {:<10}",
        "OSI", "Layer", "Ethernet", "CAN XL"
    );
    for row in table1() {
        println!(
            "{:<4} {:<14} {:<12} {:<10}",
            row.osi_layer,
            row.layer_name,
            row.ethernet.unwrap_or("-"),
            row.can_xl.unwrap_or("-")
        );
    }

    println!("\n=== Fig. 3: zonal IVN simulation (endpoint -> central compute) ===\n");
    let mut net = ZonalNetwork::new(2);
    let brake = net
        .add_endpoint("brake-ecu", 0, EndpointLink::Can)
        .expect("zone 0");
    let radar = net
        .add_endpoint("radar", 0, EndpointLink::CanFd)
        .expect("zone 0");
    let camera = net
        .add_endpoint("camera", 1, EndpointLink::T1s)
        .expect("zone 1");
    let lidar = net
        .add_endpoint("lidar-preproc", 1, EndpointLink::CanXl)
        .expect("zone 1");
    let specs = [
        TrafficSpec {
            endpoint: brake,
            period: SimDuration::from_ms(10),
            payload: 8,
            can_id: 0x0A0,
        },
        TrafficSpec {
            endpoint: radar,
            period: SimDuration::from_ms(20),
            payload: 48,
            can_id: 0x1B0,
        },
        TrafficSpec {
            endpoint: camera,
            period: SimDuration::from_ms(33),
            payload: 1400,
            can_id: 0,
        },
        TrafficSpec {
            endpoint: lidar,
            period: SimDuration::from_ms(25),
            payload: 1024,
            can_id: 0x050,
        },
    ];
    let report = net.simulate(&specs, SimTime::from_ms(500));
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "endpoint", "delivered", "mean us", "p95 us", "max us"
    );
    for (f, spec) in report.flows.iter().zip(specs.iter()) {
        let name = &net.endpoint(spec.endpoint).expect("registered").name;
        println!(
            "{:<16} {:>10} {:>12.1} {:>12.1} {:>12.1}",
            name, f.delivered, f.latency_us.mean, f.latency_us.p95, f.latency_us.max
        );
    }
    println!("zone utilisation: {:?}\n", report.zone_utilisation);

    println!("=== Figs. 4-6: scenarios S1/S2/S3 at a 64-byte payload ===\n");
    println!(
        "{:<18} {:>9} {:>8} {:>11} {:>9} {:>12} {:>13} {:>9}",
        "scenario",
        "overhead",
        "frames",
        "crypto ops",
        "ZC keys",
        "latency us",
        "confidential",
        "mutable"
    );
    for s in Scenario::ALL {
        let r = evaluate(s, 64);
        println!(
            "{:<18} {:>8}B {:>8} {:>11} {:>9} {:>12.1} {:>13} {:>9}",
            s.label(),
            r.segment_overhead_bytes,
            r.segment_frames,
            r.crypto_ops,
            r.zc_session_keys,
            r.e2e_latency_us,
            r.confidential_on_segment,
            r.intermediate_can_modify
        );
    }
}
