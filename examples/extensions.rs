//! Extension modules in action: SeeMQTT end-to-end pub/sub (§VIII,
//! ref [54]), PTPsec time-sync defense (§VIII, ref [53]) and V-Range
//! secure 5G ranging (§II-B, ref [12]).
//!
//! ```sh
//! cargo run --example extensions
//! ```

use autosec::ids::timesync::{PtpPath, PtpsecDetector};
use autosec::phy::vrange::{measure, VRangeAttack, VRangeConfig};
use autosec::secproto::seemqtt::{adversary_recovers, publish, subscribe, BrokerNetwork};
use autosec::sim::{SimRng, SimTime};
use rand::SeedableRng;

fn main() {
    println!("=== SeeMQTT: secret-shared end-to-end pub/sub (ref [54]) ===\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(54);
    let msg = publish(
        "fleet/route-updates",
        b"reroute: close lane 2",
        3,
        5,
        &mut rng,
    )
    .expect("valid k/n");
    println!("session key split into 5 shares, threshold 3; each share via its own broker");
    for (label, net) in [
        ("healthy network", BrokerNetwork::healthy(5)),
        (
            "2 brokers offline",
            BrokerNetwork::healthy(5).with_offline([1, 3]),
        ),
        (
            "3 brokers offline",
            BrokerNetwork::healthy(5).with_offline([0, 1, 3]),
        ),
    ] {
        match subscribe(&net, &msg) {
            Ok(p) => println!(
                "  {label:<20} -> delivered: {}",
                String::from_utf8_lossy(&p)
            ),
            Err(e) => println!("  {label:<20} -> {e}"),
        }
    }
    for (label, net) in [
        (
            "2-broker coalition",
            BrokerNetwork::healthy(5).with_compromised([0, 2]),
        ),
        (
            "3-broker coalition",
            BrokerNetwork::healthy(5).with_compromised([0, 2, 4]),
        ),
    ] {
        match adversary_recovers(&net, &msg) {
            Some(_) => println!("  {label:<20} -> BROKEN (threshold reached)"),
            None => println!("  {label:<20} -> learns nothing"),
        }
    }

    println!("\n=== PTPsec: delay attack on time sync (ref [53]) ===\n");
    let mut srng = SimRng::seed(88);
    let clean = PtpPath::symmetric(5_000.0, 50.0);
    let attacked = PtpPath::symmetric(5_000.0, 50.0).attacked(2_000.0);
    println!(
        "plain PTP on the attacked path: clock silently shifted by {:.0} ns",
        attacked.sync_error_ns(&mut srng)
    );
    let det = PtpsecDetector::default();
    let (offsets, alert) = det.analyze(&[clean, attacked], SimTime::ZERO, &mut srng);
    println!("PTPsec cross-path offsets: {offsets:.0?} ns");
    match alert {
        Some(a) => println!("  -> ALERT: {}", a.detail),
        None => println!("  -> no alert"),
    }

    println!("\n=== V-Range: secure 5G PRS ranging (ref [12]) ===\n");
    let cfg = VRangeConfig::default();
    println!(
        "bandwidth {:.0} MHz -> resolution {:.2} m; {} symbols x {} secured bits",
        cfg.bandwidth_mhz,
        cfg.resolution_m(),
        cfg.n_symbols,
        cfg.secured_bits_per_symbol
    );
    let mut srng = SimRng::seed(512);
    let honest = measure(&cfg, 42.0, None, &mut srng);
    println!(
        "honest ranging at 42 m: estimated {:.2} m",
        honest.estimated_m
    );
    let mut reductions = 0;
    for _ in 0..1000 {
        let o = measure(
            &cfg,
            42.0,
            Some(VRangeAttack::Reduce { advance_m: 15.0 }),
            &mut srng,
        );
        if !o.aborted {
            reductions += 1;
        }
    }
    println!(
        "reduction attack: {reductions}/1000 succeeded (theory: 2^-{} = ~0)",
        cfg.n_symbols as u32 * cfg.secured_bits_per_symbol
    );
}
