//! The CARIAD telemetry breach (§V, Fig. 8), replayed against every
//! defense configuration.
//!
//! ```sh
//! cargo run --example cariad_breach
//! ```

use autosec::data::killchain::{Attacker, KillChainStage};
use autosec::data::service::{DefenseConfig, TelemetryBackend};
use autosec::sim::SimRng;

fn main() {
    println!("=== Fig. 8: CARIAD data-extraction kill chain ===\n");

    let configs: Vec<(&str, DefenseConfig)> = vec![
        ("none (the real incident)", DefenseConfig::none()),
        ("debug endpoints disabled", {
            let mut d = DefenseConfig::none();
            d.debug_endpoints_disabled = true;
            d
        }),
        ("secrets vaulted", {
            let mut d = DefenseConfig::none();
            d.secret_scanning = true;
            d
        }),
        ("scoped keys", {
            let mut d = DefenseConfig::none();
            d.scoped_keys = true;
            d
        }),
        ("detection only (rate+exfil)", {
            let mut d = DefenseConfig::none();
            d.rate_limiting = true;
            d.exfiltration_detection = true;
            d
        }),
        ("fully hardened", DefenseConfig::hardened()),
    ];

    let fleet = 800_000 / 100; // scaled-down synthetic fleet
    for (label, cfg) in configs {
        let mut rng = SimRng::seed(38);
        let backend = TelemetryBackend::build(fleet, cfg, &mut rng);
        let report = Attacker::new().execute(&backend, &mut rng);

        print!("{label:<28} | chain: ");
        for stage in KillChainStage::ALL {
            let mark = if report.reached(stage) { "#" } else { "." };
            print!("{mark}");
        }
        println!(
            " | blocked at {:<22} | detected at {:<22} | {} records ({} sensitive)",
            report
                .blocked_at
                .map(|s| s.to_string())
                .unwrap_or_else(|| "- (full compromise)".into()),
            report
                .detected_at
                .map(|s| s.to_string())
                .unwrap_or_else(|| "- (never noticed)".into()),
            report.records_exfiltrated,
            report.sensitive_records,
        );
    }

    println!(
        "\nStages: {}",
        KillChainStage::ALL
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
}
