//! Plug-and-charge (§IV-C): ISO-15118-style PKI versus SSI, including
//! the offline case, plus the SDV reconfiguration flow of §IV-A.
//!
//! ```sh
//! cargo run --example plug_and_charge
//! ```

use autosec::sdv::charging::{iso15118_flow, ssi_flow};
use autosec::sdv::component::{Asil, HardwareNode, SoftwareComponent};
use autosec::sdv::platform::SdvPlatform;
use autosec::sim::SimRng;

fn main() {
    let mut rng = SimRng::seed(15118);

    println!("=== §IV-C: charging authorization, PKI vs SSI ===\n");
    let pki = iso15118_flow(&mut rng, 8).expect("flow completes");
    let ssi_online = ssi_flow(&mut rng, false).expect("flow completes");
    let ssi_offline = ssi_flow(&mut rng, true).expect("flow completes");

    println!(
        "{:<26} {:>9} {:>14} {:>12} {:>9} {:>11}",
        "flow", "messages", "verifications", "trust roots", "offline", "authorized"
    );
    for (label, r) in [
        ("ISO 15118 PKI (8 eMSPs)", pki),
        ("SSI online", ssi_online),
        ("SSI offline bundle", ssi_offline),
    ] {
        println!(
            "{:<26} {:>9} {:>14} {:>12} {:>9} {:>11}",
            label,
            r.messages,
            r.signature_verifications,
            r.station_trust_roots,
            r.supports_offline,
            r.authorized
        );
    }

    println!("\n=== §IV-A: zero-trust SDV reconfiguration (Fig. 7) ===\n");
    let (mut platform, mut oem) = SdvPlatform::new(&mut rng);
    for id in ["hpc-0", "hpc-1"] {
        platform
            .register_node(
                &mut rng,
                HardwareNode {
                    id: id.into(),
                    provides: vec!["can-if".into(), "lockstep-core".into()],
                    compute_capacity: 60,
                    max_asil: Asil::D,
                },
                &mut oem,
            )
            .expect("node registration");
    }
    for (id, cost, asil) in [
        ("brake-controller", 20, Asil::D),
        ("adas-stack", 30, Asil::B),
    ] {
        platform
            .register_component(
                &mut rng,
                SoftwareComponent {
                    id: id.into(),
                    vendor: "oem".into(),
                    version: (1, 0, 0),
                    requires: vec!["can-if".into()],
                    compute_cost: cost,
                    asil,
                },
                &mut oem,
            )
            .expect("component registration");
        platform
            .place(id, "hpc-0")
            .expect("authenticated placement");
        println!("placed {id:<18} on hpc-0 (mutual auth ok)");
    }

    println!("\n! hpc-0 fails. re-placing its components with full ceremony...");
    let stranded = platform.fail_node("hpc-0").expect("known node");
    for p in platform.placements() {
        println!("  {} now runs on {}", p.component, p.node);
    }
    if stranded.is_empty() {
        println!(
            "  no component stranded; {} mutual authentications performed in total",
            platform.auth_operations
        );
    } else {
        println!("  stranded: {stranded:?}");
    }
}
