//! Minimal offline stand-in for the `serde_json` API surface this
//! workspace uses: [`Value`], the [`json!`] macro, [`to_string`] /
//! [`to_string_pretty`] and [`from_str`] over `Value`.
//!
//! The build environment is hermetic (no crates.io access). Unlike the
//! real crate there is no serde integration — serialization is explicit
//! over [`Value`] (structs convert themselves; see e.g.
//! `autosec_ssi::did::DidDocument::to_json`). Objects are backed by a
//! `BTreeMap`, so rendering is canonical: equal values always produce
//! byte-identical JSON, which the credential signing path relies on.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted keys, canonical rendering.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integer when possible, float otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 => {
                write!(f, "{x:.1}")
            }
            Number::Float(x) => write!(f, "{x}"),
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map),
}

impl Value {
    /// Borrows the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Returns the value as `u64`, if it is a nonnegative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) => u64::try_from(*i).ok(),
            Value::Number(Number::UInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// Returns the value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// Borrows the array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup returning `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object member access; absent keys and non-objects index to
    /// `Value::Null` (as in `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; out-of-range indices and non-arrays index
    /// to `Value::Null` (as in `serde_json`).
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(Number::Float(x))
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::Number(Number::Float(x as f64))
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Self {
        match i64::try_from(u) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(u)),
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(i: $t) -> Self {
                Value::Number(Number::Int(i as i64))
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, u8, u16, u32);

impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::from(u as u64)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact rendering, canonical by construction (sorted keys).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the failure in the input (parsing only).
    pub offset: usize,
}

impl Error {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        Self {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Serializes a [`Value`] to a compact string.
///
/// # Errors
///
/// Infallible for `Value` input; the `Result` mirrors `serde_json`.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Serializes a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Infallible for `Value` input; the `Result` mirrors `serde_json`.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    pretty(value, 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                pretty(item, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns an [`Error`] with a byte offset on malformed input or
/// trailing garbage.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("expected '{lit}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new("expected a JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("short \\u escape", start))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape", start))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape", start))?;
                            // Surrogate pairs are not needed by this
                            // workspace's documents; reject them.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| Error::new("unsupported surrogate", start))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8", self.pos))?;
                    let c = rest.chars().next().expect("nonempty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| Error::new("invalid number", start))
    }
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports `null`, booleans, numbers, strings, `[..]` arrays,
/// `{"key": value}` objects (literal string keys, trailing commas
/// allowed), nesting, and arbitrary interpolated Rust expressions
/// convertible with `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_arr_internal!(items $($tt)+);
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_obj_internal!(map $($tt)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Object-entry muncher backing [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_obj_internal {
    ($map:ident) => {};
    ($map:ident ,) => {};
    ($map:ident $key:literal : null $($rest:tt)*) => {
        $map.insert(($key).to_owned(), $crate::Value::Null);
        $crate::json_obj_rest_internal!($map $($rest)*);
    };
    ($map:ident $key:literal : { $($inner:tt)* } $($rest:tt)*) => {
        $map.insert(($key).to_owned(), $crate::json!({ $($inner)* }));
        $crate::json_obj_rest_internal!($map $($rest)*);
    };
    ($map:ident $key:literal : [ $($inner:tt)* ] $($rest:tt)*) => {
        $map.insert(($key).to_owned(), $crate::json!([ $($inner)* ]));
        $crate::json_obj_rest_internal!($map $($rest)*);
    };
    ($map:ident $key:literal : $val:expr , $($rest:tt)*) => {
        $map.insert(($key).to_owned(), $crate::Value::from($val));
        $crate::json_obj_internal!($map $($rest)*);
    };
    ($map:ident $key:literal : $val:expr) => {
        $map.insert(($key).to_owned(), $crate::Value::from($val));
    };
}

/// Separator handling between object entries; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_obj_rest_internal {
    ($map:ident) => {};
    ($map:ident ,) => {};
    ($map:ident , $($rest:tt)+) => { $crate::json_obj_internal!($map $($rest)+); };
}

/// Array-element muncher backing [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_arr_internal {
    ($items:ident) => {};
    ($items:ident ,) => {};
    ($items:ident null $($rest:tt)*) => {
        $items.push($crate::Value::Null);
        $crate::json_arr_rest_internal!($items $($rest)*);
    };
    ($items:ident { $($inner:tt)* } $($rest:tt)*) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_arr_rest_internal!($items $($rest)*);
    };
    ($items:ident [ $($inner:tt)* ] $($rest:tt)*) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_arr_rest_internal!($items $($rest)*);
    };
    ($items:ident $val:expr , $($rest:tt)*) => {
        $items.push($crate::Value::from($val));
        $crate::json_arr_internal!($items $($rest)*);
    };
    ($items:ident $val:expr) => {
        $items.push($crate::Value::from($val));
    };
}

/// Separator handling between array elements; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_arr_rest_internal {
    ($items:ident) => {};
    ($items:ident ,) => {};
    ($items:ident , $($rest:tt)+) => { $crate::json_arr_internal!($items $($rest)+); };
}

#[cfg(test)]
#[allow(clippy::vec_init_then_push)] // json! builds arrays by muncher pushes
mod tests {
    use super::*;

    #[test]
    fn display_is_canonical_and_sorted() {
        let v = json!({"b": 1, "a": [true, null, "x\"y"]});
        assert_eq!(v.to_string(), r#"{"a":[true,null,"x\"y"],"b":1}"#);
    }

    #[test]
    fn round_trips_through_parser() {
        let v = json!({
            "name": "ecu",
            "version": 3,
            "ratio": 1.5,
            "tags": ["a", "b"],
            "nested": {"ok": true},
            "nothing": null,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#"{"s": "a\n\t\"Aü"}"#).unwrap();
        assert_eq!(v["s"].as_str().unwrap(), "a\n\t\"Aü");
    }

    #[test]
    fn index_missing_is_null() {
        let v = json!({"a": 1});
        assert_eq!(v["nope"], Value::Null);
        assert_eq!(v["nope"].as_str(), None);
        assert_eq!(v["a"].as_i64(), Some(1));
    }

    #[test]
    fn numbers_preserve_integerness() {
        let v = from_str("[1, -2, 18446744073709551615, 2.5]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[2].as_u64(), Some(u64::MAX));
        assert_eq!(a[3].as_f64(), Some(2.5));
    }

    #[test]
    fn interpolated_expressions() {
        let id = String::from("node-7");
        let n = 3usize;
        let v = json!({"id": id, "n": n, "opt": (Some("x"))});
        assert_eq!(v.to_string(), r#"{"id":"node-7","n":3,"opt":"x"}"#);
    }

    #[test]
    fn pretty_renders_indented() {
        let v = json!({"a": [1, 2], "b": {}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\": [\n"));
        assert!(from_str(&s).unwrap() == v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str("{} x").is_err());
        assert!(from_str("{,}").is_err());
        assert!(from_str("[1,]").is_err());
    }

    #[test]
    fn float_integers_render_with_point() {
        // Distinguish 2.0 from 2 so artifact readers see a float.
        assert_eq!(Value::from(2.0).to_string(), "2.0");
        assert_eq!(Value::from(2u32).to_string(), "2");
    }
}
