//! Minimal offline stand-in for the `rand` 0.8 API surface this
//! workspace uses.
//!
//! The build environment is hermetic (no crates.io access), so the
//! workspace vendors the small slice of `rand` it relies on:
//! [`RngCore`], [`SeedableRng`], the blanket [`Rng`] extension trait
//! with `gen`/`gen_range`, and [`rngs::StdRng`].
//!
//! `StdRng` here is a xoshiro256** generator (seeded via SplitMix64)
//! rather than the upstream ChaCha12 — statistically strong and fully
//! deterministic, but its streams differ from upstream `rand`, so
//! measured experiment values are not bit-compatible with builds
//! against crates.io `rand`.

/// Error type carried by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible; this exists only so
/// signatures stay source-compatible with `rand` 0.8.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng failure (unreachable for vendored generators)")
    }
}

impl std::error::Error for Error {}

/// Core RNG interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; never fails for vendored generators.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64_next(&mut sm);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from raw bits (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounding; bias is negligible for
                // simulation workloads (span << 2^64).
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods available on every [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes (alias for `fill_bytes`).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Error, RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 — streams differ from crates.io
    /// `rand`, but all determinism guarantees hold.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0xD6E8_FEB8_6659_FD93,
                ];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = r.gen_range(5..10);
            assert!((5..10).contains(&n));
            let m: u64 = r.gen_range(0..=3);
            assert!(m <= 3);
        }
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_escapes_zero_state() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
