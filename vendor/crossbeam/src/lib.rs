//! Minimal offline stand-in for the `crossbeam` API surface this
//! workspace uses (`crossbeam::channel::unbounded`).
//!
//! The hermetic build environment has no crates.io access. Only the
//! multi-producer/single-consumer shape the workspace needs is
//! provided, implemented over [`std::sync::mpsc`]. `Receiver` is not
//! clonable (upstream crossbeam channels are MPMC); extend this shim if
//! a consumer ever needs that.

pub mod channel {
    //! Channel constructors and endpoints.

    /// Sending half; clonable across producer threads.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    impl<T> Sender<T> {
        /// Sends a message; fails only if the receiver was dropped.
        ///
        /// # Errors
        ///
        /// [`SendError`] carrying the unsent message back.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Error returned when all senders are gone and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when every sender is dropped and the queue is
        /// drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }

        /// Non-blocking drain of currently queued messages.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_from_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        std::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).expect("receiver alive"));
            }
        });
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_errors_when_disconnected() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
