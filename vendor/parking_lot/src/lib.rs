//! Minimal offline stand-in for the `parking_lot` API surface this
//! workspace uses: [`RwLock`] and [`Mutex`] with panic-free-signature
//! guards.
//!
//! Wraps the std locks; a poisoned lock panics (parking_lot has no
//! poisoning, and a panicked writer in this workspace is already a
//! failed test).

/// Reader-writer lock with `parking_lot`-style guard accessors.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

/// Mutual-exclusion lock with `parking_lot`-style guard accessor.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| *m.lock() += 1);
            }
        });
        assert_eq!(m.into_inner(), 4);
    }
}
