//! Minimal offline stand-in for the `criterion` benchmarking API this
//! workspace uses.
//!
//! The hermetic build environment has no crates.io access, so the
//! `benches/` targets link against this reduced harness instead: same
//! source-level API (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`, throughput and sample
//! size hints), measurement by plain wall-clock mean over a short
//! calibrated run. No statistics, plots or baselines — for the
//! machine-readable perf trajectory use the `autosec-runner` JSON
//! artifacts instead.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] (criterion's `black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput hint attached to a benchmark group (printed, not used).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing driver passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            iters_done: 0,
            total: Duration::ZERO,
            budget,
        }
    }

    /// Times `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: one untimed call.
        black_box(f());
        loop {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters_done += 1;
            if self.total >= self.budget || self.iters_done >= 100_000 {
                break;
            }
        }
    }

    fn report(&self) -> String {
        if self.iters_done == 0 {
            return "no iterations".to_owned();
        }
        let per = self.total.as_nanos() / u128::from(self.iters_done);
        format!("{per} ns/iter ({} iters)", self.iters_done)
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_budget);
        f(&mut b);
        println!("bench: {:<50} {}", id.into(), b.report());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// A named group of benchmarks (stand-in for
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepts criterion's sample-size hint; the stand-in scales its
    /// per-benchmark time budget with it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_budget = Duration::from_millis((3 * n.max(10)) as u64);
        self
    }

    /// Accepts a throughput hint (recorded in the output line only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("  throughput hint: {t:?}");
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_budget);
        f(&mut b);
        println!("bench: {}/{:<40} {}", self.name, id.into(), b.report());
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters_done >= 1);
        assert!(n > b.iters_done); // warmup call included
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .throughput(Throughput::Bytes(64))
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
