//! # autosec — layered cybersecurity workbench for autonomous systems
//!
//! Facade crate re-exporting every layer of the workbench. See the
//! individual crates for the substance:
//!
//! - [`sim`] — discrete-event kernel, time, RNG, metrics
//! - [`crypto`] — from-scratch primitives (hash, MAC, AEAD, signatures)
//! - [`phy`] — §II physical layer: UWB ranging, PKES, collision avoidance
//! - [`ivn`] — §III in-vehicle networks: CAN/CAN FD/CAN XL, 10BASE-T1S, AE
//! - [`secproto`] — §III-A SECOC, MACsec, CANsec, CANAL, scenarios S1–S3
//! - [`ssi`] — §IV self-sovereign identity substrate
//! - [`sdv`] — §IV software-defined vehicle platform
//! - [`data`] — §V telemetry data layer and the Fig. 8 kill chain
//! - [`sos`] — §VI system-of-systems model (Fig. 9)
//! - [`collab`] — §VII collaborative perception and competition
//! - [`ids`] — §VIII intrusion detection and response
//! - [`core`] — the paper's layered framework (Fig. 1), cross-layer scenarios
//! - [`fleet`] — sharded live-fleet service mode (continuous attack/defense)

pub use autosec_collab as collab;
pub use autosec_core as core;
pub use autosec_crypto as crypto;
pub use autosec_data as data;
pub use autosec_fleet as fleet;
pub use autosec_ids as ids;
pub use autosec_ivn as ivn;
pub use autosec_phy as phy;
pub use autosec_sdv as sdv;
pub use autosec_secproto as secproto;
pub use autosec_sim as sim;
pub use autosec_sos as sos;
pub use autosec_ssi as ssi;
