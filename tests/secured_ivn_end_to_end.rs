//! Integration: SECOC-protected traffic over the simulated CAN bus with
//! a masquerade attacker, plus the IDS stack on the same log
//! (ivn + secproto + ids together).

use autosec::ids::detectors::{FingerprintDetector, IntervalDetector};
use autosec::ids::response::{ResponseAction, ResponseEngine};
use autosec::ivn::attacks::MasqueradeAttack;
use autosec::ivn::bus::{BusEvent, CanBus};
use autosec::ivn::can::{CanFrame, CanId};
use autosec::secproto::secoc::{SecOcAuthenticator, SecOcConfig};
use autosec::sim::{SimDuration, SimTime};

/// Serializes a SECOC PDU into an 8-byte CAN payload:
/// 4 payload bytes + 1 freshness byte + 3 MAC bytes.
fn pdu_to_can_payload(payload4: [u8; 4], tx: &mut SecOcAuthenticator) -> [u8; 8] {
    let pdu = tx.protect(&payload4).expect("fresh counter");
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&pdu.payload);
    out[4] = pdu.truncated_freshness as u8;
    out[5..8].copy_from_slice(&pdu.truncated_mac);
    out
}

fn can_payload_to_pdu(data: &[u8], data_id: u16) -> autosec::secproto::secoc::SecOcPdu {
    autosec::secproto::secoc::SecOcPdu {
        data_id,
        payload: data[..4].to_vec(),
        truncated_freshness: u64::from(data[4]),
        truncated_mac: data[5..8].to_vec(),
    }
}

fn run_traffic(with_attacker: bool) -> Vec<BusEvent> {
    let mut bus = CanBus::new(500_000);
    let legit = bus.add_node(2.0);
    let attacker_node = bus.add_node(6.5);
    let cfg = SecOcConfig::default();
    let mut tx = SecOcAuthenticator::new_sender(cfg, [9u8; 16], 0x0A0);

    let mut t = SimTime::ZERO;
    let mut i = 0u8;
    while t <= SimTime::from_ms(400) {
        let data = pdu_to_can_payload([i, 0, 0, 0], &mut tx);
        bus.enqueue(
            legit,
            t,
            CanFrame::new(CanId::standard(0x0A0).expect("valid"), &data).expect("8 bytes"),
        )
        .expect("node exists");
        t += SimDuration::from_ms(10);
        i = i.wrapping_add(1);
    }
    if with_attacker {
        MasqueradeAttack {
            attacker: attacker_node,
            spoofed_id: 0x0A0,
            period: SimDuration::from_ms(15),
            payload: [0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x22, 0x33, 0x44],
        }
        .inject(&mut bus, SimTime::from_ms(1), SimTime::from_ms(400))
        .expect("attacker enqueues");
    }
    bus.run(SimTime::from_secs(5))
}

#[test]
fn secoc_receiver_rejects_every_forged_frame_and_accepts_every_real_one() {
    let log = run_traffic(true);
    let cfg = SecOcConfig::default();
    let mut rx = SecOcAuthenticator::new_receiver(cfg, [9u8; 16], 0x0A0);

    let mut accepted = 0;
    let mut rejected = 0;
    let mut forged_accepted = 0;
    for ev in &log {
        let pdu = can_payload_to_pdu(ev.frame.data(), 0x0A0);
        let is_forged = ev.frame.data()[..4] == [0xDE, 0xAD, 0xBE, 0xEF];
        match rx.verify(&pdu) {
            Ok(_) => {
                accepted += 1;
                if is_forged {
                    forged_accepted += 1;
                }
            }
            Err(_) => rejected += 1,
        }
    }
    assert_eq!(forged_accepted, 0, "a forged PDU authenticated");
    assert!(accepted >= 35, "legit traffic should flow: {accepted}");
    assert!(rejected >= 20, "forgeries should be dropped: {rejected}");
}

#[test]
fn without_secoc_forged_frames_are_indistinguishable() {
    // The paper's §III point: CAN itself has no authentication.
    let log = run_traffic(true);
    let forged = log
        .iter()
        .filter(|e| e.frame.data()[..4] == [0xDE, 0xAD, 0xBE, 0xEF])
        .count();
    assert!(forged > 0);
    // Every forged frame carries the victim's identifier.
    for ev in &log {
        assert_eq!(ev.frame.id().raw(), 0x0A0);
    }
}

#[test]
fn ids_pipeline_detects_and_contains_the_masquerade() {
    let clean = run_traffic(false);
    let attacked = run_traffic(true);

    let fingerprint = FingerprintDetector::train(&clean);
    let interval = IntervalDetector::train(&clean);
    let mut alerts = fingerprint.analyze(&attacked);
    alerts.extend(interval.analyze(&attacked));
    assert!(alerts.len() > 10, "{} alerts", alerts.len());

    let mut engine = ResponseEngine::new();
    let mut escalated_to_isolation = false;
    for a in &alerts {
        let r = engine.handle(a);
        if r.action == ResponseAction::IsolateNode {
            escalated_to_isolation = true;
        }
    }
    assert!(
        escalated_to_isolation,
        "repeat alerts should isolate the node"
    );
    let mean_ms = engine.mean_containment_ms(&alerts);
    assert!(mean_ms < 100.0, "containment should be fast: {mean_ms} ms");
}

#[test]
fn secoc_survives_bus_errors_via_resync() {
    // Lossy bus: SECOC freshness resynchronization must tolerate drops.
    let cfg = SecOcConfig::default();
    let mut tx = SecOcAuthenticator::new_sender(cfg, [4u8; 16], 0x0C0);
    let mut rx = SecOcAuthenticator::new_receiver(cfg, [4u8; 16], 0x0C0);
    let mut delivered = 0;
    for i in 0..500u32 {
        let pdu = tx.protect(&i.to_be_bytes()).expect("fresh counter");
        // Drop 30% of PDUs (deterministic pattern).
        if i % 10 < 3 {
            continue;
        }
        assert!(rx.verify(&pdu).is_ok(), "PDU {i} failed after losses");
        delivered += 1;
    }
    assert!(delivered > 300);
}
