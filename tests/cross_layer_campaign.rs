//! Integration: the full cross-layer campaign (E1/E13 composition),
//! exercising phy + ivn + secproto + sdv + ssi + data + collab + ids
//! through the `autosec-core` framework.

use autosec::core::assessment::{depth_sweep, score};
use autosec::core::campaign::{run_campaign, DefensePosture};
use autosec::core::layers::{attack_catalog, defense_catalog, ArchLayer};

#[test]
fn campaign_covers_every_layer() {
    let report = run_campaign(&DefensePosture::full(), 99);
    let layers: Vec<ArchLayer> = report.steps.iter().map(|s| s.layer).collect();
    for expected in [
        ArchLayer::Physical,
        ArchLayer::Network,
        ArchLayer::SoftwarePlatform,
        ArchLayer::Data,
        ArchLayer::Collaboration,
    ] {
        assert!(layers.contains(&expected), "no campaign step at {expected}");
    }
}

#[test]
fn campaign_attacks_exist_in_the_catalog() {
    let names: Vec<&str> = attack_catalog().iter().map(|a| a.name).collect();
    let report = run_campaign(&DefensePosture::none(), 1);
    for step in &report.steps {
        assert!(
            names.contains(&step.attack),
            "{} not catalogued",
            step.attack
        );
    }
}

#[test]
fn defense_in_depth_improves_monotonically_across_seeds() {
    for seed in [1, 7, 42, 1234] {
        let sweep = depth_sweep(seed);
        assert!(sweep[0].attack_success_rate >= 0.75, "seed {seed}");
        // At most 3 of the 9 attacks may still land at depth 5: the
        // always-successful flood, the undetectable-without-redundancy
        // class, and the probabilistic breach cascade (SoS defenses
        // lower its rate but cannot close it).
        assert!(
            sweep[5].attack_success_rate <= 3.0 / 9.0 + 1e-9,
            "seed {seed}: {}",
            sweep[5].attack_success_rate
        );
        for w in sweep.windows(2) {
            assert!(
                w[1].attack_success_rate <= w[0].attack_success_rate + 1e-9,
                "seed {seed}: non-monotone {w:?}"
            );
        }
    }
}

#[test]
fn synergy_gain_is_positive_with_full_defense() {
    let report = run_campaign(&DefensePosture::full(), 5);
    let card = score(&report);
    assert!(card.synergy_gain > 0.0);
    assert!(card.fused_coverage > card.best_single_layer_coverage);
    // Incidents correlate into more than one cluster (steps are spread
    // across the campaign clock).
    assert!(!card.incidents.is_empty());
}

#[test]
fn every_catalogued_defense_maps_to_real_modules() {
    for d in defense_catalog() {
        assert!(
            d.module.starts_with("autosec_"),
            "{} points at {}",
            d.name,
            d.module
        );
    }
}

#[test]
fn prevention_happens_at_the_right_layers() {
    let report = run_campaign(&DefensePosture::full(), 3);
    for step in &report.steps {
        if step.prevented {
            assert!(
                !step.succeeded,
                "{} both prevented and succeeded",
                step.attack
            );
        }
    }
    // The relay and the forgery are *prevented*, not merely detected.
    let relay = report
        .steps
        .iter()
        .find(|s| s.attack == "pkes-relay")
        .expect("step exists");
    assert!(relay.prevented);
    let forgery = report
        .steps
        .iter()
        .find(|s| s.attack == "pdu-forgery")
        .expect("step exists");
    assert!(forgery.prevented);
}

#[test]
fn scenario_registry_is_consistent_with_the_catalog() {
    // Every registered step must be a catalogued attack on the same
    // layer — the registry is the executable half of the paper-as-code
    // catalog, and the two must not drift apart.
    use autosec::core::scenario::scenario_registry;
    let catalog = attack_catalog();
    let steps = scenario_registry();
    assert!(steps.len() >= 8, "campaign shrank to {} steps", steps.len());
    for step in &steps {
        let entry = catalog
            .iter()
            .find(|a| a.name == step.name())
            .unwrap_or_else(|| panic!("{} missing from attack_catalog()", step.name()));
        assert_eq!(entry.layer, step.layer(), "{} layer mismatch", step.name());
    }
}

#[test]
fn enabling_a_layer_never_helps_its_own_attacks() {
    // Posture monotonicity: at a fixed seed, switching on one layer's
    // defenses must never increase the success count of that layer's
    // attacks — whether starting from nothing or from everything else.
    let layer_successes = |posture: &DefensePosture, seed: u64, layer: ArchLayer| {
        run_campaign(posture, seed)
            .steps
            .iter()
            .filter(|s| s.layer == layer && s.succeeded)
            .count()
    };
    for seed in [1, 2, 7, 42, 99] {
        for layer in ArchLayer::ALL {
            let from_none = layer_successes(&DefensePosture::none(), seed, layer);
            let only_this = layer_successes(&DefensePosture::only(layer), seed, layer);
            assert!(
                only_this <= from_none,
                "seed {seed}: defending {layer} raised its attacks {from_none} -> {only_this}"
            );
            let mut rest = DefensePosture::full();
            rest.set(layer, false);
            let from_rest = layer_successes(&rest, seed, layer);
            let full = layer_successes(&DefensePosture::full(), seed, layer);
            assert!(
                full <= from_rest,
                "seed {seed}: adding {layer} to the stack raised its attacks {from_rest} -> {full}"
            );
        }
    }
}

#[test]
fn posture_fan_out_is_programmatic() {
    // Every layer — including system-of-systems — is addressable by
    // name-free enumeration; no field-by-field posture construction.
    let mut p = DefensePosture::none();
    for layer in ArchLayer::ALL {
        assert!(!p.enabled(layer));
        p.set(layer, true);
        assert!(p.enabled(layer));
    }
    assert_eq!(p, DefensePosture::full());
    assert_eq!(p.enabled_count(), ArchLayer::ALL.len());
}
