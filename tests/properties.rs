//! Randomized invariant tests on cross-crate properties.
//!
//! Formerly proptest-based; now driven by deterministic [`SimRng`]
//! streams (the hermetic build has no proptest), with one forked
//! substream per case so failures reproduce exactly.

use autosec::crypto::{AesGcm, Cmac, HmacSha256, MerkleTree, Sha256};
use autosec::ivn::can::{CanFrame, CanId};
use autosec::secproto::canal::{CanalReceiver, CanalSender};
use autosec::secproto::macsec::{MacsecMode, MacsecRx, MacsecTx};
use autosec::secproto::secoc::{SecOcAuthenticator, SecOcConfig};
use autosec::sim::SimRng;
use rand::{Rng, RngCore};

const CASES: u64 = 48;

fn bytes(rng: &mut SimRng, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn arr<const N: usize>(rng: &mut SimRng) -> [u8; N] {
    let mut a = [0u8; N];
    rng.fill_bytes(&mut a);
    a
}

/// CANAL segmentation/reassembly is the identity for any SDU.
#[test]
fn canal_round_trips_any_sdu() {
    let root = SimRng::seed(0xCA_7A1);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let sdu = {
            let len = rng.gen_range(1usize..3000);
            bytes(&mut rng, len)
        };
        let mtu = rng.gen_range(16usize..512);
        let mut tx = CanalSender::new(0x40, 1, mtu);
        let mut rx = CanalReceiver::new();
        let mut out = None;
        for f in tx.segment(&sdu) {
            out = rx.push(&f).expect("lossless in-order stream");
        }
        assert_eq!(out.expect("final fragment closes the SDU"), sdu);
    }
}

/// AES-GCM round-trips any payload/AAD pair, and a single bit flip
/// anywhere in the sealed output breaks authentication.
#[test]
fn gcm_round_trip_and_bitflip() {
    let root = SimRng::seed(0x6C_0001);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let key: [u8; 16] = arr(&mut rng);
        let nonce: [u8; 12] = arr(&mut rng);
        let aad = {
            let len = rng.gen_range(0usize..64);
            bytes(&mut rng, len)
        };
        let pt = {
            let len = rng.gen_range(0usize..256);
            bytes(&mut rng, len)
        };
        let aead = AesGcm::new(&key);
        let sealed = aead.seal(&nonce, &aad, &pt);
        assert_eq!(aead.open(&nonce, &aad, &sealed).expect("authentic"), pt);

        let mut bad = sealed.clone();
        let idx = rng.gen_range(0usize..bad.len());
        bad[idx] ^= 1 << rng.gen_range(0u8..8);
        assert!(aead.open(&nonce, &aad, &bad).is_err());
    }
}

/// MACsec protect/verify round-trips in both modes.
#[test]
fn macsec_round_trip() {
    let root = SimRng::seed(0x3A_C5EC);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let sak: [u8; 16] = arr(&mut rng);
        let sci = rng.next_u64();
        let payload = {
            let len = rng.gen_range(0usize..512);
            bytes(&mut rng, len)
        };
        let mode = if rng.chance(0.5) {
            MacsecMode::AuthenticatedEncryption
        } else {
            MacsecMode::IntegrityOnly
        };
        let mut tx = MacsecTx::new(sak, sci, mode);
        let mut rx = MacsecRx::new(sak, sci);
        let frame = tx.protect(&payload).expect("fresh pn");
        assert_eq!(rx.verify(&frame).expect("authentic"), payload);
    }
}

/// SECOC freshness resynchronization tolerates any loss pattern up to
/// the wraparound window.
#[test]
fn secoc_survives_bounded_loss() {
    let root = SimRng::seed(0x5EC0C);
    for case in 0..16 {
        let mut rng = root.fork_idx(case);
        let cfg = SecOcConfig::default();
        let mut tx = SecOcAuthenticator::new_sender(cfg, [7u8; 16], 1);
        let mut rx = SecOcAuthenticator::new_receiver(cfg, [7u8; 16], 1);
        for _ in 0..rng.gen_range(1usize..40) {
            // Drop up to 99 PDUs (bounded << 256 so resync always works).
            let loss = rng.gen_range(0usize..100);
            for _ in 0..loss {
                let _ = tx.protect(b"lost").expect("fresh counter");
            }
            let pdu = tx.protect(b"delivered").expect("fresh counter");
            assert!(rx.verify(&pdu).is_ok());
        }
    }
}

/// Merkle proofs verify for every leaf of any tree, and fail for any
/// other leaf value.
#[test]
fn merkle_membership() {
    let root = SimRng::seed(0x3E_4C1E);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let n_leaves = rng.gen_range(1usize..64);
        let leaves: Vec<Vec<u8>> = (0..n_leaves)
            .map(|_| {
                let len = rng.gen_range(0usize..32);
                bytes(&mut rng, len)
            })
            .collect();
        let refs: Vec<&[u8]> = leaves.iter().map(|v| v.as_slice()).collect();
        let tree = MerkleTree::from_leaves(&refs);
        let i = rng.gen_range(0usize..leaves.len());
        let proof = tree.prove(i).expect("in range");
        assert!(proof.verify(&tree.root(), &leaves[i]));
        assert!(!proof.verify(&tree.root(), b"\xffdefinitely-not-a-leaf\xff"));
    }
}

/// Classic CAN frame wire length stays within the theoretical bounds:
/// unstuffed minimum and worst-case stuffing maximum.
#[test]
fn can_frame_length_bounds() {
    let root = SimRng::seed(0xCAF0);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let id = rng.gen_range(0u16..0x800);
        let data = {
            let len = rng.gen_range(0usize..9);
            bytes(&mut rng, len)
        };
        let frame =
            CanFrame::new(CanId::standard(id).expect("11-bit id"), &data).expect("payload <= 8");
        let n = data.len();
        let unstuffed = 47 + 8 * n;
        // Worst case adds one stuff bit per 4 bits of the stuffable
        // region (34 + 8n bits).
        let max = unstuffed + (34 + 8 * n - 1) / 4;
        let bits = frame.wire_bits();
        assert!(bits >= unstuffed, "{bits} < {unstuffed}");
        assert!(bits <= max, "{bits} > {max}");
    }
}

/// HMAC and CMAC: tags are deterministic and key-separated.
#[test]
fn mac_determinism_and_key_separation() {
    let root = SimRng::seed(0x3AC);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let k1: [u8; 16] = arr(&mut rng);
        let mut k2: [u8; 16] = arr(&mut rng);
        if k1 == k2 {
            k2[0] ^= 1;
        }
        let msg = {
            let len = rng.gen_range(0usize..128);
            bytes(&mut rng, len)
        };
        assert_eq!(HmacSha256::mac(&k1, &msg), HmacSha256::mac(&k1, &msg));
        assert_ne!(HmacSha256::mac(&k1, &msg), HmacSha256::mac(&k2, &msg));
        let c1 = Cmac::new(&k1);
        let c2 = Cmac::new(&k2);
        assert_eq!(c1.mac(&msg), c1.mac(&msg));
        assert_ne!(c1.mac(&msg), c2.mac(&msg));
    }
}

/// SHA-256 streaming equals one-shot for any split.
#[test]
fn sha256_streaming_any_split() {
    let root = SimRng::seed(0x5A_256);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let data = {
            let len = rng.gen_range(0usize..512);
            bytes(&mut rng, len)
        };
        let s = rng.gen_range(0usize..data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..s]);
        h.update(&data[s..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}
