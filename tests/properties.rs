//! Property-based tests on cross-crate invariants (proptest).

use autosec::crypto::{AesGcm, Cmac, HmacSha256, MerkleTree, Sha256};
use autosec::ivn::can::{CanFrame, CanId};
use autosec::secproto::canal::{CanalReceiver, CanalSender};
use autosec::secproto::macsec::{MacsecMode, MacsecRx, MacsecTx};
use autosec::secproto::secoc::{SecOcAuthenticator, SecOcConfig};
use proptest::prelude::*;

proptest! {
    /// CANAL segmentation/reassembly is the identity for any SDU.
    #[test]
    fn canal_round_trips_any_sdu(
        sdu in proptest::collection::vec(any::<u8>(), 1..3000),
        mtu in 16usize..512,
    ) {
        let mut tx = CanalSender::new(0x40, 1, mtu.max(16));
        let mut rx = CanalReceiver::new();
        let mut out = None;
        for f in tx.segment(&sdu) {
            out = rx.push(&f).expect("lossless in-order stream");
        }
        prop_assert_eq!(out.expect("final fragment closes the SDU"), sdu);
    }

    /// AES-GCM round-trips any payload/AAD pair, and a single bit flip
    /// anywhere in the sealed output breaks authentication.
    #[test]
    fn gcm_round_trip_and_bitflip(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..256),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let aead = AesGcm::new(&key);
        let sealed = aead.seal(&nonce, &aad, &pt);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).expect("authentic"), pt);

        let mut bad = sealed.clone();
        let idx = flip_byte % bad.len();
        bad[idx] ^= 1 << flip_bit;
        prop_assert!(aead.open(&nonce, &aad, &bad).is_err());
    }

    /// MACsec protect/verify round-trips in both modes.
    #[test]
    fn macsec_round_trip(
        sak in any::<[u8; 16]>(),
        sci in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        encrypt in any::<bool>(),
    ) {
        let mode = if encrypt {
            MacsecMode::AuthenticatedEncryption
        } else {
            MacsecMode::IntegrityOnly
        };
        let mut tx = MacsecTx::new(sak, sci, mode);
        let mut rx = MacsecRx::new(sak, sci);
        let frame = tx.protect(&payload).expect("fresh pn");
        prop_assert_eq!(rx.verify(&frame).expect("authentic"), payload);
    }

    /// SECOC freshness resynchronization tolerates any loss pattern up
    /// to the wraparound window.
    #[test]
    fn secoc_survives_bounded_loss(
        losses in proptest::collection::vec(0u8..100, 1..40),
    ) {
        let cfg = SecOcConfig::default();
        let mut tx = SecOcAuthenticator::new_sender(cfg, [7u8; 16], 1);
        let mut rx = SecOcAuthenticator::new_receiver(cfg, [7u8; 16], 1);
        for loss in losses {
            // Drop `loss` PDUs (bounded << 256 so resync always works).
            for _ in 0..loss.min(100) {
                let _ = tx.protect(b"lost").expect("fresh counter");
            }
            let pdu = tx.protect(b"delivered").expect("fresh counter");
            prop_assert!(rx.verify(&pdu).is_ok());
        }
    }

    /// Merkle proofs verify for every leaf of any tree, and fail for any
    /// other leaf value.
    #[test]
    fn merkle_membership(
        leaves in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32),
            1..64,
        ),
        probe in any::<usize>(),
    ) {
        let refs: Vec<&[u8]> = leaves.iter().map(|v| v.as_slice()).collect();
        let tree = MerkleTree::from_leaves(&refs);
        let i = probe % leaves.len();
        let proof = tree.prove(i).expect("in range");
        prop_assert!(proof.verify(&tree.root(), &leaves[i]));
        prop_assert!(!proof.verify(&tree.root(), b"\xffdefinitely-not-a-leaf\xff"));
    }

    /// Classic CAN frame wire length stays within the theoretical
    /// bounds: unstuffed minimum and worst-case stuffing maximum.
    #[test]
    fn can_frame_length_bounds(
        id in 0u16..0x800,
        data in proptest::collection::vec(any::<u8>(), 0..9),
    ) {
        let frame = CanFrame::new(CanId::standard(id).expect("11-bit id"), &data)
            .expect("payload <= 8");
        let n = data.len();
        let unstuffed = 47 + 8 * n;
        // Worst case adds one stuff bit per 4 bits of the stuffable
        // region (34 + 8n bits).
        let max = unstuffed + (34 + 8 * n - 1) / 4;
        let bits = frame.wire_bits();
        prop_assert!(bits >= unstuffed, "{bits} < {unstuffed}");
        prop_assert!(bits <= max, "{bits} > {max}");
    }

    /// HMAC and CMAC: tags are deterministic and key-separated.
    #[test]
    fn mac_determinism_and_key_separation(
        k1 in any::<[u8; 16]>(),
        k2 in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_eq!(HmacSha256::mac(&k1, &msg), HmacSha256::mac(&k1, &msg));
        prop_assert_ne!(HmacSha256::mac(&k1, &msg), HmacSha256::mac(&k2, &msg));
        let c1 = Cmac::new(&k1);
        let c2 = Cmac::new(&k2);
        prop_assert_eq!(c1.mac(&msg), c1.mac(&msg));
        prop_assert_ne!(c1.mac(&msg), c2.mac(&msg));
    }

    /// SHA-256 streaming equals one-shot for any split.
    #[test]
    fn sha256_streaming_any_split(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in any::<usize>(),
    ) {
        let s = split % (data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..s]);
        h.update(&data[s..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}
