//! Integration: the full SSI-backed SDV lifecycle (ssi + sdv + crypto):
//! provisioning, zero-trust placement, OTA updates, revocation, key
//! rotation, and the offline charging bundle.

use std::collections::BTreeSet;

use autosec::sdv::component::{Asil, HardwareNode, SoftwareComponent};
use autosec::sdv::platform::SdvPlatform;
use autosec::sdv::update::{UpdateManager, UpdatePackage};
use autosec::sim::SimRng;
use autosec::ssi::prelude::*;

fn component(id: &str) -> SoftwareComponent {
    SoftwareComponent {
        id: id.into(),
        vendor: "tier1".into(),
        version: (1, 0, 0),
        requires: vec!["can-if".into()],
        compute_cost: 10,
        asil: Asil::B,
    }
}

fn node(id: &str) -> HardwareNode {
    HardwareNode {
        id: id.into(),
        provides: vec!["can-if".into()],
        compute_capacity: 100,
        max_asil: Asil::D,
    }
}

#[test]
fn full_lifecycle_place_update_revoke() {
    let mut rng = SimRng::seed(4242);
    let (mut platform, mut oem) = SdvPlatform::new(&mut rng);
    platform
        .register_node(&mut rng, node("hpc-0"), &mut oem)
        .expect("register node");

    // Tier-1 vendor endorsed by the OEM anchor.
    let mut vendor = Wallet::create(&mut rng, "tier1", platform.registry());
    let endorsement = oem
        .issue(
            vendor.did().clone(),
            serde_json::json!({"authority": "software-vendor"}),
            None,
        )
        .expect("issue");
    platform
        .registry()
        .record_endorsement(&endorsement)
        .expect("endorse");

    platform
        .register_component(&mut rng, component("adas"), &mut vendor)
        .expect("register component");
    platform
        .place("adas", "hpc-0")
        .expect("authenticated placement");

    // OTA update from the endorsed vendor applies...
    let target = Wallet::create(&mut rng, "adas-target", platform.registry());
    let mut comp = component("adas");
    let pkg = UpdatePackage::build(
        &mut vendor,
        target.did().clone(),
        "adas",
        (1, 1, 0),
        b"image v1.1.0".to_vec(),
    )
    .expect("build package");
    UpdateManager::apply(platform.registry(), &mut comp, &pkg).expect("apply update");
    assert_eq!(comp.version, (1, 1, 0));

    // ...but a tampered one does not.
    let mut evil = UpdatePackage::build(
        &mut vendor,
        target.did().clone(),
        "adas",
        (1, 2, 0),
        b"image v1.2.0".to_vec(),
    )
    .expect("build package");
    evil.image = b"backdoored image!".to_vec();
    assert!(UpdateManager::apply(platform.registry(), &mut comp, &evil).is_err());
    assert_eq!(comp.version, (1, 1, 0));
}

#[test]
fn revoked_credential_fails_presentation() {
    let mut rng = SimRng::seed(4343);
    let registry = Registry::new();
    let mut anchor = Wallet::create(&mut rng, "root", &registry);
    registry.add_trust_anchor(anchor.did().clone(), "root");
    let mut holder = Wallet::create(&mut rng, "vehicle", &registry);

    let cred = anchor
        .issue(
            holder.did().clone(),
            serde_json::json!({"contract": 1}),
            None,
        )
        .expect("issue");
    let mut revoked = BTreeSet::new();
    revoked.insert(cred.id.clone());
    let rl = RevocationList::create(&mut anchor, 1, revoked).expect("create list");

    let vp = VerifiablePresentation::create(&mut holder, vec![cred.clone()], b"n")
        .expect("create presentation");
    // Online path verifies (trust + signature)...
    assert!(vp.verify(&registry, b"n", 0).is_ok());
    // ...but the revocation list kills it.
    assert_eq!(rl.check(&cred).unwrap_err(), SsiError::Revoked);

    // And the offline bundle enforces it too.
    let bundle = OfflineBundle::assemble(&registry, vp, vec![rl]);
    assert_eq!(
        bundle
            .verify_offline(&[anchor.did().clone()], b"n", 0)
            .unwrap_err(),
        SsiError::Revoked
    );
}

#[test]
fn key_rotation_preserves_old_credentials_and_platform_flow() {
    let mut rng = SimRng::seed(4444);
    let registry = Registry::new();
    let mut issuer = Wallet::create(&mut rng, "oem", &registry);
    registry.add_trust_anchor(issuer.did().clone(), "OEM");
    let subject = Wallet::create(&mut rng, "ecu", &registry);

    let before = issuer
        .issue(subject.did().clone(), serde_json::json!({"k": "old"}), None)
        .expect("issue");
    issuer.rotate_key(&mut rng, &registry).expect("rotate");
    let after = issuer
        .issue(subject.did().clone(), serde_json::json!({"k": "new"}), None)
        .expect("issue");

    assert!(
        before.verify(&registry).is_ok(),
        "old credential still valid"
    );
    assert!(after.verify(&registry).is_ok());
    assert!(registry.trust_path_ok(&before));
    assert!(registry.trust_path_ok(&after));
}

#[test]
fn multi_stakeholder_trust_anchors_coexist() {
    // §IV: "Interoperable services and multiple trust anchors exist due
    // to different stakeholders."
    let mut rng = SimRng::seed(4545);
    let registry = Registry::new();
    let mut oem = Wallet::create(&mut rng, "oem", &registry);
    let mut cloud = Wallet::create(&mut rng, "cloud", &registry);
    let mut emsp = Wallet::create(&mut rng, "emsp", &registry);
    for (w, label) in [(&oem, "OEM"), (&cloud, "Cloud"), (&emsp, "eMSP")] {
        registry.add_trust_anchor(w.did().clone(), label);
    }
    let mut vehicle = Wallet::create(&mut rng, "vehicle", &registry);

    // Each anchor issues its own credential about the same vehicle.
    let creds = vec![
        oem.issue(vehicle.did().clone(), serde_json::json!({"vin": "X"}), None)
            .expect("issue"),
        cloud
            .issue(
                vehicle.did().clone(),
                serde_json::json!({"tenant": "fleet-7"}),
                None,
            )
            .expect("issue"),
        emsp.issue(
            vehicle.did().clone(),
            serde_json::json!({"contract": "C1"}),
            None,
        )
        .expect("issue"),
    ];
    let vp = VerifiablePresentation::create(&mut vehicle, creds, b"challenge")
        .expect("create presentation");
    assert!(vp.verify(&registry, b"challenge", 0).is_ok());
}
