//! Randomized invariant tests for the cryptographic substrate.
//!
//! Formerly proptest-based; now driven by seeded [`StdRng`] streams
//! (the hermetic build has no proptest), one substream per case so
//! failures reproduce exactly.

use autosec_crypto::shamir::{combine, split};
use autosec_crypto::util::{from_hex, to_hex};
use autosec_crypto::{Aes128, AesCtr, Cmac, Hkdf, WotsKeyPair};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

const CASES: u64 = 48;

fn case_rng(root: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(root ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn arr<const N: usize>(rng: &mut StdRng) -> [u8; N] {
    let mut a = [0u8; N];
    rng.fill_bytes(&mut a);
    a
}

/// AES decrypt ∘ encrypt is the identity for any key/block.
#[test]
fn aes_round_trip() {
    for case in 0..CASES {
        let mut rng = case_rng(0xAE5, case);
        let key: [u8; 16] = arr(&mut rng);
        let block: [u8; 16] = arr(&mut rng);
        let aes = Aes128::new(&key);
        assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }
}

/// CTR is an involution for any data length.
#[test]
fn ctr_involution() {
    for case in 0..CASES {
        let mut rng = case_rng(0xC74, case);
        let key: [u8; 16] = arr(&mut rng);
        let iv: [u8; 16] = arr(&mut rng);
        let data = {
            let len = rng.gen_range(0usize..300);
            bytes(&mut rng, len)
        };
        let ctr = AesCtr::new(&key);
        assert_eq!(ctr.process(&iv, &ctr.process(&iv, &data)), data);
    }
}

/// HKDF expansions are prefix-consistent for any lengths.
#[test]
fn hkdf_prefix() {
    for case in 0..CASES {
        let mut rng = case_rng(0x48_DF, case);
        let salt = {
            let len = rng.gen_range(0usize..32);
            bytes(&mut rng, len)
        };
        let ikm = {
            let len = rng.gen_range(1usize..64);
            bytes(&mut rng, len)
        };
        let a = rng.gen_range(1usize..100);
        let b = rng.gen_range(1usize..100);
        let hk = Hkdf::extract(&salt, &ikm);
        let (short, long) = if a <= b { (a, b) } else { (b, a) };
        let s = hk.expand(b"info", short).expect("valid length");
        let l = hk.expand(b"info", long).expect("valid length");
        assert_eq!(&l[..short], &s[..]);
    }
}

/// CMAC accepts any true tag prefix and rejects a flipped bit in it.
#[test]
fn cmac_truncation() {
    for case in 0..CASES {
        let mut rng = case_rng(0xC3AC, case);
        let key: [u8; 16] = arr(&mut rng);
        let msg = {
            let len = rng.gen_range(0usize..200);
            bytes(&mut rng, len)
        };
        let tag_len = rng.gen_range(1usize..=16);
        let flip = rng.gen_range(0u8..8);
        let cmac = Cmac::new(&key);
        let tag = cmac.mac(&msg);
        assert!(cmac.verify_truncated(&msg, &tag[..tag_len]));
        let mut bad = tag[..tag_len].to_vec();
        bad[tag_len - 1] ^= 1 << flip;
        assert!(!cmac.verify_truncated(&msg, &bad));
    }
}

/// Hex encode/decode round-trips.
#[test]
fn hex_round_trip() {
    for case in 0..CASES {
        let mut rng = case_rng(0x4E_C5, case);
        let data = {
            let len = rng.gen_range(0usize..128);
            bytes(&mut rng, len)
        };
        assert_eq!(from_hex(&to_hex(&data)).expect("valid hex"), data);
    }
}

/// Shamir: any k of n shares reconstruct; k-1 do not (8+-byte secrets
/// make coincidence astronomically unlikely).
#[test]
fn shamir_threshold() {
    for case in 0..CASES {
        let mut rng = case_rng(0x54A_312, case);
        let secret = {
            let len = rng.gen_range(8usize..64);
            bytes(&mut rng, len)
        };
        let k = rng.gen_range(2usize..5);
        let n = k + rng.gen_range(0usize..3);
        let shares = split(&secret, k, n, &mut rng).expect("valid k/n");
        // The *last* k shares (any subset works).
        let subset = &shares[n - k..];
        assert_eq!(combine(subset).expect("k shares"), secret);
        let below = &shares[..k - 1];
        if !below.is_empty() {
            assert_ne!(combine(below).expect("structurally valid"), secret);
        }
    }
}

/// WOTS rejects any mutated message.
#[test]
fn wots_message_binding() {
    for case in 0..16 {
        let mut rng = case_rng(0x3075, case);
        let seed: [u8; 32] = arr(&mut rng);
        let msg = {
            let len = rng.gen_range(1usize..64);
            bytes(&mut rng, len)
        };
        let mut kp = WotsKeyPair::from_seed(&seed);
        let pk = kp.public_key().clone();
        let sig = kp.sign(&msg).expect("fresh key");
        assert!(pk.verify(&msg, &sig));
        let mut other = msg.clone();
        let idx = rng.gen_range(0usize..other.len());
        other[idx] ^= 1 << rng.gen_range(0u8..8);
        assert!(!pk.verify(&other, &sig));
    }
}
