//! Property tests for the cryptographic substrate.

use autosec_crypto::shamir::{combine, split};
use autosec_crypto::util::{from_hex, to_hex};
use autosec_crypto::{Aes128, AesCtr, Cmac, Hkdf, WotsKeyPair};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// AES decrypt ∘ encrypt is the identity for any key/block.
    #[test]
    fn aes_round_trip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// CTR is an involution for any data length.
    #[test]
    fn ctr_involution(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let ctr = AesCtr::new(&key);
        prop_assert_eq!(ctr.process(&iv, &ctr.process(&iv, &data)), data);
    }

    /// HKDF expansions are prefix-consistent for any lengths.
    #[test]
    fn hkdf_prefix(
        salt in proptest::collection::vec(any::<u8>(), 0..32),
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        a in 1usize..100,
        b in 1usize..100,
    ) {
        let hk = Hkdf::extract(&salt, &ikm);
        let (short, long) = if a <= b { (a, b) } else { (b, a) };
        let s = hk.expand(b"info", short).expect("valid length");
        let l = hk.expand(b"info", long).expect("valid length");
        prop_assert_eq!(&l[..short], &s[..]);
    }

    /// CMAC accepts any true tag prefix and rejects a flipped bit in it.
    #[test]
    fn cmac_truncation(
        key in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
        tag_len in 1usize..=16,
        flip in 0u8..8,
    ) {
        let cmac = Cmac::new(&key);
        let tag = cmac.mac(&msg);
        prop_assert!(cmac.verify_truncated(&msg, &tag[..tag_len]));
        let mut bad = tag[..tag_len].to_vec();
        bad[tag_len - 1] ^= 1 << flip;
        prop_assert!(!cmac.verify_truncated(&msg, &bad));
    }

    /// Hex encode/decode round-trips.
    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(from_hex(&to_hex(&data)).expect("valid hex"), data);
    }

    /// Shamir: any k of n shares reconstruct; k-1 do not (8+-byte
    /// secrets make coincidence astronomically unlikely).
    #[test]
    fn shamir_threshold(
        secret in proptest::collection::vec(any::<u8>(), 8..64),
        k in 2usize..5,
        extra in 0usize..3,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = split(&secret, k, n, &mut rng).expect("valid k/n");
        // The *last* k shares (any subset works).
        let subset = &shares[n - k..];
        prop_assert_eq!(combine(subset).expect("k shares"), secret.clone());
        let below = &shares[..k - 1];
        if !below.is_empty() {
            prop_assert_ne!(combine(below).expect("structurally valid"), secret);
        }
    }

    /// WOTS rejects any mutated message.
    #[test]
    fn wots_message_binding(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 1..64), flip_at in any::<usize>(), flip_bit in 0u8..8) {
        let mut kp = WotsKeyPair::from_seed(&seed);
        let pk = kp.public_key().clone();
        let sig = kp.sign(&msg).expect("fresh key");
        prop_assert!(pk.verify(&msg, &sig));
        let mut other = msg.clone();
        let idx = flip_at % other.len();
        other[idx] ^= 1 << flip_bit;
        prop_assert!(!pk.verify(&other, &sig));
    }
}
