//! Hash-based one-time signatures: Lamport and Winternitz (WOTS).
//!
//! These replace elliptic-curve signatures in the SSI substitution (see
//! `DESIGN.md`): correct-by-construction from SHA-256, genuinely
//! unforgeable, and simple enough to implement from scratch with
//! confidence. Each key pair must sign **at most one** message — the
//! stateful wrapper in [`crate::mss`] lifts them to many-time keys.

use rand::RngCore;

use crate::sha256::{Digest, Sha256};
use crate::CryptoError;

/// Winternitz parameter: digits are base-16 (4 bits per chain step).
pub const WOTS_W: usize = 16;
/// Number of message digits (256 bits / 4 bits per digit).
pub const WOTS_MSG_CHAINS: usize = 64;
/// Number of checksum digits: max checksum = 64 * 15 = 960 < 16^3.
pub const WOTS_CSUM_CHAINS: usize = 3;
/// Total chains per key.
pub const WOTS_CHAINS: usize = WOTS_MSG_CHAINS + WOTS_CSUM_CHAINS;

/// A Lamport one-time key pair (two 32-byte secrets per message bit).
///
/// Kept mainly as the pedagogically simplest scheme and for the E8
/// overhead comparison; WOTS is what [`crate::mss`] uses (16x smaller
/// signatures).
#[derive(Clone)]
pub struct LamportKeyPair {
    sk: Box<[[Digest; 2]; 256]>,
    pk: Box<[[Digest; 2]; 256]>,
    used: bool,
}

impl std::fmt::Debug for LamportKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LamportKeyPair")
            .field("used", &self.used)
            .finish_non_exhaustive()
    }
}

/// A Lamport signature: one revealed preimage per message bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportSignature {
    reveals: Vec<Digest>, // 256 entries
}

impl LamportKeyPair {
    /// Generates a key pair from an RNG.
    pub fn generate(rng: &mut dyn RngCore) -> Self {
        let mut sk = Box::new([[[0u8; 32]; 2]; 256]);
        let mut pk = Box::new([[[0u8; 32]; 2]; 256]);
        for i in 0..256 {
            for b in 0..2 {
                rng.fill_bytes(&mut sk[i][b]);
                pk[i][b] = Sha256::digest(&sk[i][b]);
            }
        }
        Self {
            sk,
            pk,
            used: false,
        }
    }

    /// Public key as the hash of all 512 public hashes (compact form for
    /// comparison and storage).
    pub fn public_key_digest(&self) -> Digest {
        let mut h = Sha256::new();
        for pair in self.pk.iter() {
            h.update(&pair[0]);
            h.update(&pair[1]);
        }
        h.finalize()
    }

    /// Signs `message` (hashed internally). One-time: a second call fails.
    ///
    /// # Errors
    ///
    /// [`CryptoError::KeyExhausted`] if this key already signed.
    pub fn sign(&mut self, message: &[u8]) -> Result<LamportSignature, CryptoError> {
        if self.used {
            return Err(CryptoError::KeyExhausted);
        }
        self.used = true;
        let digest = Sha256::digest(message);
        let mut reveals = Vec::with_capacity(256);
        for i in 0..256 {
            let bit = (digest[i / 8] >> (7 - i % 8)) & 1;
            reveals.push(self.sk[i][bit as usize]);
        }
        Ok(LamportSignature { reveals })
    }

    /// Verifies `sig` over `message` against this key pair's public half.
    pub fn verify(&self, message: &[u8], sig: &LamportSignature) -> bool {
        if sig.reveals.len() != 256 {
            return false;
        }
        let digest = Sha256::digest(message);
        for i in 0..256 {
            let bit = (digest[i / 8] >> (7 - i % 8)) & 1;
            if Sha256::digest(&sig.reveals[i]) != self.pk[i][bit as usize] {
                return false;
            }
        }
        true
    }

    /// Signature size in bytes.
    pub const SIGNATURE_BYTES: usize = 256 * 32;
}

/// Splits a digest into 64 base-16 digits plus 3 checksum digits.
fn wots_digits(digest: &Digest) -> [u8; WOTS_CHAINS] {
    let mut out = [0u8; WOTS_CHAINS];
    for (pair, byte) in out.chunks_mut(2).zip(digest.iter()) {
        pair[0] = byte >> 4;
        pair[1] = byte & 0x0f;
    }
    // Checksum: sum of (w-1 - digit); prevents forgery by advancing chains.
    let csum: u32 = out[..WOTS_MSG_CHAINS]
        .iter()
        .map(|&d| (WOTS_W as u32 - 1) - d as u32)
        .sum();
    out[WOTS_MSG_CHAINS] = ((csum >> 8) & 0x0f) as u8;
    out[WOTS_MSG_CHAINS + 1] = ((csum >> 4) & 0x0f) as u8;
    out[WOTS_MSG_CHAINS + 2] = (csum & 0x0f) as u8;
    out
}

/// Applies the WOTS chain function `n` times: `H(chain_idx || step || x)`
/// with positional domain separation so chains cannot be spliced.
fn chain(start: &Digest, chain_idx: usize, from_step: u8, steps: u8) -> Digest {
    let mut acc = *start;
    for s in 0..steps {
        let step = from_step + s;
        acc = Sha256::digest_parts(&[&[0x02], &(chain_idx as u16).to_be_bytes(), &[step], &acc]);
    }
    acc
}

/// A WOTS public key: the 67 chain heads, plus a compact digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WotsPublicKey {
    heads: Vec<Digest>, // WOTS_CHAINS entries
}

impl WotsPublicKey {
    /// Compact commitment to the whole public key.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        for head in &self.heads {
            h.update(head);
        }
        h.finalize()
    }

    /// Verifies a WOTS signature over `message`.
    pub fn verify(&self, message: &[u8], sig: &WotsSignature) -> bool {
        if sig.chains.len() != WOTS_CHAINS || self.heads.len() != WOTS_CHAINS {
            return false;
        }
        let digits = wots_digits(&Sha256::digest(message));
        for (i, (&digit, (sig_chain, head))) in digits
            .iter()
            .zip(sig.chains.iter().zip(self.heads.iter()))
            .enumerate()
        {
            let remaining = (WOTS_W - 1) as u8 - digit;
            if chain(sig_chain, i, digit, remaining) != *head {
                return false;
            }
        }
        true
    }
}

/// A WOTS signature: one intermediate chain value per digit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WotsSignature {
    chains: Vec<Digest>, // WOTS_CHAINS entries
}

impl WotsSignature {
    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.chains.len() * 32
    }
}

/// A WOTS one-time key pair.
///
/// # Example
///
/// ```
/// use autosec_crypto::WotsKeyPair;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut kp = WotsKeyPair::generate(&mut rng);
/// let pk = kp.public_key().clone();
/// let sig = kp.sign(b"hello").unwrap();
/// assert!(pk.verify(b"hello", &sig));
/// assert!(!pk.verify(b"tampered", &sig));
/// assert!(kp.sign(b"again").is_err()); // one-time!
/// ```
#[derive(Clone)]
pub struct WotsKeyPair {
    sk: Vec<Digest>,
    pk: WotsPublicKey,
    used: bool,
}

impl std::fmt::Debug for WotsKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WotsKeyPair")
            .field("used", &self.used)
            .finish_non_exhaustive()
    }
}

impl WotsKeyPair {
    /// Generates a key pair from an RNG.
    pub fn generate(rng: &mut dyn RngCore) -> Self {
        let mut sk = Vec::with_capacity(WOTS_CHAINS);
        let mut heads = Vec::with_capacity(WOTS_CHAINS);
        for i in 0..WOTS_CHAINS {
            let mut secret = [0u8; 32];
            rng.fill_bytes(&mut secret);
            heads.push(chain(&secret, i, 0, (WOTS_W - 1) as u8));
            sk.push(secret);
        }
        Self {
            sk,
            pk: WotsPublicKey { heads },
            used: false,
        }
    }

    /// Deterministic generation from a 32-byte seed (used by [`crate::mss`]
    /// so leaves can be regenerated instead of stored).
    pub fn from_seed(seed: &Digest) -> Self {
        let mut sk = Vec::with_capacity(WOTS_CHAINS);
        let mut heads = Vec::with_capacity(WOTS_CHAINS);
        for i in 0..WOTS_CHAINS {
            let secret = Sha256::digest_parts(&[&[0x03], seed, &(i as u16).to_be_bytes()]);
            heads.push(chain(&secret, i, 0, (WOTS_W - 1) as u8));
            sk.push(secret);
        }
        Self {
            sk,
            pk: WotsPublicKey { heads },
            used: false,
        }
    }

    /// The public half.
    pub fn public_key(&self) -> &WotsPublicKey {
        &self.pk
    }

    /// Whether this key has already signed.
    pub fn is_used(&self) -> bool {
        self.used
    }

    /// Signs `message` (hashed internally). One-time: second call fails.
    ///
    /// # Errors
    ///
    /// [`CryptoError::KeyExhausted`] if this key already signed.
    pub fn sign(&mut self, message: &[u8]) -> Result<WotsSignature, CryptoError> {
        if self.used {
            return Err(CryptoError::KeyExhausted);
        }
        self.used = true;
        let digits = wots_digits(&Sha256::digest(message));
        let chains = (0..WOTS_CHAINS)
            .map(|i| chain(&self.sk[i], i, 0, digits[i]))
            .collect();
        Ok(WotsSignature { chains })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn lamport_round_trip() {
        let mut kp = LamportKeyPair::generate(&mut rng());
        let sig = kp.sign(b"message").unwrap();
        assert!(kp.verify(b"message", &sig));
        assert!(!kp.verify(b"other", &sig));
    }

    #[test]
    fn lamport_is_one_time() {
        let mut kp = LamportKeyPair::generate(&mut rng());
        kp.sign(b"first").unwrap();
        assert_eq!(kp.sign(b"second").unwrap_err(), CryptoError::KeyExhausted);
    }

    #[test]
    fn lamport_rejects_bitflipped_signature() {
        let mut kp = LamportKeyPair::generate(&mut rng());
        let mut sig = kp.sign(b"m").unwrap();
        sig.reveals[0][0] ^= 1;
        assert!(!kp.verify(b"m", &sig));
    }

    #[test]
    fn wots_round_trip() {
        let mut kp = WotsKeyPair::generate(&mut rng());
        let pk = kp.public_key().clone();
        let sig = kp.sign(b"v2x message").unwrap();
        assert!(pk.verify(b"v2x message", &sig));
        assert!(!pk.verify(b"v2x messagf", &sig));
    }

    #[test]
    fn wots_is_one_time() {
        let mut kp = WotsKeyPair::generate(&mut rng());
        kp.sign(b"a").unwrap();
        assert!(kp.sign(b"b").is_err());
        assert!(kp.is_used());
    }

    #[test]
    fn wots_seed_is_deterministic() {
        let seed = [9u8; 32];
        let a = WotsKeyPair::from_seed(&seed);
        let b = WotsKeyPair::from_seed(&seed);
        assert_eq!(a.public_key(), b.public_key());
        let c = WotsKeyPair::from_seed(&[10u8; 32]);
        assert_ne!(a.public_key(), c.public_key());
    }

    #[test]
    fn wots_signature_tamper_rejected() {
        let mut kp = WotsKeyPair::generate(&mut rng());
        let pk = kp.public_key().clone();
        let mut sig = kp.sign(b"m").unwrap();
        sig.chains[10][5] ^= 0x40;
        assert!(!pk.verify(b"m", &sig));
    }

    #[test]
    fn wots_digits_checksum_bounds() {
        // All-zero digest: checksum = 64*15 = 960 = 0x3C0.
        let digits = wots_digits(&[0u8; 32]);
        assert_eq!(&digits[WOTS_MSG_CHAINS..], &[0x3, 0xC, 0x0]);
        // All-0xF digest: checksum 0.
        let digits = wots_digits(&[0xff; 32]);
        assert_eq!(&digits[WOTS_MSG_CHAINS..], &[0, 0, 0]);
    }

    #[test]
    fn wots_signature_size_is_compact() {
        let mut kp = WotsKeyPair::generate(&mut rng());
        let sig = kp.sign(b"m").unwrap();
        assert_eq!(sig.byte_len(), WOTS_CHAINS * 32); // 2144 bytes
        assert!(sig.byte_len() < LamportKeyPair::SIGNATURE_BYTES / 3);
    }

    #[test]
    fn wots_cross_key_verification_fails() {
        let mut kp1 = WotsKeyPair::generate(&mut StdRng::seed_from_u64(1));
        let kp2 = WotsKeyPair::generate(&mut StdRng::seed_from_u64(2));
        let sig = kp1.sign(b"m").unwrap();
        assert!(!kp2.public_key().verify(b"m", &sig));
    }

    #[test]
    fn public_key_digest_is_stable() {
        let kp = WotsKeyPair::from_seed(&[1u8; 32]);
        assert_eq!(kp.public_key().digest(), kp.public_key().digest());
    }
}
