//! AES-CMAC (NIST SP 800-38B / RFC 4493).
//!
//! This is the MAC AUTOSAR SECOC profiles and CiA 613-2 (CANsec) build on;
//! both truncate the 16-byte tag, which [`Cmac::verify_truncated`] models.

use crate::aes::Aes128;
use crate::util::ct_eq;

const RB: u8 = 0x87;

fn left_shift_one(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = (block[i] >> 7) & 1;
    }
    out
}

/// AES-128 CMAC.
///
/// # Example
///
/// ```
/// use autosec_crypto::Cmac;
/// let cmac = Cmac::new(&[0u8; 16]);
/// let tag = cmac.mac(b"frame payload");
/// assert!(cmac.verify_truncated(b"frame payload", &tag[..8]));
/// ```
#[derive(Debug, Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

impl Cmac {
    /// Creates a CMAC context, deriving the two subkeys.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt_block(&[0u8; 16]);
        let mut k1 = left_shift_one(&l);
        if l[0] & 0x80 != 0 {
            k1[15] ^= RB;
        }
        let mut k2 = left_shift_one(&k1);
        if k1[0] & 0x80 != 0 {
            k2[15] ^= RB;
        }
        Self { cipher, k1, k2 }
    }

    /// Computes the full 16-byte tag over `message`.
    pub fn mac(&self, message: &[u8]) -> [u8; 16] {
        let n_blocks = if message.is_empty() {
            1
        } else {
            message.len().div_ceil(16)
        };
        let complete_last = !message.is_empty() && message.len().is_multiple_of(16);

        let mut x = [0u8; 16];
        for i in 0..n_blocks - 1 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&message[i * 16..(i + 1) * 16]);
            for j in 0..16 {
                x[j] ^= block[j];
            }
            x = self.cipher.encrypt_block(&x);
        }

        let mut last = [0u8; 16];
        let tail = &message[(n_blocks - 1) * 16..];
        if complete_last {
            last.copy_from_slice(tail);
            for (l, k) in last.iter_mut().zip(self.k1.iter()) {
                *l ^= k;
            }
        } else {
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            for (l, k) in last.iter_mut().zip(self.k2.iter()) {
                *l ^= k;
            }
        }
        for (xb, l) in x.iter_mut().zip(last.iter()) {
            *xb ^= l;
        }
        self.cipher.encrypt_block(&x)
    }

    /// Verifies a full or truncated tag (1..=16 bytes) in constant time.
    pub fn verify_truncated(&self, message: &[u8], tag: &[u8]) -> bool {
        if tag.is_empty() || tag.len() > 16 {
            return false;
        }
        let full = self.mac(message);
        ct_eq(&full[..tag.len()], tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    fn rfc_key() -> [u8; 16] {
        let v = from_hex("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let mut k = [0u8; 16];
        k.copy_from_slice(&v);
        k
    }

    /// RFC 4493 §4: subkey generation.
    #[test]
    fn rfc4493_subkeys() {
        let cmac = Cmac::new(&rfc_key());
        assert_eq!(to_hex(&cmac.k1), "fbeed618357133667c85e08f7236a8de");
        assert_eq!(to_hex(&cmac.k2), "f7ddac306ae266ccf90bc11ee46d513b");
    }

    /// RFC 4493 Example 1: empty message.
    #[test]
    fn rfc4493_example_1() {
        let cmac = Cmac::new(&rfc_key());
        assert_eq!(to_hex(&cmac.mac(b"")), "bb1d6929e95937287fa37d129b756746");
    }

    /// RFC 4493 Example 2: 16-byte message.
    #[test]
    fn rfc4493_example_2() {
        let cmac = Cmac::new(&rfc_key());
        let m = from_hex("6bc1bee22e409f96e93d7e117393172a").unwrap();
        assert_eq!(to_hex(&cmac.mac(&m)), "070a16b46b4d4144f79bdd9dd04a287c");
    }

    /// RFC 4493 Example 3: 40-byte message.
    #[test]
    fn rfc4493_example_3() {
        let cmac = Cmac::new(&rfc_key());
        let m = from_hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411"
        ))
        .unwrap();
        assert_eq!(to_hex(&cmac.mac(&m)), "dfa66747de9ae63030ca32611497c827");
    }

    /// RFC 4493 Example 4: 64-byte message.
    #[test]
    fn rfc4493_example_4() {
        let cmac = Cmac::new(&rfc_key());
        let m = from_hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ))
        .unwrap();
        assert_eq!(to_hex(&cmac.mac(&m)), "51f0bebf7e3b9d92fc49741779363cfe");
    }

    #[test]
    fn truncated_verify_accepts_prefix_rejects_flip() {
        let cmac = Cmac::new(&[9u8; 16]);
        let tag = cmac.mac(b"msg");
        for len in [1, 4, 8, 12, 16] {
            assert!(cmac.verify_truncated(b"msg", &tag[..len]), "len {len}");
        }
        let mut bad = tag[..8].to_vec();
        bad[7] ^= 0x80;
        assert!(!cmac.verify_truncated(b"msg", &bad));
        assert!(!cmac.verify_truncated(b"other", &tag[..8]));
    }

    #[test]
    fn rejects_empty_and_oversize_tags() {
        let cmac = Cmac::new(&[1u8; 16]);
        assert!(!cmac.verify_truncated(b"m", &[]));
        assert!(!cmac.verify_truncated(b"m", &[0u8; 17]));
    }

    #[test]
    fn different_messages_different_tags() {
        let cmac = Cmac::new(&[2u8; 16]);
        assert_ne!(cmac.mac(b"a"), cmac.mac(b"b"));
    }
}
