//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).

use crate::sha256::{Digest, Sha256};
use crate::util::ct_eq;

/// HMAC keyed with SHA-256.
///
/// # Example
///
/// ```
/// use autosec_crypto::HmacSha256;
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// assert!(!HmacSha256::verify(b"key", b"tampered", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates an HMAC context for `key` (any length; keys longer than the
    /// 64-byte block are pre-hashed, per the RFC).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            let d = Sha256::digest(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time verification of a (possibly truncated) tag.
    ///
    /// `tag` may be any prefix of the full 32-byte tag of at least 1 byte;
    /// SECOC-style protocols truncate MACs to save bus bytes.
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        if tag.is_empty() || tag.len() > 32 {
            return false;
        }
        let full = Self::mac(key, message);
        ct_eq(&full[..tag.len()], tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn truncated_verify() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag[..8]));
        assert!(HmacSha256::verify(b"k", b"m", &tag[..4]));
        let mut bad = tag[..8].to_vec();
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"m", &bad));
    }

    #[test]
    fn verify_rejects_bad_lengths() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(!HmacSha256::verify(b"k", b"m", &[]));
        let mut long = tag.to_vec();
        long.push(0);
        assert!(!HmacSha256::verify(b"k", b"m", &long));
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), HmacSha256::mac(b"key", b"hello world"));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(HmacSha256::mac(b"k1", b"m"), HmacSha256::mac(b"k2", b"m"));
    }

    #[test]
    fn hex_helper_sanity() {
        // guards the test-vector tooling itself
        assert_eq!(from_hex("0b0b").unwrap(), vec![0x0b, 0x0b]);
    }
}
