//! HKDF-SHA256 (RFC 5869): extract-then-expand key derivation.
//!
//! Used across the workbench to derive session keys (MACsec SAKs, SECOC
//! session keys, CANsec keys) from long-term pairwise secrets.

use crate::hmac::HmacSha256;
use crate::CryptoError;

/// HKDF with SHA-256.
///
/// # Example
///
/// ```
/// use autosec_crypto::Hkdf;
/// let okm = Hkdf::derive(b"salt", b"input key material", b"macsec sak", 16).unwrap();
/// assert_eq!(okm.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Hkdf {
    prk: [u8; 32],
}

impl Hkdf {
    /// HKDF-Extract: builds a pseudorandom key from salt and input key
    /// material.
    pub fn extract(salt: &[u8], ikm: &[u8]) -> Self {
        Self {
            prk: HmacSha256::mac(salt, ikm),
        }
    }

    /// Raw pseudorandom key (mostly for tests).
    pub fn prk(&self) -> &[u8; 32] {
        &self.prk
    }

    /// HKDF-Expand: derives `len` bytes of output keyed to `info`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if `len > 255 * 32`.
    pub fn expand(&self, info: &[u8], len: usize) -> Result<Vec<u8>, CryptoError> {
        if len > 255 * 32 {
            return Err(CryptoError::InvalidParameter("hkdf output too long"));
        }
        let mut okm = Vec::with_capacity(len);
        let mut t: Vec<u8> = Vec::new();
        let mut counter = 1u8;
        while okm.len() < len {
            let mut h = HmacSha256::new(&self.prk);
            h.update(&t);
            h.update(info);
            h.update(&[counter]);
            let block = h.finalize();
            let take = (len - okm.len()).min(32);
            okm.extend_from_slice(&block[..take]);
            t = block.to_vec();
            counter = counter.wrapping_add(1);
        }
        Ok(okm)
    }

    /// One-shot extract-then-expand.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if `len > 255 * 32`.
    pub fn derive(
        salt: &[u8],
        ikm: &[u8],
        info: &[u8],
        len: usize,
    ) -> Result<Vec<u8>, CryptoError> {
        Self::extract(salt, ikm).expand(info, len)
    }

    /// Convenience: derives a fixed 16-byte (AES-128) key.
    ///
    /// # Panics
    ///
    /// Never panics: 16 is always a valid length.
    pub fn derive_key16(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 16] {
        let v = Self::derive(salt, ikm, info, 16).expect("16 bytes is always valid");
        let mut out = [0u8; 16];
        out.copy_from_slice(&v);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    /// RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt = from_hex("000102030405060708090a0b0c").unwrap();
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let hk = Hkdf::extract(&salt, &ikm);
        assert_eq!(
            to_hex(hk.prk()),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hk.expand(&info, 42).unwrap();
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0b; 22];
        let okm = Hkdf::derive(b"", &ikm, b"", 42).unwrap();
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_lengths() {
        let hk = Hkdf::extract(b"s", b"ikm");
        for len in [0, 1, 31, 32, 33, 64, 100] {
            assert_eq!(hk.expand(b"i", len).unwrap().len(), len);
        }
    }

    #[test]
    fn expand_rejects_oversize() {
        let hk = Hkdf::extract(b"s", b"ikm");
        assert_eq!(
            hk.expand(b"i", 255 * 32 + 1),
            Err(CryptoError::InvalidParameter("hkdf output too long"))
        );
    }

    #[test]
    fn info_separates_keys() {
        let a = Hkdf::derive_key16(b"salt", b"secret", b"key-a");
        let b = Hkdf::derive_key16(b"salt", b"secret", b"key-b");
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_consistency() {
        // Expanding to 64 bytes must start with the 32-byte expansion.
        let hk = Hkdf::extract(b"s", b"ikm");
        let short = hk.expand(b"i", 32).unwrap();
        let long = hk.expand(b"i", 64).unwrap();
        assert_eq!(&long[..32], &short[..]);
    }
}
