//! Shared helpers: constant-time comparison, hex codecs, XOR.

/// Compares two byte slices in time independent of where they differ.
///
/// Returns `false` immediately (and safely) if lengths differ — length is
/// not secret in any of our protocols.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// XORs `src` into `dst` in place.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_in_place length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

/// Encodes bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a hex string (case-insensitive, no separators).
///
/// Returns `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_matches() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn hex_round_trip() {
        let data = [0x00, 0x01, 0xfe, 0xff, 0xa5];
        let hex = to_hex(&data);
        assert_eq!(hex, "0001feffa5");
        assert_eq!(from_hex(&hex).unwrap(), data);
        assert_eq!(from_hex("ABCD").unwrap(), vec![0xab, 0xcd]);
    }

    #[test]
    fn hex_rejects_garbage() {
        assert!(from_hex("abc").is_none()); // odd length
        assert!(from_hex("zz").is_none()); // non-hex
    }

    #[test]
    fn xor_works() {
        let mut a = [0b1010, 0b1111];
        xor_in_place(&mut a, &[0b0110, 0b1111]);
        assert_eq!(a, [0b1100, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let mut a = [0u8; 2];
        xor_in_place(&mut a, &[0u8; 3]);
    }
}
