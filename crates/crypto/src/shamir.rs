//! Shamir secret sharing over GF(2^8).
//!
//! Substrate for the SeeMQTT-style end-to-end communication model
//! (paper ref \[54\]): a session key is split into `n` shares with
//! threshold `k`, each share routed through a different broker, so no
//! single broker (or any coalition below `k`) learns the key.
//!
//! Arithmetic is in GF(2^8) with the AES polynomial; each secret byte is
//! shared independently with a fresh random polynomial.

use rand::RngCore;

use crate::CryptoError;

/// GF(2^8) multiplication (AES polynomial 0x11B).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    acc
}

/// GF(2^8) exponentiation-free inverse via Fermat (a^254).
fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse");
    // a^254 by square-and-multiply (254 = 0b11111110).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// One share: the x-coordinate and one y-byte per secret byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point (1..=255; 0 would leak the secret).
    pub x: u8,
    /// Share bytes (same length as the secret).
    pub y: Vec<u8>,
}

/// Splits `secret` into `n` shares with threshold `k`.
///
/// # Errors
///
/// [`CryptoError::InvalidParameter`] unless `1 <= k <= n <= 255`.
pub fn split(
    secret: &[u8],
    k: usize,
    n: usize,
    rng: &mut dyn RngCore,
) -> Result<Vec<Share>, CryptoError> {
    if k == 0 || k > n || n > 255 {
        return Err(CryptoError::InvalidParameter("shamir k/n"));
    }
    // coefficients[b] = [secret[b], c1, ..., c_{k-1}] per secret byte.
    let mut coeffs = vec![vec![0u8; k]; secret.len()];
    for (b, &s) in secret.iter().enumerate() {
        coeffs[b][0] = s;
        for c in coeffs[b].iter_mut().skip(1) {
            let mut byte = [0u8; 1];
            rng.fill_bytes(&mut byte);
            *c = byte[0];
        }
    }
    Ok((1..=n as u8)
        .map(|x| {
            let y = coeffs
                .iter()
                .map(|cs| {
                    // Horner evaluation at x.
                    cs.iter().rev().fold(0u8, |acc, &c| gf_mul(acc, x) ^ c)
                })
                .collect();
            Share { x, y }
        })
        .collect())
}

/// Recombines `shares` (any `k` distinct shares) into the secret.
///
/// # Errors
///
/// [`CryptoError::InvalidParameter`] for empty input, duplicate x
/// coordinates, or mismatched share lengths. With fewer than `k` valid
/// shares the output is garbage *by design* (information-theoretic
/// hiding) — the caller must know `k`.
pub fn combine(shares: &[Share]) -> Result<Vec<u8>, CryptoError> {
    if shares.is_empty() {
        return Err(CryptoError::InvalidParameter("no shares"));
    }
    let len = shares[0].y.len();
    for s in shares {
        if s.y.len() != len {
            return Err(CryptoError::InvalidParameter("share length mismatch"));
        }
    }
    for (i, a) in shares.iter().enumerate() {
        for b in &shares[i + 1..] {
            if a.x == b.x {
                return Err(CryptoError::InvalidParameter("duplicate share x"));
            }
        }
    }
    // Lagrange interpolation at x = 0.
    let mut secret = vec![0u8; len];
    for (i, si) in shares.iter().enumerate() {
        // basis_i(0) = prod_{j != i} x_j / (x_j ^ x_i)
        let mut basis = 1u8;
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            basis = gf_mul(basis, gf_mul(sj.x, gf_inv(sj.x ^ si.x)));
        }
        for (b, out) in secret.iter_mut().enumerate() {
            *out ^= gf_mul(si.y[b], basis);
        }
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn gf_arithmetic_sanity() {
        // AES field: 0x53 * 0xCA = 0x01 (known inverse pair).
        assert_eq!(gf_mul(0x53, 0xCA), 0x01);
        assert_eq!(gf_inv(0x53), 0xCA);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inv({a})");
        }
    }

    #[test]
    fn split_and_combine_threshold() {
        let secret = b"session key 0123";
        let shares = split(secret, 3, 5, &mut rng()).unwrap();
        assert_eq!(shares.len(), 5);
        // Any 3 shares reconstruct.
        for combo in [[0, 1, 2], [0, 3, 4], [1, 2, 4]] {
            let subset: Vec<Share> = combo.iter().map(|&i| shares[i].clone()).collect();
            assert_eq!(combine(&subset).unwrap(), secret);
        }
        // All 5 also reconstruct.
        assert_eq!(combine(&shares).unwrap(), secret);
    }

    #[test]
    fn below_threshold_reveals_nothing() {
        let secret = b"top secret";
        let shares = split(secret, 3, 5, &mut rng()).unwrap();
        let two: Vec<Share> = shares[..2].to_vec();
        let guess = combine(&two).unwrap();
        assert_ne!(guess, secret, "2 < k shares must not reconstruct");
    }

    #[test]
    fn k_equals_one_is_replication() {
        let shares = split(b"x", 1, 3, &mut rng()).unwrap();
        for s in &shares {
            assert_eq!(combine(std::slice::from_ref(s)).unwrap(), b"x");
        }
    }

    #[test]
    fn k_equals_n_needs_all() {
        let secret = b"all or nothing";
        let shares = split(secret, 4, 4, &mut rng()).unwrap();
        assert_eq!(combine(&shares).unwrap(), secret);
        assert_ne!(combine(&shares[..3]).unwrap(), secret);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut r = rng();
        assert!(split(b"s", 0, 3, &mut r).is_err());
        assert!(split(b"s", 4, 3, &mut r).is_err());
        assert!(combine(&[]).is_err());
        let shares = split(b"s", 2, 3, &mut r).unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert!(combine(&dup).is_err());
    }

    #[test]
    fn empty_secret_round_trips() {
        let shares = split(b"", 2, 3, &mut rng()).unwrap();
        assert_eq!(combine(&shares[..2]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupted_share_corrupts_output() {
        let secret = b"integrity matters";
        let mut shares = split(secret, 2, 3, &mut rng()).unwrap();
        shares[0].y[0] ^= 0xFF;
        assert_ne!(combine(&shares[..2]).unwrap(), secret);
    }
}
