//! AES-128-GCM authenticated encryption (NIST SP 800-38D).
//!
//! MACsec (IEEE 802.1AE) mandates AES-GCM; the CANsec draft reuses the same
//! AEAD construction. [`AesGcm`] is therefore the workhorse of
//! `autosec-secproto`.

use crate::aes::Aes128;
use crate::ctr::incr_block;
use crate::util::ct_eq;
use crate::CryptoError;

/// Multiplies two elements of GF(2^128) per the GCM specification
/// (bit 0 = most significant, polynomial `x^128 + x^7 + x^2 + x + 1`).
fn gf128_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe100_0000_0000_0000_0000_0000_0000_0000;
    let mut z: u128 = 0;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// GHASH universal hash over a sequence of 16-byte blocks.
#[derive(Debug, Clone)]
struct Ghash {
    h: u128,
    y: u128,
}

impl Ghash {
    fn new(h: [u8; 16]) -> Self {
        Self {
            h: u128::from_be_bytes(h),
            y: 0,
        }
    }

    /// Absorbs `data`, zero-padding the final partial block.
    fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.y = gf128_mul(self.y ^ u128::from_be_bytes(block), self.h);
        }
    }

    fn update_lengths(&mut self, aad_bits: u64, ct_bits: u64) {
        let block = ((aad_bits as u128) << 64) | ct_bits as u128;
        self.y = gf128_mul(self.y ^ block, self.h);
    }

    fn finalize(self) -> [u8; 16] {
        self.y.to_be_bytes()
    }
}

/// AES-128-GCM with 96-bit nonces and a configurable tag length.
///
/// # Example
///
/// ```
/// use autosec_crypto::AesGcm;
/// let aead = AesGcm::new(&[7u8; 16]);
/// let sealed = aead.seal(&[0u8; 12], b"aad", b"plaintext");
/// assert_eq!(aead.open(&[0u8; 12], b"aad", &sealed).unwrap(), b"plaintext");
/// assert!(aead.open(&[0u8; 12], b"wrong aad", &sealed).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    cipher: Aes128,
    h: [u8; 16],
}

/// Default (full) tag length in bytes.
pub const TAG_LEN: usize = 16;

impl AesGcm {
    /// Creates a GCM context from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let h = cipher.encrypt_block(&[0u8; 16]);
        Self { cipher, h }
    }

    /// J0: initial counter block for a 96-bit IV.
    fn j0(&self, nonce: &[u8; 12]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    fn gctr(&self, icb: &[u8; 16], data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut counter = *icb;
        for chunk in data.chunks(16) {
            let ks = self.cipher.encrypt_block(&counter);
            for (i, b) in chunk.iter().enumerate() {
                out.push(b ^ ks[i]);
            }
            incr_block(&mut counter);
        }
        out
    }

    fn tag(&self, j0: &[u8; 16], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let mut gh = Ghash::new(self.h);
        gh.update_padded(aad);
        gh.update_padded(ct);
        gh.update_lengths(aad.len() as u64 * 8, ct.len() as u64 * 8);
        let s = gh.finalize();
        let ek_j0 = self.cipher.encrypt_block(j0);
        let mut tag = [0u8; 16];
        for i in 0..16 {
            tag[i] = s[i] ^ ek_j0[i];
        }
        tag
    }

    /// Encrypts `plaintext` bound to `aad`; returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        self.seal_with_tag_len(nonce, aad, plaintext, TAG_LEN)
            .expect("full tag length is always valid")
    }

    /// Like [`AesGcm::seal`] with a truncated tag of `tag_len` bytes
    /// (4..=16, even), as allowed by SP 800-38D for constrained links.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] for unsupported tag
    /// lengths.
    pub fn seal_with_tag_len(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        plaintext: &[u8],
        tag_len: usize,
    ) -> Result<Vec<u8>, CryptoError> {
        if !(4..=16).contains(&tag_len) {
            return Err(CryptoError::InvalidParameter("gcm tag length"));
        }
        let j0 = self.j0(nonce);
        let mut icb = j0;
        incr_block(&mut icb);
        let mut ct = self.gctr(&icb, plaintext);
        let tag = self.tag(&j0, aad, &ct);
        ct.extend_from_slice(&tag[..tag_len]);
        Ok(ct)
    }

    /// Decrypts and verifies `sealed` (= ciphertext || 16-byte tag).
    ///
    /// # Errors
    ///
    /// [`CryptoError::TruncatedInput`] if `sealed` is shorter than the tag;
    /// [`CryptoError::VerifyFailed`] if authentication fails.
    pub fn open(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        self.open_with_tag_len(nonce, aad, sealed, TAG_LEN)
    }

    /// Opens a message sealed with a truncated tag.
    ///
    /// # Errors
    ///
    /// As [`AesGcm::open`], plus [`CryptoError::InvalidParameter`] for bad
    /// tag lengths.
    pub fn open_with_tag_len(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
        tag_len: usize,
    ) -> Result<Vec<u8>, CryptoError> {
        if !(4..=16).contains(&tag_len) {
            return Err(CryptoError::InvalidParameter("gcm tag length"));
        }
        if sealed.len() < tag_len {
            return Err(CryptoError::TruncatedInput);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - tag_len);
        let j0 = self.j0(nonce);
        let expect = self.tag(&j0, aad, ct);
        if !ct_eq(&expect[..tag_len], tag) {
            return Err(CryptoError::VerifyFailed);
        }
        let mut icb = j0;
        incr_block(&mut icb);
        Ok(self.gctr(&icb, ct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    fn b<const N: usize>(hex: &str) -> [u8; N] {
        let v = from_hex(hex).unwrap();
        let mut out = [0u8; N];
        out.copy_from_slice(&v);
        out
    }

    /// NIST GCM spec test case 1: empty everything.
    #[test]
    fn nist_case_1() {
        let aead = AesGcm::new(&[0u8; 16]);
        let sealed = aead.seal(&[0u8; 12], b"", b"");
        assert_eq!(to_hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    /// NIST GCM spec test case 2: one zero block.
    #[test]
    fn nist_case_2() {
        let aead = AesGcm::new(&[0u8; 16]);
        let sealed = aead.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(
            to_hex(&sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    /// NIST GCM spec test case 3: 4 blocks, no AAD.
    #[test]
    fn nist_case_3() {
        let aead = AesGcm::new(&b::<16>("feffe9928665731c6d6a8f9467308308"));
        let nonce = b::<12>("cafebabefacedbaddecaf888");
        let pt = from_hex(concat!(
            "d9313225f88406e5a55909c5aff5269a",
            "86a7a9531534f7da2e4c303d8a318a72",
            "1c3c0c95956809532fcf0e2449a6b525",
            "b16aedf5aa0de657ba637b391aafd255"
        ))
        .unwrap();
        let sealed = aead.seal(&nonce, b"", &pt);
        assert_eq!(
            to_hex(&sealed),
            concat!(
                "42831ec2217774244b7221b784d0d49c",
                "e3aa212f2c02a4e035c17e2329aca12e",
                "21d514b25466931c7d8f6a5aac84aa05",
                "1ba30b396a0aac973d58e091473f5985",
                "4d5c2af327cd64a62cf35abd2ba6fab4"
            )
        );
    }

    /// NIST GCM spec test case 4: truncated plaintext + AAD.
    #[test]
    fn nist_case_4() {
        let aead = AesGcm::new(&b::<16>("feffe9928665731c6d6a8f9467308308"));
        let nonce = b::<12>("cafebabefacedbaddecaf888");
        let pt = from_hex(concat!(
            "d9313225f88406e5a55909c5aff5269a",
            "86a7a9531534f7da2e4c303d8a318a72",
            "1c3c0c95956809532fcf0e2449a6b525",
            "b16aedf5aa0de657ba637b39"
        ))
        .unwrap();
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2").unwrap();
        let sealed = aead.seal(&nonce, &aad, &pt);
        assert_eq!(
            to_hex(&sealed),
            concat!(
                "42831ec2217774244b7221b784d0d49c",
                "e3aa212f2c02a4e035c17e2329aca12e",
                "21d514b25466931c7d8f6a5aac84aa05",
                "1ba30b396a0aac973d58e091",
                "5bc94fbc3221a5db94fae95ae7121a47"
            )
        );
    }

    #[test]
    fn round_trip_and_tamper_detection() {
        let aead = AesGcm::new(&[1u8; 16]);
        let nonce = [2u8; 12];
        let sealed = aead.seal(&nonce, b"hdr", b"payload bytes");
        assert_eq!(
            aead.open(&nonce, b"hdr", &sealed).unwrap(),
            b"payload bytes"
        );

        let mut tampered = sealed.clone();
        tampered[0] ^= 1;
        assert_eq!(
            aead.open(&nonce, b"hdr", &tampered),
            Err(CryptoError::VerifyFailed)
        );
        assert_eq!(
            aead.open(&nonce, b"other", &sealed),
            Err(CryptoError::VerifyFailed)
        );
        let mut other_nonce = nonce;
        other_nonce[0] ^= 1;
        assert_eq!(
            aead.open(&other_nonce, b"hdr", &sealed),
            Err(CryptoError::VerifyFailed)
        );
    }

    #[test]
    fn truncated_tags_work_and_reject() {
        let aead = AesGcm::new(&[3u8; 16]);
        let nonce = [4u8; 12];
        let sealed = aead.seal_with_tag_len(&nonce, b"", b"msg", 8).unwrap();
        assert_eq!(sealed.len(), 3 + 8);
        assert_eq!(
            aead.open_with_tag_len(&nonce, b"", &sealed, 8).unwrap(),
            b"msg"
        );
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert_eq!(
            aead.open_with_tag_len(&nonce, b"", &bad, 8),
            Err(CryptoError::VerifyFailed)
        );
    }

    #[test]
    fn invalid_tag_lengths_rejected() {
        let aead = AesGcm::new(&[0u8; 16]);
        assert!(aead.seal_with_tag_len(&[0u8; 12], b"", b"", 3).is_err());
        assert!(aead.seal_with_tag_len(&[0u8; 12], b"", b"", 17).is_err());
        assert_eq!(
            aead.open(&[0u8; 12], b"", &[0u8; 5]),
            Err(CryptoError::TruncatedInput)
        );
    }

    #[test]
    fn gf128_mul_identity_and_commutativity() {
        // Multiplying by the GCM "1" element (MSB-first bit 0 set).
        let one: u128 = 1 << 127;
        for v in [0x1234_5678_9abc_def0_u128, u128::MAX, 1] {
            assert_eq!(gf128_mul(v, one), v);
            assert_eq!(gf128_mul(one, v), v);
        }
        let a = 0xdead_beef_cafe_babe_u128;
        let bb = 0x0123_4567_89ab_cdef_u128;
        assert_eq!(gf128_mul(a, bb), gf128_mul(bb, a));
    }
}
