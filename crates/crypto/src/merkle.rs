//! Binary Merkle trees with membership proofs.
//!
//! Used by the Merkle signature scheme ([`crate::mss`]) and by the SSI
//! layer's verifiable data registry to commit to document sets.
//!
//! Leaf and interior hashes are domain-separated (`0x00` / `0x01`
//! prefixes) to prevent second-preimage tricks that reinterpret interior
//! nodes as leaves.

use crate::sha256::{Digest, Sha256};

/// Hashes a leaf value.
pub fn leaf_hash(data: &[u8]) -> Digest {
    Sha256::digest_parts(&[&[0x00], data])
}

/// Hashes two child digests into their parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    Sha256::digest_parts(&[&[0x01], left, right])
}

/// A complete binary Merkle tree over a list of leaf values.
///
/// A node left without a partner at any level is promoted unchanged to
/// the next level (no duplicate-leaf pairing, which is a known
/// second-preimage footgun).
///
/// # Example
///
/// ```
/// use autosec_crypto::MerkleTree;
/// let tree = MerkleTree::from_leaves(&[b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&tree.root(), b"b"));
/// assert!(!proof.verify(&tree.root(), b"x"));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels\[0\] = leaf hashes, last level = [root].
    levels: Vec<Vec<Digest>>,
}

/// Which side a sibling sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Sibling is the left child; our node is right.
    Left,
    /// Sibling is the right child; our node is left.
    Right,
}

/// A membership proof: sibling hashes from leaf to root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    leaf_index: usize,
    /// Sibling digest at each level, bottom-up; `None` when the node was
    /// promoted without a sibling.
    siblings: Vec<Option<(Side, Digest)>>,
}

impl MerkleTree {
    /// Builds a tree over raw leaf values.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn from_leaves(leaves: &[&[u8]]) -> Self {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        let hashed: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l)).collect();
        Self::from_leaf_hashes(hashed)
    }

    /// Builds a tree over pre-hashed leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_hashes` is empty.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Digest>) -> Self {
        assert!(
            !leaf_hashes.is_empty(),
            "merkle tree needs at least one leaf"
        );
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(node_hash(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0]); // promote
                }
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Generates a membership proof for leaf `index`; `None` if out of
    /// range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sib = if idx.is_multiple_of(2) {
                level.get(idx + 1).map(|d| (Side::Right, *d))
            } else {
                Some((Side::Left, level[idx - 1]))
            };
            siblings.push(sib);
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            siblings,
        })
    }
}

impl MerkleProof {
    /// The leaf index this proof speaks for.
    pub fn leaf_index(&self) -> usize {
        self.leaf_index
    }

    /// Proof depth (tree height).
    pub fn depth(&self) -> usize {
        self.siblings.len()
    }

    /// Verifies that `leaf_value` is a member under `root`.
    pub fn verify(&self, root: &Digest, leaf_value: &[u8]) -> bool {
        self.verify_leaf_hash(root, &leaf_hash(leaf_value))
    }

    /// Verifies from a pre-computed leaf hash.
    pub fn verify_leaf_hash(&self, root: &Digest, leaf: &Digest) -> bool {
        let mut acc = *leaf;
        for sib in &self.siblings {
            acc = match sib {
                Some((Side::Left, d)) => node_hash(d, &acc),
                Some((Side::Right, d)) => node_hash(&acc, d),
                None => acc, // promoted node
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves(&[b"only".as_ref()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        let p = tree.prove(0).unwrap();
        assert!(p.verify(&tree.root(), b"only"));
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33] {
            let data = leaves(n);
            let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
            let tree = MerkleTree::from_leaves(&refs);
            for (i, leaf) in data.iter().enumerate() {
                let p = tree.prove(i).unwrap();
                assert!(p.verify(&tree.root(), leaf), "n={n} i={i}");
                assert_eq!(p.leaf_index(), i);
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let data = leaves(8);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let tree = MerkleTree::from_leaves(&refs);
        let p = tree.prove(3).unwrap();
        assert!(!p.verify(&tree.root(), b"leaf-4"));
    }

    #[test]
    fn wrong_root_fails() {
        let data = leaves(4);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let tree = MerkleTree::from_leaves(&refs);
        let p = tree.prove(0).unwrap();
        let mut bad_root = tree.root();
        bad_root[0] ^= 1;
        assert!(!p.verify(&bad_root, b"leaf-0"));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::from_leaves(&[b"a".as_ref(), b"b".as_ref()]);
        assert!(tree.prove(2).is_none());
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf containing what looks like two digests must not equal the
        // interior hash of those digests.
        let a = leaf_hash(b"x");
        let b = leaf_hash(b"y");
        let mut cat = Vec::new();
        cat.extend_from_slice(&a);
        cat.extend_from_slice(&b);
        assert_ne!(leaf_hash(&cat), node_hash(&a, &b));
    }

    #[test]
    fn order_matters() {
        let t1 = MerkleTree::from_leaves(&[b"a".as_ref(), b"b".as_ref()]);
        let t2 = MerkleTree::from_leaves(&[b"b".as_ref(), b"a".as_ref()]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn depth_grows_logarithmically() {
        let data = leaves(16);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let tree = MerkleTree::from_leaves(&refs);
        assert_eq!(tree.prove(0).unwrap().depth(), 4);
    }
}
