//! AES-128 counter mode (NIST SP 800-38A §6.5).
//!
//! The counter block is treated as a 128-bit big-endian integer that
//! increments per block, exactly as in the SP 800-38A examples.

use crate::aes::Aes128;

/// AES-CTR stream cipher.
///
/// Encryption and decryption are the same operation.
///
/// # Example
///
/// ```
/// use autosec_crypto::AesCtr;
/// let ctr = AesCtr::new(&[0u8; 16]);
/// let iv = [9u8; 16];
/// let ct = ctr.process(&iv, b"attack at dawn");
/// assert_eq!(ctr.process(&iv, &ct), b"attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct AesCtr {
    cipher: Aes128,
}

/// Increments a 128-bit big-endian counter block in place.
pub(crate) fn incr_block(block: &mut [u8; 16]) {
    for i in (0..16).rev() {
        block[i] = block[i].wrapping_add(1);
        if block[i] != 0 {
            break;
        }
    }
}

impl AesCtr {
    /// Creates a CTR context from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            cipher: Aes128::new(key),
        }
    }

    /// Encrypts or decrypts `data` with the given initial counter block.
    pub fn process(&self, initial_counter: &[u8; 16], data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut counter = *initial_counter;
        for chunk in data.chunks(16) {
            let keystream = self.cipher.encrypt_block(&counter);
            for (i, b) in chunk.iter().enumerate() {
                out.push(b ^ keystream[i]);
            }
            incr_block(&mut counter);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    fn b16(hex: &str) -> [u8; 16] {
        let v = from_hex(hex).unwrap();
        let mut b = [0u8; 16];
        b.copy_from_slice(&v);
        b
    }

    /// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt.
    #[test]
    fn sp800_38a_ctr_encrypt() {
        let ctr = AesCtr::new(&b16("2b7e151628aed2a6abf7158809cf4f3c"));
        let iv = b16("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
        let pt = from_hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ))
        .unwrap();
        let ct = ctr.process(&iv, &pt);
        assert_eq!(
            to_hex(&ct),
            concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee"
            )
        );
    }

    #[test]
    fn decrypt_is_encrypt() {
        let ctr = AesCtr::new(&[3u8; 16]);
        let iv = [0u8; 16];
        let msg = b"partial last block here";
        let ct = ctr.process(&iv, msg);
        assert_eq!(ctr.process(&iv, &ct), msg);
    }

    #[test]
    fn partial_block_lengths() {
        let ctr = AesCtr::new(&[1u8; 16]);
        let iv = [2u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33] {
            let msg = vec![0xab; len];
            let ct = ctr.process(&iv, &msg);
            assert_eq!(ct.len(), len);
            assert_eq!(ctr.process(&iv, &ct), msg, "len {len}");
        }
    }

    #[test]
    fn counter_wraps_carry() {
        let mut c = [0xffu8; 16];
        incr_block(&mut c);
        assert_eq!(c, [0u8; 16]);
        let mut c2 = [0u8; 16];
        c2[15] = 0xff;
        incr_block(&mut c2);
        assert_eq!(c2[15], 0);
        assert_eq!(c2[14], 1);
    }

    #[test]
    fn distinct_ivs_produce_distinct_streams() {
        let ctr = AesCtr::new(&[5u8; 16]);
        let a = ctr.process(&[0u8; 16], &[0u8; 32]);
        let mut iv2 = [0u8; 16];
        iv2[15] = 9;
        let b = ctr.process(&iv2, &[0u8; 32]);
        assert_ne!(a, b);
    }
}
