//! Merkle signature scheme (MSS): a stateful many-time signature built
//! from `2^h` WOTS one-time keys under a Merkle root (XMSS-style, without
//! the bitmask optimizations).
//!
//! This is the signature scheme the SSI layer (`autosec-ssi`) issues
//! credentials with. The public key is a single 32-byte root; each
//! signature carries the WOTS signature, the leaf's WOTS public key and
//! the Merkle authentication path.
//!
//! **Statefulness** is the classic operational hazard of hash-based
//! signatures: reusing a leaf breaks security. [`MssKeyPair::sign`]
//! enforces monotonically advancing leaves and errs with
//! [`CryptoError::KeyExhausted`] when the tree is spent.

use rand::RngCore;

use crate::merkle::{MerkleProof, MerkleTree};
use crate::ots::{WotsKeyPair, WotsPublicKey, WotsSignature};
use crate::sha256::{Digest, Sha256};
use crate::CryptoError;

/// Public half of an MSS key: the Merkle root over the WOTS leaf keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MssPublicKey {
    root: Digest,
}

impl MssPublicKey {
    /// The raw 32-byte root.
    pub fn as_bytes(&self) -> &Digest {
        &self.root
    }

    /// Reconstructs a public key from raw bytes (e.g. out of a DID
    /// document).
    pub fn from_bytes(root: Digest) -> Self {
        Self { root }
    }

    /// Verifies an MSS signature over `message`.
    pub fn verify(&self, message: &[u8], sig: &MssSignature) -> bool {
        // 1. WOTS signature must verify under the carried leaf key.
        if !sig.leaf_pk.verify(message, &sig.wots) {
            return false;
        }
        // 2. The leaf key must be committed under our root.
        let leaf_digest = sig.leaf_pk.digest();
        sig.auth_path
            .verify_leaf_hash(&self.root, &leaf_hash_of(&leaf_digest))
    }
}

fn leaf_hash_of(wots_pk_digest: &Digest) -> Digest {
    crate::merkle::leaf_hash(wots_pk_digest)
}

/// An MSS signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MssSignature {
    /// Index of the leaf used.
    pub leaf_index: usize,
    wots: WotsSignature,
    leaf_pk: WotsPublicKey,
    auth_path: MerkleProof,
}

impl MssSignature {
    /// Approximate wire size in bytes (WOTS sig + leaf pk + auth path).
    pub fn byte_len(&self) -> usize {
        self.wots.byte_len() + crate::ots::WOTS_CHAINS * 32 + self.auth_path.depth() * 33 + 8
    }
}

/// A stateful MSS key pair with `2^height` one-time leaves.
///
/// # Example
///
/// ```
/// use autosec_crypto::MssKeyPair;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let mut kp = MssKeyPair::generate(&mut rng, 3); // 8 signatures
/// let pk = kp.public_key();
/// let sig = kp.sign(b"credential").unwrap();
/// assert!(pk.verify(b"credential", &sig));
/// ```
#[derive(Clone)]
pub struct MssKeyPair {
    master_seed: Digest,
    tree: MerkleTree,
    next_leaf: usize,
    capacity: usize,
}

impl std::fmt::Debug for MssKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MssKeyPair")
            .field("capacity", &self.capacity)
            .field("next_leaf", &self.next_leaf)
            .finish_non_exhaustive()
    }
}

impl MssKeyPair {
    /// Generates a key pair with `2^height` leaves.
    ///
    /// Leaf WOTS keys are derived from a master seed, so key generation
    /// costs `2^height` WOTS expansions but storage stays O(tree).
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (65k signatures is plenty for simulation;
    /// larger trees take noticeable time to build).
    pub fn generate(rng: &mut dyn RngCore, height: u8) -> Self {
        assert!(height <= 16, "MSS height {height} too large");
        let mut master_seed = [0u8; 32];
        rng.fill_bytes(&mut master_seed);
        Self::from_seed(master_seed, height)
    }

    /// Deterministic construction from a master seed.
    pub fn from_seed(master_seed: Digest, height: u8) -> Self {
        let capacity = 1usize << height;
        let leaf_hashes: Vec<Digest> = (0..capacity)
            .map(|i| {
                let kp = WotsKeyPair::from_seed(&Self::leaf_seed(&master_seed, i));
                leaf_hash_of(&kp.public_key().digest())
            })
            .collect();
        let tree = MerkleTree::from_leaf_hashes(leaf_hashes);
        Self {
            master_seed,
            tree,
            next_leaf: 0,
            capacity,
        }
    }

    fn leaf_seed(master: &Digest, index: usize) -> Digest {
        Sha256::digest_parts(&[&[0x04], master, &(index as u64).to_be_bytes()])
    }

    /// The public key (Merkle root).
    pub fn public_key(&self) -> MssPublicKey {
        MssPublicKey {
            root: self.tree.root(),
        }
    }

    /// Signatures remaining before exhaustion.
    pub fn remaining(&self) -> usize {
        self.capacity - self.next_leaf
    }

    /// Total signature capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Signs `message` with the next unused leaf.
    ///
    /// # Errors
    ///
    /// [`CryptoError::KeyExhausted`] once all `2^height` leaves are spent.
    pub fn sign(&mut self, message: &[u8]) -> Result<MssSignature, CryptoError> {
        if self.next_leaf >= self.capacity {
            return Err(CryptoError::KeyExhausted);
        }
        let index = self.next_leaf;
        self.next_leaf += 1;
        let mut leaf_kp = WotsKeyPair::from_seed(&Self::leaf_seed(&self.master_seed, index));
        let leaf_pk = leaf_kp.public_key().clone();
        let wots = leaf_kp.sign(message).expect("fresh leaf key");
        let auth_path = self.tree.prove(index).expect("leaf index within capacity");
        Ok(MssSignature {
            leaf_index: index,
            wots,
            leaf_pk,
            auth_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(height: u8) -> MssKeyPair {
        MssKeyPair::generate(&mut StdRng::seed_from_u64(11), height)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut kp = keypair(2);
        let pk = kp.public_key();
        let sig = kp.sign(b"doc").unwrap();
        assert!(pk.verify(b"doc", &sig));
        assert!(!pk.verify(b"doc2", &sig));
    }

    #[test]
    fn every_leaf_works_then_exhausts() {
        let mut kp = keypair(2);
        let pk = kp.public_key();
        assert_eq!(kp.capacity(), 4);
        for i in 0..4 {
            let msg = format!("msg {i}");
            let sig = kp.sign(msg.as_bytes()).unwrap();
            assert_eq!(sig.leaf_index, i);
            assert!(pk.verify(msg.as_bytes(), &sig));
        }
        assert_eq!(kp.remaining(), 0);
        assert_eq!(kp.sign(b"x").unwrap_err(), CryptoError::KeyExhausted);
    }

    #[test]
    fn cross_key_rejection() {
        let mut kp1 = MssKeyPair::generate(&mut StdRng::seed_from_u64(1), 2);
        let kp2 = MssKeyPair::generate(&mut StdRng::seed_from_u64(2), 2);
        let sig = kp1.sign(b"m").unwrap();
        assert!(!kp2.public_key().verify(b"m", &sig));
    }

    #[test]
    fn tampered_auth_path_rejected() {
        let mut kp = keypair(3);
        let pk = kp.public_key();
        let sig = kp.sign(b"m").unwrap();
        // Forge: present the signature against a different root.
        let other = MssPublicKey::from_bytes([0xab; 32]);
        assert!(!other.verify(b"m", &sig));
        assert!(pk.verify(b"m", &sig));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = MssKeyPair::from_seed([7u8; 32], 2);
        let b = MssKeyPair::from_seed([7u8; 32], 2);
        assert_eq!(a.public_key(), b.public_key());
    }

    #[test]
    fn signature_size_reported() {
        let mut kp = keypair(4);
        let sig = kp.sign(b"m").unwrap();
        // Two WOTS-key-sized components dominate: ~4.3 KB.
        assert!(
            sig.byte_len() > 4000 && sig.byte_len() < 5000,
            "{}",
            sig.byte_len()
        );
    }

    #[test]
    fn public_key_round_trips_through_bytes() {
        let kp = keypair(1);
        let pk = kp.public_key();
        assert_eq!(MssPublicKey::from_bytes(*pk.as_bytes()), pk);
    }
}
