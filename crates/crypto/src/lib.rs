//! # autosec-crypto
//!
//! From-scratch cryptographic substrate for the `autosec` workbench.
//!
//! Every protocol the paper discusses — SECOC, MACsec, CANsec (§III-A),
//! self-sovereign identity (§IV), telemetry key management (§V), signed
//! V2X collaboration messages (§VII) — needs real primitives with real
//! semantics (tag truncation, replay windows, forgery rejection), not
//! stubs. This crate provides them, each validated against the official
//! FIPS / NIST SP-800 / RFC test vectors in its module tests:
//!
//! - [`sha256`] — FIPS 180-4 SHA-256
//! - [`hmac`] — RFC 2104 / FIPS 198-1 HMAC-SHA256
//! - [`hkdf`] — RFC 5869 HKDF-SHA256
//! - [`aes`] — FIPS 197 AES-128 block cipher
//! - [`ctr`] — NIST SP 800-38A counter mode
//! - [`cmac`] — NIST SP 800-38B / RFC 4493 AES-CMAC
//! - [`gcm`] — NIST SP 800-38D AES-GCM AEAD
//! - [`merkle`] — binary Merkle trees with membership proofs
//! - [`ots`] — Lamport and Winternitz (WOTS) one-time signatures
//! - [`mss`] — Merkle many-time signature scheme (XMSS-style, stateful)
//! - [`shamir`] — Shamir secret sharing over GF(2^8) (SeeMQTT substrate)
//!
//! ## Scope note (see `DESIGN.md`)
//!
//! This is a **simulation-grade** implementation: correct and vector-
//! validated, but not hardened against timing side channels beyond the
//! constant-time comparisons in [`util`]. The paper's SSI layer uses
//! elliptic-curve signatures on real deployments; we substitute hash-based
//! signatures, which are implementable from scratch with confidence and
//! preserve every property the experiments rely on (unforgeability,
//! multiple trust anchors, offline verification).
//!
//! ## Example
//!
//! ```
//! use autosec_crypto::{Sha256, AesGcm};
//!
//! let digest = Sha256::digest(b"autonomous systems");
//! assert_eq!(digest.len(), 32);
//!
//! let key = [0u8; 16];
//! let aead = AesGcm::new(&key);
//! let nonce = [1u8; 12];
//! let sealed = aead.seal(&nonce, b"header", b"secret telemetry");
//! let opened = aead.open(&nonce, b"header", &sealed).unwrap();
//! assert_eq!(opened, b"secret telemetry");
//! ```

pub mod aes;
pub mod cmac;
pub mod ctr;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod merkle;
pub mod mss;
pub mod ots;
pub mod sha256;
pub mod shamir;
pub mod util;

pub use aes::Aes128;
pub use cmac::Cmac;
pub use ctr::AesCtr;
pub use gcm::AesGcm;
pub use hkdf::Hkdf;
pub use hmac::HmacSha256;
pub use merkle::{MerkleProof, MerkleTree};
pub use mss::{MssKeyPair, MssPublicKey, MssSignature};
pub use ots::{LamportKeyPair, WotsKeyPair, WotsPublicKey, WotsSignature};
pub use sha256::Sha256;

/// Errors produced by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoError {
    /// An authentication tag or signature failed to verify.
    VerifyFailed,
    /// Ciphertext too short to contain the authentication tag.
    TruncatedInput,
    /// A one-time key was asked to sign a second message, or a Merkle
    /// signature key ran out of leaves.
    KeyExhausted,
    /// Parameter outside the supported range (e.g. tag length).
    InvalidParameter(&'static str),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::VerifyFailed => write!(f, "authentication failed"),
            CryptoError::TruncatedInput => write!(f, "input shorter than authentication tag"),
            CryptoError::KeyExhausted => write!(f, "signing key exhausted"),
            CryptoError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}
