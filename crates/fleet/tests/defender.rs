//! The contracts the `--defender` modes ship with:
//!
//! 1. **Null-defender equivalence** — any mode with a zero budget is
//!    the null defender: canonical artifacts are byte-identical to
//!    `--defender off`, config echo included.
//! 2. **Shard invariance survives the defender** — the closed-loop
//!    policy reads only merged tick outputs and draws no RNG, so
//!    defender-enabled snapshots stay bit-identical at any `--shards`.
//! 3. **The modes actually differ** — static pre-hardening changes the
//!    run posture up front; the closed-loop defender spends its budget
//!    at runtime and records its actions in the artifact.

use autosec_fleet::{DefenderMode, FleetConfig, FleetEngine};

fn pressured_cfg() -> FleetConfig {
    FleetConfig {
        vehicles: 500,
        ticks: 40,
        seed: 42,
        snapshot_every: 10,
        posture: autosec_core::campaign::DefensePosture::none(),
        attack_rate: 8e-3,
        infection_beta: 0.6,
        calibration_trials: 4,
        ..FleetConfig::default()
    }
}

#[test]
fn zero_budget_defender_is_bit_identical_to_off() {
    // Property: for every mode, a zero budget produces the byte-exact
    // `--defender off` artifact — the config echo carries no defender
    // keys and the trajectory is untouched.
    let off = FleetEngine::new(pressured_cfg()).run();
    let baseline = off.canonical_json().to_string();
    for mode in [
        DefenderMode::Off,
        DefenderMode::Static,
        DefenderMode::ClosedLoop,
    ] {
        let mut cfg = pressured_cfg();
        cfg.defender = mode;
        cfg.defender_budget = 0.0;
        let run = FleetEngine::new(cfg).run();
        assert!(run.defender.is_none(), "{mode:?} with zero budget is null");
        assert_eq!(
            run.canonical_json().to_string(),
            baseline,
            "zero-budget {mode:?} must replay the defenderless run bit for bit"
        );
    }
}

#[test]
fn closed_loop_runs_are_shard_invariant() {
    let mut one = pressured_cfg();
    one.defender = DefenderMode::ClosedLoop;
    one.defender_budget = 4.0;
    one.shards = 1;
    let mut four = one.clone();
    four.shards = 4;

    let a = FleetEngine::new(one).run();
    let b = FleetEngine::new(four).run();
    assert_eq!(
        a.canonical_json().to_string(),
        b.canonical_json().to_string(),
        "the defender must not break shard invariance"
    );
    let d = a.defender.as_ref().expect("active defender is reported");
    let dj = d.to_json();
    assert!(
        dj["actions"].as_u64().unwrap_or(0) > 0,
        "under this pressure the closed loop acts: {dj}"
    );
}

#[test]
fn static_defender_hardens_the_posture_up_front() {
    let mut cfg = pressured_cfg();
    cfg.defender = DefenderMode::Static;
    cfg.defender_budget = 2.0;
    let run = FleetEngine::new(cfg).run();
    // The pre-spend flips posture bits before calibration, so the
    // config echo shows the hardened posture and the defender keys.
    let j = run.canonical_json();
    assert_eq!(j["config"]["posture"].as_str(), Some("data+collaboration"));
    assert_eq!(j["config"]["defender"].as_str(), Some("static"));
    assert_eq!(j["defender"]["mode"].as_str(), Some("static"));
    assert_eq!(j["defender"]["spent"].as_f64(), Some(2.0));
}

#[test]
fn closed_loop_beats_no_defense_under_epidemic_pressure() {
    // Not a statistical claim — one seeded trajectory, pinned: with
    // layers to harden and monitoring to buy, the closed loop ends the
    // run with no more compromised vehicles than the undefended fleet.
    let off = FleetEngine::new(pressured_cfg()).run();
    let mut cfg = pressured_cfg();
    cfg.defender = DefenderMode::ClosedLoop;
    cfg.defender_budget = 6.0;
    let defended = FleetEngine::new(cfg).run();
    assert!(
        defended.final_snapshot().census.compromised <= off.final_snapshot().census.compromised,
        "closed loop {} !<= undefended {}",
        defended.final_snapshot().census.compromised,
        off.final_snapshot().census.compromised
    );
}
