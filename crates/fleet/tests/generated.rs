//! Invariance contracts of the generated-campaign mode:
//!
//! 1. **Shard invariance** — a `generated:N` run is bit-identical at
//!    any `--shards` count: campaign selection and edge walks draw
//!    only from the per-vehicle substream.
//! 2. **Fidelity invariance** — the campaign walker resolves edges
//!    straight off the calibrated graph, bypassing the fidelity
//!    engine entirely, so vehicle-state snapshots are bit-identical
//!    across live / calibrated / mixed runs (only the config's
//!    fidelity label differs, hence per-snapshot comparison).
//! 3. **Defender compatibility** — the walker reads edge
//!    probabilities through the posture in force, so a closed-loop
//!    defender composes with generated campaigns and stays
//!    shard-invariant.

use autosec_adversary::{calibrated_graph, AttackGraph, CalibrationConfig};
use autosec_fleet::{CampaignMode, DefenderMode, Fidelity, FleetConfig, FleetEngine};
use autosec_sim::SimRng;

fn base_cfg() -> FleetConfig {
    FleetConfig {
        vehicles: 400,
        ticks: 30,
        seed: 42,
        snapshot_every: 10,
        attack_rate: 8e-3,
        calibration_trials: 4,
        campaign: CampaignMode::Generated { count: 8 },
        ..FleetConfig::default()
    }
}

/// One shared graph so the tests don't recalibrate 20 edges per run.
fn shared_graph(cfg: &FleetConfig) -> AttackGraph {
    let calib = CalibrationConfig::new(cfg.calibration_trials, 2);
    calibrated_graph(&calib, &SimRng::seed(cfg.seed).fork("fleet/calibration"))
}

#[test]
fn generated_campaigns_are_shard_invariant() {
    let cfg = base_cfg();
    let graph = shared_graph(&cfg);
    let run = |shards: usize| {
        let mut c = cfg.clone();
        c.shards = shards;
        FleetEngine::with_graph(c, graph.clone()).run()
    };
    let a = run(1);
    let b = run(2);
    let c = run(4);
    assert_eq!(
        a.canonical_json().to_string(),
        b.canonical_json().to_string(),
        "generated mode diverged between 1 and 2 shards"
    );
    assert_eq!(
        a.canonical_json().to_string(),
        c.canonical_json().to_string(),
        "generated mode diverged between 1 and 4 shards"
    );
    assert!(a.totals().attacks_attempted > 0, "campaign walkers fired");
}

#[test]
fn generated_campaigns_ignore_the_fidelity_knob() {
    // The walker replays graph edges directly; the two-tier scenario
    // engine never sees a generated attack. Snapshots must therefore
    // match bit for bit across all three fidelity modes. (The config
    // echoes its fidelity label, so whole-artifact comparison would
    // trip on that one metadata field — compare state snapshots.)
    let cfg = base_cfg();
    let graph = shared_graph(&cfg);
    let run = |fidelity: Fidelity| {
        let mut c = cfg.clone();
        c.fidelity = fidelity;
        FleetEngine::with_graph(c, graph.clone()).run()
    };
    let calibrated = run(Fidelity::Calibrated);
    let live = run(Fidelity::Live);
    let mixed = run(Fidelity::Mixed { every: 3 });
    for report in [&live, &mixed] {
        assert_eq!(report.snapshots.len(), calibrated.snapshots.len());
        for (a, b) in report.snapshots.iter().zip(&calibrated.snapshots) {
            assert_eq!(
                a.to_json().to_string(),
                b.to_json().to_string(),
                "snapshot at tick {} diverged across fidelity modes",
                a.tick
            );
        }
        assert_eq!(report.availability, calibrated.availability);
    }
    // No generated attack reaches the mixed-mode shadow prober.
    assert_eq!(mixed.drift.probes, 0, "walker bypasses the drift channel");
}

#[test]
fn generated_campaigns_compose_with_the_closed_loop_defender() {
    let mut cfg = base_cfg();
    cfg.defender = DefenderMode::ClosedLoop;
    cfg.defender_budget = 3.0;
    let graph = shared_graph(&cfg);
    let run = |shards: usize| {
        let mut c = cfg.clone();
        c.shards = shards;
        FleetEngine::with_graph(c, graph.clone()).run()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(
        a.canonical_json().to_string(),
        b.canonical_json().to_string(),
        "generated + closed-loop defender diverged across shard counts"
    );
    assert!(a.totals().attacks_attempted > 0);
}

#[test]
fn pool_size_changes_the_trajectory() {
    // Different pools sample different campaigns: the knob is live.
    let cfg = base_cfg();
    let graph = shared_graph(&cfg);
    let run = |count: usize| {
        let mut c = cfg.clone();
        c.campaign = CampaignMode::Generated { count };
        FleetEngine::with_graph(c, graph.clone()).run()
    };
    let small = run(2);
    let large = run(16);
    assert_ne!(
        small.canonical_json().to_string(),
        large.canonical_json().to_string()
    );
}

#[test]
#[should_panic(expected = "empty pool")]
fn empty_graph_cannot_seed_a_pool() {
    let mut cfg = base_cfg();
    cfg.campaign = CampaignMode::Generated { count: 4 };
    let _ = FleetEngine::with_graph(cfg, AttackGraph::new());
}
