//! The two contracts the fleet service ships with:
//!
//! 1. **Shard invariance** — canonical snapshots are bit-identical at
//!    any `--shards` count for a fixed seed (the scaled-down version
//!    of the 100k-vehicle acceptance run CI repeats).
//! 2. **Panic quarantine** — a vehicle whose state machine panics is
//!    lost, not its shard: the run completes, the other vehicles'
//!    trajectories are untouched, and the loss shows up in the census.

use autosec_fleet::{FleetConfig, FleetEngine, VehicleStatus};
use autosec_runner::silence_panics;

fn base_cfg() -> FleetConfig {
    FleetConfig {
        vehicles: 600,
        ticks: 40,
        seed: 42,
        snapshot_every: 10,
        attack_rate: 5e-3,
        calibration_trials: 4,
        ..FleetConfig::default()
    }
}

#[test]
fn canonical_snapshots_are_bit_identical_across_shard_counts() {
    let mut one = base_cfg();
    one.shards = 1;
    let mut four = base_cfg();
    four.shards = 4;

    let a = FleetEngine::new(one).run();
    let b = FleetEngine::new(four).run();

    // The canonical artifact body agrees byte for byte...
    assert_eq!(
        a.canonical_json().to_string(),
        b.canonical_json().to_string(),
        "shards must never change results"
    );
    // ...and so does every individual snapshot along the way.
    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for (sa, sb) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(
            sa.to_json().to_string(),
            sb.to_json().to_string(),
            "snapshot at tick {} diverged",
            sa.tick
        );
    }
    // The run did real work: attacks landed and the pipeline responded.
    let t = a.totals();
    assert!(t.attacks_attempted > 0, "attack pressure was live");
    assert!(t.alerts > 0, "the IDS pipeline saw events");
}

#[test]
fn odd_shard_counts_agree_too() {
    // div_ceil chunking leaves a short tail chunk at shards=7; the
    // merge discipline must still reconstruct exact vehicle order.
    let mut three = base_cfg();
    three.shards = 3;
    let mut seven = base_cfg();
    seven.shards = 7;
    let a = FleetEngine::new(three).run();
    let b = FleetEngine::new(seven).run();
    assert_eq!(
        a.canonical_json().to_string(),
        b.canonical_json().to_string()
    );
}

#[test]
fn panicking_vehicles_are_quarantined_without_poisoning_their_shard() {
    let _quiet = silence_panics();
    let mut cfg = base_cfg();
    cfg.shards = 4;
    cfg.chaos_lost_rate = 2e-3;
    let report = FleetEngine::new(cfg.clone()).run();

    let t = report.totals();
    assert!(t.lost > 0, "chaos rate should have claimed vehicles");
    assert!(
        (t.lost as usize) < cfg.vehicles,
        "quarantine is per vehicle, not per shard"
    );
    assert_eq!(report.final_snapshot().census.lost, t.lost);
    // The survivors kept emitting: more frames than a single tick's
    // worth, fewer than a loss-free run.
    assert!(t.telemetry_frames > cfg.vehicles as u64);
    assert!(t.telemetry_frames < cfg.vehicles as u64 * cfg.ticks);

    // Chaos is deterministic too: same seed, same casualties — even
    // at a different shard count.
    let mut again = cfg.clone();
    again.shards = 2;
    let replay = FleetEngine::new(again).run();
    assert_eq!(
        report.canonical_json().to_string(),
        replay.canonical_json().to_string(),
        "quarantine must not break shard invariance"
    );
}

#[test]
fn quarantined_vehicle_streams_stay_retired() {
    // Direct check at the shard layer: after a panic the vehicle is
    // Lost and subsequent ticks skip it entirely.
    use autosec_fleet::{run_tick_sharded, FleetState};
    use autosec_sim::SimRng;

    let _quiet = silence_panics();
    let mut fleet = FleetState::new(12, &SimRng::seed(9).fork("fleet/vehicles"));
    run_tick_sharded(&mut fleet, 3, 1, |cols, i, _| {
        if cols.id(i) % 5 == 0 {
            panic!("corrupted");
        }
    });
    let lost: Vec<u32> = fleet
        .status
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == VehicleStatus::Lost)
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(lost, vec![0, 5, 10]);
    let outs = run_tick_sharded(&mut fleet, 3, 2, |_, _, out| {
        out.counters.telemetry_frames += 1;
    });
    let frames: u64 = outs.iter().map(|o| o.counters.telemetry_frames).sum();
    assert_eq!(frames, 9, "the three lost vehicles never step again");
}
