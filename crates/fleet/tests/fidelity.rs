//! The fidelity-knob contracts of the two-tier scenario engine:
//!
//! 1. **Mixed-probe invariance** — `mixed:K` only *shadows* attack
//!    resolutions; vehicle state is table-driven, so snapshots are
//!    bit-identical to pure calibrated mode for every probe period.
//! 2. **Shard invariance per mode** — live, calibrated and mixed runs
//!    are each bit-identical at any `--shards` count (drift statistics
//!    included: probes trigger on `(id + tick)` arithmetic and draw
//!    from a dedicated forked substream).

use autosec_adversary::{calibrated_graph, AttackGraph, CalibrationConfig};
use autosec_fleet::{Fidelity, FleetConfig, FleetEngine};
use autosec_sim::SimRng;

fn base_cfg() -> FleetConfig {
    FleetConfig {
        vehicles: 400,
        ticks: 30,
        seed: 42,
        snapshot_every: 10,
        attack_rate: 8e-3,
        calibration_trials: 4,
        ..FleetConfig::default()
    }
}

/// One shared graph so the tests don't recalibrate 19 edges per run.
fn shared_graph(cfg: &FleetConfig) -> AttackGraph {
    let calib = CalibrationConfig::new(cfg.calibration_trials, 2);
    calibrated_graph(&calib, &SimRng::seed(cfg.seed).fork("fleet/calibration"))
}

#[test]
fn mixed_probe_period_never_changes_snapshots() {
    let cfg = base_cfg();
    let graph = shared_graph(&cfg);
    let run = |fidelity: Fidelity| {
        let mut c = cfg.clone();
        c.fidelity = fidelity;
        FleetEngine::with_graph(c, graph.clone()).run()
    };

    let calibrated = run(Fidelity::Calibrated);
    let mixed_3 = run(Fidelity::Mixed { every: 3 });
    let mixed_7 = run(Fidelity::Mixed { every: 7 });

    // State trajectories are identical for every probe period...
    for report in [&mixed_3, &mixed_7] {
        assert_eq!(report.snapshots.len(), calibrated.snapshots.len());
        for (a, b) in report.snapshots.iter().zip(&calibrated.snapshots) {
            assert_eq!(
                a.to_json().to_string(),
                b.to_json().to_string(),
                "snapshot at tick {} diverged from calibrated mode",
                a.tick
            );
        }
        assert_eq!(report.availability, calibrated.availability);
    }
    // ...while the drift channel actually measured something, denser
    // at the shorter period.
    assert_eq!(calibrated.drift.probes, 0);
    assert!(mixed_3.drift.probes > 0, "period 3 shadows ~1/3 of attacks");
    assert!(mixed_3.drift.probes >= mixed_7.drift.probes);
}

#[test]
fn every_fidelity_mode_is_shard_invariant() {
    let cfg = base_cfg();
    let graph = shared_graph(&cfg);
    for fidelity in [
        Fidelity::Live,
        Fidelity::Calibrated,
        Fidelity::Mixed { every: 3 },
    ] {
        let run = |shards: usize| {
            let mut c = cfg.clone();
            c.fidelity = fidelity;
            c.shards = shards;
            FleetEngine::with_graph(c, graph.clone()).run()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(
            a.canonical_json().to_string(),
            b.canonical_json().to_string(),
            "{} diverged across shard counts",
            fidelity.label()
        );
        // Drift rides inside the canonical body, so the line above
        // already pins it; make the mixed-mode expectation explicit.
        assert_eq!(a.drift, b.drift, "{}", fidelity.label());
        if let Fidelity::Mixed { .. } = fidelity {
            assert!(a.drift.probes > 0, "mixed runs must probe");
        }
    }
}

#[test]
fn calibrated_and_live_tell_the_same_story() {
    // The table is calibrated *from* the live models, so the two tiers
    // must agree on the qualitative picture: attacks land, some
    // succeed, the response pipeline fires.
    let cfg = base_cfg();
    let graph = shared_graph(&cfg);
    let run = |fidelity: Fidelity| {
        let mut c = cfg.clone();
        c.fidelity = fidelity;
        FleetEngine::with_graph(c, graph.clone()).run()
    };
    let live = run(Fidelity::Live);
    let calibrated = run(Fidelity::Calibrated);
    for report in [&live, &calibrated] {
        let t = report.totals();
        assert!(t.attacks_attempted > 0);
        assert!(t.alerts > 0);
        assert!(report.availability > 0.0 && report.availability <= 1.0);
    }
}
