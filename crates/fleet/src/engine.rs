//! The fleet service engine: a tick-driven event loop over the whole
//! vehicle population.
//!
//! Each tick runs three phases:
//!
//! 1. **Parallel vehicle phase** ([`run_tick_sharded`]) — every alive
//!    vehicle ingests one telemetry frame and steps its state machine:
//!    fault onsets from the [`FaultPlan`] hit an exposed subset through
//!    the real per-layer [`target_for`] adapters; rare direct attacks
//!    resolve through the run's [`ScenarioEngine`] (see *fidelity*
//!    below); and epidemic V2X infection spreads with pressure
//!    proportional to the previous tick's compromised fraction,
//!    resolved against the calibrated ghost-object edge of the attack
//!    graph.
//! 2. **Serial response phase** — alerts (merged in vehicle order) feed
//!    one shared [`ResponseEngine`]; containment actions are applied
//!    back to the vehicles (filter/rekey relief, isolation,
//!    limp-home), and verified repairs clear escalation state.
//! 3. **Backend phase** — the Fig. 8 kill chain runs as a live breach
//!    process on its own fleet-level RNG stream: while the backend is
//!    breached, infection pressure doubles (bulk telemetry access).
//!
//! ## Fidelity
//!
//! Direct attacks are the hot path's only expensive event: a live
//! [`ScenarioStep`](autosec_core::scenario::ScenarioStep) replays its
//! whole model (~ms), which caps fleet throughput far below the
//! state-machine floor. [`Fidelity`] picks the resolution tier:
//!
//! - [`Fidelity::Calibrated`] (default) — attacks resolve against a
//!   [`StepOutcomeTable`] calibrated from the live models at
//!   construction: two Bernoulli draws per attack, exact in
//!   distribution at the calibrated posture.
//! - [`Fidelity::Live`] — every attack replays the live model, the
//!   pre-table behaviour (same per-vehicle draw sequence).
//! - [`Fidelity::Mixed`]`{ every }` — state evolves exactly as
//!   `Calibrated` (snapshots are bit-identical to it for any `every`),
//!   but roughly one in `every` resolutions is *shadowed* by a live
//!   replay on a dedicated forked substream (`fleet/drift`), feeding
//!   the run's [`DriftStats`] — a continuous measurement of what the
//!   table abstraction costs.
//!
//! ## Determinism contract
//!
//! Vehicle `i` draws only from `root.fork("fleet/vehicles").fork_idx(i)`;
//! tick inputs are pure functions of the *previous* tick's census;
//! alerts are processed in vehicle order; the backend stream is
//! engine-level; drift probes draw from their own `fork_idx(id)` /
//! `fork_idx(tick)` substreams and are triggered by `(id, tick)`
//! arithmetic, not by any global counter. Therefore a run is
//! bit-identical at any `--shards` count — in every fidelity mode —
//! the property [`FleetReport::canonical_json`] exposes and CI diffs.

use std::time::{Duration, Instant};

use autosec_adversary::graph::CapabilitySet;
use autosec_adversary::{calibrated_graph, AttackGraph, CalibrationConfig, EdgeSource, ProbPoint};
use autosec_core::campaign::DefensePosture;
use autosec_core::engine::{LiveScenarioEngine, ScenarioEngine, StepOutcomeTable};
use autosec_core::scenario::PostureCtx;
use autosec_faults::{detector_for, target_for, FaultPlan};
use autosec_ids::response::{ResponseAction, ResponseEngine};
use autosec_ids::Alert;
use autosec_runner::{silence_panics, strip_volatile};
use autosec_scengen::{generate, GenConfig, GeneratedCampaign};
use autosec_sim::{ArchLayer, FaultEffect, SimDuration, SimRng, SimTime};
use rand::RngCore as _;
use serde_json::{json, Value};

use crate::defender::{DefenderMode, FleetDefender, TickObservation};
use crate::shard::{run_tick_sharded, ShardOutput};
use crate::snapshot::{Census, FleetSnapshot, FleetTotals};
use crate::state::{FleetColumns, FleetState};
use crate::vehicle::{AlertKind, PendingAlert, VehicleStatus, ISOLATED_HEALTH, LIMP_HOME_HEALTH};

/// Fraction of a degraded vehicle's health deficit removed by a
/// filter/rekey containment action.
const CONTAINMENT_RELIEF: f64 = 0.5;
/// Per-tick probability an isolated vehicle's repair verifies.
const VERIFY_P: f64 = 0.35;
/// Per-tick probability a flagged degraded vehicle self-repairs.
const REPAIR_P: f64 = 0.3;
/// Per-tick probability a flagged compromised vehicle re-alerts
/// (accumulating strikes until the playbook escalates to isolation).
const REALERT_P: f64 = 0.3;
/// Infection-pressure multiplier while the backend is breached (bulk
/// telemetry access lets the attacker target V2X sessions).
const BREACH_PRESSURE_MULT: f64 = 2.0;
/// Response-history cap for the long-running engine.
const HISTORY_CAP: usize = 4_096;

/// Which tier of the two-tier scenario engine resolves direct attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Every attack replays the live scenario model end to end.
    Live,
    /// Every attack resolves against the calibrated
    /// [`StepOutcomeTable`] (two Bernoulli draws).
    Calibrated,
    /// Table-driven state evolution (snapshots identical to
    /// [`Fidelity::Calibrated`]), with roughly one in `every`
    /// resolutions shadowed by a live replay feeding [`DriftStats`].
    Mixed {
        /// Probe period: a resolution is shadowed when
        /// `(vehicle_id + tick) % every == 0` — shard-invariant by
        /// construction. Must be positive.
        every: u64,
    },
}

impl Fidelity {
    /// Stable label for artifacts and the CLI: `live`, `calibrated`,
    /// or `mixed:K`.
    pub fn label(&self) -> String {
        match self {
            Fidelity::Live => "live".to_owned(),
            Fidelity::Calibrated => "calibrated".to_owned(),
            Fidelity::Mixed { every } => format!("mixed:{every}"),
        }
    }

    /// Parses a CLI label (the inverse of [`Fidelity::label`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "live" => Some(Fidelity::Live),
            "calibrated" => Some(Fidelity::Calibrated),
            _ => s
                .strip_prefix("mixed:")
                .and_then(|k| k.parse::<u64>().ok())
                .filter(|&k| k > 0)
                .map(|every| Fidelity::Mixed { every }),
        }
    }
}

/// Maximum steps per generated campaign in fleet runs.
const GENERATED_MAX_LEN: usize = 6;

/// Where the fleet's direct attack pressure comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignMode {
    /// The fixed registry: each attack resolves one uniformly drawn
    /// [`ScenarioStep`](autosec_core::scenario::ScenarioStep) through
    /// the run's fidelity tier.
    Fixed,
    /// Each attack replays one of `count` generated multi-step
    /// campaigns (composed from the run's own calibrated graph by
    /// `autosec-scengen`, seeded by the fleet seed), walked against
    /// the in-force posture with per-vehicle draws only.
    Generated {
        /// Size of the generated campaign pool. Must be positive.
        count: usize,
    },
}

impl CampaignMode {
    /// Stable label for artifacts and the CLI: `fixed` or
    /// `generated:N`.
    pub fn label(&self) -> String {
        match self {
            CampaignMode::Fixed => "fixed".to_owned(),
            CampaignMode::Generated { count } => format!("generated:{count}"),
        }
    }

    /// Parses a CLI label (the inverse of [`CampaignMode::label`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fixed" => Some(CampaignMode::Fixed),
            _ => s
                .strip_prefix("generated:")
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .map(|count| CampaignMode::Generated { count }),
        }
    }
}

/// A complete fleet-run parameterization.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet size.
    pub vehicles: usize,
    /// Ticks to run.
    pub ticks: u64,
    /// Worker shards (wall-clock only — never changes results).
    pub shards: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulated milliseconds per tick.
    pub tick_ms: u64,
    /// Snapshot period in ticks (0 = final snapshot only).
    pub snapshot_every: u64,
    /// The fleet-wide defense posture.
    pub posture: DefensePosture,
    /// How direct attacks are resolved (see [`Fidelity`]).
    pub fidelity: Fidelity,
    /// Where direct attack pressure comes from (see [`CampaignMode`]).
    pub campaign: CampaignMode,
    /// Per-vehicle per-tick probability of a direct scenario-step
    /// attack.
    pub attack_rate: f64,
    /// Epidemic contact rate: infection pressure per unit compromised
    /// fraction.
    pub infection_beta: f64,
    /// Fraction of the fleet exposed to each fault onset.
    pub fault_exposure: f64,
    /// Whether the standard cross-layer fault plan rides along.
    pub faults_enabled: bool,
    /// Per-tick backend kill-chain attempt rate (scaled by the chain's
    /// calibrated success probability).
    pub breach_attempt_rate: f64,
    /// Monte-Carlo trials per attack-graph edge and per outcome-table
    /// cell during calibration.
    pub calibration_trials: usize,
    /// Per-vehicle per-tick probability of a chaos-injected state
    /// machine panic (0 outside quarantine tests; a positive rate
    /// exercises the per-vehicle quarantine path).
    pub chaos_lost_rate: f64,
    /// Which fleet-wide defense policy runs (see [`DefenderMode`]).
    pub defender: DefenderMode,
    /// The defender's action budget. Zero makes any mode the null
    /// defender, bit-identical to [`DefenderMode::Off`].
    pub defender_budget: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            vehicles: 1_000,
            ticks: 100,
            shards: 1,
            seed: autosec_runner::DEFAULT_SEED,
            tick_ms: 100,
            snapshot_every: 0,
            posture: DefensePosture::full(),
            fidelity: Fidelity::Calibrated,
            campaign: CampaignMode::Fixed,
            attack_rate: 5e-4,
            infection_beta: 0.35,
            fault_exposure: 0.01,
            faults_enabled: true,
            breach_attempt_rate: 0.05,
            calibration_trials: 12,
            chaos_lost_rate: 0.0,
            defender: DefenderMode::Off,
            defender_budget: 0.0,
        }
    }
}

impl FleetConfig {
    /// Stable posture label for artifacts.
    pub fn posture_label(&self) -> String {
        posture_label(&self.posture)
    }

    /// Whether the configured defender can ever act (a zero budget is
    /// the null defender, whatever the mode).
    pub fn defender_active(&self) -> bool {
        self.defender != DefenderMode::Off && self.defender_budget > 0.0
    }

    /// Canonical JSON body (deterministic fields only — `shards` is
    /// serialized at the report level, where it is stripped as
    /// volatile). Defender keys appear only when the defender is
    /// active, so a null-defender config renders byte-identical to a
    /// defenderless one.
    pub fn to_json(&self) -> Value {
        let mut v = json!({
            "vehicles": self.vehicles as u64,
            "ticks": self.ticks,
            "seed": self.seed,
            "tick_ms": self.tick_ms,
            "snapshot_every": self.snapshot_every,
            "posture": self.posture_label(),
            "fidelity": self.fidelity.label(),
            "attack_rate": self.attack_rate,
            "infection_beta": self.infection_beta,
            "fault_exposure": self.fault_exposure,
            "faults_enabled": self.faults_enabled,
            "breach_attempt_rate": self.breach_attempt_rate,
            "calibration_trials": self.calibration_trials as u64,
            "chaos_lost_rate": self.chaos_lost_rate,
        });
        if self.defender_active() {
            if let Value::Object(map) = &mut v {
                map.insert("defender".to_owned(), json!(self.defender.label()));
                map.insert("defender_budget".to_owned(), json!(self.defender_budget));
            }
        }
        // Like the defender keys: present only off the default, so
        // fixed-campaign artifacts stay byte-identical to pre-scengen
        // runs.
        if self.campaign != CampaignMode::Fixed {
            if let Value::Object(map) = &mut v {
                map.insert("campaign".to_owned(), json!(self.campaign.label()));
            }
        }
        v
    }
}

/// Stable label for a posture: `none`, `full`, or the enabled layers
/// joined bottom-up.
pub fn posture_label(p: &DefensePosture) -> String {
    if *p == DefensePosture::none() {
        return "none".to_owned();
    }
    if *p == DefensePosture::full() {
        return "full".to_owned();
    }
    p.enabled_layers()
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("+")
}

/// Dense index of a layer in [`ArchLayer::ALL`].
fn layer_index(layer: ArchLayer) -> usize {
    ArchLayer::ALL
        .iter()
        .position(|&l| l == layer)
        .expect("layer is in ALL")
}

/// Mixed-fidelity drift accounting: how often the table's resolution
/// of an attack agreed with a shadow live replay of the same attack.
///
/// Counters are additive (shard merge is order-independent) and every
/// probe is a pure function of `(seed, vehicle_id, tick)` — so drift
/// numbers are as shard-invariant as the snapshots they ride beside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriftStats {
    /// Resolutions shadowed by a live replay.
    pub probes: u64,
    /// Probes where table and live agreed on `(succeeded, detected)`.
    pub agreements: u64,
    /// Probes the table resolved as a success.
    pub table_successes: u64,
    /// Probes the live replay resolved as a success.
    pub live_successes: u64,
    /// Probes the table resolved as detected.
    pub table_detects: u64,
    /// Probes the live replay resolved as detected.
    pub live_detects: u64,
}

impl DriftStats {
    /// Records one shadowed resolution.
    pub fn record(&mut self, table: (bool, bool), live: (bool, bool)) {
        self.probes += 1;
        if table == live {
            self.agreements += 1;
        }
        self.table_successes += u64::from(table.0);
        self.live_successes += u64::from(live.0);
        self.table_detects += u64::from(table.1);
        self.live_detects += u64::from(live.1);
    }

    /// Folds another block in (addition only).
    pub fn absorb(&mut self, other: &DriftStats) {
        self.probes += other.probes;
        self.agreements += other.agreements;
        self.table_successes += other.table_successes;
        self.live_successes += other.live_successes;
        self.table_detects += other.table_detects;
        self.live_detects += other.live_detects;
    }

    /// Fraction of probes where both outcome bits agreed (1 when no
    /// probes ran).
    pub fn agreement_rate(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            self.agreements as f64 / self.probes as f64
        }
    }

    /// Absolute success-rate gap between the two tiers over the probed
    /// sample (0 when no probes ran).
    pub fn success_gap(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            (self.table_successes as f64 - self.live_successes as f64).abs() / self.probes as f64
        }
    }

    /// Canonical JSON body.
    pub fn to_json(&self) -> Value {
        json!({
            "probes": self.probes,
            "agreements": self.agreements,
            "table_successes": self.table_successes,
            "live_successes": self.live_successes,
            "table_detects": self.table_detects,
            "live_detects": self.live_detects,
        })
    }
}

/// A fault onset resolved to a fleet-level **reference injection**.
///
/// Running the real per-layer adapter for every exposed vehicle would
/// cost hundreds of milliseconds per vehicle on the heavy layers
/// (software-platform restarts replay the whole SDV reconfiguration
/// race), which no 100k-vehicle loop can afford. Instead the engine
/// runs each adapter **once** per onset on a fleet-level stream
/// (`fleet/faults/ref`, forked by spec index — shard-invariant by
/// construction) and records the reference outcome; exposed vehicles
/// then derive their own cheap dispersion around it from their private
/// streams. Fidelity is anchored in the real models, per-vehicle cost
/// is a couple of RNG draws.
#[derive(Debug, Clone, Copy)]
pub struct FaultOnset {
    /// Layer the fault strikes (names the alerting detector).
    pub layer: ArchLayer,
    /// Residual health of the reference injection under the run
    /// posture.
    pub ref_health: f64,
    /// Per-vehicle detection probability (high when the reference
    /// injection was detected, low otherwise).
    pub detect_p: f64,
}

/// Per-vehicle detection probability when the reference injection was
/// detected by the layer's defenses.
const FAULT_DETECT_P_SEEN: f64 = 0.7;
/// ... and when it slipped past them.
const FAULT_DETECT_P_MISSED: f64 = 0.1;

/// Shard-invariant inputs shared by every vehicle this tick — pure
/// functions of the previous tick's state.
#[derive(Debug, Clone)]
pub struct TickInputs {
    /// The tick being executed (1-based).
    pub tick: u64,
    /// Epidemic infection pressure (contact probability per vehicle).
    pub infection_pressure: f64,
    /// Faults striking exactly this tick, pre-resolved to reference
    /// injections.
    pub fault_onsets: Vec<FaultOnset>,
    /// Effects active during this tick, per layer
    /// ([`ArchLayer::ALL`] order) — the fault context direct attacks
    /// execute under.
    pub active_faults: [Vec<FaultEffect>; 6],
}

/// The mixed-fidelity shadow-probe context.
struct ProbeEnv<'a> {
    /// The live tier the probes replay against.
    live: &'a LiveScenarioEngine,
    /// The dedicated drift stream (`root.fork("fleet/drift")`); probes
    /// fork it by vehicle id then tick.
    base: SimRng,
    /// Probe period.
    every: u64,
}

/// Per-tick environment for the per-vehicle step. Everything here is
/// run-constant unless a closed-loop defender mutates the posture
/// between ticks, in which case the posture-derived fields are
/// recomputed.
struct StepEnv<'a> {
    cfg: &'a FleetConfig,
    /// The tier resolving direct attacks this run.
    engine: &'a dyn ScenarioEngine,
    /// Present in mixed fidelity only.
    probe: Option<ProbeEnv<'a>>,
    /// Present in generated-campaign mode only: the graph the walks
    /// replay over and the generated pool.
    generated: Option<(&'a AttackGraph, &'a [GeneratedCampaign])>,
    /// The posture in force this tick (the configured posture unless a
    /// defender hardened layers).
    posture: DefensePosture,
    /// Calibrated V2X infection edge under the tick posture.
    epi: ProbPoint,
    /// Per-tick probability a silent compromise is flagged after the
    /// fact (grows with defense depth and bought monitoring).
    late_detect_p: f64,
}

/// One vehicle's tick: state machine + private RNG only. See the
/// module docs for the phase ordering contract.
fn step_vehicle(
    cols: &mut FleetColumns<'_>,
    i: usize,
    env: &StepEnv<'_>,
    inputs: &TickInputs,
    out: &mut ShardOutput,
) {
    out.counters.telemetry_frames += 1;
    if env.cfg.chaos_lost_rate > 0.0 && cols.rng[i].chance(env.cfg.chaos_lost_rate) {
        panic!("chaos: vehicle {} state machine corrupted", cols.id(i));
    }
    match cols.status[i] {
        VehicleStatus::Healthy | VehicleStatus::Degraded => {
            // Fault onsets: an exposed subset suffers its own
            // dispersion around the fleet-level reference injection.
            for onset in &inputs.fault_onsets {
                if !cols.rng[i].chance(env.cfg.fault_exposure) {
                    continue;
                }
                out.counters.fault_injections += 1;
                // Each vehicle takes between 0.5x and 1.5x of the
                // reference health deficit.
                let u = (cols.rng[i].next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let mult = 1.0 - (1.0 - onset.ref_health) * (0.5 + u);
                cols.health[i] = (cols.health[i] * mult.clamp(0.0, 1.0)).max(0.0);
                if cols.health[i] < 1.0 && cols.status[i] == VehicleStatus::Healthy {
                    cols.status[i] = VehicleStatus::Degraded;
                    cols.since[i] = inputs.tick;
                    cols.incident_layer[i] = onset.layer;
                }
                if cols.rng[i].chance(onset.detect_p) {
                    cols.flagged[i] = true;
                    out.alerts.push(PendingAlert {
                        vehicle: cols.id(i),
                        detector: detector_for(onset.layer),
                        layer: onset.layer,
                        kind: AlertKind::Fault,
                    });
                }
            }
            // Rare direct attack. Generated-campaign mode walks one
            // composed multi-step campaign against the in-force
            // posture — per-vehicle draws only, no fidelity engine, so
            // snapshots are identical across fidelity modes and shard
            // counts by the same argument as every other vehicle draw.
            if env.cfg.attack_rate > 0.0 && cols.rng[i].chance(env.cfg.attack_rate) {
                if let Some((graph, pool)) = env.generated {
                    out.counters.attacks_attempted += 1;
                    let si = (cols.rng[i].next_u64() % pool.len() as u64) as usize;
                    let campaign = &pool[si];
                    let goal = campaign.goal(graph);
                    let mut owned = CapabilitySet::start();
                    let mut alerted = false;
                    for &ei in &campaign.edges {
                        let edge = &graph.edges()[ei];
                        let p = edge.prob(&env.posture);
                        let attempted = owned.contains(edge.from);
                        // CRN discipline: both draws always happen, so
                        // the draw count is posture-independent.
                        let succeeded = cols.rng[i].chance(p.success);
                        let detected = cols.rng[i].chance(p.detect);
                        if attempted && succeeded {
                            owned.insert(edge.to);
                        }
                        if attempted && detected {
                            alerted = true;
                            out.alerts.push(PendingAlert {
                                vehicle: cols.id(i),
                                detector: detector_for(edge.layer),
                                layer: edge.layer,
                                kind: AlertKind::Attack,
                            });
                        }
                    }
                    if owned.contains(goal) {
                        out.counters.attacks_succeeded += 1;
                        let last = *campaign.edges.last().expect("non-empty");
                        cols.compromise(i, inputs.tick, graph.edges()[last].layer);
                        cols.flagged[i] = alerted;
                    }
                } else {
                    out.counters.attacks_attempted += 1;
                    let idx = (cols.rng[i].next_u64() % env.engine.step_count() as u64) as usize;
                    let layer = env.engine.step_layer(idx);
                    let ctx = PostureCtx {
                        posture: &env.posture,
                        faults: &inputs.active_faults[layer_index(layer)],
                    };
                    let outcome = env.engine.resolve(idx, &ctx, &mut cols.rng[i]);
                    // Mixed fidelity: shadow this resolution with a
                    // live replay on the drift stream. The shadow never
                    // touches vehicle state or its RNG — snapshots stay
                    // identical to pure calibrated mode.
                    if let Some(probe) = &env.probe {
                        let id = u64::from(cols.id(i));
                        if (id + inputs.tick).is_multiple_of(probe.every) {
                            let mut stream = probe.base.fork_idx(id).fork_idx(inputs.tick);
                            let live_out = probe.live.resolve(idx, &ctx, &mut stream);
                            out.drift.record(
                                (outcome.succeeded, outcome.detected),
                                (live_out.succeeded, live_out.detected),
                            );
                        }
                    }
                    if outcome.succeeded {
                        out.counters.attacks_succeeded += 1;
                        cols.compromise(i, inputs.tick, layer);
                        cols.flagged[i] = outcome.detected;
                    }
                    if outcome.detected {
                        out.alerts.push(PendingAlert {
                            vehicle: cols.id(i),
                            detector: detector_for(layer),
                            layer,
                            kind: AlertKind::Attack,
                        });
                    }
                }
            }
            // Epidemic V2X infection from the compromised population.
            if matches!(
                cols.status[i],
                VehicleStatus::Healthy | VehicleStatus::Degraded
            ) && inputs.infection_pressure > 0.0
                && cols.rng[i].chance(inputs.infection_pressure)
                && cols.rng[i].chance(env.epi.success)
            {
                out.counters.infections += 1;
                cols.compromise(i, inputs.tick, ArchLayer::Collaboration);
                if cols.rng[i].chance(env.epi.detect) {
                    cols.flagged[i] = true;
                    out.alerts.push(PendingAlert {
                        vehicle: cols.id(i),
                        detector: detector_for(ArchLayer::Collaboration),
                        layer: ArchLayer::Collaboration,
                        kind: AlertKind::Attack,
                    });
                }
            }
            // Flagged degraded vehicles self-repair (reconfigure +
            // verify) without needing isolation.
            if cols.status[i] == VehicleStatus::Degraded
                && cols.flagged[i]
                && cols.rng[i].chance(REPAIR_P)
            {
                out.counters.recoveries += 1;
                out.counters.mttr_ticks += inputs.tick - cols.since[i];
                cols.restore(i);
                out.recovered.push(cols.id(i));
            }
        }
        VehicleStatus::Compromised => {
            if !cols.flagged[i] {
                // Continuous IDS sweep: silent compromises surface
                // eventually, faster under deeper postures.
                if cols.rng[i].chance(env.late_detect_p) {
                    cols.flagged[i] = true;
                    out.alerts.push(PendingAlert {
                        vehicle: cols.id(i),
                        detector: detector_for(cols.incident_layer[i]),
                        layer: cols.incident_layer[i],
                        kind: AlertKind::LateDetect,
                    });
                }
            } else if cols.rng[i].chance(REALERT_P) {
                // Known-compromised vehicles keep alerting until the
                // playbook escalates to isolation.
                out.alerts.push(PendingAlert {
                    vehicle: cols.id(i),
                    detector: detector_for(cols.incident_layer[i]),
                    layer: cols.incident_layer[i],
                    kind: AlertKind::LateDetect,
                });
            }
        }
        VehicleStatus::Isolated => {
            if cols.rng[i].chance(VERIFY_P) {
                out.counters.recoveries += 1;
                out.counters.mttr_ticks += inputs.tick - cols.since[i];
                cols.restore(i);
                out.recovered.push(cols.id(i));
            }
        }
        VehicleStatus::Lost => {}
    }
}

/// The live-fleet engine. Construct with [`FleetEngine::new`] (which
/// calibrates its own attack graph and outcome table),
/// [`FleetEngine::with_graph`] (sharing a pre-calibrated graph) or
/// [`FleetEngine::with_parts`] (sharing a pre-calibrated table too),
/// then [`FleetEngine::run`].
///
/// The engine is `Clone`, and cloning is cheap relative to
/// construction: the columnar state copies dense arrays, while
/// construction replays real fault adapters and (unless a table is
/// shared) calibrates live models.
#[derive(Clone)]
pub struct FleetEngine {
    cfg: FleetConfig,
    graph: AttackGraph,
    /// The calibrated tier; `None` only in [`Fidelity::Live`] runs.
    table: Option<StepOutcomeTable>,
    state: FleetState,
    plan: FaultPlan,
    /// `(onset_tick, reference injection)` per fault spec, resolved
    /// once at construction on the `fleet/faults/ref` stream.
    onsets: Vec<(u64, FaultOnset)>,
    /// Generated campaign pool (empty in [`CampaignMode::Fixed`]) — a
    /// pure function of `(graph topology, seed, count)`, composed at
    /// construction.
    sequences: Vec<GeneratedCampaign>,
    /// The fleet-wide defense policy (inert unless configured active).
    defender: FleetDefender,
}

impl FleetEngine {
    /// Builds the engine, calibrating the attack graph — and, outside
    /// [`Fidelity::Live`], the step outcome table — from the live
    /// models (`calibration_trials` per edge/cell; `shards` only
    /// parallelizes the calibration, never changes it).
    ///
    /// # Panics
    ///
    /// Panics if `vehicles` or `ticks` is zero.
    pub fn new(cfg: FleetConfig) -> Self {
        let calib = CalibrationConfig::new(cfg.calibration_trials, cfg.shards);
        let graph = calibrated_graph(&calib, &SimRng::seed(cfg.seed).fork("fleet/calibration"));
        Self::with_graph(cfg, graph)
    }

    /// Builds the engine around a pre-calibrated graph (the graph
    /// carries both posture sides, so one calibration serves every
    /// posture in a sweep). The outcome table, if the fidelity needs
    /// one, is calibrated here.
    ///
    /// # Panics
    ///
    /// Panics if `vehicles` or `ticks` is zero.
    pub fn with_graph(cfg: FleetConfig, graph: AttackGraph) -> Self {
        Self::with_parts(cfg, graph, None)
    }

    /// Builds the engine around a pre-calibrated graph and,
    /// optionally, a shared pre-calibrated [`StepOutcomeTable`] (one
    /// depth-ladder table can serve a whole posture sweep). When
    /// `table` is `None` and the fidelity is not [`Fidelity::Live`], a
    /// single-posture table is calibrated on the `fleet/table`
    /// substream.
    ///
    /// # Panics
    ///
    /// Panics if `vehicles` or `ticks` is zero, or if a
    /// [`Fidelity::Mixed`] period is zero.
    pub fn with_parts(
        mut cfg: FleetConfig,
        graph: AttackGraph,
        table: Option<StepOutcomeTable>,
    ) -> Self {
        assert!(cfg.vehicles > 0, "fleet needs at least one vehicle");
        assert!(cfg.ticks > 0, "fleet needs at least one tick");
        if let Fidelity::Mixed { every } = cfg.fidelity {
            assert!(every > 0, "mixed fidelity needs a positive probe period");
        }
        // A static defender spends its whole budget hardening the
        // configured posture *now*, before calibration and fault
        // references, so the entire run sees the hardened posture. A
        // closed-loop defender holds its budget for runtime turns.
        let mut defender = FleetDefender::new(cfg.defender, cfg.defender_budget);
        defender.prespend_static(&mut cfg.posture);
        let root = SimRng::seed(cfg.seed);
        let table = match cfg.fidelity {
            Fidelity::Live => None,
            _ => Some(match table {
                Some(t) => {
                    if defender.is_closed_loop() {
                        assert!(
                            t.covers(&cfg.posture) && t.covers(&DefensePosture::full()),
                            "a closed-loop run needs a table covering every posture \
                             the defender can harden into (share a depth-ladder table)"
                        );
                    }
                    t
                }
                // A closed-loop defender can harden into postures off
                // the configured point, so its table is the full depth
                // ladder (covers any posture by per-layer fallback).
                None if defender.is_closed_loop() => StepOutcomeTable::calibrate_depths(
                    cfg.calibration_trials,
                    cfg.shards,
                    &root.fork("fleet/table"),
                ),
                None => StepOutcomeTable::calibrate(
                    &[cfg.posture],
                    cfg.calibration_trials,
                    cfg.shards,
                    &root.fork("fleet/table"),
                ),
            }),
        };
        let state = FleetState::new(cfg.vehicles, &root.fork("fleet/vehicles"));
        let plan = if cfg.faults_enabled {
            FaultPlan::standard_over(
                &root.fork("fleet/faults"),
                SimDuration::from_ms(cfg.ticks * cfg.tick_ms),
            )
        } else {
            FaultPlan::empty()
        };
        // Resolve every spec to its reference injection now (see
        // [`FaultOnset`]): one real adapter run per spec, on a stream
        // forked by spec index — a pure function of the seed.
        let ref_base = root.fork("fleet/faults/ref");
        let onsets: Vec<(u64, FaultOnset)> = plan
            .specs
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.effect.is_noop())
            .map(|(i, s)| {
                let layer = s.effect.layer();
                let mut rng = ref_base.fork_idx(i as u64);
                let rec =
                    target_for(layer).apply(&[s.effect], cfg.posture.enabled(layer), &mut rng);
                let onset = FaultOnset {
                    layer,
                    ref_health: rec.health.clamp(0.0, 1.0),
                    detect_p: if rec.detected {
                        FAULT_DETECT_P_SEEN
                    } else {
                        FAULT_DETECT_P_MISSED
                    },
                };
                (onset_tick(s.onset, cfg.tick_ms), onset)
            })
            .collect();
        // Generated-campaign pool: composed from the run's own
        // calibrated graph, seeded by the fleet seed (generation
        // derives its own substreams — nothing here touches a fleet
        // stream, so fixed-mode runs are unchanged bit for bit).
        let sequences = match cfg.campaign {
            CampaignMode::Fixed => Vec::new(),
            CampaignMode::Generated { count } => {
                let pool = generate(&graph, &GenConfig::new(count, GENERATED_MAX_LEN, cfg.seed));
                assert!(
                    !pool.is_empty(),
                    "generated-campaign mode produced an empty pool"
                );
                pool
            }
        };
        Self {
            cfg,
            graph,
            table,
            state,
            plan,
            onsets,
            sequences,
            defender,
        }
    }

    /// Runs the fleet to completion.
    pub fn run(self) -> FleetReport {
        let FleetEngine {
            cfg,
            graph,
            table,
            mut state,
            plan,
            onsets,
            sequences,
            mut defender,
        } = self;
        let start = Instant::now();
        let _quiet = (cfg.chaos_lost_rate > 0.0).then(silence_panics);

        let live = LiveScenarioEngine::from_registry();
        let engine: &dyn ScenarioEngine = match cfg.fidelity {
            Fidelity::Live => &live,
            _ => table.as_ref().expect("non-live runs carry a table"),
        };
        let probe_every = match cfg.fidelity {
            Fidelity::Mixed { every } => Some(every),
            _ => None,
        };
        let drift_base = SimRng::seed(cfg.seed).fork("fleet/drift");
        // The posture in force; a closed-loop defender may harden it
        // between ticks, which recomputes the derived rates below.
        let mut posture = cfg.posture;
        let (mut epi, mut late_detect_p, mut kc_success, mut kc_detect) =
            derived_rates(&graph, &posture);

        let mut responder = ResponseEngine::with_history_cap(HISTORY_CAP);
        let mut backend_rng = SimRng::seed(cfg.seed).fork("fleet/backend");
        let mut breached = false;
        let mut totals = FleetTotals::default();
        let mut drift = DriftStats::default();
        let mut snapshots: Vec<FleetSnapshot> = Vec::new();
        let mut availability_sum = 0.0;
        let mut prev_census = Census::take(&state);

        for tick in 1..=cfg.ticks {
            let inputs = tick_inputs(&cfg, &plan, &onsets, tick, &prev_census, breached);
            let env = StepEnv {
                cfg: &cfg,
                engine,
                probe: probe_every.map(|every| ProbeEnv {
                    live: &live,
                    base: drift_base.clone(),
                    every,
                }),
                generated: (!sequences.is_empty()).then_some((&graph, sequences.as_slice())),
                posture,
                epi,
                // Bit-exact without a defender: monitor_boost() is
                // +0.0 until monitoring is bought.
                late_detect_p: late_detect_p + defender.monitor_boost(),
            };

            // Phase 1: parallel vehicle phase.
            let outs = run_tick_sharded(&mut state, cfg.shards, tick, |cols, i, out| {
                step_vehicle(cols, i, &env, &inputs, out)
            });

            // Phase 2: serial response phase, in vehicle order.
            let at = SimTime::from_ms(tick * cfg.tick_ms);
            let mut cols = state.columns();
            let mut layer_alerts = [0u32; 6];
            for out in outs {
                totals.absorb(&out.counters);
                drift.absorb(&out.drift);
                for pending in out.alerts {
                    totals.alerts += 1;
                    layer_alerts[pending.layer as usize] += 1;
                    let response = responder.handle(&Alert {
                        detector: pending.detector,
                        subject: pending.vehicle,
                        at,
                        detail: String::new(),
                    });
                    apply_response(
                        &mut cols,
                        pending.vehicle as usize,
                        response.action,
                        tick,
                        &mut totals,
                    );
                }
                for id in out.recovered {
                    responder.clear_subject(id);
                }
            }

            // Phase 3: the backend breach process (fleet-level stream).
            if breached {
                if backend_rng.chance(0.05 + 0.3 * kc_detect) {
                    breached = false;
                    totals.backend_patches += 1;
                }
            } else if backend_rng.chance(cfg.breach_attempt_rate * kc_success) {
                breached = true;
                totals.backend_breaches += 1;
            }

            // Census, availability integral, periodic snapshot.
            let census = Census::take(&state);
            availability_sum += census.mean_health;
            let periodic = cfg.snapshot_every > 0 && tick % cfg.snapshot_every == 0;
            if periodic || tick == cfg.ticks {
                snapshots.push(FleetSnapshot {
                    tick,
                    backend_breached: breached,
                    census,
                    totals,
                });
            }

            // Closed-loop defender turn: a pure function of this
            // tick's merged outputs (no RNG), so it is exactly as
            // shard-invariant as the census it reads.
            if defender.is_closed_loop() {
                let obs = TickObservation {
                    layer_alerts,
                    compromised_frac: census.compromised as f64 / census.total().max(1) as f64,
                    backend_breached: breached,
                };
                if defender.tick(&mut posture, &obs) {
                    debug_assert!(
                        table.as_ref().is_none_or(|t| t.covers(&posture)),
                        "defender hardened into an uncalibrated posture"
                    );
                    (epi, late_detect_p, kc_success, kc_detect) = derived_rates(&graph, &posture);
                }
            }
            prev_census = census;
        }

        FleetReport {
            defender: defender.is_active().then_some(defender),
            config: cfg.clone(),
            snapshots,
            availability: availability_sum / cfg.ticks as f64,
            drift,
            wall: start.elapsed(),
        }
    }
}

/// The posture-derived rates the tick loop consumes: the calibrated
/// V2X infection edge, the late-detection sweep rate (grows with
/// defense depth), and the Fig. 8 kill chain folded to one
/// breach/detect pair. Op-for-op identical to the pre-defender
/// computation, so defenderless runs are unchanged bit for bit.
fn derived_rates(graph: &AttackGraph, posture: &DefensePosture) -> (ProbPoint, f64, f64, f64) {
    let epi = graph
        .edge_for(&EdgeSource::Scenario("v2x-ghost-object"))
        .expect("calibrated graph carries the V2X edge")
        .prob(posture);
    let late_detect_p = 0.05 + 0.03 * posture.enabled_count() as f64;
    let kc: Vec<ProbPoint> = graph
        .edges()
        .iter()
        .filter(|e| matches!(e.source, EdgeSource::KillChain(_)))
        .map(|e| e.prob(posture))
        .collect();
    let kc_success: f64 = kc.iter().map(|p| p.success).product();
    let kc_detect: f64 = 1.0 - kc.iter().map(|p| 1.0 - p.detect).product::<f64>();
    (epi, late_detect_p, kc_success, kc_detect)
}

/// The tick a fault spec first applies at (its onset rounded up to a
/// tick boundary, and at least tick 1).
fn onset_tick(onset: SimTime, tick_ms: u64) -> u64 {
    let tick_ps = SimDuration::from_ms(tick_ms).as_ps();
    onset.as_ps().div_ceil(tick_ps).max(1)
}

/// Assembles the shard-invariant inputs for `tick` from the previous
/// census and breach state.
fn tick_inputs(
    cfg: &FleetConfig,
    plan: &FaultPlan,
    onsets: &[(u64, FaultOnset)],
    tick: u64,
    prev: &Census,
    breached: bool,
) -> TickInputs {
    let fault_onsets: Vec<FaultOnset> = onsets
        .iter()
        .filter(|(t, _)| *t == tick)
        .map(|(_, o)| *o)
        .collect();
    let now = SimTime::from_ms(tick * cfg.tick_ms);
    let active_faults: [Vec<FaultEffect>; 6] =
        ArchLayer::ALL.map(|layer| plan.effects_at(now, layer));
    let compromised_frac = if prev.total() == 0 {
        0.0
    } else {
        prev.compromised as f64 / prev.total() as f64
    };
    let mult = if breached { BREACH_PRESSURE_MULT } else { 1.0 };
    TickInputs {
        tick,
        infection_pressure: cfg.infection_beta * compromised_frac * mult,
        fault_onsets,
        active_faults,
    }
}

/// Applies one containment action back to vehicle `idx` of the fleet.
fn apply_response(
    cols: &mut FleetColumns<'_>,
    idx: usize,
    action: ResponseAction,
    tick: u64,
    totals: &mut FleetTotals,
) {
    match action {
        ResponseAction::Notify => totals.responses_notify += 1,
        ResponseAction::FilterId | ResponseAction::Rekey => {
            if action == ResponseAction::FilterId {
                totals.responses_filter += 1;
            } else {
                totals.responses_rekey += 1;
            }
            // Filter/rekey relieve fault degradation; they cannot evict
            // an attacker (escalation handles that).
            if cols.status[idx] == VehicleStatus::Degraded {
                cols.health[idx] = 1.0 - (1.0 - cols.health[idx]) * (1.0 - CONTAINMENT_RELIEF);
            }
        }
        ResponseAction::IsolateNode | ResponseAction::LimpHome => {
            let health = if action == ResponseAction::IsolateNode {
                totals.responses_isolate += 1;
                ISOLATED_HEALTH
            } else {
                totals.responses_limp_home += 1;
                LIMP_HOME_HEALTH
            };
            if matches!(
                cols.status[idx],
                VehicleStatus::Healthy | VehicleStatus::Degraded | VehicleStatus::Compromised
            ) {
                if cols.status[idx] == VehicleStatus::Healthy {
                    // Isolating a healthy vehicle (false-positive
                    // escalation) still opens an incident window.
                    cols.since[idx] = tick;
                }
                cols.status[idx] = VehicleStatus::Isolated;
                cols.health[idx] = health;
            }
        }
    }
}

/// The completed run: snapshots, availability, MTTR, drift, and
/// wall-clock throughput.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configuration that produced it.
    pub config: FleetConfig,
    /// Periodic snapshots; the last entry is always the final tick.
    pub snapshots: Vec<FleetSnapshot>,
    /// Mean fleet health over all ticks.
    pub availability: f64,
    /// Mixed-fidelity drift accounting (all zero outside
    /// [`Fidelity::Mixed`]).
    pub drift: DriftStats,
    /// The defender after the run (`None` when inactive, keeping the
    /// artifact byte-identical to a defenderless run).
    pub defender: Option<FleetDefender>,
    /// Wall-clock duration of the run (volatile).
    pub wall: Duration,
}

impl FleetReport {
    /// The final snapshot (the run always produces at least one).
    pub fn final_snapshot(&self) -> &FleetSnapshot {
        self.snapshots.last().expect("runs produce >= 1 snapshot")
    }

    /// Cumulative totals at the end of the run.
    pub fn totals(&self) -> &FleetTotals {
        &self.final_snapshot().totals
    }

    /// Mean time to recovery in milliseconds.
    pub fn mttr_ms(&self) -> f64 {
        self.totals().mttr_ms(self.config.tick_ms)
    }

    /// Total vehicle-ticks simulated.
    pub fn vehicle_ticks(&self) -> u64 {
        self.config.vehicles as u64 * self.config.ticks
    }

    /// Vehicle-ticks per wall-clock second (the BENCH_fleet metric).
    pub fn throughput(&self) -> f64 {
        self.vehicle_ticks() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The full artifact body: deterministic payload plus the volatile
    /// keys (`shards`, `duration_ms`, `vehicle_ticks_per_sec`) that
    /// canonical mode strips.
    pub fn to_json(&self) -> Value {
        let mut v = json!({
            "config": self.config.to_json(),
            "shards": self.config.shards as u64,
            "duration_ms": self.wall.as_secs_f64() * 1e3,
            "vehicle_ticks_per_sec": self.throughput(),
            "availability": self.availability,
            "mttr_ms": self.mttr_ms(),
            "drift": self.drift.to_json(),
            "snapshots": self.snapshots.iter().map(FleetSnapshot::to_json).collect::<Vec<_>>(),
        });
        if let (Value::Object(map), Some(d)) = (&mut v, &self.defender) {
            map.insert("defender".to_owned(), d.to_json());
        }
        v
    }

    /// The canonical (shard-invariant) artifact body — what two runs
    /// of the same `(seed, config)` must agree on byte for byte.
    pub fn canonical_json(&self) -> Value {
        strip_volatile(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> FleetConfig {
        FleetConfig {
            vehicles: 120,
            ticks: 12,
            shards: 1,
            seed: 7,
            snapshot_every: 4,
            attack_rate: 0.02,
            calibration_trials: 4,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn runs_are_bit_identical_per_seed() {
        let a = FleetEngine::new(tiny_cfg()).run();
        let b = FleetEngine::new(tiny_cfg()).run();
        assert_eq!(
            a.canonical_json().to_string(),
            b.canonical_json().to_string()
        );
        assert_eq!(a.snapshots.len(), 3, "ticks 4, 8, 12");
        assert_eq!(a.final_snapshot().tick, 12);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FleetEngine::new(tiny_cfg()).run();
        let mut cfg = tiny_cfg();
        cfg.seed = 8;
        let b = FleetEngine::new(cfg).run();
        assert_ne!(
            a.canonical_json().to_string(),
            b.canonical_json().to_string()
        );
    }

    #[test]
    fn census_conserves_the_fleet() {
        let report = FleetEngine::new(tiny_cfg()).run();
        for snap in &report.snapshots {
            assert_eq!(snap.census.total(), 120, "tick {}", snap.tick);
        }
        let t = report.totals();
        assert_eq!(
            t.telemetry_frames,
            120 * 12,
            "no vehicle lost: every vehicle emitted every tick"
        );
        assert!(report.availability > 0.0 && report.availability <= 1.0);
    }

    #[test]
    fn undefended_fleet_fares_worse() {
        let defended = FleetEngine::new(tiny_cfg()).run();
        let mut cfg = tiny_cfg();
        cfg.posture = DefensePosture::none();
        let undefended = FleetEngine::new(cfg).run();
        assert!(
            undefended.final_snapshot().census.compromised
                >= defended.final_snapshot().census.compromised,
            "undefended {} !>= defended {}",
            undefended.final_snapshot().census.compromised,
            defended.final_snapshot().census.compromised
        );
    }

    #[test]
    fn chaos_quarantines_without_killing_the_run() {
        let mut cfg = tiny_cfg();
        cfg.chaos_lost_rate = 0.01;
        let report = FleetEngine::new(cfg).run();
        let t = report.totals();
        assert!(t.lost > 0, "1% chaos over 1440 vehicle-ticks");
        assert_eq!(report.final_snapshot().census.lost, t.lost);
        assert!(t.telemetry_frames < 120 * 12, "lost vehicles stop emitting");
    }

    #[test]
    fn posture_labels_are_stable() {
        assert_eq!(posture_label(&DefensePosture::none()), "none");
        assert_eq!(posture_label(&DefensePosture::full()), "full");
        assert_eq!(posture_label(&DefensePosture::depth(2)), "physical+network");
    }

    #[test]
    fn fidelity_labels_round_trip() {
        for f in [
            Fidelity::Live,
            Fidelity::Calibrated,
            Fidelity::Mixed { every: 7 },
        ] {
            assert_eq!(Fidelity::parse(&f.label()), Some(f));
        }
        assert_eq!(Fidelity::parse("mixed:0"), None, "zero period is invalid");
        assert_eq!(Fidelity::parse("tables"), None);
    }

    #[test]
    fn campaign_labels_round_trip() {
        for c in [CampaignMode::Fixed, CampaignMode::Generated { count: 8 }] {
            assert_eq!(CampaignMode::parse(&c.label()), Some(c));
        }
        assert_eq!(
            CampaignMode::parse("generated:0"),
            None,
            "empty pool is invalid"
        );
        assert_eq!(CampaignMode::parse("generated"), None);
        assert_eq!(CampaignMode::parse("scripted"), None);
    }

    #[test]
    fn fixed_mode_config_json_is_unchanged() {
        let cfg = tiny_cfg();
        let v = cfg.to_json();
        assert!(
            !v.to_string().contains("campaign"),
            "fixed-mode artifacts stay byte-identical to pre-campaign builds"
        );
        let mut cfg = tiny_cfg();
        cfg.campaign = CampaignMode::Generated { count: 6 };
        assert!(cfg.to_json().to_string().contains("\"generated:6\""));
    }

    #[test]
    fn generated_mode_runs_deterministically() {
        let mut cfg = tiny_cfg();
        cfg.campaign = CampaignMode::Generated { count: 6 };
        cfg.attack_rate = 0.05;
        let a = FleetEngine::new(cfg.clone()).run();
        let b = FleetEngine::new(cfg).run();
        assert_eq!(
            a.canonical_json().to_string(),
            b.canonical_json().to_string()
        );
        assert!(a.totals().attacks_attempted > 0, "walkers fired");
    }

    #[test]
    fn live_runs_carry_no_table_and_no_drift() {
        let mut cfg = tiny_cfg();
        cfg.fidelity = Fidelity::Live;
        let report = FleetEngine::new(cfg).run();
        assert_eq!(report.drift, DriftStats::default());
        assert!(report.totals().attacks_attempted > 0);
    }

    #[test]
    fn mixed_runs_probe_and_mostly_agree() {
        let mut cfg = tiny_cfg();
        cfg.fidelity = Fidelity::Mixed { every: 1 };
        cfg.attack_rate = 0.05;
        cfg.calibration_trials = 16;
        let report = FleetEngine::new(cfg).run();
        assert!(report.drift.probes > 0, "every resolution is probed");
        assert_eq!(
            report.drift.probes,
            report.totals().attacks_attempted,
            "probe period 1 shadows every attack"
        );
        assert!(
            report.drift.agreement_rate() > 0.25,
            "table and live share the outcome distribution; agreement {}",
            report.drift.agreement_rate()
        );
    }

    #[test]
    #[should_panic(expected = "at least one vehicle")]
    fn zero_vehicles_is_rejected() {
        let mut cfg = tiny_cfg();
        cfg.vehicles = 0;
        let _ = FleetEngine::with_graph(cfg, AttackGraph::new());
    }
}
