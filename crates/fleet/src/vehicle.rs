//! Per-vehicle vocabulary: lifecycle states, service levels, and the
//! alert records the parallel phase hands to the serial responder.
//!
//! The per-vehicle *state* itself lives columnar in
//! [`FleetState`](crate::state::FleetState) — a struct-of-arrays
//! census, one array per field — so the tick loop streams dense
//! columns instead of striding through padded structs. All behaviour
//! is a pure function of a vehicle's own columns, its own RNG stream,
//! and the shard-invariant
//! [`TickInputs`](crate::engine::TickInputs) computed by the engine —
//! the property that makes a fleet run bit-identical at any shard
//! count.

/// Where a vehicle is in its compromise/recovery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VehicleStatus {
    /// Full service.
    Healthy,
    /// Fault-degraded: residual health below 1, service continues.
    Degraded,
    /// Attacker-controlled (directly attacked or infected over V2X).
    Compromised,
    /// Contained by the response engine; awaiting verified repair.
    Isolated,
    /// Permanently gone (state machine panicked — quarantined).
    Lost,
}

impl VehicleStatus {
    /// Stable census key.
    pub fn as_str(self) -> &'static str {
        match self {
            VehicleStatus::Healthy => "healthy",
            VehicleStatus::Degraded => "degraded",
            VehicleStatus::Compromised => "compromised",
            VehicleStatus::Isolated => "isolated",
            VehicleStatus::Lost => "lost",
        }
    }
}

/// Service level a compromised vehicle still delivers (the attacker
/// degrades but rarely bricks — bricking would reveal the foothold).
pub const COMPROMISED_HEALTH: f64 = 0.25;
/// Service level while isolated by
/// [`ResponseAction::IsolateNode`](autosec_ids::response::ResponseAction)
/// (limited functions behind the quarantine boundary).
pub const ISOLATED_HEALTH: f64 = 0.45;
/// Service level in limp-home mode.
pub const LIMP_HOME_HEALTH: f64 = 0.3;

/// What a vehicle asks the (serial) response pipeline to do — the only
/// channel from the parallel phase back to shared state. Collected per
/// shard in vehicle order, merged in shard order, so the response
/// engine sees an identical alert sequence at any shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingAlert {
    /// Alerting vehicle (the response subject).
    pub vehicle: u32,
    /// Detector identity (drives the playbook choice).
    pub detector: &'static str,
    /// Layer the incident hit (drives the fleet defender's
    /// harden-the-loudest-layer rule).
    pub layer: autosec_sim::ArchLayer,
    /// What kind of event raised it.
    pub kind: AlertKind,
}

/// Alert provenance, for the totals census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A live attack (scenario step or V2X infection) was seen as it
    /// happened.
    Attack,
    /// A fault injection was noticed by the layer's defenses.
    Fault,
    /// An already-compromised vehicle was flagged after the fact.
    LateDetect,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_census_keys_are_stable() {
        assert_eq!(VehicleStatus::Healthy.as_str(), "healthy");
        assert_eq!(VehicleStatus::Lost.as_str(), "lost");
    }
}
