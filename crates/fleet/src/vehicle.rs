//! The per-vehicle state machine.
//!
//! A fleet vehicle is deliberately tiny — a status, a residual health,
//! an incident clock and a private RNG substream — so that hundreds of
//! thousands fit in cache-friendly contiguous memory. All behaviour
//! lives in [`Vehicle::step`], which is a pure function of the
//! vehicle's own state, its own RNG stream, and the shard-invariant
//! [`TickInputs`](crate::engine::TickInputs) computed by the engine —
//! the property that makes a fleet run bit-identical at any shard
//! count.

use autosec_sim::{ArchLayer, SimRng};

/// Where a vehicle is in its compromise/recovery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VehicleStatus {
    /// Full service.
    Healthy,
    /// Fault-degraded: residual health below 1, service continues.
    Degraded,
    /// Attacker-controlled (directly attacked or infected over V2X).
    Compromised,
    /// Contained by the response engine; awaiting verified repair.
    Isolated,
    /// Permanently gone (state machine panicked — quarantined).
    Lost,
}

impl VehicleStatus {
    /// Stable census key.
    pub fn as_str(self) -> &'static str {
        match self {
            VehicleStatus::Healthy => "healthy",
            VehicleStatus::Degraded => "degraded",
            VehicleStatus::Compromised => "compromised",
            VehicleStatus::Isolated => "isolated",
            VehicleStatus::Lost => "lost",
        }
    }
}

/// Service level a compromised vehicle still delivers (the attacker
/// degrades but rarely bricks — bricking would reveal the foothold).
pub const COMPROMISED_HEALTH: f64 = 0.25;
/// Service level while isolated by
/// [`ResponseAction::IsolateNode`](autosec_ids::response::ResponseAction)
/// (limited functions behind the quarantine boundary).
pub const ISOLATED_HEALTH: f64 = 0.45;
/// Service level in limp-home mode.
pub const LIMP_HOME_HEALTH: f64 = 0.3;

/// One vehicle of the live fleet.
#[derive(Debug, Clone)]
pub struct Vehicle {
    /// Fleet-unique id (also the IDS alert subject).
    pub id: u32,
    /// Lifecycle status.
    pub status: VehicleStatus,
    /// Residual service level in `[0, 1]` — what the availability
    /// census averages.
    pub health: f64,
    /// Tick the current incident started (compromise or degradation);
    /// meaningless while `Healthy`.
    pub since: u64,
    /// Whether the IDS has already flagged the current incident.
    pub flagged: bool,
    /// Layer of the current incident (drives the alert's detector
    /// identity); meaningless while `Healthy`.
    pub incident_layer: ArchLayer,
    /// This vehicle's private RNG substream
    /// (`root.fork("fleet/vehicles").fork_idx(id)`).
    pub rng: SimRng,
}

impl Vehicle {
    /// A healthy vehicle drawing from `fleet_base.fork_idx(id)`.
    pub fn new(id: u32, fleet_base: &SimRng) -> Self {
        Self {
            id,
            status: VehicleStatus::Healthy,
            health: 1.0,
            since: 0,
            flagged: false,
            incident_layer: ArchLayer::Physical,
            rng: fleet_base.fork_idx(u64::from(id)),
        }
    }

    /// Whether the vehicle still emits telemetry.
    pub fn alive(&self) -> bool {
        self.status != VehicleStatus::Lost
    }

    /// Marks the vehicle compromised at `tick` via `layer`.
    pub fn compromise(&mut self, tick: u64, layer: ArchLayer) {
        if self.status == VehicleStatus::Healthy || self.status == VehicleStatus::Degraded {
            self.since = tick;
        }
        self.status = VehicleStatus::Compromised;
        self.health = COMPROMISED_HEALTH;
        self.flagged = false;
        self.incident_layer = layer;
    }

    /// Quarantines the vehicle after its state machine panicked: it
    /// leaves the fleet permanently, and its RNG stream is never
    /// consumed again (so every other vehicle's stream is untouched).
    pub fn quarantine(&mut self, tick: u64) {
        if self.status == VehicleStatus::Healthy {
            self.since = tick;
        }
        self.status = VehicleStatus::Lost;
        self.health = 0.0;
        self.flagged = false;
    }

    /// Restores full service after a verified repair.
    pub fn restore(&mut self) {
        self.status = VehicleStatus::Healthy;
        self.health = 1.0;
        self.flagged = false;
    }
}

/// What a vehicle asks the (serial) response pipeline to do — the only
/// channel from the parallel phase back to shared state. Collected per
/// shard in vehicle order, merged in shard order, so the response
/// engine sees an identical alert sequence at any shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingAlert {
    /// Alerting vehicle (the response subject).
    pub vehicle: u32,
    /// Detector identity (drives the playbook choice).
    pub detector: &'static str,
    /// What kind of event raised it.
    pub kind: AlertKind,
}

/// Alert provenance, for the totals census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A live attack (scenario step or V2X infection) was seen as it
    /// happened.
    Attack,
    /// A fault injection was noticed by the layer's defenses.
    Fault,
    /// An already-compromised vehicle was flagged after the fact.
    LateDetect,
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::RngCore as _;

    #[test]
    fn vehicles_draw_decorrelated_streams() {
        let base = SimRng::seed(1).fork("fleet/vehicles");
        let mut a = Vehicle::new(0, &base);
        let mut b = Vehicle::new(1, &base);
        assert_ne!(a.rng.next_u64(), b.rng.next_u64());
        // Rebuilding vehicle 0 replays its stream exactly.
        let mut a2 = Vehicle::new(0, &base);
        let first = Vehicle::new(0, &base).rng.next_u64();
        assert_eq!(a2.rng.next_u64(), first);
    }

    #[test]
    fn lifecycle_transitions() {
        let base = SimRng::seed(2).fork("fleet/vehicles");
        let mut v = Vehicle::new(3, &base);
        assert!(v.alive());
        v.compromise(7, ArchLayer::Collaboration);
        assert_eq!(v.status, VehicleStatus::Compromised);
        assert_eq!(v.since, 7);
        assert_eq!(v.health, COMPROMISED_HEALTH);
        v.restore();
        assert_eq!(v.status, VehicleStatus::Healthy);
        assert_eq!(v.health, 1.0);
        v.quarantine(9);
        assert!(!v.alive());
        assert_eq!(v.health, 0.0);
        // Compromising a degraded vehicle restarts the incident clock:
        // the compromise is the incident that containment must resolve.
        let mut w = Vehicle::new(4, &base);
        w.status = VehicleStatus::Degraded;
        w.health = 0.8;
        w.since = 2;
        w.compromise(5, ArchLayer::Network);
        assert_eq!(w.since, 5, "degraded->compromised restarts the clock");
    }
}
