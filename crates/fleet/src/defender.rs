//! The optional fleet-wide defense policy (`--defender`): static
//! pre-hardening or a closed-loop rule policy acting on the SoA census
//! between ticks.
//!
//! Three modes:
//!
//! * [`DefenderMode::Off`] — today's behaviour, bit-identical to
//!   before the defender existed.
//! * [`DefenderMode::Static`] — the whole budget is spent at
//!   construction hardening [`FLEET_PRIORITY`] layers (the fleet
//!   analogue of picking a posture up front); nothing happens at
//!   runtime.
//! * [`DefenderMode::ClosedLoop`] — the budget is held in reserve and
//!   spent between ticks by a deterministic rule table reading the
//!   tick's alert tallies, the census, and the backend breach flag.
//!
//! The closed-loop policy consumes **no RNG draws** and runs in the
//! serial phase after the census is taken, so a defender-enabled run
//! is exactly as shard-invariant as a plain one. A defender with zero
//! budget can never act and is treated as [`DefenderMode::Off`]
//! everywhere (config echo included), making `--defender closed-loop
//! --defender-budget 0` bit-identical to `--defender off` — a pinned
//! property test.

use autosec_autodefense::{DefenseBudget, HARDEN_COST, MONITOR_COST};
use autosec_core::campaign::DefensePosture;
use autosec_sim::ArchLayer;
use serde_json::{json, Value};

/// Layer hardening priority for fleet budgets, most valuable first:
/// the epidemic spreads over Collaboration, the kill chain exfiltrates
/// over Data, then the remaining layers bottom-up.
pub const FLEET_PRIORITY: [ArchLayer; 6] = [
    ArchLayer::Collaboration,
    ArchLayer::Data,
    ArchLayer::Physical,
    ArchLayer::Network,
    ArchLayer::SoftwarePlatform,
    ArchLayer::SystemOfSystems,
];

/// Alerts a layer must accumulate in one tick before the
/// harden-the-loudest-layer rule pays for it.
pub const ALERT_RULE_MIN: u32 = 2;
/// Compromised fraction above which the epidemic rule hardens
/// Collaboration pre-emptively.
pub const EPI_HARDEN_FRAC: f64 = 0.02;
/// Compromised fraction above which monitoring spend starts.
pub const MONITOR_FRAC: f64 = 0.001;
/// Late-detect probability added per monitoring purchase.
pub const FLEET_MONITOR_STEP: f64 = 0.05;
/// Monitoring purchases allowed per run.
pub const FLEET_MONITOR_MAX: usize = 3;

/// Which fleet-wide defense policy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DefenderMode {
    /// No defender (the pre-defender fleet, bit for bit).
    #[default]
    Off,
    /// Budget spent up front on [`FLEET_PRIORITY`] hardening.
    Static,
    /// Budget held for runtime rule-table actions between ticks.
    ClosedLoop,
}

impl DefenderMode {
    /// Stable CLI/artifact label.
    pub fn label(&self) -> &'static str {
        match self {
            DefenderMode::Off => "off",
            DefenderMode::Static => "static",
            DefenderMode::ClosedLoop => "closed-loop",
        }
    }

    /// Parses a CLI label (inverse of [`DefenderMode::label`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(DefenderMode::Off),
            "static" => Some(DefenderMode::Static),
            "closed-loop" => Some(DefenderMode::ClosedLoop),
            _ => None,
        }
    }
}

/// What the closed-loop policy reads each tick — pure functions of
/// this tick's merged outputs, identical at any shard count.
#[derive(Debug, Clone, Copy)]
pub struct TickObservation {
    /// Alerts this tick per layer ([`ArchLayer::ALL`] order).
    pub layer_alerts: [u32; 6],
    /// Compromised fraction of the fleet after this tick.
    pub compromised_frac: f64,
    /// Whether the backend is breached after this tick.
    pub backend_breached: bool,
}

/// The fleet-wide defender instance carried by the engine.
#[derive(Debug, Clone)]
pub struct FleetDefender {
    mode: DefenderMode,
    budget: DefenseBudget,
    monitor_purchases: usize,
    monitor_boost: f64,
    hardened: Vec<ArchLayer>,
    actions: usize,
}

impl FleetDefender {
    /// Builds the defender; one action per tick at runtime.
    pub fn new(mode: DefenderMode, budget: f64) -> Self {
        Self {
            mode,
            budget: DefenseBudget::new(budget, 1),
            monitor_purchases: 0,
            monitor_boost: 0.0,
            hardened: Vec::new(),
            actions: 0,
        }
    }

    /// Whether this defender can ever act. A zero budget — whatever
    /// the mode — is the null defender and behaves as
    /// [`DefenderMode::Off`] everywhere.
    pub fn is_active(&self) -> bool {
        self.mode != DefenderMode::Off && self.budget.total() > 0.0
    }

    /// Whether runtime rule turns should run.
    pub fn is_closed_loop(&self) -> bool {
        self.is_active() && self.mode == DefenderMode::ClosedLoop
    }

    /// Extra late-detect probability bought so far.
    pub fn monitor_boost(&self) -> f64 {
        self.monitor_boost
    }

    /// Static-mode deployment: hardens [`FLEET_PRIORITY`] layers that
    /// are still off, one [`HARDEN_COST`] each, while budget lasts.
    /// Called at engine construction, before calibration, so the whole
    /// run (tables, fault references, epidemic edge) sees the hardened
    /// posture.
    pub fn prespend_static(&mut self, posture: &mut DefensePosture) {
        if !self.is_active() || self.mode != DefenderMode::Static {
            return;
        }
        for layer in FLEET_PRIORITY {
            if posture.enabled(layer) {
                continue;
            }
            if !self.budget.try_prespend(HARDEN_COST) {
                break;
            }
            posture.set(layer, true);
            self.hardened.push(layer);
            self.actions += 1;
        }
    }

    /// One closed-loop turn, run between ticks. Returns whether the
    /// posture changed (the engine then recomputes posture-derived
    /// rates).
    pub fn tick(&mut self, posture: &mut DefensePosture, obs: &TickObservation) -> bool {
        if !self.is_closed_loop() {
            return false;
        }
        self.budget.begin_turn();
        // Rule 1 — the backend is breached: harden Data (the kill
        // chain's exfiltration layer) if it is still open.
        if obs.backend_breached && !posture.enabled(ArchLayer::Data) {
            return self.try_harden(posture, ArchLayer::Data);
        }
        // Rule 2 — harden the loudest still-open layer of this tick.
        let mut best: Option<(ArchLayer, u32)> = None;
        for layer in ArchLayer::ALL {
            let count = obs.layer_alerts[layer as usize];
            if count >= ALERT_RULE_MIN
                && !posture.enabled(layer)
                && best.is_none_or(|(_, c)| count > c)
            {
                best = Some((layer, count));
            }
        }
        if let Some((layer, _)) = best {
            return self.try_harden(posture, layer);
        }
        // Rule 3 — the epidemic is taking off: harden Collaboration.
        if obs.compromised_frac > EPI_HARDEN_FRAC && !posture.enabled(ArchLayer::Collaboration) {
            return self.try_harden(posture, ArchLayer::Collaboration);
        }
        // Rule 4 — compromise exists somewhere: buy monitoring (faster
        // late-detect sweeps) up to the cap.
        if obs.compromised_frac > MONITOR_FRAC
            && self.monitor_purchases < FLEET_MONITOR_MAX
            && self.budget.try_spend(MONITOR_COST)
        {
            self.monitor_purchases += 1;
            self.monitor_boost += FLEET_MONITOR_STEP;
            self.actions += 1;
        }
        false
    }

    fn try_harden(&mut self, posture: &mut DefensePosture, layer: ArchLayer) -> bool {
        if !self.budget.try_spend(HARDEN_COST) {
            return false;
        }
        posture.set(layer, true);
        self.hardened.push(layer);
        self.actions += 1;
        true
    }

    /// Canonical JSON body (only emitted for active defenders).
    pub fn to_json(&self) -> Value {
        json!({
            "mode": self.mode.label(),
            "budget": self.budget.total(),
            "spent": self.budget.spent(),
            "actions": self.actions as u64,
            "hardened": self.hardened.iter().map(ToString::to_string).collect::<Vec<_>>(),
            "monitor_boost": self.monitor_boost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_round_trip() {
        for m in [
            DefenderMode::Off,
            DefenderMode::Static,
            DefenderMode::ClosedLoop,
        ] {
            assert_eq!(DefenderMode::parse(m.label()), Some(m));
        }
        assert_eq!(DefenderMode::parse("adaptive"), None);
    }

    #[test]
    fn zero_budget_defender_is_inert() {
        let mut d = FleetDefender::new(DefenderMode::ClosedLoop, 0.0);
        assert!(!d.is_active());
        let mut posture = DefensePosture::none();
        let obs = TickObservation {
            layer_alerts: [9; 6],
            compromised_frac: 0.5,
            backend_breached: true,
        };
        assert!(!d.tick(&mut posture, &obs));
        assert_eq!(posture, DefensePosture::none());
    }

    #[test]
    fn static_prespend_follows_priority_within_budget() {
        let mut d = FleetDefender::new(DefenderMode::Static, 2.0);
        let mut posture = DefensePosture::none();
        d.prespend_static(&mut posture);
        assert!(posture.enabled(ArchLayer::Collaboration));
        assert!(posture.enabled(ArchLayer::Data));
        assert!(!posture.enabled(ArchLayer::Physical), "budget exhausted");
        assert_eq!(d.budget.remaining(), 0.0);
    }

    #[test]
    fn breach_rule_outranks_alert_rule() {
        let mut d = FleetDefender::new(DefenderMode::ClosedLoop, 6.0);
        let mut posture = DefensePosture::none();
        let mut obs = TickObservation {
            layer_alerts: [0; 6],
            compromised_frac: 0.0,
            backend_breached: true,
        };
        obs.layer_alerts[ArchLayer::Network as usize] = 50;
        assert!(d.tick(&mut posture, &obs));
        assert!(posture.enabled(ArchLayer::Data), "breach rule fires first");
        assert!(!posture.enabled(ArchLayer::Network), "one action per tick");
        assert!(d.tick(&mut posture, &obs));
        assert!(posture.enabled(ArchLayer::Network), "alert rule next tick");
    }

    #[test]
    fn monitoring_caps_out() {
        let mut d = FleetDefender::new(DefenderMode::ClosedLoop, 10.0);
        let mut posture = DefensePosture::full();
        let obs = TickObservation {
            layer_alerts: [0; 6],
            compromised_frac: 0.01,
            backend_breached: false,
        };
        for _ in 0..10 {
            d.tick(&mut posture, &obs);
        }
        assert_eq!(d.monitor_purchases, FLEET_MONITOR_MAX);
        assert!((d.monitor_boost() - 0.15).abs() < 1e-12);
        assert_eq!(d.budget.spent(), FLEET_MONITOR_MAX as f64 * MONITOR_COST);
    }
}
