//! # autosec-fleet — sharded live-fleet service mode
//!
//! Everything before this crate ran *experiments*: closed-form trials
//! that start, measure one thing and exit. `autosec-fleet` is the
//! *service* mode the paper's operational picture implies — a
//! long-running loop over tens of thousands of vehicles, each a
//! lightweight state machine, under **continuous** attack, fault and
//! defense pressure:
//!
//! - direct attacks resolve through the two-tier
//!   [`ScenarioEngine`](autosec_core::engine::ScenarioEngine): by
//!   default against a
//!   [`StepOutcomeTable`](autosec_core::engine::StepOutcomeTable)
//!   calibrated from the live campaign models (table-lookup prices on
//!   the hot path), with `--fidelity live` replaying every real
//!   [`ScenarioStep`](autosec_core::scenario::ScenarioStep) end to end
//!   and `--fidelity mixed:K` shadowing ~every Kth resolution with a
//!   live replay that feeds a drift statistic ([`DriftStats`]);
//! - epidemic V2X infection spreads through the fleet with pressure
//!   proportional to the compromised fraction, resolved against the
//!   calibrated ghost-object edge of the
//!   [`AttackGraph`](autosec_adversary::AttackGraph);
//! - cross-layer faults from a horizon-scaled
//!   [`FaultPlan`](autosec_faults::FaultPlan) strike exposed subsets
//!   through the real per-layer injection adapters;
//! - detections feed one shared
//!   [`ResponseEngine`](autosec_ids::response::ResponseEngine) whose
//!   playbook escalates to isolation and limp-home, and verified
//!   repairs close the MTTR loop;
//! - the backend kill chain runs as a live breach process that, while
//!   open, doubles infection pressure.
//!
//! ## Determinism at any shard count
//!
//! The fleet state lives as a struct-of-arrays census
//! ([`FleetState`]: one dense column per field) split into contiguous
//! windows across worker threads, but vehicle `i` draws only from the
//! `fork_idx(i)` substream of the fleet RNG, tick inputs are pure
//! functions of the previous tick, and shard outputs merge back in
//! vehicle order. A run is therefore **bit-identical at any
//! `--shards`, in every fidelity mode** — `--shards` buys wall-clock
//! time and nothing else, a property the integration tests and the CI
//! smoke job verify byte-for-byte on canonical snapshots. Mixed
//! fidelity keeps the contract because drift probes trigger on
//! `(vehicle_id + tick)` arithmetic and draw from their own forked
//! substream, never from a vehicle's.
//!
//! A vehicle whose state machine panics is quarantined
//! ([`VehicleStatus::Lost`]) without poisoning its shard; its RNG
//! stream is simply never consumed again, so the rest of the fleet's
//! trajectory is unchanged.
//!
//! ```
//! use autosec_fleet::{FleetConfig, FleetEngine};
//!
//! let report = FleetEngine::new(FleetConfig {
//!     vehicles: 200,
//!     ticks: 20,
//!     shards: 4,
//!     calibration_trials: 4,
//!     ..FleetConfig::default()
//! })
//! .run();
//! assert_eq!(report.final_snapshot().census.total(), 200);
//! assert!(report.availability > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defender;
pub mod engine;
pub mod shard;
pub mod snapshot;
pub mod state;
pub mod vehicle;

pub use defender::{DefenderMode, FleetDefender, TickObservation, FLEET_PRIORITY};
pub use engine::{
    posture_label, CampaignMode, DriftStats, FaultOnset, Fidelity, FleetConfig, FleetEngine,
    FleetReport, TickInputs,
};
pub use shard::{run_tick_sharded, ShardOutput};
pub use snapshot::{Census, FleetSnapshot, FleetTotals};
pub use state::{FleetColumns, FleetState};
pub use vehicle::{AlertKind, PendingAlert, VehicleStatus};
