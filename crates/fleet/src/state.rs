//! Struct-of-arrays fleet state.
//!
//! The fleet used to be a `Vec<Vehicle>` of per-vehicle structs. At
//! population scale the tick loop is a columnar walk — check a status,
//! draw from an RNG, bump a health — so the state now lives as one
//! array per field ([`FleetState`]): the common no-event path touches
//! the status and RNG columns only, and a census pass streams two
//! dense arrays instead of striding through padded structs. The layout
//! is also what a batched-RNG vehicle phase would want to vectorize
//! over.
//!
//! Mutable access goes through [`FleetColumns`], a borrowed columnar
//! window over a contiguous id range. [`FleetState::shard_views`]
//! splits the fleet into per-shard windows the same way the old code
//! split the vehicle vector — contiguous chunks, so shard merge order
//! *is* vehicle order and the shard-invariance contract carries over
//! unchanged.

use autosec_sim::{ArchLayer, SimRng};

use crate::vehicle::{VehicleStatus, COMPROMISED_HEALTH};

/// The whole fleet, one column per per-vehicle field.
///
/// Vehicle `i`'s fields live at index `i` of every column; its RNG is
/// the `fork_idx(i)` substream of the fleet base, exactly as before
/// the columnar refactor.
#[derive(Debug, Clone)]
pub struct FleetState {
    /// Lifecycle status per vehicle.
    pub status: Vec<VehicleStatus>,
    /// Residual service level in `[0, 1]` per vehicle.
    pub health: Vec<f64>,
    /// Tick the current incident started; meaningless while `Healthy`.
    pub since: Vec<u64>,
    /// Whether the IDS already flagged the current incident.
    pub flagged: Vec<bool>,
    /// Layer of the current incident; meaningless while `Healthy`.
    pub incident_layer: Vec<ArchLayer>,
    /// Private RNG substream per vehicle
    /// (`root.fork("fleet/vehicles").fork_idx(i)`).
    pub rng: Vec<SimRng>,
}

impl FleetState {
    /// A fleet of `n` healthy vehicles, vehicle `i` drawing from
    /// `fleet_base.fork_idx(i)`.
    pub fn new(n: usize, fleet_base: &SimRng) -> Self {
        Self {
            status: vec![VehicleStatus::Healthy; n],
            health: vec![1.0; n],
            since: vec![0; n],
            flagged: vec![false; n],
            incident_layer: vec![ArchLayer::Physical; n],
            rng: (0..n).map(|i| fleet_base.fork_idx(i as u64)).collect(),
        }
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// The whole fleet as one columnar window (ids `0..len`).
    pub fn columns(&mut self) -> FleetColumns<'_> {
        FleetColumns {
            base: 0,
            status: &mut self.status,
            health: &mut self.health,
            since: &mut self.since,
            flagged: &mut self.flagged,
            incident_layer: &mut self.incident_layer,
            rng: &mut self.rng,
        }
    }

    /// Splits the fleet into contiguous windows of at most `chunk`
    /// vehicles — the per-shard views of the parallel tick phase.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn shard_views(&mut self, chunk: usize) -> Vec<FleetColumns<'_>> {
        assert!(chunk > 0, "shard chunk must be positive");
        let mut views = Vec::with_capacity(self.len().div_ceil(chunk.max(1)).max(1));
        let mut base = 0u32;
        let mut status = self.status.as_mut_slice();
        let mut health = self.health.as_mut_slice();
        let mut since = self.since.as_mut_slice();
        let mut flagged = self.flagged.as_mut_slice();
        let mut incident_layer = self.incident_layer.as_mut_slice();
        let mut rng = self.rng.as_mut_slice();
        while !status.is_empty() {
            let take = chunk.min(status.len());
            let (s, s_rest) = std::mem::take(&mut status).split_at_mut(take);
            let (h, h_rest) = std::mem::take(&mut health).split_at_mut(take);
            let (t, t_rest) = std::mem::take(&mut since).split_at_mut(take);
            let (f, f_rest) = std::mem::take(&mut flagged).split_at_mut(take);
            let (l, l_rest) = std::mem::take(&mut incident_layer).split_at_mut(take);
            let (r, r_rest) = std::mem::take(&mut rng).split_at_mut(take);
            status = s_rest;
            health = h_rest;
            since = t_rest;
            flagged = f_rest;
            incident_layer = l_rest;
            rng = r_rest;
            views.push(FleetColumns {
                base,
                status: s,
                health: h,
                since: t,
                flagged: f,
                incident_layer: l,
                rng: r,
            });
            base += take as u32;
        }
        views
    }
}

/// A mutable columnar window over the contiguous vehicle range
/// `base .. base + len`. Index `i` within the window is vehicle
/// `base + i` of the fleet.
#[derive(Debug)]
pub struct FleetColumns<'a> {
    base: u32,
    /// Lifecycle status column.
    pub status: &'a mut [VehicleStatus],
    /// Residual health column.
    pub health: &'a mut [f64],
    /// Incident-start tick column.
    pub since: &'a mut [u64],
    /// IDS-flagged column.
    pub flagged: &'a mut [bool],
    /// Incident layer column.
    pub incident_layer: &'a mut [ArchLayer],
    /// Private RNG column.
    pub rng: &'a mut [SimRng],
}

impl FleetColumns<'_> {
    /// Vehicles in this window.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Fleet-unique id of window index `i` (also the IDS alert
    /// subject).
    pub fn id(&self, i: usize) -> u32 {
        self.base + i as u32
    }

    /// Whether vehicle `i` still emits telemetry.
    pub fn alive(&self, i: usize) -> bool {
        self.status[i] != VehicleStatus::Lost
    }

    /// Marks vehicle `i` compromised at `tick` via `layer`.
    pub fn compromise(&mut self, i: usize, tick: u64, layer: ArchLayer) {
        if matches!(
            self.status[i],
            VehicleStatus::Healthy | VehicleStatus::Degraded
        ) {
            self.since[i] = tick;
        }
        self.status[i] = VehicleStatus::Compromised;
        self.health[i] = COMPROMISED_HEALTH;
        self.flagged[i] = false;
        self.incident_layer[i] = layer;
    }

    /// Quarantines vehicle `i` after its state machine panicked: it
    /// leaves the fleet permanently, and its RNG stream is never
    /// consumed again (so every other vehicle's stream is untouched).
    pub fn quarantine(&mut self, i: usize, tick: u64) {
        if self.status[i] == VehicleStatus::Healthy {
            self.since[i] = tick;
        }
        self.status[i] = VehicleStatus::Lost;
        self.health[i] = 0.0;
        self.flagged[i] = false;
    }

    /// Restores vehicle `i` to full service after a verified repair.
    pub fn restore(&mut self, i: usize) {
        self.status[i] = VehicleStatus::Healthy;
        self.health[i] = 1.0;
        self.flagged[i] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore as _;

    #[test]
    fn vehicles_draw_decorrelated_streams() {
        let base = SimRng::seed(1).fork("fleet/vehicles");
        let mut state = FleetState::new(2, &base);
        let a = state.rng[0].next_u64();
        let b = state.rng[1].next_u64();
        assert_ne!(a, b);
        // Rebuilding the fleet replays vehicle 0's stream exactly.
        let mut again = FleetState::new(2, &base);
        assert_eq!(again.rng[0].next_u64(), a);
    }

    #[test]
    fn lifecycle_transitions() {
        let base = SimRng::seed(2).fork("fleet/vehicles");
        let mut state = FleetState::new(5, &base);
        let mut cols = state.columns();
        assert!(cols.alive(3));
        cols.compromise(3, 7, ArchLayer::Collaboration);
        assert_eq!(cols.status[3], VehicleStatus::Compromised);
        assert_eq!(cols.since[3], 7);
        assert_eq!(cols.health[3], COMPROMISED_HEALTH);
        cols.restore(3);
        assert_eq!(cols.status[3], VehicleStatus::Healthy);
        assert_eq!(cols.health[3], 1.0);
        cols.quarantine(3, 9);
        assert!(!cols.alive(3));
        assert_eq!(cols.health[3], 0.0);
        // Compromising a degraded vehicle restarts the incident clock:
        // the compromise is the incident that containment must resolve.
        cols.status[4] = VehicleStatus::Degraded;
        cols.health[4] = 0.8;
        cols.since[4] = 2;
        cols.compromise(4, 5, ArchLayer::Network);
        assert_eq!(cols.since[4], 5, "degraded->compromised restarts the clock");
    }

    #[test]
    fn shard_views_tile_the_fleet_contiguously() {
        let base = SimRng::seed(3).fork("fleet/vehicles");
        let mut state = FleetState::new(10, &base);
        let views = state.shard_views(4);
        assert_eq!(views.len(), 3, "10 vehicles in chunks of 4");
        let sizes: Vec<usize> = views.iter().map(FleetColumns::len).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        let ids: Vec<u32> = views
            .iter()
            .flat_map(|v| (0..v.len()).map(|i| v.id(i)).collect::<Vec<_>>())
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shard_views_write_through_to_the_fleet() {
        let base = SimRng::seed(4).fork("fleet/vehicles");
        let mut state = FleetState::new(6, &base);
        {
            let mut views = state.shard_views(3);
            views[1].compromise(0, 2, ArchLayer::Data);
        }
        assert_eq!(state.status[3], VehicleStatus::Compromised);
        assert_eq!(state.incident_layer[3], ArchLayer::Data);
    }
}
