//! Canonical fleet snapshots.
//!
//! A snapshot is everything the determinism contract promises: a pure
//! function of `(seed, config)`, independent of `--shards` and of
//! wall-clock time. The JSON codec rides on the vendored `serde_json`
//! whose object map is a `BTreeMap`, so equal snapshots always render
//! to identical bytes — the property the CI artifact diff checks.

use serde_json::{json, Value};

use crate::state::FleetState;
use crate::vehicle::VehicleStatus;

/// Point-in-time fleet census: how many vehicles sit in each status,
/// plus the mean residual health (the availability integrand).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Census {
    /// Vehicles at full service.
    pub healthy: u64,
    /// Fault-degraded vehicles.
    pub degraded: u64,
    /// Attacker-controlled vehicles.
    pub compromised: u64,
    /// Contained vehicles awaiting verified repair.
    pub isolated: u64,
    /// Quarantined (panicked) vehicles.
    pub lost: u64,
    /// Mean residual health over the whole fleet.
    pub mean_health: f64,
}

impl Census {
    /// Counts the fleet — two dense column scans (status, then
    /// health), the health sum running serially in vehicle order so
    /// the float total never depends on shard layout.
    pub fn take(state: &FleetState) -> Self {
        let mut c = Census::default();
        for status in &state.status {
            match status {
                VehicleStatus::Healthy => c.healthy += 1,
                VehicleStatus::Degraded => c.degraded += 1,
                VehicleStatus::Compromised => c.compromised += 1,
                VehicleStatus::Isolated => c.isolated += 1,
                VehicleStatus::Lost => c.lost += 1,
            }
        }
        let health_sum: f64 = state.health.iter().sum();
        c.mean_health = if state.is_empty() {
            1.0
        } else {
            health_sum / state.len() as f64
        };
        c
    }

    /// Total vehicles counted.
    pub fn total(&self) -> u64 {
        self.healthy + self.degraded + self.compromised + self.isolated + self.lost
    }

    /// Canonical JSON body.
    pub fn to_json(&self) -> Value {
        json!({
            "healthy": self.healthy,
            "degraded": self.degraded,
            "compromised": self.compromised,
            "isolated": self.isolated,
            "lost": self.lost,
            "mean_health": self.mean_health,
        })
    }
}

/// Cumulative run counters — monotone, shard-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetTotals {
    /// Telemetry frames ingested (one per alive vehicle per tick).
    pub telemetry_frames: u64,
    /// Direct scenario-step attacks launched.
    pub attacks_attempted: u64,
    /// Direct attacks that took their vehicle.
    pub attacks_succeeded: u64,
    /// Epidemic (V2X) infections.
    pub infections: u64,
    /// Fault injections applied to exposed vehicles.
    pub fault_injections: u64,
    /// Alerts fed to the response engine.
    pub alerts: u64,
    /// Responses by action.
    pub responses_filter: u64,
    /// `Rekey` responses.
    pub responses_rekey: u64,
    /// `IsolateNode` responses.
    pub responses_isolate: u64,
    /// `LimpHome` responses.
    pub responses_limp_home: u64,
    /// `Notify` responses.
    pub responses_notify: u64,
    /// Verified repairs (vehicle returned to full service).
    pub recoveries: u64,
    /// Sum of incident-to-repair times in ticks (MTTR numerator).
    pub mttr_ticks: u64,
    /// Backend kill-chain breaches.
    pub backend_breaches: u64,
    /// Backend breaches patched out.
    pub backend_patches: u64,
    /// Vehicles quarantined after a state-machine panic.
    pub lost: u64,
}

impl FleetTotals {
    /// Folds another counter block in (shard merge — addition only, so
    /// the merge is order-independent).
    pub fn absorb(&mut self, other: &FleetTotals) {
        self.telemetry_frames += other.telemetry_frames;
        self.attacks_attempted += other.attacks_attempted;
        self.attacks_succeeded += other.attacks_succeeded;
        self.infections += other.infections;
        self.fault_injections += other.fault_injections;
        self.alerts += other.alerts;
        self.responses_filter += other.responses_filter;
        self.responses_rekey += other.responses_rekey;
        self.responses_isolate += other.responses_isolate;
        self.responses_limp_home += other.responses_limp_home;
        self.responses_notify += other.responses_notify;
        self.recoveries += other.recoveries;
        self.mttr_ticks += other.mttr_ticks;
        self.backend_breaches += other.backend_breaches;
        self.backend_patches += other.backend_patches;
        self.lost += other.lost;
    }

    /// Mean time to recovery in milliseconds (0 when nothing
    /// recovered).
    pub fn mttr_ms(&self, tick_ms: u64) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            (self.mttr_ticks * tick_ms) as f64 / self.recoveries as f64
        }
    }

    /// Canonical JSON body.
    pub fn to_json(&self) -> Value {
        json!({
            "telemetry_frames": self.telemetry_frames,
            "attacks_attempted": self.attacks_attempted,
            "attacks_succeeded": self.attacks_succeeded,
            "infections": self.infections,
            "fault_injections": self.fault_injections,
            "alerts": self.alerts,
            "responses_filter": self.responses_filter,
            "responses_rekey": self.responses_rekey,
            "responses_isolate": self.responses_isolate,
            "responses_limp_home": self.responses_limp_home,
            "responses_notify": self.responses_notify,
            "recoveries": self.recoveries,
            "mttr_ticks": self.mttr_ticks,
            "backend_breaches": self.backend_breaches,
            "backend_patches": self.backend_patches,
            "lost": self.lost,
        })
    }
}

/// One periodic snapshot of the running fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Tick the snapshot was taken at (after that tick completed).
    pub tick: u64,
    /// Whether the backend was breached at snapshot time.
    pub backend_breached: bool,
    /// The fleet census.
    pub census: Census,
    /// Cumulative counters up to and including `tick`.
    pub totals: FleetTotals,
}

impl FleetSnapshot {
    /// Canonical JSON body (sorted keys, shard-invariant fields only).
    pub fn to_json(&self) -> Value {
        json!({
            "tick": self.tick,
            "backend_breached": self.backend_breached,
            "census": self.census.to_json(),
            "totals": self.totals.to_json(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_sim::SimRng;

    #[test]
    fn census_counts_and_averages() {
        let base = SimRng::seed(1).fork("fleet/vehicles");
        let mut fleet = FleetState::new(4, &base);
        let mut cols = fleet.columns();
        cols.quarantine(1, 1);
        cols.compromise(2, 1, autosec_sim::ArchLayer::Network);
        let c = Census::take(&fleet);
        assert_eq!(c.healthy, 2);
        assert_eq!(c.lost, 1);
        assert_eq!(c.compromised, 1);
        assert_eq!(c.total(), 4);
        let expected = (1.0 + 0.0 + crate::vehicle::COMPROMISED_HEALTH + 1.0) / 4.0;
        assert!((c.mean_health - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_census_is_healthy() {
        let c = Census::take(&FleetState::new(0, &SimRng::seed(1)));
        assert_eq!(c.total(), 0);
        assert_eq!(c.mean_health, 1.0);
    }

    #[test]
    fn totals_absorb_is_additive() {
        let mut a = FleetTotals {
            alerts: 2,
            recoveries: 1,
            mttr_ticks: 10,
            ..Default::default()
        };
        let b = FleetTotals {
            alerts: 3,
            recoveries: 1,
            mttr_ticks: 30,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.alerts, 5);
        assert_eq!(a.mttr_ms(100), 2_000.0, "(10+30)*100ms / 2");
    }

    #[test]
    fn snapshot_json_is_canonical_and_sorted() {
        let snap = FleetSnapshot {
            tick: 50,
            backend_breached: true,
            census: Census::default(),
            totals: FleetTotals::default(),
        };
        let a = snap.to_json().to_string();
        let b = snap.to_json().to_string();
        assert_eq!(a, b);
        // BTreeMap keys: backend_breached < census < tick < totals.
        let bb = a.find("backend_breached").unwrap();
        let ce = a.find("census").unwrap();
        let ti = a.find("\"tick\"").unwrap();
        assert!(bb < ce && ce < ti);
    }
}
