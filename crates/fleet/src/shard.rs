//! Sharded tick execution.
//!
//! The fleet columns are split into contiguous windows — one per shard
//! ([`FleetState::shard_views`]) — and each shard walks its vehicles
//! in order. A vehicle's step only touches its own column entries plus
//! the shard's private [`ShardOutput`], so shards never contend;
//! outputs are merged back in shard order, which *is* vehicle order
//! because windows are contiguous. That merge discipline, together
//! with per-vehicle RNG substreams, is the whole shard-invariance
//! contract: `--shards N` changes wall-clock time and nothing else.
//!
//! A vehicle whose step panics is quarantined on the spot
//! ([`FleetColumns::quarantine`]) and the shard moves on — one bad
//! state machine costs the fleet one vehicle, not a shard of them.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::engine::DriftStats;
use crate::snapshot::FleetTotals;
use crate::state::{FleetColumns, FleetState};
use crate::vehicle::PendingAlert;

/// Everything a shard hands back to the serial phase.
#[derive(Debug, Clone, Default)]
pub struct ShardOutput {
    /// Alerts raised this tick, in vehicle order within the shard.
    pub alerts: Vec<PendingAlert>,
    /// Vehicles whose repair verified this tick (their escalation
    /// state is cleared serially).
    pub recovered: Vec<u32>,
    /// The shard's counter deltas (additive — merge order never
    /// matters).
    pub counters: FleetTotals,
    /// Mixed-fidelity drift probe deltas (additive).
    pub drift: DriftStats,
}

/// Runs one tick over the fleet with `shards` worker threads.
///
/// `per_vehicle` is handed the shard's columnar window and the window
/// index of the vehicle to step; it must only read/write that
/// vehicle's column entries plus the shard output — the engine upholds
/// that by construction. Returns one [`ShardOutput`] per window, in
/// window (= vehicle) order.
///
/// Panics inside `per_vehicle` are caught per vehicle: the vehicle is
/// quarantined (status `Lost`, RNG retired) and `counters.lost` is
/// incremented, leaving the rest of the shard untouched.
pub fn run_tick_sharded<F>(
    state: &mut FleetState,
    shards: usize,
    tick: u64,
    per_vehicle: F,
) -> Vec<ShardOutput>
where
    F: Fn(&mut FleetColumns<'_>, usize, &mut ShardOutput) + Sync,
{
    let n = state.len();
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, n);
    let chunk = n.div_ceil(shards);

    let process = |cols: &mut FleetColumns<'_>| -> ShardOutput {
        let mut out = ShardOutput::default();
        for i in 0..cols.len() {
            if !cols.alive(i) {
                continue;
            }
            let stepped = catch_unwind(AssertUnwindSafe(|| per_vehicle(cols, i, &mut out)));
            if stepped.is_err() {
                cols.quarantine(i, tick);
                out.counters.lost += 1;
            }
        }
        out
    };

    let mut views = state.shard_views(chunk);
    if views.len() == 1 {
        return vec![process(&mut views[0])];
    }
    std::thread::scope(|scope| {
        let process = &process;
        let handles: Vec<_> = views
            .iter_mut()
            .map(|cols| scope.spawn(move || process(cols)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker itself never panics"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vehicle::VehicleStatus;
    use autosec_runner::silence_panics;
    use autosec_sim::SimRng;

    fn fleet(n: usize) -> FleetState {
        FleetState::new(n, &SimRng::seed(5).fork("fleet/vehicles"))
    }

    #[test]
    fn outputs_come_back_in_vehicle_order() {
        let mut f = fleet(10);
        let outs = run_tick_sharded(&mut f, 3, 1, |cols, i, out| {
            out.recovered.push(cols.id(i));
        });
        let ids: Vec<u32> = outs.into_iter().flat_map(|o| o.recovered).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shard_count_caps_at_fleet_size() {
        let mut f = fleet(2);
        let outs = run_tick_sharded(&mut f, 64, 1, |_, _, out| {
            out.counters.telemetry_frames += 1;
        });
        assert!(outs.len() <= 2);
        let total: u64 = outs.iter().map(|o| o.counters.telemetry_frames).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn a_panicking_vehicle_does_not_poison_its_shard() {
        let _quiet = silence_panics();
        let mut f = fleet(8);
        let outs = run_tick_sharded(&mut f, 2, 3, |cols, i, out| {
            if cols.id(i) == 2 {
                panic!("vehicle 2 state machine corrupted");
            }
            out.counters.telemetry_frames += 1;
        });
        let merged: u64 = outs.iter().map(|o| o.counters.telemetry_frames).sum();
        let lost: u64 = outs.iter().map(|o| o.counters.lost).sum();
        assert_eq!(merged, 7, "the other seven vehicles all stepped");
        assert_eq!(lost, 1);
        assert_eq!(f.status[2], VehicleStatus::Lost);
        assert_eq!(f.since[2], 3);
        // Lost vehicles are skipped on subsequent ticks.
        let outs = run_tick_sharded(&mut f, 2, 4, |_, _, out| {
            out.counters.telemetry_frames += 1;
        });
        let merged: u64 = outs.iter().map(|o| o.counters.telemetry_frames).sum();
        assert_eq!(merged, 7);
    }

    #[test]
    fn empty_fleet_is_a_noop() {
        let mut f = fleet(0);
        assert!(run_tick_sharded(&mut f, 4, 1, |_, _, _| {}).is_empty());
    }
}
