//! Randomized invariant tests for the IVN simulator.
//!
//! Formerly proptest-based; now driven by deterministic [`SimRng`]
//! streams (the hermetic build has no proptest), with one forked
//! substream per case so failures reproduce exactly.

use autosec_ivn::bus::CanBus;
use autosec_ivn::can::{crc15, fd_padded_len, stuffed_len, CanFrame, CanId, FD_SIZES};
use autosec_sim::{SimRng, SimTime};
use rand::Rng;

const CASES: u64 = 64;

/// CRC-15 detects every single-bit error (guaranteed by the
/// polynomial; verified here over random frames).
#[test]
fn crc15_detects_single_bit_errors() {
    let root = SimRng::seed(0xC4C15);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let n = rng.gen_range(1usize..120);
        let bits: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let idx = rng.gen_range(0usize..bits.len());
        let mut flipped = bits.clone();
        flipped[idx] = !flipped[idx];
        assert_ne!(crc15(&bits), crc15(&flipped));
    }
}

/// Stuffing never removes bits and inserts at most one per 4 input
/// bits beyond the first.
#[test]
fn stuffing_bounds() {
    let root = SimRng::seed(0x57_0FF);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let n = rng.gen_range(0usize..256);
        let bits: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let out = stuffed_len(&bits);
        assert!(out >= bits.len());
        assert!(out <= bits.len() + bits.len().saturating_sub(1) / 4 + 1);
    }
}

/// FD padding picks the smallest valid size ≥ the payload.
#[test]
fn fd_padding_minimal() {
    for len in 0usize..=64 {
        let padded = fd_padded_len(len).expect("<= 64");
        assert!(padded >= len);
        assert!(FD_SIZES.contains(&padded));
        // No smaller valid size fits.
        for &s in FD_SIZES.iter().filter(|&&s| s < padded) {
            assert!(s < len);
        }
    }
}

/// Simultaneously enqueued frames are delivered in arbitration-key
/// order, regardless of node order.
#[test]
fn arbitration_sorts_by_priority() {
    let root = SimRng::seed(0xA4B17);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let n = rng.gen_range(1usize..20);
        let ids: Vec<u16> = (0..n).map(|_| rng.gen_range(0u16..0x800)).collect();
        let mut bus = CanBus::new(500_000);
        let nodes: Vec<_> = ids.iter().map(|_| bus.add_node(0.0)).collect();
        for (node, &id) in nodes.iter().zip(ids.iter()) {
            bus.enqueue(
                *node,
                SimTime::ZERO,
                CanFrame::new(CanId::standard(id).expect("11-bit"), &[0; 2]).expect("2 bytes"),
            )
            .expect("node exists");
        }
        let log = bus.run(SimTime::from_secs(10));
        assert_eq!(log.len(), ids.len());
        for w in log.windows(2) {
            assert!(
                w[0].frame.id().arbitration_key() <= w[1].frame.id().arbitration_key(),
                "arbitration order violated"
            );
        }
        // Bus is serialized: no overlapping transmissions.
        for w in log.windows(2) {
            assert!(w[1].started >= w[0].completed);
        }
    }
}

/// Frame duration is positive and monotone in payload length for a
/// fixed id.
#[test]
fn duration_monotone() {
    let root = SimRng::seed(0xD4_4A7);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let cid = CanId::standard(rng.gen_range(0u16..0x800)).expect("11-bit");
        let mut prev = 0.0;
        for len in 0..=8usize {
            let f = CanFrame::new(cid, &vec![0x55; len]).expect("payload <= 8");
            let d = f.duration_ns(500_000);
            assert!(d > prev);
            prev = d;
        }
    }
}
