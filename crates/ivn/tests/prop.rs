//! Property tests for the IVN simulator.

use autosec_ivn::bus::CanBus;
use autosec_ivn::can::{crc15, fd_padded_len, stuffed_len, CanFrame, CanId, FD_SIZES};
use autosec_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// CRC-15 detects every single-bit error (guaranteed by the
    /// polynomial; verified here over random frames).
    #[test]
    fn crc15_detects_single_bit_errors(
        bits in proptest::collection::vec(any::<bool>(), 1..120),
        flip in any::<usize>(),
    ) {
        let idx = flip % bits.len();
        let mut flipped = bits.clone();
        flipped[idx] = !flipped[idx];
        prop_assert_ne!(crc15(&bits), crc15(&flipped));
    }

    /// Stuffing never removes bits and inserts at most one per 4 input
    /// bits beyond the first.
    #[test]
    fn stuffing_bounds(bits in proptest::collection::vec(any::<bool>(), 0..256)) {
        let out = stuffed_len(&bits);
        prop_assert!(out >= bits.len());
        prop_assert!(out <= bits.len() + bits.len().saturating_sub(1) / 4 + 1);
    }

    /// FD padding picks the smallest valid size ≥ the payload.
    #[test]
    fn fd_padding_minimal(len in 0usize..=64) {
        let padded = fd_padded_len(len).expect("<= 64");
        prop_assert!(padded >= len);
        prop_assert!(FD_SIZES.contains(&padded));
        // No smaller valid size fits.
        for &s in FD_SIZES.iter().filter(|&&s| s < padded) {
            prop_assert!(s < len);
        }
    }

    /// Simultaneously enqueued frames are delivered in arbitration-key
    /// order, regardless of node order.
    #[test]
    fn arbitration_sorts_by_priority(ids in proptest::collection::vec(0u16..0x800, 1..20)) {
        let mut bus = CanBus::new(500_000);
        let nodes: Vec<_> = ids.iter().map(|_| bus.add_node(0.0)).collect();
        for (node, &id) in nodes.iter().zip(ids.iter()) {
            bus.enqueue(
                *node,
                SimTime::ZERO,
                CanFrame::new(CanId::standard(id).expect("11-bit"), &[0; 2]).expect("2 bytes"),
            )
            .expect("node exists");
        }
        let log = bus.run(SimTime::from_secs(10));
        prop_assert_eq!(log.len(), ids.len());
        for w in log.windows(2) {
            prop_assert!(
                w[0].frame.id().arbitration_key() <= w[1].frame.id().arbitration_key(),
                "arbitration order violated"
            );
        }
        // Bus is serialized: no overlapping transmissions.
        for w in log.windows(2) {
            prop_assert!(w[1].started >= w[0].completed);
        }
    }

    /// Frame duration is positive and monotone in payload length for a
    /// fixed id.
    #[test]
    fn duration_monotone(id in 0u16..0x800) {
        let cid = CanId::standard(id).expect("11-bit");
        let mut prev = 0.0;
        for len in 0..=8usize {
            let f = CanFrame::new(cid, &vec![0x55; len]).expect("payload <= 8");
            let d = f.duration_ns(500_000);
            prop_assert!(d > prev);
            prev = d;
        }
    }
}
