//! Point-to-point automotive Ethernet links and zonal switches.
//!
//! The Fig. 3 backbone: zonal controllers connect to the central
//! computing unit over full-duplex single-pair Ethernet (100BASE-T1 /
//! 1000BASE-T1). Latency is serialization + propagation + store-and-
//! forward switching; no arbitration is needed on point-to-point links.

use autosec_sim::SimDuration;

/// Ethernet frame overhead: preamble+SFD (8) + header (14) + FCS (4) +
/// IPG (12) bytes.
pub const ETH_OVERHEAD_BYTES: usize = 38;

/// Minimum Ethernet payload.
pub const ETH_MIN_PAYLOAD: usize = 46;

/// Maximum standard Ethernet payload.
pub const ETH_MAX_PAYLOAD: usize = 1500;

/// A full-duplex point-to-point automotive Ethernet link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EthLink {
    /// Link speed in bits per second.
    pub bitrate_bps: u64,
    /// Cable length in metres (propagation at ~2/3 c).
    pub cable_m: f64,
}

impl EthLink {
    /// 100BASE-T1 link.
    pub fn base_t1_100(cable_m: f64) -> Self {
        Self {
            bitrate_bps: 100_000_000,
            cable_m,
        }
    }

    /// 1000BASE-T1 link.
    pub fn base_t1_1000(cable_m: f64) -> Self {
        Self {
            bitrate_bps: 1_000_000_000,
            cable_m,
        }
    }

    /// Wire bytes for a payload (padded to the Ethernet minimum).
    pub fn wire_bytes(payload_len: usize) -> usize {
        payload_len.max(ETH_MIN_PAYLOAD) + ETH_OVERHEAD_BYTES
    }

    /// One-way latency for a frame with `payload_len` bytes of payload.
    pub fn latency(&self, payload_len: usize) -> SimDuration {
        let ser_ns = Self::wire_bytes(payload_len) as f64 * 8.0 * 1e9 / self.bitrate_bps as f64;
        let prop_ns = self.cable_m / 2e8 * 1e9;
        SimDuration::from_ns_f64(ser_ns + prop_ns)
    }
}

/// A store-and-forward switch (e.g. inside a zonal controller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Switch {
    /// Fixed processing delay per forwarded frame.
    pub processing: SimDuration,
}

impl Default for Switch {
    fn default() -> Self {
        Self {
            processing: SimDuration::from_us(5),
        }
    }
}

impl Switch {
    /// Forwarding delay for a frame arriving on `ingress` and leaving on
    /// `egress`: full receive (store) + processing + transmit (forward).
    pub fn forward_latency(
        &self,
        ingress: &EthLink,
        egress: &EthLink,
        payload_len: usize,
    ) -> SimDuration {
        ingress.latency(payload_len) + self.processing + egress.latency(payload_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_dominates_at_100m() {
        let link = EthLink::base_t1_100(10.0);
        // 1000 B payload: 1038 wire bytes = 83.04 us + 50 ns prop.
        let lat = link.latency(1000).as_us_f64();
        assert!((83.0..83.3).contains(&lat), "{lat}");
    }

    #[test]
    fn gigabit_is_ten_times_faster() {
        let l100 = EthLink::base_t1_100(5.0);
        let l1000 = EthLink::base_t1_1000(5.0);
        let s100 = l100.latency(500).as_ns_f64();
        let s1000 = l1000.latency(500).as_ns_f64();
        assert!((s100 / s1000 - 10.0).abs() < 0.5, "{}", s100 / s1000);
    }

    #[test]
    fn min_payload_padding() {
        assert_eq!(EthLink::wire_bytes(1), EthLink::wire_bytes(46));
        assert_eq!(EthLink::wire_bytes(46), 84);
    }

    #[test]
    fn switch_adds_store_and_forward() {
        let link = EthLink::base_t1_100(1.0);
        let sw = Switch::default();
        let through = sw.forward_latency(&link, &link, 200);
        assert!(through > link.latency(200) * 2);
        assert_eq!(
            through,
            link.latency(200) + SimDuration::from_us(5) + link.latency(200)
        );
    }
}
