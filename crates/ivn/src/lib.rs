//! # autosec-ivn
//!
//! In-vehicle network (IVN) simulator — §III of the paper, Fig. 3.
//!
//! Models the heterogeneous zonal architecture the paper describes: a
//! central computing unit connected to zonal controllers over point-to-
//! point automotive Ethernet, with endpoints (ECUs) attached to the zones
//! over classic CAN / CAN FD / CAN XL buses or 10BASE-T1S multidrop
//! segments.
//!
//! - [`can`] — frame models for CAN 2.0, CAN FD and CAN XL with real
//!   bit-stuffing and CRC-15 computation, so frame durations are
//!   bit-accurate for classic CAN and field-accurate for FD/XL
//! - [`bus`] — CSMA/CR arbitration bus simulation with error counters and
//!   bus-off behaviour
//! - [`t1s`] — 10BASE-T1S PLCA (multidrop single-pair Ethernet)
//! - [`ethernet`] — point-to-point automotive Ethernet links and
//!   store-and-forward zonal switches
//! - [`topology`] — the Fig. 3 zonal network: endpoints, zones, central
//!   compute, end-to-end paths and traffic generation
//! - [`attacks`] — §III attacks: masquerade (the paper's "key
//!   vulnerability of the CAN bus"), injection flooding, and bus-off
//!
//! ## Example
//!
//! ```
//! use autosec_ivn::can::{CanFrame, CanId};
//!
//! let frame = CanFrame::new(CanId::standard(0x123).unwrap(), &[1, 2, 3]).unwrap();
//! // Bit-accurate length including stuff bits:
//! assert!(frame.wire_bits() > 47);
//! ```

pub mod attacks;
pub mod bus;
pub mod can;
pub mod ethernet;
pub mod faults;
pub mod t1s;
pub mod topology;

pub use bus::{BusEvent, CanBus, NodeId};
pub use can::{CanFdFrame, CanFrame, CanId, CanXlFrame};
pub use topology::{Endpoint, EndpointLink, ZonalNetwork};

/// Errors produced by the IVN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IvnError {
    /// CAN identifier out of range for its format.
    InvalidId,
    /// Payload too long for the frame type.
    PayloadTooLong,
    /// Referenced node/endpoint/zone does not exist.
    UnknownNode,
    /// The node is in bus-off state and cannot transmit.
    BusOff,
}

impl std::fmt::Display for IvnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IvnError::InvalidId => write!(f, "CAN identifier out of range"),
            IvnError::PayloadTooLong => write!(f, "payload exceeds frame capacity"),
            IvnError::UnknownNode => write!(f, "unknown node"),
            IvnError::BusOff => write!(f, "node is in bus-off state"),
        }
    }
}

impl std::error::Error for IvnError {}
