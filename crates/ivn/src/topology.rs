//! The Fig. 3 zonal IVN: endpoints on CAN / CAN FD / CAN XL / 10BASE-T1S
//! segments, zonal controllers bridging to a point-to-point Ethernet
//! backbone, and a central computing unit.
//!
//! [`ZonalNetwork::simulate`] drives periodic endpoint→central-compute
//! traffic through the segment simulators and accumulates end-to-end
//! latency and utilisation — the numbers behind experiment E3.

use autosec_sim::{SimDuration, SimTime, Summary};

use crate::bus::CanBus;
use crate::can::{CanFdFrame, CanFrame, CanId, CanXlFrame};
use crate::ethernet::{EthLink, Switch};
use crate::t1s::T1sSegment;
use crate::IvnError;

/// Physical attachment of an endpoint to its zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndpointLink {
    /// Classic CAN at 500 kbit/s.
    Can,
    /// CAN FD, 500 kbit/s arbitration + 2 Mbit/s data.
    CanFd,
    /// CAN XL, 500 kbit/s arbitration + 10 Mbit/s data.
    CanXl,
    /// 10BASE-T1S multidrop Ethernet.
    T1s,
}

impl EndpointLink {
    /// Maximum single-frame payload on this link.
    pub fn max_frame_payload(self) -> usize {
        match self {
            EndpointLink::Can => 8,
            EndpointLink::CanFd => 64,
            EndpointLink::CanXl => 2048,
            EndpointLink::T1s => 1500,
        }
    }
}

/// An ECU attached to a zone.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// Human-readable name (e.g. `"brake-ecu"`).
    pub name: String,
    /// Zone index this endpoint lives in.
    pub zone: usize,
    /// Link technology.
    pub link: EndpointLink,
}

/// Identifier of an endpoint inside a [`ZonalNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointId(pub usize);

/// A periodic endpoint → central-compute flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Source endpoint.
    pub endpoint: EndpointId,
    /// Message period.
    pub period: SimDuration,
    /// Message payload in bytes.
    pub payload: usize,
    /// CAN priority id used on CAN-family segments.
    pub can_id: u16,
}

/// Per-flow simulation results.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Source endpoint.
    pub endpoint: EndpointId,
    /// End-to-end latency summary (microseconds).
    pub latency_us: Summary,
    /// Messages delivered.
    pub delivered: usize,
}

/// Whole-network simulation report.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Per-flow results, in `TrafficSpec` order.
    pub flows: Vec<FlowResult>,
    /// Per-zone segment utilisation (0..1).
    pub zone_utilisation: Vec<f64>,
}

/// The zonal network of Fig. 3.
///
/// # Example
///
/// ```
/// use autosec_ivn::topology::{EndpointLink, ZonalNetwork};
/// let mut net = ZonalNetwork::new(2);
/// let brake = net.add_endpoint("brake", 0, EndpointLink::Can).unwrap();
/// assert_eq!(net.endpoint(brake).unwrap().name, "brake");
/// ```
#[derive(Debug, Clone)]
pub struct ZonalNetwork {
    zone_count: usize,
    endpoints: Vec<Endpoint>,
    backbone: EthLink,
    switch: Switch,
}

impl ZonalNetwork {
    /// Creates a network with `zone_count` zonal controllers connected to
    /// the central computing unit over 1000BASE-T1.
    pub fn new(zone_count: usize) -> Self {
        Self {
            zone_count,
            endpoints: Vec::new(),
            backbone: EthLink::base_t1_1000(4.0),
            switch: Switch::default(),
        }
    }

    /// Overrides the backbone link (e.g. 100BASE-T1).
    pub fn with_backbone(mut self, link: EthLink) -> Self {
        self.backbone = link;
        self
    }

    /// Adds an endpoint to `zone`.
    ///
    /// # Errors
    ///
    /// [`IvnError::UnknownNode`] if the zone index is out of range.
    pub fn add_endpoint(
        &mut self,
        name: &str,
        zone: usize,
        link: EndpointLink,
    ) -> Result<EndpointId, IvnError> {
        if zone >= self.zone_count {
            return Err(IvnError::UnknownNode);
        }
        self.endpoints.push(Endpoint {
            name: name.to_owned(),
            zone,
            link,
        });
        Ok(EndpointId(self.endpoints.len() - 1))
    }

    /// Looks up an endpoint.
    pub fn endpoint(&self, id: EndpointId) -> Option<&Endpoint> {
        self.endpoints.get(id.0)
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zone_count
    }

    /// Endpoints in a zone with the given link family.
    fn zone_members(&self, zone: usize, link: EndpointLink) -> Vec<EndpointId> {
        self.endpoints
            .iter()
            .enumerate()
            .filter(|(_, e)| e.zone == zone && e.link == link)
            .map(|(i, _)| EndpointId(i))
            .collect()
    }

    /// Number of frames a message of `payload` bytes needs on `link`.
    pub fn frames_needed(link: EndpointLink, payload: usize) -> usize {
        payload.div_ceil(link.max_frame_payload()).max(1)
    }

    /// Simulates `specs` for `horizon`, returning latency and utilisation.
    ///
    /// Segment access (arbitration / PLCA) is simulated; the backbone hop
    /// (zonal switch + Ethernet to the central computing unit) is
    /// analytic, since point-to-point full-duplex links have no
    /// contention at these loads.
    ///
    /// # Panics
    ///
    /// Panics if a spec references an unknown endpoint.
    #[allow(clippy::needless_range_loop)] // zone indexes two parallel structures
    pub fn simulate(&self, specs: &[TrafficSpec], horizon: SimTime) -> NetworkReport {
        let mut flow_lat: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        let mut zone_util = vec![0.0; self.zone_count];

        for zone in 0..self.zone_count {
            // --- CAN-family segments (one shared bus per family). ---
            for family in [EndpointLink::Can, EndpointLink::CanFd, EndpointLink::CanXl] {
                let members = self.zone_members(zone, family);
                if members.is_empty() {
                    continue;
                }
                let mut bus = CanBus::new(500_000);
                let nodes: Vec<_> = members.iter().map(|m| bus.add_node(m.0 as f64)).collect();
                // Map each spec on this segment to its node.
                let mut spec_of_node = vec![None; nodes.len()];
                for (si, spec) in specs.iter().enumerate() {
                    if let Some(pos) = members.iter().position(|m| *m == spec.endpoint) {
                        spec_of_node[pos] = Some(si);
                        let mut t = SimTime::ZERO;
                        while t <= horizon {
                            // Classic bus carries a surrogate frame per
                            // message; FD/XL durations are corrected below.
                            let surrogate = CanFrame::new(
                                CanId::standard(spec.can_id).unwrap_or(CanId::Standard(0x7FF)),
                                &[0u8; 8],
                            )
                            .expect("8-byte payload");
                            bus.enqueue(nodes[pos], t, surrogate).expect("node exists");
                            t += spec.period;
                        }
                    }
                }
                let log = bus.run(horizon);
                zone_util[zone] += CanBus::utilisation(&log, horizon);
                for ev in &log {
                    let node_pos = ev.sender.0;
                    let Some(si) = spec_of_node[node_pos] else {
                        continue;
                    };
                    let spec = &specs[si];
                    // Replace the surrogate duration with the real frame
                    // timing for the actual family and payload.
                    let tx_ns = Self::message_tx_ns(family, spec.payload, spec.can_id);
                    let queue_wait = ev.started.since(ev.enqueued);
                    let segment_ns = queue_wait.as_ns_f64() + tx_ns;
                    let backbone = self.switch.forward_latency(
                        &self.backbone,
                        &self.backbone,
                        spec.payload.min(1500),
                    );
                    flow_lat[si].push((segment_ns + backbone.as_ns_f64()) / 1000.0);
                }
            }

            // --- T1S segment. ---
            let members = self.zone_members(zone, EndpointLink::T1s);
            if !members.is_empty() {
                let mut seg = T1sSegment::new(members.len());
                let mut spec_of_node = vec![None; members.len()];
                for (si, spec) in specs.iter().enumerate() {
                    if let Some(pos) = members.iter().position(|m| *m == spec.endpoint) {
                        spec_of_node[pos] = Some(si);
                        let mut t = SimTime::ZERO;
                        while t <= horizon {
                            seg.enqueue(pos, t, spec.payload.min(1500))
                                .expect("valid node and payload");
                            t += spec.period;
                        }
                    }
                }
                let log = seg.run(horizon);
                let busy: f64 = log
                    .iter()
                    .map(|d| T1sSegment::frame_time(d.payload_len).as_ps() as f64)
                    .sum();
                zone_util[zone] += busy / horizon.as_ps() as f64;
                for d in &log {
                    let Some(si) = spec_of_node[d.sender] else {
                        continue;
                    };
                    let spec = &specs[si];
                    let backbone = self.switch.forward_latency(
                        &self.backbone,
                        &self.backbone,
                        spec.payload.min(1500),
                    );
                    flow_lat[si].push((d.latency().as_ns_f64() + backbone.as_ns_f64()) / 1000.0);
                }
            }
        }

        NetworkReport {
            flows: specs
                .iter()
                .enumerate()
                .map(|(i, s)| FlowResult {
                    endpoint: s.endpoint,
                    latency_us: Summary::of(&flow_lat[i]),
                    delivered: flow_lat[i].len(),
                })
                .collect(),
            zone_utilisation: zone_util,
        }
    }

    /// Pure transmission time (ns) of a `payload`-byte message on a link
    /// family, accounting for multi-frame segmentation on classic CAN.
    pub fn message_tx_ns(family: EndpointLink, payload: usize, can_id: u16) -> f64 {
        let id = CanId::standard(can_id.min(0x7FF)).expect("clamped id");
        match family {
            EndpointLink::Can => {
                let frames = payload.div_ceil(8).max(1);
                let last = payload - (frames - 1) * 8;
                let full = CanFrame::new(id, &[0u8; 8]).expect("8 bytes");
                let tail = CanFrame::new(id, &vec![0u8; last.min(8)]).expect("<=8 bytes");
                (frames - 1) as f64 * full.duration_ns(500_000) + tail.duration_ns(500_000)
            }
            EndpointLink::CanFd => {
                let frames = payload.div_ceil(64).max(1);
                let last = payload - (frames - 1) * 64;
                let full = CanFdFrame::new(id, &[0u8; 64]).expect("64 bytes");
                let tail = CanFdFrame::new(id, &vec![0u8; last.min(64)]).expect("<=64 bytes");
                (frames - 1) as f64 * full.duration_ns(500_000, 2_000_000)
                    + tail.duration_ns(500_000, 2_000_000)
            }
            EndpointLink::CanXl => {
                let frames = payload.div_ceil(2048).max(1);
                let last = payload - (frames - 1) * 2048;
                let full =
                    CanXlFrame::new(can_id.min(0x7FF), 0, 0, 0, &[0u8; 2048]).expect("2048 bytes");
                let tail =
                    CanXlFrame::new(can_id.min(0x7FF), 0, 0, 0, &vec![0u8; last.clamp(1, 2048)])
                        .expect("1..=2048 bytes");
                (frames - 1) as f64 * full.duration_ns(500_000, 10_000_000)
                    + tail.duration_ns(500_000, 10_000_000)
            }
            EndpointLink::T1s => T1sSegment::frame_time(payload.min(1500)).as_ns_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net() -> (ZonalNetwork, EndpointId, EndpointId, EndpointId) {
        let mut net = ZonalNetwork::new(2);
        let a = net.add_endpoint("brake", 0, EndpointLink::Can).unwrap();
        let b = net.add_endpoint("camera", 0, EndpointLink::T1s).unwrap();
        let c = net.add_endpoint("radar", 1, EndpointLink::CanFd).unwrap();
        (net, a, b, c)
    }

    #[test]
    fn build_and_lookup() {
        let (net, a, _, _) = small_net();
        assert_eq!(net.endpoint(a).unwrap().name, "brake");
        assert_eq!(net.zone_count(), 2);
        assert!(net.endpoint(EndpointId(99)).is_none());
    }

    #[test]
    fn zone_bounds_checked() {
        let mut net = ZonalNetwork::new(1);
        assert_eq!(
            net.add_endpoint("x", 3, EndpointLink::Can).unwrap_err(),
            IvnError::UnknownNode
        );
    }

    #[test]
    fn simulation_delivers_periodic_messages() {
        let (net, a, b, c) = small_net();
        let specs = [
            TrafficSpec {
                endpoint: a,
                period: SimDuration::from_ms(10),
                payload: 8,
                can_id: 0x100,
            },
            TrafficSpec {
                endpoint: b,
                period: SimDuration::from_ms(20),
                payload: 400,
                can_id: 0,
            },
            TrafficSpec {
                endpoint: c,
                period: SimDuration::from_ms(10),
                payload: 48,
                can_id: 0x200,
            },
        ];
        let report = net.simulate(&specs, SimTime::from_ms(200));
        assert_eq!(report.flows.len(), 3);
        for f in &report.flows {
            assert!(
                f.delivered >= 10,
                "{:?} delivered {}",
                f.endpoint,
                f.delivered
            );
            assert!(f.latency_us.mean > 0.0);
        }
        // CAN message ≈ 230 us + backbone; T1S 400 B ≈ 350 us.
        assert!(report.flows[0].latency_us.mean < 500.0);
    }

    #[test]
    fn utilisation_positive_when_loaded() {
        let (net, a, _, _) = small_net();
        let specs = [TrafficSpec {
            endpoint: a,
            period: SimDuration::from_ms(1),
            payload: 8,
            can_id: 0x100,
        }];
        let report = net.simulate(&specs, SimTime::from_ms(100));
        assert!(report.zone_utilisation[0] > 0.1);
        assert_eq!(report.zone_utilisation[1], 0.0);
    }

    #[test]
    fn xl_moves_big_payloads_faster_than_fd() {
        let xl = ZonalNetwork::message_tx_ns(EndpointLink::CanXl, 1024, 0x50);
        let fd = ZonalNetwork::message_tx_ns(EndpointLink::CanFd, 1024, 0x50);
        let can = ZonalNetwork::message_tx_ns(EndpointLink::Can, 1024, 0x50);
        assert!(xl < fd && fd < can, "xl={xl} fd={fd} can={can}");
    }

    #[test]
    fn frames_needed_segmentation() {
        assert_eq!(ZonalNetwork::frames_needed(EndpointLink::Can, 8), 1);
        assert_eq!(ZonalNetwork::frames_needed(EndpointLink::Can, 9), 2);
        assert_eq!(ZonalNetwork::frames_needed(EndpointLink::CanFd, 65), 2);
        assert_eq!(ZonalNetwork::frames_needed(EndpointLink::CanXl, 2048), 1);
        assert_eq!(ZonalNetwork::frames_needed(EndpointLink::Can, 0), 1);
    }
}
