//! Network-layer attacks (§III): masquerade, injection flooding, bus-off.
//!
//! The paper: *"A key vulnerability of the CAN bus is the lack of
//! authentication, which allows attackers to impersonate safety-critical
//! ECUs ... by using legitimate ECU identifiers."* These helpers stage
//! that attack (and its louder cousins) on a [`CanBus`] so that the
//! secure-protocol layer (`autosec-secproto`) and the IDS layer
//! (`autosec-ids`) can demonstrate their countermeasures.

use autosec_sim::{SimDuration, SimTime};

use crate::bus::{CanBus, NodeId};
use crate::can::{CanFrame, CanId};
use crate::IvnError;

/// A masquerade attacker: a compromised node that emits frames carrying a
/// *victim's* CAN identifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasqueradeAttack {
    /// The attacker's physical node on the bus.
    pub attacker: NodeId,
    /// The CAN id of the impersonated (safety-critical) ECU.
    pub spoofed_id: u16,
    /// Injection period.
    pub period: SimDuration,
    /// Forged payload.
    pub payload: [u8; 8],
}

impl MasqueradeAttack {
    /// Enqueues the forged frames over `[start, end]`.
    ///
    /// # Errors
    ///
    /// Propagates bus errors (unknown node, bus-off).
    pub fn inject(
        &self,
        bus: &mut CanBus,
        start: SimTime,
        end: SimTime,
    ) -> Result<usize, IvnError> {
        let id = CanId::standard(self.spoofed_id)?;
        let mut t = start;
        let mut n = 0;
        while t <= end {
            bus.enqueue(self.attacker, t, CanFrame::new(id, &self.payload)?)?;
            t += self.period;
            n += 1;
        }
        Ok(n)
    }
}

/// A denial-of-service flooder: saturates the bus with highest-priority
/// (id 0) frames so legitimate traffic starves in arbitration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodAttack {
    /// The attacker's node.
    pub attacker: NodeId,
    /// Number of frames to pre-queue.
    pub burst: usize,
}

impl FloodAttack {
    /// Enqueues the flood at `start`.
    ///
    /// # Errors
    ///
    /// Propagates bus errors.
    pub fn inject(&self, bus: &mut CanBus, start: SimTime) -> Result<(), IvnError> {
        let id = CanId::standard(0)?;
        for _ in 0..self.burst {
            bus.enqueue(self.attacker, start, CanFrame::new(id, &[0u8; 8])?)?;
        }
        Ok(())
    }
}

/// A bus-off attack: the attacker synchronizes collisions with the
/// victim's transmissions, driving the victim's transmit error counter
/// past 255 so the controller disconnects itself (fault confinement
/// turned into a weapon).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusOffAttack {
    /// The targeted victim node.
    pub victim: NodeId,
    /// Collisions the attacker manages to force.
    pub forced_errors: u32,
}

impl BusOffAttack {
    /// Applies the forced error count to the victim's controller.
    ///
    /// # Errors
    ///
    /// [`IvnError::UnknownNode`] for a bad victim id.
    pub fn execute(&self, bus: &mut CanBus) -> Result<(), IvnError> {
        // Each forced bit error costs the transmitter +8 TEC.
        bus.bump_tec(self.victim, self.forced_errors.saturating_mul(8))
    }

    /// Errors needed to take a healthy node (TEC=0) to bus-off.
    pub const ERRORS_TO_BUS_OFF: u32 = 32; // 32 * 8 = 256
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::ErrorState;

    #[test]
    fn masquerade_frames_carry_victim_id() {
        let mut bus = CanBus::new(500_000);
        let _victim = bus.add_node(1.0);
        let attacker = bus.add_node(9.0);
        let atk = MasqueradeAttack {
            attacker,
            spoofed_id: 0x0A0, // "engine control"
            period: SimDuration::from_ms(10),
            payload: [0xFF; 8],
        };
        let n = atk
            .inject(&mut bus, SimTime::ZERO, SimTime::from_ms(95))
            .unwrap();
        assert_eq!(n, 10);
        let log = bus.run(SimTime::from_secs(1));
        assert_eq!(log.len(), 10);
        for ev in &log {
            // The wire shows the victim's id but the attacker's physical
            // fingerprint — exactly the discrepancy EASI-style IDS uses.
            assert_eq!(ev.frame.id().raw(), 0x0A0);
            assert_eq!(ev.sender, attacker);
            assert!((ev.analog_fingerprint - 9.0).abs() < 0.5);
        }
    }

    #[test]
    fn flood_starves_legitimate_traffic() {
        let mut bus = CanBus::new(500_000);
        let legit = bus.add_node(1.0);
        let attacker = bus.add_node(2.0);
        bus.enqueue(
            legit,
            SimTime::ZERO,
            CanFrame::new(CanId::standard(0x100).unwrap(), &[1; 8]).unwrap(),
        )
        .unwrap();
        FloodAttack {
            attacker,
            burst: 100,
        }
        .inject(&mut bus, SimTime::ZERO)
        .unwrap();
        let log = bus.run(SimTime::from_secs(5));
        assert_eq!(log.last().unwrap().sender, legit, "victim goes last");
        assert!(log.last().unwrap().latency().as_ms_f64() > 20.0);
    }

    #[test]
    fn bus_off_attack_silences_victim() {
        let mut bus = CanBus::new(500_000);
        let victim = bus.add_node(1.0);
        BusOffAttack {
            victim,
            forced_errors: BusOffAttack::ERRORS_TO_BUS_OFF,
        }
        .execute(&mut bus)
        .unwrap();
        assert_eq!(bus.error_state(victim).unwrap(), ErrorState::BusOff);
        assert_eq!(
            bus.enqueue(
                victim,
                SimTime::ZERO,
                CanFrame::new(CanId::standard(1).unwrap(), &[]).unwrap()
            )
            .unwrap_err(),
            IvnError::BusOff
        );
    }

    #[test]
    fn partial_bus_off_leaves_error_passive() {
        let mut bus = CanBus::new(500_000);
        let victim = bus.add_node(1.0);
        BusOffAttack {
            victim,
            forced_errors: 20, // 160 TEC
        }
        .execute(&mut bus)
        .unwrap();
        assert_eq!(bus.error_state(victim).unwrap(), ErrorState::ErrorPassive);
    }
}
