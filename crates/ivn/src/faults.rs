//! IVN fault-injection adapter for the `autosec-faults` engine.
//!
//! [`BusFaultTarget`] replays a fixed periodic schedule on a [`CanBus`]
//! with a [`ChannelFault`] hook intercepting every enqueued frame —
//! dropping, delaying, corrupting or duplicating it — and measures the
//! residual on-time delivery rate. When the layer runs defended, the
//! target also reports whether a bus monitor would have noticed
//! (unknown identifiers, missing frames or late frames).

use autosec_sim::inject::{ChannelFault, FaultEffect, FaultTarget, FrameAction, InjectionRecord};
use autosec_sim::{ArchLayer, SimDuration, SimRng, SimTime};

use crate::bus::CanBus;
use crate::can::{CanFrame, CanId};

/// Raw identifier of a corrupted frame (not in the schedule's id set).
const CORRUPT_ID: u16 = 0x7A0;

/// A periodic CAN schedule under per-frame channel faults.
#[derive(Debug, Clone)]
pub struct BusFaultTarget {
    /// Frames in one injection round.
    pub frames: usize,
    /// Inter-frame period of the nominal schedule.
    pub period: SimDuration,
    /// Latency budget after the nominal slot before a frame counts late.
    pub deadline: SimDuration,
}

impl Default for BusFaultTarget {
    fn default() -> Self {
        Self {
            frames: 50,
            period: SimDuration::from_ms(2),
            deadline: SimDuration::from_ms(1),
        }
    }
}

impl BusFaultTarget {
    fn scheduled_id(i: usize) -> CanId {
        CanId::standard(0x100 + (i as u16 % 4) * 0x10).expect("static ids are valid")
    }
}

impl FaultTarget for BusFaultTarget {
    fn layer(&self) -> ArchLayer {
        ArchLayer::Network
    }

    fn name(&self) -> &'static str {
        "ivn-bus"
    }

    fn apply(
        &mut self,
        effects: &[FaultEffect],
        defended: bool,
        rng: &mut SimRng,
    ) -> InjectionRecord {
        let cf = ChannelFault::from_effects(effects);
        if cf.is_noop() {
            return InjectionRecord::clean(self.layer(), self.name());
        }

        let mut bus = CanBus::new(500_000);
        let sender = bus.add_node(2.0);
        let mut nominal = Vec::with_capacity(self.frames);
        for i in 0..self.frames {
            let at = SimTime::ZERO + self.period * i as u64;
            nominal.push(at);
            // The payload's first byte tags the schedule slot so delayed
            // copies can still be matched to their nominal deadline.
            let frame = CanFrame::new(Self::scheduled_id(i), &[i as u8, 0, 0, 0])
                .expect("4-byte payload fits classic CAN");
            match cf.decide(rng) {
                FrameAction::Pass => {
                    let _ = bus.enqueue(sender, at, frame);
                }
                FrameAction::Drop => {}
                FrameAction::Delay(d) => {
                    let _ = bus.enqueue(sender, at + d, frame);
                }
                FrameAction::Corrupt => {
                    let mangled =
                        CanFrame::new(CanId::standard(CORRUPT_ID).expect("static id"), &[0xEE; 4])
                            .expect("static frame");
                    let _ = bus.enqueue(sender, at, mangled);
                }
                FrameAction::Duplicate => {
                    let _ = bus.enqueue(sender, at, frame.clone());
                    let _ = bus.enqueue(sender, at, frame);
                }
            }
        }

        let horizon = SimTime::ZERO + self.period * self.frames as u64 + SimDuration::from_ms(50);
        let log = bus.run(horizon);

        let mut on_time = vec![false; self.frames];
        let mut unknown = 0usize;
        for e in &log {
            if e.frame.id().raw() == u32::from(CORRUPT_ID) {
                unknown += 1;
                continue;
            }
            let slot = e.frame.data()[0] as usize;
            if slot < self.frames && e.completed <= nominal[slot] + self.deadline {
                on_time[slot] = true;
            }
        }
        let delivered = on_time.iter().filter(|&&ok| ok).count();
        let health = delivered as f64 / self.frames as f64;
        let anomalous = unknown > 0 || log.len() != self.frames || health < 1.0;
        InjectionRecord {
            layer: self.layer(),
            target: self.name(),
            applied: true,
            health,
            detected: defended && anomalous,
            detail: format!(
                "{delivered}/{} frames on time, {unknown} unknown ids, {} bus events",
                self.frames,
                log.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(effects: &[FaultEffect], defended: bool, seed: u64) -> InjectionRecord {
        let mut t = BusFaultTarget::default();
        let mut rng = SimRng::seed(seed).fork("bus-fault");
        t.apply(effects, defended, &mut rng)
    }

    #[test]
    fn no_effects_is_clean_and_consumes_no_rng() {
        let base = SimRng::seed(9);
        let mut a = base.fork("probe");
        let mut b = base.fork("probe");
        let rec = BusFaultTarget::default().apply(&[], true, &mut a);
        assert_eq!(rec, InjectionRecord::clean(ArchLayer::Network, "ivn-bus"));
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64(), "clean apply must not draw");
    }

    #[test]
    fn full_drop_zeroes_health() {
        let rec = apply(&[FaultEffect::DropFrames { p: 1.0 }], true, 3);
        assert!(rec.applied);
        assert_eq!(rec.health, 0.0);
        assert!(rec.detected);
    }

    #[test]
    fn partial_drop_degrades_monotonically() {
        let light = apply(&[FaultEffect::DropFrames { p: 0.1 }], false, 5);
        let heavy = apply(&[FaultEffect::DropFrames { p: 0.6 }], false, 5);
        assert!(
            light.health > heavy.health,
            "{} vs {}",
            light.health,
            heavy.health
        );
        assert!(!light.detected, "undefended target cannot detect");
    }

    #[test]
    fn corruption_is_detected_when_defended() {
        let rec = apply(&[FaultEffect::CorruptFrames { p: 0.5 }], true, 7);
        assert!(rec.detected);
        assert!(rec.health < 1.0);
    }

    #[test]
    fn delay_pushes_frames_past_deadline() {
        let rec = apply(
            &[FaultEffect::DelayFrames {
                p: 1.0,
                delay: SimDuration::from_ms(5),
            }],
            true,
            11,
        );
        assert!(rec.health < 0.5, "{}", rec.health);
    }

    #[test]
    fn deterministic_per_substream() {
        let a = apply(&[FaultEffect::DuplicateFrames { p: 0.3 }], true, 13);
        let b = apply(&[FaultEffect::DuplicateFrames { p: 0.3 }], true, 13);
        assert_eq!(a, b);
    }
}
