//! CAN bus simulation: CSMA/CR arbitration, error counters, bus-off.
//!
//! The simulator is queue-based: callers enqueue frames at given times on
//! behalf of nodes; [`CanBus::run`] replays the bus schedule — whenever
//! the bus goes idle, the pending frame with the lowest arbitration key
//! wins — and produces a [`BusEvent`] log with per-frame latencies that
//! the IDS layer (`autosec-ids`) and the scenario benches consume.

use std::collections::VecDeque;

use autosec_sim::{SimDuration, SimTime};

use crate::can::CanFrame;
use crate::IvnError;

/// Index of a node attached to a bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// One delivered frame, as observed on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct BusEvent {
    /// Transmitting node (ground truth — receivers only see the frame!).
    pub sender: NodeId,
    /// The frame.
    pub frame: CanFrame,
    /// When the frame was enqueued at the sender.
    pub enqueued: SimTime,
    /// When transmission started (won arbitration).
    pub started: SimTime,
    /// When the last bit left the wire.
    pub completed: SimTime,
    /// Analog sender fingerprint observed with the frame (models the
    /// voltage-domain features EASI-style sender identification uses).
    pub analog_fingerprint: f64,
}

impl BusEvent {
    /// Queueing + transmission latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.since(self.enqueued)
    }
}

/// Error-state of a CAN node (simplified fault confinement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorState {
    /// Normal operation (TEC < 128).
    ErrorActive,
    /// Degraded (128 <= TEC < 256).
    ErrorPassive,
    /// Disconnected from the bus (TEC >= 256).
    BusOff,
}

#[derive(Debug, Clone)]
struct Node {
    queue: VecDeque<(SimTime, CanFrame)>,
    tec: u32,
    /// Analog fingerprint mean for this physical transceiver.
    fingerprint: f64,
}

/// A simulated classic CAN bus.
///
/// # Example
///
/// ```
/// use autosec_ivn::bus::CanBus;
/// use autosec_ivn::can::{CanFrame, CanId};
/// use autosec_sim::SimTime;
///
/// let mut bus = CanBus::new(500_000);
/// let a = bus.add_node(2.5);
/// let frame = CanFrame::new(CanId::standard(0x10).unwrap(), &[1]).unwrap();
/// bus.enqueue(a, SimTime::ZERO, frame).unwrap();
/// let log = bus.run(SimTime::from_ms(10));
/// assert_eq!(log.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CanBus {
    bitrate_bps: u64,
    nodes: Vec<Node>,
    /// Fraction of frames hit by a (random) bus error, forcing
    /// retransmission and bumping the sender's TEC.
    error_rate: f64,
    /// Analog fingerprint noise sigma.
    fingerprint_sigma: f64,
}

impl CanBus {
    /// Creates a bus at the given nominal bitrate.
    pub fn new(bitrate_bps: u64) -> Self {
        Self {
            bitrate_bps,
            nodes: Vec::new(),
            error_rate: 0.0,
            fingerprint_sigma: 0.05,
        }
    }

    /// Sets a per-frame random error rate (retransmission model).
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Attaches a node; `fingerprint` is its analog signature mean
    /// (distinct per physical transceiver in reality).
    pub fn add_node(&mut self, fingerprint: f64) -> NodeId {
        self.nodes.push(Node {
            queue: VecDeque::new(),
            tec: 0,
            fingerprint,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current error state of `node`.
    pub fn error_state(&self, node: NodeId) -> Result<ErrorState, IvnError> {
        let n = self.nodes.get(node.0).ok_or(IvnError::UnknownNode)?;
        Ok(match n.tec {
            0..=127 => ErrorState::ErrorActive,
            128..=255 => ErrorState::ErrorPassive,
            _ => ErrorState::BusOff,
        })
    }

    /// Transmit error counter of `node`.
    pub fn tec(&self, node: NodeId) -> Result<u32, IvnError> {
        Ok(self.nodes.get(node.0).ok_or(IvnError::UnknownNode)?.tec)
    }

    /// Directly raises a node's TEC (used by the bus-off attack model).
    pub fn bump_tec(&mut self, node: NodeId, amount: u32) -> Result<(), IvnError> {
        let n = self.nodes.get_mut(node.0).ok_or(IvnError::UnknownNode)?;
        n.tec = n.tec.saturating_add(amount);
        Ok(())
    }

    /// Enqueues a frame for transmission by `node` at time `at`.
    ///
    /// # Errors
    ///
    /// [`IvnError::UnknownNode`] for a bad node id;
    /// [`IvnError::BusOff`] if the node is bus-off.
    pub fn enqueue(&mut self, node: NodeId, at: SimTime, frame: CanFrame) -> Result<(), IvnError> {
        if self.error_state(node)? == ErrorState::BusOff {
            return Err(IvnError::BusOff);
        }
        self.nodes[node.0].queue.push_back((at, frame));
        Ok(())
    }

    /// Runs the bus until `deadline` (or all queues drain), returning the
    /// delivery log. Uses a deterministic internal RNG derived from the
    /// schedule for error injection and fingerprint noise.
    pub fn run(&mut self, deadline: SimTime) -> Vec<BusEvent> {
        let mut rng = autosec_sim::SimRng::seed(0x0B05);
        self.run_with_rng(deadline, &mut rng)
    }

    /// [`CanBus::run`] with an explicit RNG stream.
    pub fn run_with_rng(
        &mut self,
        deadline: SimTime,
        rng: &mut autosec_sim::SimRng,
    ) -> Vec<BusEvent> {
        let mut log = Vec::new();
        let mut now = SimTime::ZERO;
        loop {
            // Earliest enqueue time across heads (bus contention point).
            let mut best: Option<(u64, usize, SimTime)> = None; // (arb, node, ready)
            let mut earliest_ready: Option<SimTime> = None;
            for (i, n) in self.nodes.iter().enumerate() {
                if n.tec >= 256 {
                    continue;
                }
                if let Some(&(ready, ref frame)) = n.queue.front() {
                    earliest_ready = Some(earliest_ready.map_or(ready, |e: SimTime| e.min(ready)));
                    // A frame competes in arbitration if ready by `now`.
                    if ready <= now {
                        let key = frame.id().arbitration_key();
                        if best.is_none_or(|(bk, _, _)| key < bk) {
                            best = Some((key, i, ready));
                        }
                    }
                }
            }
            let (node_idx, ready) = match best {
                Some((_, i, r)) => (i, r),
                None => match earliest_ready {
                    // Idle: jump to the next arrival.
                    Some(e) if e <= deadline => {
                        now = now.max(e);
                        continue;
                    }
                    _ => break,
                },
            };
            if now > deadline {
                break;
            }
            let (enq, frame) = self.nodes[node_idx]
                .queue
                .pop_front()
                .expect("head checked above");
            debug_assert!(enq == ready);
            let mut start = now;
            let mut dur = SimDuration::from_ns_f64(frame.duration_ns(self.bitrate_bps));
            // Random bus error: error frame (~20 bits) + retransmission.
            while rng.chance(self.error_rate) {
                self.nodes[node_idx].tec += 8;
                let error_frame = SimDuration::from_ns_f64(20.0 * 1e9 / self.bitrate_bps as f64);
                // Error hits halfway through the frame on average, then an
                // error frame is signalled before retransmission.
                start = start + dur / 2 + error_frame;
                dur = SimDuration::from_ns_f64(frame.duration_ns(self.bitrate_bps));
                if self.nodes[node_idx].tec >= 256 {
                    break;
                }
            }
            if self.nodes[node_idx].tec >= 256 {
                continue; // frame lost; node went bus-off
            }
            // Successful transmission decrements TEC.
            self.nodes[node_idx].tec = self.nodes[node_idx].tec.saturating_sub(1);
            let completed = start + dur;
            let fingerprint =
                rng.normal_with(self.nodes[node_idx].fingerprint, self.fingerprint_sigma);
            log.push(BusEvent {
                sender: NodeId(node_idx),
                frame,
                enqueued: enq,
                started: start,
                completed,
                analog_fingerprint: fingerprint,
            });
            now = completed;
        }
        log
    }

    /// Bus utilisation over `[0, horizon]` given a delivery log: fraction
    /// of time the bus was busy.
    pub fn utilisation(log: &[BusEvent], horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let busy: u64 = log
            .iter()
            .map(|e| e.completed.since(e.started).as_ps())
            .sum();
        busy as f64 / horizon.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::can::CanId;

    fn frame(id: u16, len: usize) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), &vec![0x55; len]).unwrap()
    }

    #[test]
    fn single_frame_delivered_with_correct_timing() {
        let mut bus = CanBus::new(500_000);
        let a = bus.add_node(2.5);
        bus.enqueue(a, SimTime::from_us(100), frame(0x100, 8))
            .unwrap();
        let log = bus.run(SimTime::from_ms(100));
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].sender, a);
        assert_eq!(log[0].started, SimTime::from_us(100));
        let lat_us = log[0].latency().as_us_f64();
        assert!((200.0..300.0).contains(&lat_us), "{lat_us}");
    }

    #[test]
    fn arbitration_lowest_id_wins() {
        let mut bus = CanBus::new(500_000);
        let a = bus.add_node(1.0);
        let b = bus.add_node(2.0);
        // Both ready at t=0; the lower ID must transmit first.
        bus.enqueue(a, SimTime::ZERO, frame(0x300, 1)).unwrap();
        bus.enqueue(b, SimTime::ZERO, frame(0x050, 1)).unwrap();
        let log = bus.run(SimTime::from_ms(100));
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].sender, b);
        assert_eq!(log[1].sender, a);
        assert!(log[1].started >= log[0].completed);
    }

    #[test]
    fn high_priority_flood_starves_low_priority() {
        let mut bus = CanBus::new(500_000);
        let victim = bus.add_node(1.0);
        let flooder = bus.add_node(2.0);
        bus.enqueue(victim, SimTime::ZERO, frame(0x400, 8)).unwrap();
        for _ in 0..50 {
            bus.enqueue(flooder, SimTime::ZERO, frame(0x000, 8))
                .unwrap();
        }
        let log = bus.run(SimTime::from_secs(1));
        // Victim's frame must be the last one delivered.
        assert_eq!(log.last().unwrap().sender, victim);
        let victim_latency = log.last().unwrap().latency().as_ms_f64();
        assert!(victim_latency > 10.0, "{victim_latency} ms");
    }

    #[test]
    fn queue_drains_in_fifo_per_node() {
        let mut bus = CanBus::new(500_000);
        let a = bus.add_node(0.0);
        for i in 0..5u8 {
            bus.enqueue(a, SimTime::ZERO, frame(0x100, 1).clone())
                .unwrap();
            let _ = i;
        }
        let log = bus.run(SimTime::from_secs(1));
        assert_eq!(log.len(), 5);
        for w in log.windows(2) {
            assert!(w[1].started >= w[0].completed);
        }
    }

    #[test]
    fn errors_raise_tec_and_eventually_bus_off() {
        let mut bus = CanBus::new(500_000).with_error_rate(0.9);
        let a = bus.add_node(0.0);
        for _ in 0..100 {
            let _ = bus.enqueue(a, SimTime::ZERO, frame(0x10, 1));
        }
        let _ = bus.run(SimTime::from_secs(10));
        // With 90% error rate the node's TEC climbs +8 per error, −1 per
        // success; bus-off is practically certain within 100 frames.
        assert_eq!(bus.error_state(a).unwrap(), ErrorState::BusOff);
        assert_eq!(
            bus.enqueue(a, SimTime::ZERO, frame(0x10, 1)).unwrap_err(),
            IvnError::BusOff
        );
    }

    #[test]
    fn error_free_bus_keeps_error_active() {
        let mut bus = CanBus::new(500_000);
        let a = bus.add_node(0.0);
        for _ in 0..20 {
            bus.enqueue(a, SimTime::ZERO, frame(0x10, 2)).unwrap();
        }
        let _ = bus.run(SimTime::from_secs(1));
        assert_eq!(bus.error_state(a).unwrap(), ErrorState::ErrorActive);
        assert_eq!(bus.tec(a).unwrap(), 0);
    }

    #[test]
    fn utilisation_reflects_load() {
        let mut bus = CanBus::new(500_000);
        let a = bus.add_node(0.0);
        for i in 0..10 {
            bus.enqueue(a, SimTime::from_ms(i * 10), frame(0x10, 8))
                .unwrap();
        }
        let log = bus.run(SimTime::from_ms(100));
        let u = CanBus::utilisation(&log, SimTime::from_ms(100));
        // 10 frames of ~250us in 100 ms ≈ 2.5%.
        assert!((0.01..0.05).contains(&u), "{u}");
    }

    #[test]
    fn fingerprints_cluster_per_node() {
        let mut bus = CanBus::new(500_000);
        let a = bus.add_node(2.0);
        let b = bus.add_node(3.0);
        for _ in 0..20 {
            bus.enqueue(a, SimTime::ZERO, frame(0x100, 1)).unwrap();
            bus.enqueue(b, SimTime::ZERO, frame(0x200, 1)).unwrap();
        }
        let log = bus.run(SimTime::from_secs(1));
        for e in &log {
            let expect = if e.sender == a { 2.0 } else { 3.0 };
            assert!((e.analog_fingerprint - expect).abs() < 0.3);
        }
    }

    #[test]
    fn unknown_node_errors() {
        let mut bus = CanBus::new(500_000);
        assert_eq!(
            bus.enqueue(NodeId(9), SimTime::ZERO, frame(1, 1))
                .unwrap_err(),
            IvnError::UnknownNode
        );
        assert_eq!(
            bus.error_state(NodeId(9)).unwrap_err(),
            IvnError::UnknownNode
        );
    }
}
