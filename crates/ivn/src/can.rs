//! CAN frame models: classic CAN 2.0, CAN FD, and CAN XL.
//!
//! Classic CAN frames are serialized bit-by-bit (fields, real CRC-15,
//! real bit stuffing), so [`CanFrame::wire_bits`] is exact. CAN FD and
//! CAN XL use field-accurate bit budgets per their specifications
//! (\[16\], \[17\], CiA 610/613) with dual-bitrate timing handled in
//! the dual-rate `duration_ns` methods.

use crate::IvnError;

/// A CAN identifier: 11-bit standard (base) or 29-bit extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CanId {
    /// 11-bit base format identifier.
    Standard(u16),
    /// 29-bit extended format identifier.
    Extended(u32),
}

impl CanId {
    /// Creates a standard (11-bit) identifier.
    ///
    /// # Errors
    ///
    /// [`IvnError::InvalidId`] if `id >= 2^11`.
    pub fn standard(id: u16) -> Result<Self, IvnError> {
        if id >= 1 << 11 {
            return Err(IvnError::InvalidId);
        }
        Ok(CanId::Standard(id))
    }

    /// Creates an extended (29-bit) identifier.
    ///
    /// # Errors
    ///
    /// [`IvnError::InvalidId`] if `id >= 2^29`.
    pub fn extended(id: u32) -> Result<Self, IvnError> {
        if id >= 1 << 29 {
            return Err(IvnError::InvalidId);
        }
        Ok(CanId::Extended(id))
    }

    /// Raw identifier value.
    pub fn raw(&self) -> u32 {
        match self {
            CanId::Standard(v) => u32::from(*v),
            CanId::Extended(v) => *v,
        }
    }

    /// Arbitration priority: lower wins. Standard IDs beat extended IDs
    /// with the same base (the SRR/IDE bits are recessive), which this
    /// ordering approximates by comparing the 11-bit base first.
    pub fn arbitration_key(&self) -> u64 {
        match self {
            CanId::Standard(v) => u64::from(*v) << 19,
            CanId::Extended(v) => {
                let base = u64::from(*v >> 18); // top 11 bits
                let ext = u64::from(*v & 0x3_FFFF);
                (base << 19) | (1 << 18) | ext
            }
        }
    }
}

impl std::fmt::Display for CanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanId::Standard(v) => write!(f, "0x{v:03X}"),
            CanId::Extended(v) => write!(f, "0x{v:08X}x"),
        }
    }
}

/// Computes the CAN CRC-15 (polynomial 0x4599) over a bit sequence.
pub fn crc15(bits: &[bool]) -> u16 {
    let mut crc: u16 = 0;
    for &bit in bits {
        let crc_next = ((crc >> 14) & 1 == 1) ^ bit;
        crc <<= 1;
        crc &= 0x7FFF;
        if crc_next {
            crc ^= 0x4599;
        }
    }
    crc & 0x7FFF
}

/// Applies CAN bit stuffing (insert complement after 5 equal bits) and
/// returns the stuffed bit count.
pub fn stuffed_len(bits: &[bool]) -> usize {
    let mut count = 0usize;
    let mut run = 0usize;
    let mut last: Option<bool> = None;
    for &b in bits {
        count += 1;
        match last {
            Some(l) if l == b => run += 1,
            _ => run = 1,
        }
        last = Some(b);
        if run == 5 {
            // Stuff bit of opposite polarity is inserted.
            count += 1;
            last = Some(!b);
            run = 1;
        }
    }
    count
}

/// A classic CAN 2.0 data frame (payload ≤ 8 bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanFrame {
    id: CanId,
    data: Vec<u8>,
}

impl CanFrame {
    /// Creates a frame.
    ///
    /// # Errors
    ///
    /// [`IvnError::PayloadTooLong`] for more than 8 data bytes.
    pub fn new(id: CanId, data: &[u8]) -> Result<Self, IvnError> {
        if data.len() > 8 {
            return Err(IvnError::PayloadTooLong);
        }
        Ok(Self {
            id,
            data: data.to_vec(),
        })
    }

    /// Identifier.
    pub fn id(&self) -> CanId {
        self.id
    }

    /// Payload bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Serializes the stuffable portion of the frame to bits:
    /// SOF, arbitration, control, data, CRC-15.
    fn stuffable_bits(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(128);
        bits.push(false); // SOF (dominant)
        match self.id {
            CanId::Standard(v) => {
                for i in (0..11).rev() {
                    bits.push((v >> i) & 1 == 1);
                }
                bits.push(false); // RTR dominant (data frame)
                bits.push(false); // IDE dominant (base format)
                bits.push(false); // r0
            }
            CanId::Extended(v) => {
                let base = (v >> 18) as u16;
                for i in (0..11).rev() {
                    bits.push((base >> i) & 1 == 1);
                }
                bits.push(true); // SRR recessive
                bits.push(true); // IDE recessive (extended)
                for i in (0..18).rev() {
                    bits.push((v >> i) & 1 == 1);
                }
                bits.push(false); // RTR
                bits.push(false); // r1
                bits.push(false); // r0
            }
        }
        let dlc = self.data.len() as u8;
        for i in (0..4).rev() {
            bits.push((dlc >> i) & 1 == 1);
        }
        for byte in &self.data {
            for i in (0..8).rev() {
                bits.push((byte >> i) & 1 == 1);
            }
        }
        let crc = crc15(&bits);
        for i in (0..15).rev() {
            bits.push((crc >> i) & 1 == 1);
        }
        bits
    }

    /// Exact wire length in bits: stuffed body plus the unstuffed tail
    /// (CRC delimiter, ACK slot + delimiter, EOF, 3-bit intermission).
    pub fn wire_bits(&self) -> usize {
        stuffed_len(&self.stuffable_bits()) + 1 + 2 + 7 + 3
    }

    /// Transmission time in nanoseconds at `bitrate_bps`.
    pub fn duration_ns(&self, bitrate_bps: u64) -> f64 {
        self.wire_bits() as f64 * 1e9 / bitrate_bps as f64
    }
}

/// Valid CAN FD payload sizes (DLC encoding).
pub const FD_SIZES: [usize; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64];

/// Rounds a payload length up to the next valid CAN FD size.
///
/// Returns `None` if `len > 64`.
pub fn fd_padded_len(len: usize) -> Option<usize> {
    FD_SIZES.iter().copied().find(|&s| s >= len)
}

/// A CAN FD frame (payload ≤ 64 bytes, dual bitrate).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanFdFrame {
    id: CanId,
    data: Vec<u8>,
}

impl CanFdFrame {
    /// Creates a frame; the payload is padded to the next valid DLC size.
    ///
    /// # Errors
    ///
    /// [`IvnError::PayloadTooLong`] for more than 64 data bytes.
    pub fn new(id: CanId, data: &[u8]) -> Result<Self, IvnError> {
        let padded = fd_padded_len(data.len()).ok_or(IvnError::PayloadTooLong)?;
        let mut d = data.to_vec();
        d.resize(padded, 0);
        Ok(Self { id, data: d })
    }

    /// Identifier.
    pub fn id(&self) -> CanId {
        self.id
    }

    /// Payload (padded to a valid DLC size).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Bits transmitted at the (slow) arbitration bitrate: SOF +
    /// arbitration + control prologue + ACK/EOF tail.
    pub fn arbitration_phase_bits(&self) -> usize {
        let arb = match self.id {
            CanId::Standard(_) => 1 + 11 + 3, // SOF, ID, r1/IDE/FDF-ish
            CanId::Extended(_) => 1 + 11 + 2 + 18 + 3,
        };
        arb + 1 + 2 + 7 + 3 // BRS boundary + ACK, EOF, IFS
    }

    /// Bits transmitted at the (fast) data bitrate: control remainder,
    /// data, stuff-count, CRC-17/21.
    pub fn data_phase_bits(&self) -> usize {
        let crc = if self.data.len() <= 16 {
            17 + 5
        } else {
            21 + 6
        };
        // ESI + DLC(4) + data + stuff count (4) + CRC (+fixed stuff bits)
        1 + 4 + self.data.len() * 8 + 4 + crc
    }

    /// Transmission time with distinct arbitration / data bitrates, in
    /// nanoseconds. A ~10% stuffing overhead is applied to the variable
    /// portion (FD uses fixed stuff bits in the CRC field; the data field
    /// stuffing is data-dependent, approximated here).
    pub fn duration_ns(&self, arb_bps: u64, data_bps: u64) -> f64 {
        let arb = self.arbitration_phase_bits() as f64 * 1e9 / arb_bps as f64;
        let data = self.data_phase_bits() as f64 * 1.1 * 1e9 / data_bps as f64;
        arb + data
    }
}

/// A CAN XL frame (payload 1..=2048 bytes), per CiA 610-1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanXlFrame {
    priority: u16,
    /// SDU type (e.g. 0x03 = tunneled Ethernet frame, per CiA 611-1).
    sdt: u8,
    /// Virtual CAN network identifier.
    vcid: u8,
    /// 32-bit acceptance field (replaces filtering on the priority ID).
    acceptance: u32,
    data: Vec<u8>,
}

/// SDU type for tunneled Ethernet frames (CiA 611-1), used by CANAL.
pub const SDT_ETHERNET: u8 = 0x03;

impl CanXlFrame {
    /// Creates a frame.
    ///
    /// # Errors
    ///
    /// [`IvnError::InvalidId`] if `priority >= 2^11`;
    /// [`IvnError::PayloadTooLong`] for an empty payload or more than
    /// 2048 bytes.
    pub fn new(
        priority: u16,
        sdt: u8,
        vcid: u8,
        acceptance: u32,
        data: &[u8],
    ) -> Result<Self, IvnError> {
        if priority >= 1 << 11 {
            return Err(IvnError::InvalidId);
        }
        if data.is_empty() || data.len() > 2048 {
            return Err(IvnError::PayloadTooLong);
        }
        Ok(Self {
            priority,
            sdt,
            vcid,
            acceptance,
            data: data.to_vec(),
        })
    }

    /// 11-bit priority identifier.
    pub fn priority(&self) -> u16 {
        self.priority
    }

    /// SDU type.
    pub fn sdt(&self) -> u8 {
        self.sdt
    }

    /// Virtual network id.
    pub fn vcid(&self) -> u8 {
        self.vcid
    }

    /// Acceptance field.
    pub fn acceptance(&self) -> u32 {
        self.acceptance
    }

    /// Payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Arbitration-phase bits (slow rate): SOF + 11-bit priority + ADS.
    pub fn arbitration_phase_bits(&self) -> usize {
        1 + 11 + 2 + 1 + 2 + 7 + 3 // SOF, prio, ADS, + ACK/EOF/IFS tail
    }

    /// Data-phase bits (fast rate): XL control field (SDT 8, SEC 1,
    /// DLC 11, header CRC 13, VCID 8, AF 32), payload, frame CRC-32.
    pub fn data_phase_bits(&self) -> usize {
        (8 + 1 + 11 + 13 + 8 + 32) + self.data.len() * 8 + 32
    }

    /// Transmission time with dual bitrates, in nanoseconds. CAN XL data
    /// phase uses fixed stuffing (~3%).
    pub fn duration_ns(&self, arb_bps: u64, data_bps: u64) -> f64 {
        let arb = self.arbitration_phase_bits() as f64 * 1e9 / arb_bps as f64;
        let data = self.data_phase_bits() as f64 * 1.03 * 1e9 / data_bps as f64;
        arb + data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_ranges_enforced() {
        assert!(CanId::standard(0x7FF).is_ok());
        assert_eq!(CanId::standard(0x800).unwrap_err(), IvnError::InvalidId);
        assert!(CanId::extended(0x1FFF_FFFF).is_ok());
        assert_eq!(
            CanId::extended(0x2000_0000).unwrap_err(),
            IvnError::InvalidId
        );
    }

    #[test]
    fn arbitration_orders_by_priority() {
        let high = CanId::standard(0x010).unwrap();
        let low = CanId::standard(0x700).unwrap();
        assert!(high.arbitration_key() < low.arbitration_key());
        // Standard beats extended with the same 11-bit base.
        let ext = CanId::extended(0x010 << 18).unwrap();
        assert!(high.arbitration_key() < ext.arbitration_key());
    }

    #[test]
    fn crc15_known_properties() {
        // CRC of the empty sequence is zero; one dominant bit is not.
        assert_eq!(crc15(&[]), 0);
        assert_ne!(crc15(&[true]), crc15(&[false]));
        // Changing one bit changes the CRC.
        let a = crc15(&[true, false, true, true, false, false, true]);
        let b = crc15(&[true, false, true, true, false, true, true]);
        assert_ne!(a, b);
    }

    #[test]
    fn stuffing_inserts_after_five() {
        // 5 equal bits -> 1 stuff bit.
        assert_eq!(stuffed_len(&[true; 5]), 6);
        // The stuff bit breaks the run; 10 equal bits -> 2 stuff bits?
        // After 5 ones a zero is inserted; the next 5 ones then restart:
        // 1 1 1 1 1 [0] 1 1 1 1 1 [0] -> 12.
        assert_eq!(stuffed_len(&[true; 10]), 12);
        // Alternating bits never stuff.
        let alt: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        assert_eq!(stuffed_len(&alt), 20);
    }

    #[test]
    fn classic_frame_bit_length_bounds() {
        // 8-byte standard frame: 111 bits unstuffed + stuffing + can't
        // exceed worst case 135 + IFS.
        let f = CanFrame::new(CanId::standard(0x123).unwrap(), &[0xAA; 8]).unwrap();
        let bits = f.wire_bits();
        assert!((111..=141).contains(&bits), "bits = {bits}");
        // Empty frame: 44 + IFS 3 = 47 minimum.
        let e = CanFrame::new(CanId::standard(0x7FF).unwrap(), &[]).unwrap();
        assert!(e.wire_bits() >= 47, "{}", e.wire_bits());
    }

    #[test]
    fn all_zero_data_stuffs_more_than_alternating() {
        let zeros = CanFrame::new(CanId::standard(0).unwrap(), &[0x00; 8]).unwrap();
        let alt = CanFrame::new(CanId::standard(0x555).unwrap(), &[0xAA; 8]).unwrap();
        assert!(zeros.wire_bits() > alt.wire_bits());
    }

    #[test]
    fn extended_frames_are_longer() {
        let s = CanFrame::new(CanId::standard(0x123).unwrap(), &[1, 2, 3, 4]).unwrap();
        let e = CanFrame::new(CanId::extended(0x123 << 18).unwrap(), &[1, 2, 3, 4]).unwrap();
        assert!(e.wire_bits() > s.wire_bits() + 15);
    }

    #[test]
    fn classic_duration_at_500kbps() {
        let f = CanFrame::new(CanId::standard(0x100).unwrap(), &[0x55; 8]).unwrap();
        let ns = f.duration_ns(500_000);
        // ~111-130 bits at 2 us/bit = 222..260 us.
        assert!((220_000.0..270_000.0).contains(&ns), "{ns}");
    }

    #[test]
    fn classic_rejects_9_bytes() {
        assert_eq!(
            CanFrame::new(CanId::standard(1).unwrap(), &[0; 9]).unwrap_err(),
            IvnError::PayloadTooLong
        );
    }

    #[test]
    fn fd_padding_to_dlc_sizes() {
        assert_eq!(fd_padded_len(0), Some(0));
        assert_eq!(fd_padded_len(8), Some(8));
        assert_eq!(fd_padded_len(9), Some(12));
        assert_eq!(fd_padded_len(33), Some(48));
        assert_eq!(fd_padded_len(64), Some(64));
        assert_eq!(fd_padded_len(65), None);
        let f = CanFdFrame::new(CanId::standard(1).unwrap(), &[7; 10]).unwrap();
        assert_eq!(f.data().len(), 12);
        assert_eq!(&f.data()[..10], &[7; 10]);
    }

    #[test]
    fn fd_faster_than_classic_for_same_payload_rate() {
        // 64 bytes over FD at 500k/2M vs 8x 8-byte classic frames at 500k.
        let fd = CanFdFrame::new(CanId::standard(1).unwrap(), &[0xA5; 64]).unwrap();
        let classic = CanFrame::new(CanId::standard(1).unwrap(), &[0xA5; 8]).unwrap();
        assert!(fd.duration_ns(500_000, 2_000_000) < 8.0 * classic.duration_ns(500_000));
    }

    #[test]
    fn xl_carries_ethernet_scale_payloads() {
        let xl = CanXlFrame::new(0x050, SDT_ETHERNET, 0, 0xDEAD_BEEF, &[0; 1500]).unwrap();
        assert_eq!(xl.data().len(), 1500);
        let ns = xl.duration_ns(500_000, 10_000_000);
        // 1500 B ≈ 12000 bits at 10 Mbps ≈ 1.2 ms + header.
        assert!((1_200_000.0..1_500_000.0).contains(&ns), "{ns}");
    }

    #[test]
    fn xl_rejects_bad_params() {
        assert_eq!(
            CanXlFrame::new(0x800, 0, 0, 0, &[1]).unwrap_err(),
            IvnError::InvalidId
        );
        assert_eq!(
            CanXlFrame::new(0, 0, 0, 0, &[]).unwrap_err(),
            IvnError::PayloadTooLong
        );
        assert_eq!(
            CanXlFrame::new(0, 0, 0, 0, &[0; 2049]).unwrap_err(),
            IvnError::PayloadTooLong
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(CanId::standard(0x12).unwrap().to_string(), "0x012");
        assert_eq!(CanId::extended(0x1234).unwrap().to_string(), "0x00001234x");
    }
}
