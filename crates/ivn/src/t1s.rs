//! 10BASE-T1S multidrop automotive Ethernet with PLCA (IEEE 802.3cg,
//! paper ref \[15\]).
//!
//! PLCA (Physical Layer Collision Avoidance) replaces CSMA/CD with a
//! round-robin of *transmit opportunities*: a beacon starts each cycle,
//! then every node gets a short window to either start a frame or yield.
//! The paper highlights T1S because multidrop operation *"decreases
//! cabling weight"* versus point-to-point links.

use std::collections::VecDeque;

use autosec_sim::{SimDuration, SimTime};

use crate::IvnError;

/// 10BASE-T1S nominal bitrate.
pub const T1S_BITRATE_BPS: u64 = 10_000_000;

/// Duration of an unused transmit opportunity (20 bit times).
const TO_BITS: u64 = 20;
/// Beacon duration in bits.
const BEACON_BITS: u64 = 20;
/// Ethernet overhead per frame: preamble+SFD (8) + header (14) + FCS (4)
/// + IPG (12) bytes.
const FRAME_OVERHEAD_BYTES: usize = 38;

/// One frame delivery on the T1S segment.
#[derive(Debug, Clone, PartialEq)]
pub struct T1sDelivery {
    /// Transmitting node index.
    pub sender: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Enqueue time.
    pub enqueued: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

impl T1sDelivery {
    /// Queueing + transmission latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.since(self.enqueued)
    }
}

/// A PLCA-managed 10BASE-T1S segment.
///
/// # Example
///
/// ```
/// use autosec_ivn::t1s::T1sSegment;
/// use autosec_sim::SimTime;
/// let mut seg = T1sSegment::new(4);
/// seg.enqueue(1, SimTime::ZERO, 100).unwrap();
/// let log = seg.run(SimTime::from_ms(5));
/// assert_eq!(log.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct T1sSegment {
    node_queues: Vec<VecDeque<(SimTime, usize)>>,
}

impl T1sSegment {
    /// Creates a segment with `node_count` attached nodes (PLCA IDs
    /// `0..node_count`; node 0 is the PLCA coordinator).
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(node_count: usize) -> Self {
        assert!(node_count > 0, "T1S segment needs at least one node");
        Self {
            node_queues: vec![VecDeque::new(); node_count],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_queues.len()
    }

    /// Enqueues a frame of `payload_len` bytes at `node`.
    ///
    /// # Errors
    ///
    /// [`IvnError::UnknownNode`] for an out-of-range node;
    /// [`IvnError::PayloadTooLong`] above 1500 bytes.
    pub fn enqueue(
        &mut self,
        node: usize,
        at: SimTime,
        payload_len: usize,
    ) -> Result<(), IvnError> {
        if node >= self.node_queues.len() {
            return Err(IvnError::UnknownNode);
        }
        if payload_len > 1500 {
            return Err(IvnError::PayloadTooLong);
        }
        self.node_queues[node].push_back((at, payload_len));
        Ok(())
    }

    fn bit_time() -> SimDuration {
        SimDuration::from_ns_f64(1e9 / T1S_BITRATE_BPS as f64)
    }

    /// Runs PLCA cycles until `deadline` or all queues drain.
    pub fn run(&mut self, deadline: SimTime) -> Vec<T1sDelivery> {
        let mut log = Vec::new();
        let mut now = SimTime::ZERO;
        let bit = Self::bit_time();
        loop {
            let pending: usize = self.node_queues.iter().map(|q| q.len()).sum();
            if pending == 0 || now > deadline {
                break;
            }
            // Beacon.
            now += bit * BEACON_BITS;
            let mut sent_this_cycle = 0;
            for node in 0..self.node_queues.len() {
                let ready = self.node_queues[node]
                    .front()
                    .map(|&(at, _)| at <= now)
                    .unwrap_or(false);
                if ready {
                    let (at, len) = self.node_queues[node].pop_front().expect("checked");
                    let wire_bytes = len.max(46) + FRAME_OVERHEAD_BYTES;
                    now += bit * (wire_bytes as u64 * 8);
                    log.push(T1sDelivery {
                        sender: node,
                        payload_len: len,
                        enqueued: at,
                        completed: now,
                    });
                    sent_this_cycle += 1;
                } else {
                    // Yielded transmit opportunity.
                    now += bit * TO_BITS;
                }
            }
            if sent_this_cycle == 0 {
                // Nothing ready yet: fast-forward to the next arrival.
                let next = self
                    .node_queues
                    .iter()
                    .filter_map(|q| q.front().map(|&(at, _)| at))
                    .min();
                match next {
                    Some(t) if t > now => now = t,
                    _ => {}
                }
            }
        }
        log
    }

    /// Serialization time of a single frame on T1S, ignoring PLCA waits.
    pub fn frame_time(payload_len: usize) -> SimDuration {
        let wire_bytes = payload_len.max(46) + FRAME_OVERHEAD_BYTES;
        Self::bit_time() * (wire_bytes as u64 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_latency_close_to_serialization() {
        let mut seg = T1sSegment::new(2);
        seg.enqueue(0, SimTime::ZERO, 200).unwrap();
        let log = seg.run(SimTime::from_ms(10));
        assert_eq!(log.len(), 1);
        // 238 bytes * 8 bits at 10 Mbps = 190.4 us + beacon.
        let lat = log[0].latency().as_us_f64();
        assert!((190.0..200.0).contains(&lat), "{lat}");
    }

    #[test]
    fn round_robin_is_fair() {
        let mut seg = T1sSegment::new(4);
        for node in 0..4 {
            for _ in 0..5 {
                seg.enqueue(node, SimTime::ZERO, 100).unwrap();
            }
        }
        let log = seg.run(SimTime::from_secs(1));
        assert_eq!(log.len(), 20);
        // First four deliveries come from four distinct nodes.
        let firsts: Vec<usize> = log[..4].iter().map(|d| d.sender).collect();
        assert_eq!(firsts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_opportunities_cost_little() {
        // One busy node among 8 silent ones: per-cycle overhead is
        // 7 * 20 bit-times + beacon = ~16 us, small next to the frame.
        let mut seg = T1sSegment::new(8);
        for _ in 0..10 {
            seg.enqueue(3, SimTime::ZERO, 500).unwrap();
        }
        let log = seg.run(SimTime::from_secs(1));
        assert_eq!(log.len(), 10);
        let total = log.last().unwrap().completed.as_ms_f64();
        // 10 frames of 538 B ≈ 4.3 ms serialization + ~0.2 ms PLCA.
        assert!((4.0..5.0).contains(&total), "{total}");
    }

    #[test]
    fn min_frame_padding_applies() {
        let short = T1sSegment::frame_time(1);
        let padded = T1sSegment::frame_time(46);
        assert_eq!(short, padded);
        assert!(T1sSegment::frame_time(100) > padded);
    }

    #[test]
    fn rejects_bad_input() {
        let mut seg = T1sSegment::new(2);
        assert_eq!(
            seg.enqueue(5, SimTime::ZERO, 10).unwrap_err(),
            IvnError::UnknownNode
        );
        assert_eq!(
            seg.enqueue(0, SimTime::ZERO, 2000).unwrap_err(),
            IvnError::PayloadTooLong
        );
    }

    #[test]
    fn future_arrivals_handled() {
        let mut seg = T1sSegment::new(2);
        seg.enqueue(1, SimTime::from_ms(3), 64).unwrap();
        let log = seg.run(SimTime::from_ms(10));
        assert_eq!(log.len(), 1);
        assert!(log[0].completed >= SimTime::from_ms(3));
    }
}
