//! # autosec-scengen
//!
//! Generative scenario composition over the calibrated attack graph.
//!
//! The paper's campaign is a fixed catalog: nine hand-picked steps in
//! one order. This crate turns the catalog into a *measured surface*:
//! a seeded, deterministic generator composes multi-step attack
//! campaigns by walking the 15-capability attack graph
//! ([`AttackGraph`]), constrained to be **capability-consistent** —
//! every step's precondition capability is reachable from the grants of
//! the steps before it, starting from [`CapabilitySet::start`]. Each
//! edge carries an [`ArchLayer`] and a [`Stride`] class, so the
//! generated set rolls up into a STRIDE×layer [`CoverageMatrix`]
//! reporting which threat-class/layer cells have at least one
//! executable composed scenario (and at which calibrated success and
//! detection rates), with uncovered-but-modeled cells listed as `GAP`.
//!
//! Replaying a generated campaign under a posture
//! ([`evaluate_campaign`]) uses common random numbers: every step
//! always consumes exactly two Bernoulli draws (success, then alert),
//! whether or not its precondition is held, so a trial's breach
//! indicator is *exactly* weakly decreasing along the nested
//! bottom-up posture ladder ([`DefensePosture::depth`]) — the clamped
//! calibration guarantees each edge's effective success probability
//! only falls as layers turn on, and identical draws then make the
//! owned-capability set shrink monotonically. The E24 experiment and
//! the property tests below pin this without any tolerance.
//!
//! Generation itself is single-stream (attempt `a` walks on
//! `seed → "scengen/generate" → fork_idx(a)`) and therefore trivially
//! independent of `--jobs`; only the Monte-Carlo evaluation
//! parallelizes, through [`par_trials`], which is jobs-invariant by
//! construction.

use autosec_adversary::graph::{AttackGraph, Capability, CapabilitySet};
use autosec_core::campaign::DefensePosture;
use autosec_runner::par_trials;
use autosec_sim::{ArchLayer, SimRng, Stride};
use rand::RngCore as _;

/// How a generation run is sized and filtered.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Target number of distinct campaigns.
    pub count: usize,
    /// Maximum steps per campaign.
    pub max_len: usize,
    /// Generator seed (fully determines the output set).
    pub seed: u64,
    /// Keep only campaigns touching this layer, when set.
    pub layer: Option<ArchLayer>,
    /// Keep only campaigns touching this STRIDE class, when set.
    pub stride: Option<Stride>,
}

impl GenConfig {
    /// A config with no acceptance filters.
    pub fn new(count: usize, max_len: usize, seed: u64) -> Self {
        Self {
            count,
            max_len: max_len.max(1),
            seed,
            layer: None,
            stride: None,
        }
    }

    /// Restricts the output to campaigns touching `layer`.
    pub fn with_layer(mut self, layer: ArchLayer) -> Self {
        self.layer = Some(layer);
        self
    }

    /// Restricts the output to campaigns touching `stride`.
    pub fn with_stride(mut self, stride: Stride) -> Self {
        self.stride = Some(stride);
        self
    }
}

/// One generated campaign: an ordered, capability-consistent walk over
/// the attack graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedCampaign {
    /// Stable identifier within the generated set (`gen-<n>`).
    pub id: String,
    /// Edge indices into the source graph's `edges()`, in execution
    /// order. Every step's `from` is granted by the steps before it
    /// (or is the start capability) and its `to` is fresh.
    pub edges: Vec<usize>,
}

impl GeneratedCampaign {
    /// The edge names, in execution order.
    pub fn names<'g>(&self, graph: &'g AttackGraph) -> Vec<&'g str> {
        self.edges.iter().map(|&i| graph.edges()[i].name).collect()
    }

    /// The capability the campaign ultimately targets (the final
    /// step's grant).
    pub fn goal(&self, graph: &AttackGraph) -> Capability {
        let last = *self.edges.last().expect("campaigns are non-empty");
        graph.edges()[last].to
    }

    /// Whether any step attacks `layer`.
    pub fn touches_layer(&self, graph: &AttackGraph, layer: ArchLayer) -> bool {
        self.edges.iter().any(|&i| graph.edges()[i].layer == layer)
    }

    /// Whether any step realises `stride`.
    pub fn touches_stride(&self, graph: &AttackGraph, stride: Stride) -> bool {
        self.edges
            .iter()
            .any(|&i| graph.edges()[i].stride == stride)
    }
}

/// How many walk attempts the generator spends per requested campaign
/// before giving up (tight filters can starve acceptance).
const ATTEMPTS_PER_CAMPAIGN: usize = 64;

/// Generates up to `cfg.count` distinct capability-consistent
/// campaigns from `graph`.
///
/// Attempt `a` performs one random walk on the substream
/// `SimRng::seed(cfg.seed).fork("scengen/generate").fork_idx(a)`: from
/// the owned-capability frontier (initially [`CapabilitySet::start`]),
/// repeatedly pick uniformly among *eligible* edges — precondition
/// owned, grant not yet owned — claim the grant, and stop at
/// [`AttackGraph::GOAL`], a dead end, or `cfg.max_len`. Walks failing
/// an acceptance filter and exact duplicates are discarded. The output
/// set is a pure function of `(graph topology, cfg)` — independent of
/// job counts and wall clock.
pub fn generate(graph: &AttackGraph, cfg: &GenConfig) -> Vec<GeneratedCampaign> {
    let base = SimRng::seed(cfg.seed).fork("scengen/generate");
    let mut out: Vec<GeneratedCampaign> = Vec::new();
    let mut seen: Vec<Vec<usize>> = Vec::new();
    let cap = cfg.count.saturating_mul(ATTEMPTS_PER_CAMPAIGN).max(1);
    for attempt in 0..cap {
        if out.len() >= cfg.count {
            break;
        }
        let mut rng = base.fork_idx(attempt as u64);
        let mut owned = CapabilitySet::start();
        let mut walk: Vec<usize> = Vec::new();
        while walk.len() < cfg.max_len && !owned.contains(AttackGraph::GOAL) {
            let eligible: Vec<usize> = graph
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| owned.contains(e.from) && !owned.contains(e.to))
                .map(|(i, _)| i)
                .collect();
            if eligible.is_empty() {
                break;
            }
            let pick = eligible[(rng.next_u64() % eligible.len() as u64) as usize];
            owned.insert(graph.edges()[pick].to);
            walk.push(pick);
        }
        if walk.is_empty() {
            continue;
        }
        let candidate = GeneratedCampaign {
            id: format!("gen-{:04}", out.len()),
            edges: walk,
        };
        if let Some(layer) = cfg.layer {
            if !candidate.touches_layer(graph, layer) {
                continue;
            }
        }
        if let Some(stride) = cfg.stride {
            if !candidate.touches_stride(graph, stride) {
                continue;
            }
        }
        if seen.contains(&candidate.edges) {
            continue;
        }
        seen.push(candidate.edges.clone());
        out.push(candidate);
    }
    out
}

/// Monte-Carlo estimate of one campaign's outcome under one posture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignStats {
    /// Fraction of trials in which the final step's capability was
    /// reached (the campaign "breached").
    pub breach: f64,
    /// Fraction of trials in which at least one *attempted* step
    /// raised an alert.
    pub detect: f64,
}

/// Replays `campaign` `trials` times under `posture`, trial `i` on
/// `base.fork_idx(i)`.
///
/// Every step consumes exactly two Bernoulli draws regardless of
/// whether its precondition is held — the CRN discipline that makes a
/// trial's breach indicator exactly monotone across nested postures
/// (see the crate docs). A step only *grants* its capability when its
/// precondition is owned and the success draw hits, and only *counts*
/// a detection when it was actually attempted.
///
/// Deterministic in `(graph, campaign, posture, base, trials)`; `jobs`
/// only changes wall-clock time.
pub fn evaluate_campaign(
    graph: &AttackGraph,
    campaign: &GeneratedCampaign,
    posture: &DefensePosture,
    base: &SimRng,
    trials: usize,
    jobs: usize,
) -> CampaignStats {
    let goal = campaign.goal(graph);
    let outcomes = par_trials(jobs, trials, base, |_, mut rng| {
        let mut owned = CapabilitySet::start();
        let mut alerted = false;
        for &ei in &campaign.edges {
            let edge = &graph.edges()[ei];
            let p = edge.prob(posture);
            let attempted = owned.contains(edge.from);
            let succeeded = rng.chance(p.success);
            let detected = rng.chance(p.detect);
            if attempted && succeeded {
                owned.insert(edge.to);
            }
            if attempted && detected {
                alerted = true;
            }
        }
        (owned.contains(goal), alerted)
    });
    let n = trials.max(1) as f64;
    CampaignStats {
        breach: outcomes.iter().filter(|o| o.0).count() as f64 / n,
        detect: outcomes.iter().filter(|o| o.1).count() as f64 / n,
    }
}

/// The verdict of one STRIDE×layer cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellVerdict {
    /// At least one generated campaign exercises the cell.
    Covered,
    /// The graph models the cell but no generated campaign hit it.
    Gap,
    /// No graph edge realises this threat class at this layer — the
    /// cell is outside the modeled surface (itself a finding: e.g. the
    /// workbench models no repudiation attack anywhere).
    Unmodeled,
}

impl CellVerdict {
    /// The grep-able artifact label.
    pub fn label(&self) -> &'static str {
        match self {
            CellVerdict::Covered => "covered",
            CellVerdict::Gap => "GAP",
            CellVerdict::Unmodeled => "n/a",
        }
    }
}

/// One cell of the STRIDE×layer coverage matrix.
#[derive(Debug, Clone)]
pub struct CoverageCell {
    /// The threat class (row).
    pub stride: Stride,
    /// The architectural layer (column).
    pub layer: ArchLayer,
    /// Graph edges realising this class at this layer.
    pub pool_edges: usize,
    /// Generated campaigns containing at least one such edge.
    pub campaign_hits: usize,
    /// Mean calibrated undefended success rate over the cell's edges
    /// (0.0 when unmodeled).
    pub undefended_success: f64,
    /// Mean calibrated defended success rate over the cell's edges.
    pub defended_success: f64,
    /// Mean calibrated defended detection rate over the cell's edges.
    pub defended_detect: f64,
    /// The cell's verdict.
    pub verdict: CellVerdict,
}

/// The full STRIDE×layer coverage matrix (6×6 = 36 cells, STRIDE-major
/// in [`Stride::ALL`] × [`ArchLayer::ALL`] order).
#[derive(Debug, Clone)]
pub struct CoverageMatrix {
    /// All 36 cells.
    pub cells: Vec<CoverageCell>,
}

impl CoverageMatrix {
    /// Builds the matrix for `campaigns` generated from `graph`. The
    /// per-cell calibrated rates are means over the cell's edges of
    /// the graph's measured probability points — the same shared
    /// calibration machinery ([`measure_step`]-based) behind the fleet
    /// outcome tables, never a hand-typed constant.
    ///
    /// [`measure_step`]: autosec_core::engine::measure_step
    pub fn build(graph: &AttackGraph, campaigns: &[GeneratedCampaign]) -> Self {
        let cells = Stride::ALL
            .iter()
            .flat_map(|&stride| ArchLayer::ALL.iter().map(move |&layer| (stride, layer)))
            .map(|(stride, layer)| {
                let pool: Vec<_> = graph
                    .edges()
                    .iter()
                    .filter(|e| e.stride == stride && e.layer == layer)
                    .collect();
                let hits = campaigns
                    .iter()
                    .filter(|c| {
                        c.edges.iter().any(|&i| {
                            let e = &graph.edges()[i];
                            e.stride == stride && e.layer == layer
                        })
                    })
                    .count();
                let n = pool.len() as f64;
                let mean = |f: fn(&&&autosec_adversary::graph::AttackEdge) -> f64| {
                    if pool.is_empty() {
                        0.0
                    } else {
                        pool.iter().map(|e| f(&e)).sum::<f64>() / n
                    }
                };
                let verdict = if hits > 0 {
                    CellVerdict::Covered
                } else if pool.is_empty() {
                    CellVerdict::Unmodeled
                } else {
                    CellVerdict::Gap
                };
                CoverageCell {
                    stride,
                    layer,
                    pool_edges: pool.len(),
                    campaign_hits: hits,
                    undefended_success: mean(|e| e.undefended.success),
                    defended_success: mean(|e| e.defended.success),
                    defended_detect: mean(|e| e.defended.detect),
                    verdict,
                }
            })
            .collect();
        Self { cells }
    }

    /// Cells the graph models (at least one edge).
    pub fn modeled(&self) -> usize {
        self.cells.iter().filter(|c| c.pool_edges > 0).count()
    }

    /// Modeled cells exercised by at least one campaign.
    pub fn covered(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict == CellVerdict::Covered)
            .count()
    }

    /// Modeled-but-unexercised cells.
    pub fn gaps(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict == CellVerdict::Gap)
            .count()
    }

    /// Covered fraction of the modeled surface (1.0 for an empty
    /// model, vacuously).
    pub fn coverage(&self) -> f64 {
        let m = self.modeled();
        if m == 0 {
            1.0
        } else {
            self.covered() as f64 / m as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_adversary::calibrate::{calibrated_graph, CalibrationConfig};
    use std::sync::OnceLock;

    fn shared_graph() -> &'static AttackGraph {
        static GRAPH: OnceLock<AttackGraph> = OnceLock::new();
        GRAPH.get_or_init(|| calibrated_graph(&CalibrationConfig::new(12, 2), &SimRng::seed(5)))
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let g = shared_graph();
        let cfg = GenConfig::new(12, 6, 42);
        let a = generate(g, &cfg);
        let b = generate(g, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        let c = generate(g, &GenConfig::new(12, 6, 43));
        assert_ne!(a, c, "different seeds should compose different sets");
    }

    #[test]
    fn every_generated_campaign_is_capability_consistent() {
        let g = shared_graph();
        for seed in [11, 42, 1234] {
            for campaign in generate(g, &GenConfig::new(16, 6, seed)) {
                let mut owned = CapabilitySet::start();
                for &ei in &campaign.edges {
                    let e = &g.edges()[ei];
                    assert!(
                        owned.contains(e.from),
                        "{}: step {} requires unheld {}",
                        campaign.id,
                        e.name,
                        e.from
                    );
                    assert!(
                        !owned.contains(e.to),
                        "{}: step {} re-grants {}",
                        campaign.id,
                        e.name,
                        e.to
                    );
                    owned.insert(e.to);
                }
            }
        }
    }

    #[test]
    fn campaigns_are_distinct_and_bounded() {
        let g = shared_graph();
        let cfg = GenConfig::new(24, 4, 7);
        let set = generate(g, &cfg);
        for c in &set {
            assert!(!c.edges.is_empty() && c.edges.len() <= 4, "{}", c.id);
        }
        let mut walks: Vec<_> = set.iter().map(|c| c.edges.clone()).collect();
        walks.sort();
        walks.dedup();
        assert_eq!(walks.len(), set.len(), "duplicate walks survived");
    }

    #[test]
    fn acceptance_filters_hold() {
        let g = shared_graph();
        let by_layer = generate(g, &GenConfig::new(8, 6, 42).with_layer(ArchLayer::Network));
        assert!(!by_layer.is_empty());
        for c in &by_layer {
            assert!(c.touches_layer(g, ArchLayer::Network), "{}", c.id);
        }
        let by_stride = generate(g, &GenConfig::new(8, 6, 42).with_stride(Stride::Spoofing));
        assert!(!by_stride.is_empty());
        for c in &by_stride {
            assert!(c.touches_stride(g, Stride::Spoofing), "{}", c.id);
        }
    }

    #[test]
    fn evaluation_is_jobs_invariant() {
        let g = shared_graph();
        let set = generate(g, &GenConfig::new(4, 6, 42));
        let base = SimRng::seed(9).fork("eval");
        let posture = DefensePosture::depth(3);
        for c in &set {
            let a = evaluate_campaign(g, c, &posture, &base, 50, 1);
            let b = evaluate_campaign(g, c, &posture, &base, 50, 4);
            assert_eq!(a, b, "{}", c.id);
        }
    }

    #[test]
    fn breach_is_monotone_in_posture_depth() {
        // The CRN property over >= 3 seeds: per campaign, the breach
        // rate never rises as layers turn on bottom-up. Exact
        // comparison — no tolerance — because the per-trial indicator
        // itself is monotone under common random numbers.
        let g = shared_graph();
        for seed in [11, 42, 1234] {
            let set = generate(g, &GenConfig::new(8, 6, seed));
            assert!(!set.is_empty());
            let base = SimRng::seed(seed).fork("mono");
            for c in &set {
                let mut prev = f64::INFINITY;
                for depth in 0..=ArchLayer::ALL.len() {
                    let posture = DefensePosture::depth(depth);
                    let s = evaluate_campaign(g, c, &posture, &base, 60, 2);
                    assert!(
                        s.breach <= prev,
                        "{} seed {} depth {}: breach {} > previous {}",
                        c.id,
                        seed,
                        depth,
                        s.breach,
                        prev
                    );
                    prev = s.breach;
                }
            }
        }
    }

    #[test]
    fn coverage_matrix_reports_the_modeled_surface() {
        let g = shared_graph();
        let set = generate(g, &GenConfig::new(64, 6, 42));
        let m = CoverageMatrix::build(g, &set);
        assert_eq!(m.cells.len(), 36);
        assert!(m.modeled() > 0);
        assert!(
            m.coverage() >= 0.8,
            "covered {}/{} modeled cells",
            m.covered(),
            m.modeled()
        );
        // The workbench models no repudiation attack: that whole row
        // must be explicitly n/a, not silently absent.
        for cell in m.cells.iter().filter(|c| c.stride == Stride::Repudiation) {
            assert_eq!(cell.verdict, CellVerdict::Unmodeled);
        }
        for cell in &m.cells {
            match cell.verdict {
                CellVerdict::Covered => assert!(cell.campaign_hits > 0 && cell.pool_edges > 0),
                CellVerdict::Gap => assert!(cell.campaign_hits == 0 && cell.pool_edges > 0),
                CellVerdict::Unmodeled => {
                    assert_eq!(cell.pool_edges, 0);
                    assert_eq!(cell.undefended_success, 0.0);
                }
            }
        }
    }
}
