//! # autosec-secproto
//!
//! In-vehicle security protocols (§III-A of the paper, Table I and
//! Figs. 4–6).
//!
//! Implements every protocol in the paper's Table I against the real
//! cryptography of `autosec-crypto` and the frame models of
//! `autosec-ivn`:
//!
//! | ISO-OSI layer | Ethernet            | CAN XL             |
//! |---------------|---------------------|--------------------|
//! | 7 Application | [`secoc`]           | [`secoc`]          |
//! | 4 Transport   | [`dtls`]            | —                  |
//! | 3 Network     | [`ipsec`]           | —                  |
//! | 2 Data link   | [`macsec`]          | [`cansec`]         |
//!
//! plus:
//!
//! - [`canal`] — the CAN Adaptation Layer of Fig. 6 (AAL5-inspired),
//!   tunneling Ethernet/MACsec frames over CAN XL so MACsec can run end
//!   to end between CAN and 10BASE-T1S endpoints
//! - [`key_agreement`] — MKA-style session-key derivation from pairwise
//!   connectivity association keys
//! - [`scenarios`] — the three deployment scenarios S1 (Fig. 4),
//!   S2 (Fig. 5, end-to-end vs point-to-point) and S3 (Fig. 6), with the
//!   per-message overhead / crypto-operation / key-storage accounting the
//!   paper's comparison is about
//!
//! ## Example
//!
//! ```
//! use autosec_secproto::secoc::{SecOcAuthenticator, SecOcConfig};
//!
//! let cfg = SecOcConfig::default();
//! let mut tx = SecOcAuthenticator::new_sender(cfg, [7u8; 16], 0x100);
//! let mut rx = SecOcAuthenticator::new_receiver(cfg, [7u8; 16], 0x100);
//! let pdu = tx.protect(b"wheel speed").unwrap();
//! assert_eq!(rx.verify(&pdu).unwrap(), b"wheel speed");
//! ```

pub mod canal;
pub mod cansec;
pub mod dtls;
pub mod ipsec;
pub mod key_agreement;
pub mod macsec;
pub mod scenarios;
pub mod secoc;
pub mod seemqtt;

/// Errors shared by the protocol implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoError {
    /// MAC or AEAD verification failed.
    AuthFailed,
    /// Frame rejected by the anti-replay check.
    Replayed,
    /// Frame too short / malformed.
    Malformed,
    /// Freshness could not be reconstructed within the window.
    FreshnessLost,
    /// Reassembly failed (missing fragment or bad trailer CRC).
    ReassemblyFailed,
    /// Counter space exhausted; rekey required.
    RekeyRequired,
    /// Too few secret shares were delivered to reconstruct a key.
    InsufficientShares,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::AuthFailed => write!(f, "authentication failed"),
            ProtoError::Replayed => write!(f, "replay detected"),
            ProtoError::Malformed => write!(f, "malformed protocol frame"),
            ProtoError::FreshnessLost => write!(f, "freshness value out of window"),
            ProtoError::ReassemblyFailed => write!(f, "reassembly failed"),
            ProtoError::RekeyRequired => write!(f, "counter exhausted, rekey required"),
            ProtoError::InsufficientShares => {
                write!(f, "not enough key shares delivered")
            }
        }
    }
}

impl std::error::Error for ProtoError {}
