//! CANsec (CiA 613-2 working draft, paper ref \[19\]) — MACsec-inspired
//! security for CAN XL.
//!
//! Protects CAN XL frames with AES-GCM, an explicit freshness counter and
//! a secure-zone association number. Like MACsec, confidentiality is
//! optional; unlike SECOC, the freshness value is carried in full (the
//! XL payload is large enough that the truncation trick is unnecessary).

use autosec_crypto::AesGcm;
use autosec_ivn::can::CanXlFrame;

use crate::ProtoError;

/// CANsec header bytes inside the XL payload: flags (1) + AN (1) +
/// freshness (8).
pub const CANSEC_HEADER_BYTES: usize = 10;
/// ICV bytes (GCM tag, truncated to 8 in the constrained profile).
pub const CANSEC_ICV_BYTES: usize = 8;

/// A CANsec secure zone association (one direction).
#[derive(Debug, Clone)]
pub struct CansecTx {
    aead: AesGcm,
    /// Association number inside the secure zone.
    an: u8,
    freshness: u64,
    encrypt: bool,
}

/// Receive side with strict freshness monotonicity.
#[derive(Debug, Clone)]
pub struct CansecRx {
    aead: AesGcm,
    an: u8,
    last_freshness: u64,
}

fn nonce(an: u8, freshness: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[3] = an;
    n[4..].copy_from_slice(&freshness.to_be_bytes());
    n
}

impl CansecTx {
    /// Creates the sending side of an association.
    pub fn new(key: [u8; 16], an: u8, encrypt: bool) -> Self {
        Self {
            aead: AesGcm::new(&key),
            an,
            freshness: 1,
            encrypt,
        }
    }

    /// Wire overhead per frame.
    pub fn overhead_bytes() -> usize {
        CANSEC_HEADER_BYTES + CANSEC_ICV_BYTES
    }

    /// Wraps `payload` into a protected CAN XL frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError::RekeyRequired`] on freshness exhaustion,
    /// [`ProtoError::Malformed`] if the protected payload exceeds the XL
    /// limit.
    pub fn protect(
        &mut self,
        priority: u16,
        vcid: u8,
        payload: &[u8],
    ) -> Result<CanXlFrame, ProtoError> {
        if self.freshness == u64::MAX {
            return Err(ProtoError::RekeyRequired);
        }
        let fv = self.freshness;
        self.freshness += 1;
        let n = nonce(self.an, fv);
        let flags: u8 = if self.encrypt { 0x01 } else { 0x00 };
        let mut aad = vec![flags, self.an];
        aad.extend_from_slice(&fv.to_be_bytes());
        aad.push(vcid);

        let body = if self.encrypt {
            self.aead
                .seal_with_tag_len(&n, &aad, payload, CANSEC_ICV_BYTES)
                .expect("valid tag length")
        } else {
            let mut full_aad = aad.clone();
            full_aad.extend_from_slice(payload);
            let tag = self
                .aead
                .seal_with_tag_len(&n, &full_aad, b"", CANSEC_ICV_BYTES)
                .expect("valid tag length");
            let mut out = payload.to_vec();
            out.extend_from_slice(&tag);
            out
        };

        let mut xl_payload = Vec::with_capacity(CANSEC_HEADER_BYTES + body.len());
        xl_payload.push(flags);
        xl_payload.push(self.an);
        xl_payload.extend_from_slice(&fv.to_be_bytes());
        xl_payload.extend_from_slice(&body);

        CanXlFrame::new(priority, 0x04 /* CANsec SDT */, vcid, 0, &xl_payload)
            .map_err(|_| ProtoError::Malformed)
    }
}

impl CansecRx {
    /// Creates the receiving side of an association.
    pub fn new(key: [u8; 16], an: u8) -> Self {
        Self {
            aead: AesGcm::new(&key),
            an,
            last_freshness: 0,
        }
    }

    /// Verifies a protected XL frame and returns the payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] for structural problems,
    /// [`ProtoError::Replayed`] for non-monotonic freshness,
    /// [`ProtoError::AuthFailed`] on tag mismatch.
    pub fn verify(&mut self, frame: &CanXlFrame) -> Result<Vec<u8>, ProtoError> {
        let data = frame.data();
        if data.len() < CANSEC_HEADER_BYTES + CANSEC_ICV_BYTES {
            return Err(ProtoError::Malformed);
        }
        let flags = data[0];
        let an = data[1];
        if an != self.an {
            return Err(ProtoError::Malformed);
        }
        let mut fv_bytes = [0u8; 8];
        fv_bytes.copy_from_slice(&data[2..10]);
        let fv = u64::from_be_bytes(fv_bytes);
        if fv <= self.last_freshness {
            return Err(ProtoError::Replayed);
        }
        let body = &data[CANSEC_HEADER_BYTES..];
        let n = nonce(an, fv);
        let mut aad = vec![flags, an];
        aad.extend_from_slice(&fv.to_be_bytes());
        aad.push(frame.vcid());

        let payload = if flags & 0x01 != 0 {
            self.aead
                .open_with_tag_len(&n, &aad, body, CANSEC_ICV_BYTES)
                .map_err(|_| ProtoError::AuthFailed)?
        } else {
            let (payload, tag) = body.split_at(body.len() - CANSEC_ICV_BYTES);
            let mut full_aad = aad.clone();
            full_aad.extend_from_slice(payload);
            self.aead
                .open_with_tag_len(&n, &full_aad, tag, CANSEC_ICV_BYTES)
                .map_err(|_| ProtoError::AuthFailed)?;
            payload.to_vec()
        };
        self.last_freshness = fv;
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(encrypt: bool) -> (CansecTx, CansecRx) {
        (
            CansecTx::new([3u8; 16], 1, encrypt),
            CansecRx::new([3u8; 16], 1),
        )
    }

    #[test]
    fn encrypted_round_trip() {
        let (mut tx, mut rx) = pair(true);
        let f = tx.protect(0x50, 2, b"steering setpoint").unwrap();
        assert_eq!(rx.verify(&f).unwrap(), b"steering setpoint");
        assert_eq!(f.sdt(), 0x04);
        assert_eq!(f.vcid(), 2);
    }

    #[test]
    fn integrity_only_round_trip() {
        let (mut tx, mut rx) = pair(false);
        let f = tx.protect(0x50, 0, b"visible").unwrap();
        // Payload visible inside the XL frame after the header.
        assert_eq!(
            &f.data()[CANSEC_HEADER_BYTES..CANSEC_HEADER_BYTES + 7],
            b"visible"
        );
        assert_eq!(rx.verify(&f).unwrap(), b"visible");
    }

    #[test]
    fn replay_rejected() {
        let (mut tx, mut rx) = pair(true);
        let f = tx.protect(0x50, 0, b"x").unwrap();
        assert!(rx.verify(&f).is_ok());
        assert_eq!(rx.verify(&f).unwrap_err(), ProtoError::Replayed);
    }

    #[test]
    fn tampered_payload_rejected() {
        let (mut tx, mut rx) = pair(true);
        let f = tx.protect(0x50, 0, b"original").unwrap();
        let mut data = f.data().to_vec();
        let n = data.len();
        data[n - 1] ^= 0x80;
        let forged =
            CanXlFrame::new(f.priority(), f.sdt(), f.vcid(), f.acceptance(), &data).unwrap();
        assert_eq!(rx.verify(&forged).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn vcid_is_bound_into_aad() {
        let (mut tx, mut rx) = pair(true);
        let f = tx.protect(0x50, 7, b"zone A only").unwrap();
        // Re-tag the frame onto a different virtual network.
        let moved = CanXlFrame::new(f.priority(), f.sdt(), 8, f.acceptance(), f.data()).unwrap();
        assert_eq!(rx.verify(&moved).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn wrong_an_rejected() {
        let mut tx = CansecTx::new([3u8; 16], 1, true);
        let mut rx = CansecRx::new([3u8; 16], 2);
        let f = tx.protect(0x10, 0, b"x").unwrap();
        assert_eq!(rx.verify(&f).unwrap_err(), ProtoError::Malformed);
    }

    #[test]
    fn overhead_accounting() {
        assert_eq!(CansecTx::overhead_bytes(), 18);
        let (mut tx, _) = pair(true);
        let f = tx.protect(0x10, 0, &[0u8; 100]).unwrap();
        assert_eq!(f.data().len(), 100 + 18);
    }

    #[test]
    fn out_of_order_is_replay_with_strict_freshness() {
        let (mut tx, mut rx) = pair(true);
        let a = tx.protect(0x10, 0, b"a").unwrap();
        let b = tx.protect(0x10, 0, b"b").unwrap();
        assert!(rx.verify(&b).is_ok());
        assert_eq!(rx.verify(&a).unwrap_err(), ProtoError::Replayed);
    }
}
