//! AUTOSAR Secure Onboard Communication (SECOC, paper ref \[18\]).
//!
//! SECOC appends a **truncated freshness value** and a **truncated
//! CMAC** to each protected PDU. The receiver reconstructs the full
//! freshness value from its own synchronized counter plus the truncated
//! bits — the trick that keeps bus overhead tiny (4 bytes in the default
//! profile) at the cost of a resynchronization window.
//!
//! The paper's S1 critique ("authentication-only security capabilities")
//! is visible in the API: [`SecOcAuthenticator::protect`] authenticates
//! but does **not** encrypt.

use autosec_crypto::Cmac;

use crate::ProtoError;

/// SECOC profile parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecOcConfig {
    /// Truncated freshness bits carried in the PDU (profile 1: 8).
    pub freshness_tx_bits: u8,
    /// Truncated MAC bits carried in the PDU (profile 1: 24).
    pub mac_tx_bits: u8,
    /// Receiver resynchronization window (attempts with incremented
    /// high-order freshness parts).
    pub resync_attempts: u8,
}

impl Default for SecOcConfig {
    fn default() -> Self {
        Self {
            freshness_tx_bits: 8,
            mac_tx_bits: 24,
            resync_attempts: 2,
        }
    }
}

impl SecOcConfig {
    /// Bytes of overhead appended to each PDU.
    pub fn overhead_bytes(&self) -> usize {
        (usize::from(self.freshness_tx_bits) + usize::from(self.mac_tx_bits)).div_ceil(8)
    }
}

/// A protected PDU on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecOcPdu {
    /// Data identifier (like the CAN id binding).
    pub data_id: u16,
    /// Authentic payload (cleartext — SECOC does not encrypt).
    pub payload: Vec<u8>,
    /// Truncated freshness value (low-order bits).
    pub truncated_freshness: u64,
    /// Truncated MAC bits (stored right-aligned).
    pub truncated_mac: Vec<u8>,
}

impl SecOcPdu {
    /// Total wire size.
    pub fn wire_len(&self, cfg: &SecOcConfig) -> usize {
        self.payload.len() + cfg.overhead_bytes()
    }
}

/// Sender or receiver side of a SECOC association for one data id.
#[derive(Debug, Clone)]
pub struct SecOcAuthenticator {
    cfg: SecOcConfig,
    cmac: Cmac,
    data_id: u16,
    /// Sender: next freshness value. Receiver: highest accepted.
    freshness: u64,
    is_sender: bool,
}

impl SecOcAuthenticator {
    /// Creates the sending side.
    pub fn new_sender(cfg: SecOcConfig, key: [u8; 16], data_id: u16) -> Self {
        Self {
            cfg,
            cmac: Cmac::new(&key),
            data_id,
            freshness: 1,
            is_sender: true,
        }
    }

    /// Creates the receiving side.
    pub fn new_receiver(cfg: SecOcConfig, key: [u8; 16], data_id: u16) -> Self {
        Self {
            cfg,
            cmac: Cmac::new(&key),
            data_id,
            freshness: 0,
            is_sender: false,
        }
    }

    /// Current freshness value (next to send / last accepted).
    pub fn freshness(&self) -> u64 {
        self.freshness
    }

    fn mac_input(data_id: u16, payload: &[u8], freshness: u64) -> Vec<u8> {
        let mut m = Vec::with_capacity(2 + payload.len() + 8);
        m.extend_from_slice(&data_id.to_be_bytes());
        m.extend_from_slice(payload);
        m.extend_from_slice(&freshness.to_be_bytes());
        m
    }

    fn truncated_mac(&self, payload: &[u8], freshness: u64) -> Vec<u8> {
        let full = self
            .cmac
            .mac(&Self::mac_input(self.data_id, payload, freshness));
        let bytes = usize::from(self.cfg.mac_tx_bits).div_ceil(8);
        full[..bytes].to_vec()
    }

    /// Protects a payload, consuming one freshness value.
    ///
    /// # Errors
    ///
    /// [`ProtoError::RekeyRequired`] when the 64-bit freshness space is
    /// exhausted (practically unreachable, but enforced).
    ///
    /// # Panics
    ///
    /// Panics if called on a receiver-side authenticator.
    pub fn protect(&mut self, payload: &[u8]) -> Result<SecOcPdu, ProtoError> {
        assert!(self.is_sender, "protect() requires a sender authenticator");
        if self.freshness == u64::MAX {
            return Err(ProtoError::RekeyRequired);
        }
        let fv = self.freshness;
        self.freshness += 1;
        let mask = if self.cfg.freshness_tx_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.freshness_tx_bits) - 1
        };
        Ok(SecOcPdu {
            data_id: self.data_id,
            payload: payload.to_vec(),
            truncated_freshness: fv & mask,
            truncated_mac: self.truncated_mac(payload, fv),
        })
    }

    /// Reconstructs the most plausible full freshness value from the
    /// truncated bits, given the receiver's last accepted value.
    fn reconstruct_freshness(&self, truncated: u64, attempt: u8) -> u64 {
        let bits = u32::from(self.cfg.freshness_tx_bits.min(63));
        let window = 1u64 << bits;
        let base = (self.freshness >> bits) << bits;
        let mut candidate = base | truncated;
        if candidate <= self.freshness {
            candidate += window;
        }
        candidate + u64::from(attempt) * window
    }

    /// Verifies a PDU, returning the authentic payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] for a wrong data id,
    /// [`ProtoError::AuthFailed`] if no freshness candidate authenticates
    /// within the resynchronization window.
    ///
    /// # Panics
    ///
    /// Panics if called on a sender-side authenticator.
    pub fn verify(&mut self, pdu: &SecOcPdu) -> Result<Vec<u8>, ProtoError> {
        assert!(
            !self.is_sender,
            "verify() requires a receiver authenticator"
        );
        if pdu.data_id != self.data_id {
            return Err(ProtoError::Malformed);
        }
        for attempt in 0..self.cfg.resync_attempts {
            let candidate = self.reconstruct_freshness(pdu.truncated_freshness, attempt);
            let expect = self.truncated_mac(&pdu.payload, candidate);
            if autosec_crypto::util::ct_eq(&expect, &pdu.truncated_mac) {
                self.freshness = candidate;
                return Ok(pdu.payload.clone());
            }
        }
        Err(ProtoError::AuthFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecOcAuthenticator, SecOcAuthenticator) {
        let cfg = SecOcConfig::default();
        (
            SecOcAuthenticator::new_sender(cfg, [1u8; 16], 0x100),
            SecOcAuthenticator::new_receiver(cfg, [1u8; 16], 0x100),
        )
    }

    #[test]
    fn protect_verify_round_trip() {
        let (mut tx, mut rx) = pair();
        for i in 0..20u8 {
            let payload = [i; 6];
            let pdu = tx.protect(&payload).unwrap();
            assert_eq!(rx.verify(&pdu).unwrap(), payload);
        }
    }

    #[test]
    fn default_overhead_is_4_bytes() {
        let cfg = SecOcConfig::default();
        assert_eq!(cfg.overhead_bytes(), 4);
        let (mut tx, _) = pair();
        let pdu = tx.protect(&[0u8; 4]).unwrap();
        assert_eq!(pdu.wire_len(&cfg), 8);
    }

    #[test]
    fn replayed_pdu_rejected() {
        let (mut tx, mut rx) = pair();
        let pdu = tx.protect(b"cmd").unwrap();
        assert!(rx.verify(&pdu).is_ok());
        // Same PDU again: its freshness is now in the past; every
        // reconstruction candidate is in the future, so the MAC fails.
        assert_eq!(rx.verify(&pdu).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn forged_payload_rejected() {
        let (mut tx, mut rx) = pair();
        let mut pdu = tx.protect(b"brake=0").unwrap();
        pdu.payload = b"brake=1".to_vec();
        assert_eq!(rx.verify(&pdu).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn wrong_key_rejected() {
        let cfg = SecOcConfig::default();
        let mut tx = SecOcAuthenticator::new_sender(cfg, [1u8; 16], 0x100);
        let mut rx = SecOcAuthenticator::new_receiver(cfg, [2u8; 16], 0x100);
        let pdu = tx.protect(b"x").unwrap();
        assert_eq!(rx.verify(&pdu).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn wrong_data_id_rejected() {
        let cfg = SecOcConfig::default();
        let mut tx = SecOcAuthenticator::new_sender(cfg, [1u8; 16], 0x200);
        let mut rx = SecOcAuthenticator::new_receiver(cfg, [1u8; 16], 0x100);
        let pdu = tx.protect(b"x").unwrap();
        assert_eq!(rx.verify(&pdu).unwrap_err(), ProtoError::Malformed);
    }

    #[test]
    fn receiver_resynchronizes_after_loss() {
        let (mut tx, mut rx) = pair();
        // Lose 300 PDUs: the 8-bit truncated counter wraps once.
        for _ in 0..300 {
            let _ = tx.protect(b"lost").unwrap();
        }
        let pdu = tx.protect(b"arrives").unwrap();
        assert_eq!(rx.verify(&pdu).unwrap(), b"arrives");
        assert_eq!(rx.freshness(), 301);
    }

    #[test]
    fn loss_beyond_window_fails() {
        let cfg = SecOcConfig {
            resync_attempts: 1,
            ..SecOcConfig::default()
        };
        let mut tx = SecOcAuthenticator::new_sender(cfg, [1u8; 16], 1);
        let mut rx = SecOcAuthenticator::new_receiver(cfg, [1u8; 16], 1);
        for _ in 0..600 {
            let _ = tx.protect(b"lost").unwrap();
        }
        let pdu = tx.protect(b"late").unwrap();
        assert_eq!(rx.verify(&pdu).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn out_of_order_delivery_rejected() {
        let (mut tx, mut rx) = pair();
        let first = tx.protect(b"a").unwrap();
        let second = tx.protect(b"b").unwrap();
        assert!(rx.verify(&second).is_ok());
        assert_eq!(rx.verify(&first).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn payload_is_not_encrypted() {
        // The paper's point about S1: SECOC is authentication-only.
        let (mut tx, _) = pair();
        let pdu = tx.protect(b"plaintext visible").unwrap();
        assert_eq!(pdu.payload, b"plaintext visible");
    }

    #[test]
    #[should_panic(expected = "sender")]
    fn protect_on_receiver_panics() {
        let (_, mut rx) = pair();
        let _ = rx.protect(b"x");
    }
}
