//! A compact IPsec ESP (tunnel mode) model — Table I's network-layer row.
//!
//! ESP with AES-GCM: SPI + sequence number header, encrypted inner
//! packet, ICV. Behavioural model with real cryptography (not
//! wire-compatible with RFC 4303); exists so the Table I matrix and the
//! E4 overhead comparison cover every layer the paper lists.

use autosec_crypto::AesGcm;

use crate::ProtoError;

/// ESP header: SPI (4) + sequence (4).
pub const ESP_HEADER_BYTES: usize = 8;
/// GCM IV carried per packet.
pub const ESP_IV_BYTES: usize = 8;
/// ICV bytes.
pub const ESP_ICV_BYTES: usize = 16;
/// Inner IP header reproduced inside the tunnel.
pub const TUNNEL_IP_HEADER_BYTES: usize = 20;

/// One direction of an ESP security association.
#[derive(Debug, Clone)]
pub struct EspSa {
    aead: AesGcm,
    spi: u32,
    seq: u32,
    peer_next_seq: u32,
}

/// A protected ESP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EspPacket {
    /// Security parameter index.
    pub spi: u32,
    /// Sequence number.
    pub seq: u32,
    /// Ciphertext + ICV.
    pub body: Vec<u8>,
}

impl EspPacket {
    /// Total wire overhead of ESP tunnel mode (header + IV + ICV + inner
    /// IP header).
    pub fn overhead_bytes() -> usize {
        ESP_HEADER_BYTES + ESP_IV_BYTES + ESP_ICV_BYTES + TUNNEL_IP_HEADER_BYTES
    }

    /// Wire length.
    pub fn wire_len(&self) -> usize {
        ESP_HEADER_BYTES + ESP_IV_BYTES + self.body.len()
    }
}

impl EspSa {
    /// Creates an SA.
    pub fn new(key: [u8; 16], spi: u32) -> Self {
        Self {
            aead: AesGcm::new(&key),
            spi,
            seq: 0,
            peer_next_seq: 0,
        }
    }

    fn nonce(spi: u32, seq: u32) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..4].copy_from_slice(&spi.to_be_bytes());
        n[8..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Encapsulates an inner packet.
    ///
    /// # Errors
    ///
    /// [`ProtoError::RekeyRequired`] on sequence exhaustion.
    pub fn encapsulate(&mut self, inner: &[u8]) -> Result<EspPacket, ProtoError> {
        if self.seq == u32::MAX {
            return Err(ProtoError::RekeyRequired);
        }
        self.seq += 1;
        let seq = self.seq;
        let n = Self::nonce(self.spi, seq);
        let mut aad = Vec::with_capacity(8);
        aad.extend_from_slice(&self.spi.to_be_bytes());
        aad.extend_from_slice(&seq.to_be_bytes());
        // Tunnel mode: prepend a surrogate inner IP header.
        let mut tunneled = vec![0x45u8; TUNNEL_IP_HEADER_BYTES];
        tunneled.extend_from_slice(inner);
        Ok(EspPacket {
            spi: self.spi,
            seq,
            body: self.aead.seal(&n, &aad, &tunneled),
        })
    }

    /// Decapsulates a packet from the peer SA (same key/SPI here).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on SPI mismatch,
    /// [`ProtoError::Replayed`] for non-increasing sequence numbers,
    /// [`ProtoError::AuthFailed`] on ICV mismatch.
    pub fn decapsulate(&mut self, pkt: &EspPacket) -> Result<Vec<u8>, ProtoError> {
        if pkt.spi != self.spi {
            return Err(ProtoError::Malformed);
        }
        if pkt.seq < self.peer_next_seq || pkt.seq == 0 {
            return Err(ProtoError::Replayed);
        }
        let n = Self::nonce(pkt.spi, pkt.seq);
        let mut aad = Vec::with_capacity(8);
        aad.extend_from_slice(&pkt.spi.to_be_bytes());
        aad.extend_from_slice(&pkt.seq.to_be_bytes());
        let tunneled = self
            .aead
            .open(&n, &aad, &pkt.body)
            .map_err(|_| ProtoError::AuthFailed)?;
        if tunneled.len() < TUNNEL_IP_HEADER_BYTES {
            return Err(ProtoError::Malformed);
        }
        self.peer_next_seq = pkt.seq + 1;
        Ok(tunneled[TUNNEL_IP_HEADER_BYTES..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (EspSa, EspSa) {
        (EspSa::new([8u8; 16], 0x1000), EspSa::new([8u8; 16], 0x1000))
    }

    #[test]
    fn tunnel_round_trip() {
        let (mut a, mut b) = pair();
        let pkt = a.encapsulate(b"inner udp datagram").unwrap();
        assert_eq!(b.decapsulate(&pkt).unwrap(), b"inner udp datagram");
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = pair();
        let pkt = a.encapsulate(b"x").unwrap();
        assert!(b.decapsulate(&pkt).is_ok());
        assert_eq!(b.decapsulate(&pkt).unwrap_err(), ProtoError::Replayed);
    }

    #[test]
    fn tamper_rejected() {
        let (mut a, mut b) = pair();
        let mut pkt = a.encapsulate(b"x").unwrap();
        let n = pkt.body.len();
        pkt.body[n - 1] ^= 1;
        assert_eq!(b.decapsulate(&pkt).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn spi_mismatch_rejected() {
        let mut a = EspSa::new([8u8; 16], 1);
        let mut b = EspSa::new([8u8; 16], 2);
        let pkt = a.encapsulate(b"x").unwrap();
        assert_eq!(b.decapsulate(&pkt).unwrap_err(), ProtoError::Malformed);
    }

    #[test]
    fn overhead_is_52_bytes() {
        assert_eq!(EspPacket::overhead_bytes(), 52);
        let (mut a, _) = pair();
        let pkt = a.encapsulate(&[0u8; 64]).unwrap();
        assert_eq!(pkt.wire_len(), 64 + EspPacket::overhead_bytes());
    }
}
