//! A compact (D)TLS 1.3-style record protocol — Table I's transport-layer
//! row.
//!
//! Models what the scenario comparison needs: a handshake that derives
//! directional keys from a pre-shared key (PSK mode, the realistic choice
//! for ECU-to-ECU links), and an AEAD record layer with explicit sequence
//! numbers and replay rejection. Not wire-compatible with RFC 9147 —
//! this is a behavioural model with real cryptography.

use autosec_crypto::{AesGcm, Hkdf};

use crate::ProtoError;

/// Record header bytes: content type (1) + epoch (2) + sequence (6) +
/// length (2).
pub const RECORD_HEADER_BYTES: usize = 11;
/// AEAD tag bytes.
pub const RECORD_TAG_BYTES: usize = 16;
/// Handshake flights in PSK mode (ClientHello, ServerHello+Finished,
/// Finished).
pub const HANDSHAKE_FLIGHTS: usize = 3;

/// A (D)TLS session endpoint after a completed PSK handshake.
#[derive(Debug, Clone)]
pub struct DtlsSession {
    write: AesGcm,
    read: AesGcm,
    write_seq: u64,
    read_highest: u64,
    epoch: u16,
}

impl DtlsSession {
    /// Completes a PSK handshake, returning the two endpoints.
    ///
    /// `psk` is the pre-shared key; `session_nonce` models the
    /// client+server randoms (must be unique per session).
    pub fn establish(psk: &[u8], session_nonce: &[u8]) -> (DtlsSession, DtlsSession) {
        let hk = Hkdf::extract(session_nonce, psk);
        let client_key = {
            let v = hk.expand(b"dtls client write", 16).expect("valid length");
            let mut k = [0u8; 16];
            k.copy_from_slice(&v);
            k
        };
        let server_key = {
            let v = hk.expand(b"dtls server write", 16).expect("valid length");
            let mut k = [0u8; 16];
            k.copy_from_slice(&v);
            k
        };
        let client = DtlsSession {
            write: AesGcm::new(&client_key),
            read: AesGcm::new(&server_key),
            write_seq: 0,
            read_highest: 0,
            epoch: 1,
        };
        let server = DtlsSession {
            write: AesGcm::new(&server_key),
            read: AesGcm::new(&client_key),
            write_seq: 0,
            read_highest: 0,
            epoch: 1,
        };
        (client, server)
    }

    /// Per-record wire overhead.
    pub fn overhead_bytes() -> usize {
        RECORD_HEADER_BYTES + RECORD_TAG_BYTES
    }

    fn nonce(epoch: u16, seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[2..4].copy_from_slice(&epoch.to_be_bytes());
        n[4..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Seals an application-data record.
    ///
    /// # Errors
    ///
    /// [`ProtoError::RekeyRequired`] on sequence exhaustion.
    pub fn seal(&mut self, payload: &[u8]) -> Result<DtlsRecord, ProtoError> {
        if self.write_seq == u64::MAX {
            return Err(ProtoError::RekeyRequired);
        }
        let seq = self.write_seq;
        self.write_seq += 1;
        let n = Self::nonce(self.epoch, seq);
        let mut aad = vec![23u8]; // application data
        aad.extend_from_slice(&self.epoch.to_be_bytes());
        aad.extend_from_slice(&seq.to_be_bytes());
        Ok(DtlsRecord {
            epoch: self.epoch,
            seq,
            body: self.write.seal(&n, &aad, payload),
        })
    }

    /// Opens a record from the peer.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Replayed`] for stale sequence numbers,
    /// [`ProtoError::AuthFailed`] on tag mismatch.
    pub fn open(&mut self, record: &DtlsRecord) -> Result<Vec<u8>, ProtoError> {
        // `read_highest` stores the *next expected* sequence number
        // (strictly monotonic acceptance).
        if record.seq < self.read_highest {
            return Err(ProtoError::Replayed);
        }
        let n = Self::nonce(record.epoch, record.seq);
        let mut aad = vec![23u8];
        aad.extend_from_slice(&record.epoch.to_be_bytes());
        aad.extend_from_slice(&record.seq.to_be_bytes());
        let payload = self
            .read
            .open(&n, &aad, &record.body)
            .map_err(|_| ProtoError::AuthFailed)?;
        self.read_highest = record.seq + 1;
        Ok(payload)
    }
}

/// A sealed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtlsRecord {
    /// Key epoch.
    pub epoch: u16,
    /// Record sequence number.
    pub seq: u64,
    /// Ciphertext plus tag.
    pub body: Vec<u8>,
}

impl DtlsRecord {
    /// Total wire length.
    pub fn wire_len(&self) -> usize {
        RECORD_HEADER_BYTES + self.body.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_round_trip() {
        let (mut c, mut s) = DtlsSession::establish(b"psk", b"nonce-1");
        let r = c.seal(b"hello server").unwrap();
        assert_eq!(s.open(&r).unwrap(), b"hello server");
        let r2 = s.seal(b"hello client").unwrap();
        assert_eq!(c.open(&r2).unwrap(), b"hello client");
    }

    #[test]
    fn directional_keys_differ() {
        let (mut c, _) = DtlsSession::establish(b"psk", b"nonce-1");
        let (mut c2, _) = DtlsSession::establish(b"psk", b"nonce-2");
        let a = c.seal(b"same").unwrap();
        let b = c2.seal(b"same").unwrap();
        assert_ne!(a.body, b.body, "session nonce must separate keys");
    }

    #[test]
    fn replay_rejected() {
        let (mut c, mut s) = DtlsSession::establish(b"psk", b"n");
        let r0 = c.seal(b"zero").unwrap();
        let r1 = c.seal(b"one").unwrap();
        assert!(s.open(&r0).is_ok());
        assert!(s.open(&r1).is_ok());
        assert_eq!(s.open(&r1).unwrap_err(), ProtoError::Replayed);
        assert_eq!(s.open(&r0).unwrap_err(), ProtoError::Replayed);
    }

    #[test]
    fn tamper_rejected() {
        let (mut c, mut s) = DtlsSession::establish(b"psk", b"n");
        let mut r = c.seal(b"x").unwrap();
        r.body[0] ^= 1;
        assert_eq!(s.open(&r).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn cross_session_rejected() {
        let (mut c1, _) = DtlsSession::establish(b"psk", b"n1");
        let (_, mut s2) = DtlsSession::establish(b"psk", b"n2");
        let r = c1.seal(b"x").unwrap();
        assert_eq!(s2.open(&r).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn overhead_is_27_bytes() {
        assert_eq!(DtlsSession::overhead_bytes(), 27);
        let (mut c, _) = DtlsSession::establish(b"psk", b"n");
        let r = c.seal(&[0u8; 100]).unwrap();
        assert_eq!(r.wire_len(), 100 + 27);
    }
}
