//! MKA-style key agreement (IEEE 802.1X MKA, paper ref \[25\]).
//!
//! From a pairwise (or group) Connectivity Association Key (CAK), the
//! elected key server distributes Secure Association Keys (SAKs) derived
//! via HKDF with a fresh key-server nonce. The model counts messages and
//! tracks key storage — the S1/S2/S3 comparison's "key storage within the
//! zone controller" concern is computed from here.

use autosec_crypto::Hkdf;

/// A connectivity association: the parties sharing one CAK.
#[derive(Debug, Clone)]
pub struct ConnectivityAssociation {
    cak: Vec<u8>,
    name: String,
    key_number: u32,
}

/// A distributed secure association key with its identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedSak {
    /// The 16-byte AES key.
    pub sak: [u8; 16],
    /// Key number (increments per rekey).
    pub key_number: u32,
    /// Association name this SAK belongs to.
    pub ca_name: String,
}

impl ConnectivityAssociation {
    /// Creates an association from a pre-shared CAK.
    pub fn new(name: &str, cak: &[u8]) -> Self {
        Self {
            cak: cak.to_vec(),
            name: name.to_owned(),
            key_number: 0,
        }
    }

    /// Association name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Key-server operation: derives and "distributes" the next SAK.
    /// `server_nonce` must be fresh per invocation.
    pub fn distribute_sak(&mut self, server_nonce: &[u8]) -> DistributedSak {
        self.key_number += 1;
        let mut info = Vec::new();
        info.extend_from_slice(b"mka sak ");
        info.extend_from_slice(self.name.as_bytes());
        info.extend_from_slice(&self.key_number.to_be_bytes());
        let sak = Hkdf::derive_key16(server_nonce, &self.cak, &info);
        DistributedSak {
            sak,
            key_number: self.key_number,
            ca_name: self.name.clone(),
        }
    }

    /// MKA messages needed to distribute a SAK to `n_members` (one
    /// MKPDU from the key server per member, plus one acknowledgment
    /// each).
    pub fn distribution_messages(n_members: usize) -> usize {
        2 * n_members.saturating_sub(1)
    }
}

/// Computes the number of long-term pairwise keys each device must hold
/// in a hop-by-hop deployment (S1) versus end-to-end (S2/S3):
///
/// - hop-by-hop: every on-path device stores the keys of its adjacent
///   links;
/// - end-to-end: only the two endpoints store the association key.
pub fn keys_at_intermediate(hop_by_hop: bool, flows_through: usize) -> usize {
    if hop_by_hop {
        flows_through
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sak_changes_per_rekey() {
        let mut ca = ConnectivityAssociation::new("zone0", b"cak secret");
        let k1 = ca.distribute_sak(b"nonce-1");
        let k2 = ca.distribute_sak(b"nonce-2");
        assert_ne!(k1.sak, k2.sak);
        assert_eq!(k1.key_number + 1, k2.key_number);
    }

    #[test]
    fn sak_depends_on_cak_and_name() {
        let mut a = ConnectivityAssociation::new("zone0", b"cak-a");
        let mut b = ConnectivityAssociation::new("zone0", b"cak-b");
        let mut c = ConnectivityAssociation::new("zone1", b"cak-a");
        assert_ne!(a.distribute_sak(b"n").sak, b.distribute_sak(b"n").sak);
        assert_ne!(a.distribute_sak(b"n").sak, c.distribute_sak(b"n").sak);
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let mut a1 = ConnectivityAssociation::new("z", b"cak");
        let mut a2 = ConnectivityAssociation::new("z", b"cak");
        assert_eq!(a1.distribute_sak(b"n").sak, a2.distribute_sak(b"n").sak);
    }

    #[test]
    fn message_count_scales_with_members() {
        assert_eq!(ConnectivityAssociation::distribution_messages(2), 2);
        assert_eq!(ConnectivityAssociation::distribution_messages(5), 8);
        assert_eq!(ConnectivityAssociation::distribution_messages(1), 0);
        assert_eq!(ConnectivityAssociation::distribution_messages(0), 0);
    }

    #[test]
    fn key_storage_models() {
        // A zone controller forwarding 10 flows hop-by-hop stores 10
        // session keys; end-to-end it stores none.
        assert_eq!(keys_at_intermediate(true, 10), 10);
        assert_eq!(keys_at_intermediate(false, 10), 0);
    }
}
