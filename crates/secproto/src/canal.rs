//! CANAL — the CAN Adaptation Layer of scenario S3 (Fig. 6), inspired by
//! the ATM Adaptation Layer 5 (paper ref \[24\]).
//!
//! CANAL lets CAN(-XL) endpoints speak higher-layer Ethernet protocols —
//! in particular end-to-end MACsec — by segmenting a service data unit
//! (an Ethernet/MACsec frame) into CAN XL frames and reassembling it on
//! the far side. Like AAL5, the final segment carries a trailer with the
//! SDU length and a CRC-32 so that lost or reordered segments are
//! detected at reassembly.

use autosec_ivn::can::{CanXlFrame, SDT_ETHERNET};

use crate::ProtoError;

/// Per-segment CANAL header: flags (1 byte: bit0 = end-of-SDU) +
/// sequence number (1 byte, wrapping).
pub const CANAL_HEADER_BYTES: usize = 2;
/// Trailer in the final segment: SDU length (2) + CRC-32 (4).
pub const CANAL_TRAILER_BYTES: usize = 6;

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320), as used by Ethernet.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Segmentation side of a CANAL association.
#[derive(Debug, Clone)]
pub struct CanalSender {
    priority: u16,
    vcid: u8,
    /// Maximum CAN XL payload per segment (header included).
    mtu: usize,
    next_seq: u8,
}

impl CanalSender {
    /// Creates a sender.
    ///
    /// # Panics
    ///
    /// Panics if `mtu` cannot hold the header plus at least one byte, or
    /// exceeds the CAN XL payload limit of 2048.
    pub fn new(priority: u16, vcid: u8, mtu: usize) -> Self {
        assert!(
            mtu > CANAL_HEADER_BYTES + CANAL_TRAILER_BYTES && mtu <= 2048,
            "CANAL mtu {mtu} out of range"
        );
        Self {
            priority,
            vcid,
            mtu,
            next_seq: 0,
        }
    }

    /// Number of XL frames a `sdu_len`-byte SDU needs at this MTU.
    pub fn frames_needed(&self, sdu_len: usize) -> usize {
        let chunk = self.mtu - CANAL_HEADER_BYTES;
        (sdu_len + CANAL_TRAILER_BYTES).div_ceil(chunk).max(1)
    }

    /// Segments an SDU into CAN XL frames.
    pub fn segment(&mut self, sdu: &[u8]) -> Vec<CanXlFrame> {
        // Body = SDU + trailer (length + CRC over the SDU), padded so the
        // trailer ends exactly at a segment boundary (AAL5-style).
        let chunk = self.mtu - CANAL_HEADER_BYTES;
        let mut body = sdu.to_vec();
        let unpadded = sdu.len() + CANAL_TRAILER_BYTES;
        let total = unpadded.div_ceil(chunk) * chunk;
        body.resize(total - CANAL_TRAILER_BYTES, 0);
        body.extend_from_slice(&(sdu.len() as u16).to_be_bytes());
        body.extend_from_slice(&crc32(sdu).to_be_bytes());

        let n_frames = body.len() / chunk;
        let mut frames = Vec::with_capacity(n_frames);
        for (i, piece) in body.chunks(chunk).enumerate() {
            let last = i == n_frames - 1;
            let mut payload = Vec::with_capacity(CANAL_HEADER_BYTES + piece.len());
            payload.push(if last { 0x01 } else { 0x00 });
            payload.push(self.next_seq);
            self.next_seq = self.next_seq.wrapping_add(1);
            payload.extend_from_slice(piece);
            frames.push(
                CanXlFrame::new(self.priority, SDT_ETHERNET, self.vcid, 0, &payload)
                    .expect("payload within XL limits"),
            );
        }
        frames
    }
}

/// Reassembly side of a CANAL association.
#[derive(Debug, Clone, Default)]
pub struct CanalReceiver {
    buffer: Vec<u8>,
    expected_seq: Option<u8>,
}

impl CanalReceiver {
    /// Creates a receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one XL frame. Returns the reassembled SDU when the final
    /// segment arrives and checks out.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] for non-CANAL frames,
    /// [`ProtoError::ReassemblyFailed`] on sequence gaps or trailer
    /// mismatch (buffer is reset so the next SDU can proceed).
    pub fn push(&mut self, frame: &CanXlFrame) -> Result<Option<Vec<u8>>, ProtoError> {
        if frame.sdt() != SDT_ETHERNET || frame.data().len() < CANAL_HEADER_BYTES {
            return Err(ProtoError::Malformed);
        }
        let flags = frame.data()[0];
        let seq = frame.data()[1];
        if let Some(exp) = self.expected_seq {
            if seq != exp {
                self.reset();
                return Err(ProtoError::ReassemblyFailed);
            }
        }
        self.expected_seq = Some(seq.wrapping_add(1));
        self.buffer
            .extend_from_slice(&frame.data()[CANAL_HEADER_BYTES..]);

        if flags & 0x01 == 0 {
            return Ok(None);
        }
        // Final segment: parse the trailer.
        let buf = std::mem::take(&mut self.buffer);
        self.expected_seq = None;
        if buf.len() < CANAL_TRAILER_BYTES {
            return Err(ProtoError::ReassemblyFailed);
        }
        let (padded_sdu, trailer) = buf.split_at(buf.len() - CANAL_TRAILER_BYTES);
        let sdu_len = usize::from(u16::from_be_bytes([trailer[0], trailer[1]]));
        let crc_wire = u32::from_be_bytes([trailer[2], trailer[3], trailer[4], trailer[5]]);
        if sdu_len > padded_sdu.len() {
            return Err(ProtoError::ReassemblyFailed);
        }
        let sdu = &padded_sdu[..sdu_len];
        if crc32(sdu) != crc_wire {
            return Err(ProtoError::ReassemblyFailed);
        }
        Ok(Some(sdu.to_vec()))
    }

    fn reset(&mut self) {
        self.buffer.clear();
        self.expected_seq = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_frame_sdu_round_trip() {
        let mut tx = CanalSender::new(0x40, 1, 256);
        let mut rx = CanalReceiver::new();
        let frames = tx.segment(b"short message");
        assert_eq!(frames.len(), 1);
        let out = rx.push(&frames[0]).unwrap();
        assert_eq!(out.unwrap(), b"short message");
    }

    #[test]
    fn multi_frame_round_trip() {
        let mut tx = CanalSender::new(0x40, 1, 64);
        let mut rx = CanalReceiver::new();
        let sdu: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let frames = tx.segment(&sdu);
        assert!(frames.len() > 8, "{} frames", frames.len());
        let mut result = None;
        for f in &frames {
            result = rx.push(f).unwrap();
        }
        assert_eq!(result.unwrap(), sdu);
    }

    #[test]
    fn frames_needed_matches_segment() {
        let mut tx = CanalSender::new(1, 0, 128);
        for len in [1usize, 100, 126, 500, 1400] {
            let predicted = tx.frames_needed(len);
            let actual = tx.segment(&vec![0xA5; len]).len();
            assert_eq!(predicted, actual, "len {len}");
        }
    }

    #[test]
    fn lost_middle_fragment_detected() {
        let mut tx = CanalSender::new(0x40, 1, 64);
        let mut rx = CanalReceiver::new();
        let sdu = vec![7u8; 400];
        let frames = tx.segment(&sdu);
        assert!(frames.len() >= 3);
        rx.push(&frames[0]).unwrap();
        // frames[1] lost.
        assert_eq!(
            rx.push(&frames[2]).unwrap_err(),
            ProtoError::ReassemblyFailed
        );
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut tx = CanalSender::new(0x40, 1, 64);
        let mut rx = CanalReceiver::new();
        let frames = tx.segment(&[1u8; 200]);
        for (i, f) in frames.iter().enumerate() {
            if i == frames.len() - 1 {
                // Corrupt a data byte in the last frame (not header).
                let mut data = f.data().to_vec();
                data[3] ^= 0xFF;
                let bad = CanXlFrame::new(f.priority(), f.sdt(), f.vcid(), f.acceptance(), &data)
                    .unwrap();
                assert_eq!(rx.push(&bad).unwrap_err(), ProtoError::ReassemblyFailed);
            } else {
                assert!(rx.push(f).unwrap().is_none());
            }
        }
    }

    #[test]
    fn receiver_recovers_after_failure() {
        let mut tx = CanalSender::new(0x40, 1, 64);
        let mut rx = CanalReceiver::new();
        let frames = tx.segment(&vec![2u8; 300]);
        rx.push(&frames[0]).unwrap();
        let _ = rx.push(&frames[2]); // gap -> error, buffer reset
                                     // A fresh SDU now reassembles fine.
        let frames2 = tx.segment(b"recovery");
        let mut out = None;
        for f in &frames2 {
            out = rx.push(f).unwrap();
        }
        assert_eq!(out.unwrap(), b"recovery");
    }

    #[test]
    fn non_canal_frame_rejected() {
        let mut rx = CanalReceiver::new();
        let f = CanXlFrame::new(1, 0x00, 0, 0, &[1, 2, 3]).unwrap();
        assert_eq!(rx.push(&f).unwrap_err(), ProtoError::Malformed);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tiny_mtu_rejected() {
        let _ = CanalSender::new(1, 0, 8);
    }

    #[test]
    fn macsec_over_canal_end_to_end() {
        // The whole point of S3: a MACsec frame tunnels through CAN XL.
        use crate::macsec::{MacsecMode, MacsecRx, MacsecTx};
        let sak = [4u8; 16];
        let mut mtx = MacsecTx::new(sak, 0x1234, MacsecMode::AuthenticatedEncryption);
        let mut mrx = MacsecRx::new(sak, 0x1234);
        let mut ctx = CanalSender::new(0x40, 1, 128);
        let mut crx = CanalReceiver::new();

        let mframe = mtx.protect(b"end-to-end across CAN").unwrap();
        // Serialize the MACsec frame naively for tunneling.
        let mut wire = Vec::new();
        wire.extend_from_slice(&mframe.sci.to_be_bytes());
        wire.extend_from_slice(&mframe.pn.to_be_bytes());
        wire.extend_from_slice(&mframe.secure_data);

        let mut out = None;
        for f in ctx.segment(&wire) {
            out = crx.push(&f).unwrap();
        }
        let wire2 = out.unwrap();
        let sci = u64::from_be_bytes(wire2[..8].try_into().unwrap());
        let pn = u32::from_be_bytes(wire2[8..12].try_into().unwrap());
        let rebuilt = crate::macsec::MacsecFrame {
            sci,
            pn,
            mode: MacsecMode::AuthenticatedEncryption,
            secure_data: wire2[12..].to_vec(),
        };
        assert_eq!(mrx.verify(&rebuilt).unwrap(), b"end-to-end across CAN");
    }
}
