//! The deployment scenarios of Figs. 4–6 (S1, S2, S3) and the Table I
//! protocol matrix.
//!
//! Each scenario is *executed*, not estimated: the actual SECOC /
//! MACsec / CANsec / CANAL implementations run over a representative
//! ECU → zone-controller → central-compute path, and the report counts
//! real wire bytes, real crypto operations, and real key-storage
//! obligations. Latency combines bit-accurate IVN frame timings with a
//! documented per-operation crypto cost model for ECU-class hardware.

use autosec_ivn::can::{CanFrame, CanId};
use autosec_ivn::ethernet::{EthLink, Switch};
use autosec_ivn::t1s::T1sSegment;

use crate::canal::{CanalReceiver, CanalSender};
use crate::macsec::{MacsecFrame, MacsecMode, MacsecRx, MacsecTx};
use crate::secoc::{SecOcAuthenticator, SecOcConfig};

/// The three deployment scenarios from the paper, plus the S2 variant
/// split the paper marks ① / ②.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Fig. 4: SECOC on the CAN leg, MACsec on the Ethernet leg.
    S1SecocMacsec,
    /// Fig. 5 ①: MACsec end-to-end over a homogeneous Ethernet network.
    S2MacsecEndToEnd,
    /// Fig. 5 ②: MACsec point-to-point per link.
    S2MacsecPointToPoint,
    /// Fig. 6: CANAL tunnels MACsec end-to-end across CAN XL.
    S3CanalMacsec,
}

impl Scenario {
    /// All scenarios, in paper order.
    pub const ALL: [Scenario; 4] = [
        Scenario::S1SecocMacsec,
        Scenario::S2MacsecEndToEnd,
        Scenario::S2MacsecPointToPoint,
        Scenario::S3CanalMacsec,
    ];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::S1SecocMacsec => "S1 SECOC+MACsec",
            Scenario::S2MacsecEndToEnd => "S2 MACsec e2e",
            Scenario::S2MacsecPointToPoint => "S2 MACsec p2p",
            Scenario::S3CanalMacsec => "S3 CANAL+MACsec",
        }
    }
}

/// Crypto cost model for an ECU-class controller with AES hardware
/// support (microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CryptoCostModel {
    /// Fixed cost per MAC/AEAD operation (key schedule, DMA setup).
    pub fixed_us: f64,
    /// Per-16-byte-block cost.
    pub per_block_us: f64,
}

impl Default for CryptoCostModel {
    fn default() -> Self {
        Self {
            fixed_us: 4.0,
            per_block_us: 0.4,
        }
    }
}

impl CryptoCostModel {
    /// Cost of one MAC/AEAD pass over `bytes`.
    pub fn op_us(&self, bytes: usize) -> f64 {
        self.fixed_us + bytes.div_ceil(16) as f64 * self.per_block_us
    }
}

/// Everything the paper's S1/S2/S3 comparison talks about, measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Which scenario.
    pub scenario: Scenario,
    /// Application payload size evaluated.
    pub payload_len: usize,
    /// Total security overhead bytes on the endpoint segment.
    pub segment_overhead_bytes: usize,
    /// Number of frames on the endpoint segment.
    pub segment_frames: usize,
    /// Crypto operations along the whole path (protect + verify).
    pub crypto_ops: usize,
    /// Session keys the **zone controller** must store for this flow.
    pub zc_session_keys: usize,
    /// End-to-end latency in microseconds (segment + ZC + backbone +
    /// crypto).
    pub e2e_latency_us: f64,
    /// Whether the payload is confidential on the endpoint segment.
    pub confidential_on_segment: bool,
    /// Whether intermediate nodes can modify headers (the paper's S2
    /// e2e restriction: they cannot).
    pub intermediate_can_modify: bool,
}

/// Evaluates one scenario for a `payload_len`-byte message, actually
/// running the protocol stacks.
///
/// # Panics
///
/// Panics if `payload_len` exceeds 1400 bytes (one Ethernet frame after
/// security overhead; larger SDUs would need IP fragmentation, which is
/// out of scope).
pub fn evaluate(scenario: Scenario, payload_len: usize) -> ScenarioReport {
    assert!(payload_len <= 1400, "payload too large for a single frame");
    let payload = vec![0xA5u8; payload_len];
    let cost = CryptoCostModel::default();
    let backbone = EthLink::base_t1_1000(4.0);
    let switch = Switch::default();

    match scenario {
        Scenario::S1SecocMacsec => {
            // ECU --SECOC/CAN--> ZC --MACsec/Eth--> CC
            let cfg = SecOcConfig::default();
            let mut tx = SecOcAuthenticator::new_sender(cfg, [1u8; 16], 0x123);
            let mut zc_rx = SecOcAuthenticator::new_receiver(cfg, [1u8; 16], 0x123);
            let pdu = tx.protect(&payload).expect("fresh counter");
            let wire = pdu.wire_len(&cfg);
            let overhead = wire - payload_len;
            // Classic CAN: 8-byte frames.
            let frames = wire.div_ceil(8);
            let can_frame =
                CanFrame::new(CanId::standard(0x123).expect("valid"), &[0u8; 8]).expect("8 bytes");
            let segment_us = frames as f64 * can_frame.duration_ns(500_000) / 1000.0;
            let verified = zc_rx.verify(&pdu).expect("authentic");
            // ZC re-protects toward CC with MACsec.
            let sak = [2u8; 16];
            let mut mtx = MacsecTx::new(sak, 10, MacsecMode::AuthenticatedEncryption);
            let mut mrx = MacsecRx::new(sak, 10);
            let mframe = mtx.protect(&verified).expect("fresh pn");
            let _ = mrx.verify(&mframe).expect("authentic");
            let crypto_us = cost.op_us(wire) * 2.0 + cost.op_us(verified.len()) * 2.0;
            let backbone_us = switch
                .forward_latency(&backbone, &backbone, mframe.wire_len())
                .as_us_f64();
            ScenarioReport {
                scenario,
                payload_len,
                segment_overhead_bytes: overhead,
                segment_frames: frames,
                crypto_ops: 4,      // SECOC protect+verify, MACsec protect+verify
                zc_session_keys: 2, // SECOC key per flow + MACsec SAK
                e2e_latency_us: segment_us + crypto_us + backbone_us,
                confidential_on_segment: false, // SECOC authenticates only
                intermediate_can_modify: true,
            }
        }
        Scenario::S2MacsecEndToEnd | Scenario::S2MacsecPointToPoint => {
            let e2e = scenario == Scenario::S2MacsecEndToEnd;
            let sak = [3u8; 16];
            let mut tx = MacsecTx::new(sak, 20, MacsecMode::AuthenticatedEncryption);
            let mut rx = MacsecRx::new(sak, 20);
            let mframe = tx.protect(&payload).expect("fresh pn");
            let wire = mframe.wire_len();
            let overhead = MacsecFrame::overhead_bytes();
            // Endpoint segment: 10BASE-T1S.
            let segment_us = T1sSegment::frame_time(wire.min(1500)).as_us_f64();
            let _ = rx.verify(&mframe).expect("authentic");
            let (crypto_ops, zc_keys) = if e2e {
                (2, 0) // protect at ECU, verify at CC
            } else {
                (4, 2) // re-protected at the ZC
            };
            let crypto_us = cost.op_us(wire) * crypto_ops as f64;
            let backbone_us = switch
                .forward_latency(&backbone, &backbone, wire.min(1500))
                .as_us_f64();
            ScenarioReport {
                scenario,
                payload_len,
                segment_overhead_bytes: overhead,
                segment_frames: 1,
                crypto_ops,
                zc_session_keys: zc_keys,
                e2e_latency_us: segment_us + crypto_us + backbone_us,
                confidential_on_segment: true,
                intermediate_can_modify: !e2e,
            }
        }
        Scenario::S3CanalMacsec => {
            // ECU: MACsec protect, CANAL segment over CAN XL; CC:
            // reassemble + verify. ZC relays frames without keys.
            let sak = [4u8; 16];
            let mut mtx = MacsecTx::new(sak, 30, MacsecMode::AuthenticatedEncryption);
            let mut mrx = MacsecRx::new(sak, 30);
            let mframe = mtx.protect(&payload).expect("fresh pn");
            // Serialize SecTAG fields + body for tunneling.
            let mut sdu = Vec::with_capacity(12 + mframe.secure_data.len());
            sdu.extend_from_slice(&mframe.sci.to_be_bytes());
            sdu.extend_from_slice(&mframe.pn.to_be_bytes());
            sdu.extend_from_slice(&mframe.secure_data);

            let mtu = 256; // CAN XL payload per CANAL segment
            let mut ctx = CanalSender::new(0x40, 1, mtu);
            let mut crx = CanalReceiver::new();
            let frames = ctx.segment(&sdu);
            let n_frames = frames.len();
            let mut xl_us = 0.0;
            let mut out = None;
            for f in &frames {
                xl_us += f.duration_ns(500_000, 10_000_000) / 1000.0;
                out = crx.push(f).expect("in-order lossless");
            }
            let wire2 = out.expect("final segment present");
            let rebuilt = MacsecFrame {
                sci: u64::from_be_bytes(wire2[..8].try_into().expect("8 bytes")),
                pn: u32::from_be_bytes(wire2[8..12].try_into().expect("4 bytes")),
                mode: MacsecMode::AuthenticatedEncryption,
                secure_data: wire2[12..].to_vec(),
            };
            let _ = mrx.verify(&rebuilt).expect("authentic");

            let canal_overhead =
                n_frames * crate::canal::CANAL_HEADER_BYTES + crate::canal::CANAL_TRAILER_BYTES;
            let overhead = MacsecFrame::overhead_bytes() + canal_overhead;
            let crypto_us = cost.op_us(sdu.len()) * 2.0;
            let backbone_us = switch
                .forward_latency(&backbone, &backbone, sdu.len().min(1500))
                .as_us_f64();
            ScenarioReport {
                scenario,
                payload_len,
                segment_overhead_bytes: overhead,
                segment_frames: n_frames,
                crypto_ops: 2,
                zc_session_keys: 0,
                e2e_latency_us: xl_us + crypto_us + backbone_us,
                confidential_on_segment: true,
                intermediate_can_modify: false,
            }
        }
    }
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// ISO-OSI layer number.
    pub osi_layer: u8,
    /// Layer name.
    pub layer_name: &'static str,
    /// Protocol available on Ethernet links.
    pub ethernet: Option<&'static str>,
    /// Protocol available on CAN XL links.
    pub can_xl: Option<&'static str>,
}

/// Regenerates the paper's Table I: existing security protocols for
/// in-vehicle communication, all of which are implemented in this crate.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            osi_layer: 7,
            layer_name: "Application",
            ethernet: Some("SECOC"),
            can_xl: Some("SECOC"),
        },
        Table1Row {
            osi_layer: 4,
            layer_name: "Transport",
            ethernet: Some("(D)TLS"),
            can_xl: None,
        },
        Table1Row {
            osi_layer: 3,
            layer_name: "Network",
            ethernet: Some("IPsec"),
            can_xl: None,
        },
        Table1Row {
            osi_layer: 2,
            layer_name: "Data Link",
            ethernet: Some("MACsec"),
            can_xl: Some("CANsec"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_evaluate() {
        for s in Scenario::ALL {
            let r = evaluate(s, 64);
            assert!(r.e2e_latency_us > 0.0, "{s:?}");
            assert!(r.segment_frames >= 1);
            assert!(r.crypto_ops >= 2);
        }
    }

    #[test]
    fn s1_key_storage_burden_is_highest() {
        let s1 = evaluate(Scenario::S1SecocMacsec, 32);
        let s2e = evaluate(Scenario::S2MacsecEndToEnd, 32);
        let s2p = evaluate(Scenario::S2MacsecPointToPoint, 32);
        let s3 = evaluate(Scenario::S3CanalMacsec, 32);
        assert!(s1.zc_session_keys >= s2p.zc_session_keys);
        assert_eq!(s2e.zc_session_keys, 0);
        assert_eq!(s3.zc_session_keys, 0);
    }

    #[test]
    fn s1_is_authentication_only() {
        // The paper's stated disadvantage of S1.
        let s1 = evaluate(Scenario::S1SecocMacsec, 32);
        assert!(!s1.confidential_on_segment);
        for s in [
            Scenario::S2MacsecEndToEnd,
            Scenario::S2MacsecPointToPoint,
            Scenario::S3CanalMacsec,
        ] {
            assert!(evaluate(s, 32).confidential_on_segment, "{s:?}");
        }
    }

    #[test]
    fn s2_e2e_restricts_header_modification() {
        assert!(!evaluate(Scenario::S2MacsecEndToEnd, 32).intermediate_can_modify);
        assert!(evaluate(Scenario::S2MacsecPointToPoint, 32).intermediate_can_modify);
    }

    #[test]
    fn e2e_variants_use_fewest_crypto_ops() {
        let e2e = evaluate(Scenario::S2MacsecEndToEnd, 64).crypto_ops;
        let p2p = evaluate(Scenario::S2MacsecPointToPoint, 64).crypto_ops;
        let s1 = evaluate(Scenario::S1SecocMacsec, 64).crypto_ops;
        assert!(e2e < p2p);
        assert!(e2e < s1);
    }

    #[test]
    fn s1_smallest_segment_overhead_for_tiny_payloads() {
        // SECOC's 4-byte trailer beats MACsec's 30 bytes on small CAN
        // payloads — the reason SECOC exists.
        let s1 = evaluate(Scenario::S1SecocMacsec, 8);
        let s2 = evaluate(Scenario::S2MacsecEndToEnd, 8);
        assert!(s1.segment_overhead_bytes < s2.segment_overhead_bytes);
    }

    #[test]
    fn s3_overhead_grows_with_segmentation() {
        let small = evaluate(Scenario::S3CanalMacsec, 32);
        let big = evaluate(Scenario::S3CanalMacsec, 1200);
        assert!(big.segment_frames > small.segment_frames);
        assert!(big.segment_overhead_bytes > small.segment_overhead_bytes);
    }

    #[test]
    fn classic_can_segmentation_hurts_s1_latency_for_big_payloads() {
        let small = evaluate(Scenario::S1SecocMacsec, 8);
        let big = evaluate(Scenario::S1SecocMacsec, 256);
        assert!(big.segment_frames > 30, "{}", big.segment_frames);
        assert!(big.e2e_latency_us > 10.0 * small.e2e_latency_us);
    }

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].ethernet, Some("SECOC"));
        assert_eq!(t[3].can_xl, Some("CANsec"));
        assert_eq!(t[1].can_xl, None);
    }

    #[test]
    fn crypto_cost_scales_with_size() {
        let c = CryptoCostModel::default();
        assert!(c.op_us(1500) > c.op_us(16));
        assert!(c.op_us(0) >= c.fixed_us);
    }
}
