//! SeeMQTT-style end-to-end publish/subscribe security (paper ref \[54\]).
//!
//! §VIII cites SeeMQTT as the approach for "secure end-to-end MQTT-based
//! communication for mobile IoT systems using secret sharing and trust
//! delegation": the publisher encrypts the payload with a one-shot
//! session key, splits the key into `n` Shamir shares, and routes each
//! share through a **different broker**. A subscriber reconstructs the
//! key from any `k` shares; any coalition of fewer than `k` compromised
//! brokers learns nothing, and up to `n - k` broker outages are
//! tolerated.

use std::collections::BTreeSet;

use autosec_crypto::shamir::{combine, split, Share};
use autosec_crypto::AesGcm;
use rand::RngCore;

use crate::ProtoError;

/// A published message as it traverses the broker network.
#[derive(Debug, Clone)]
pub struct PublishedMessage {
    /// Topic string.
    pub topic: String,
    /// AES-GCM sealed payload (nonce is carried alongside).
    pub ciphertext: Vec<u8>,
    /// Per-message nonce.
    pub nonce: [u8; 12],
    /// One key share per broker (index = broker id).
    pub shares: Vec<Share>,
    /// Threshold needed to reconstruct the session key.
    pub k: usize,
}

/// The broker overlay: some brokers may be compromised (they leak their
/// shares to the adversary) or down (they drop them).
#[derive(Debug, Clone, Default)]
pub struct BrokerNetwork {
    /// Number of brokers.
    pub n: usize,
    /// Broker ids controlled by the adversary.
    pub compromised: BTreeSet<usize>,
    /// Broker ids currently offline.
    pub offline: BTreeSet<usize>,
}

impl BrokerNetwork {
    /// A healthy network of `n` brokers.
    pub fn healthy(n: usize) -> Self {
        Self {
            n,
            ..Self::default()
        }
    }

    /// Marks brokers as compromised.
    pub fn with_compromised(mut self, ids: impl IntoIterator<Item = usize>) -> Self {
        self.compromised.extend(ids);
        self
    }

    /// Marks brokers as offline.
    pub fn with_offline(mut self, ids: impl IntoIterator<Item = usize>) -> Self {
        self.offline.extend(ids);
        self
    }
}

/// Publishes `payload` under `topic` through `n` brokers with threshold
/// `k`.
///
/// # Errors
///
/// [`ProtoError::Malformed`] for invalid `k`/`n`.
pub fn publish(
    topic: &str,
    payload: &[u8],
    k: usize,
    n: usize,
    rng: &mut dyn RngCore,
) -> Result<PublishedMessage, ProtoError> {
    let mut key = [0u8; 16];
    rng.fill_bytes(&mut key);
    let mut nonce = [0u8; 12];
    rng.fill_bytes(&mut nonce);
    let aead = AesGcm::new(&key);
    let ciphertext = aead.seal(&nonce, topic.as_bytes(), payload);
    let shares = split(&key, k, n, rng).map_err(|_| ProtoError::Malformed)?;
    Ok(PublishedMessage {
        topic: topic.to_owned(),
        ciphertext,
        nonce,
        shares,
        k,
    })
}

/// The subscriber's attempt: collect shares from every online broker,
/// reconstruct, decrypt.
///
/// # Errors
///
/// [`ProtoError::InsufficientShares`] if fewer than `k` brokers delivered;
/// [`ProtoError::AuthFailed`] if decryption fails (corrupted shares).
pub fn subscribe(network: &BrokerNetwork, msg: &PublishedMessage) -> Result<Vec<u8>, ProtoError> {
    let delivered: Vec<Share> = msg
        .shares
        .iter()
        .enumerate()
        .filter(|(i, _)| !network.offline.contains(i))
        .map(|(_, s)| s.clone())
        .collect();
    if delivered.len() < msg.k {
        return Err(ProtoError::InsufficientShares);
    }
    let key_bytes = combine(&delivered[..msg.k]).map_err(|_| ProtoError::Malformed)?;
    let mut key = [0u8; 16];
    key.copy_from_slice(&key_bytes);
    AesGcm::new(&key)
        .open(&msg.nonce, msg.topic.as_bytes(), &msg.ciphertext)
        .map_err(|_| ProtoError::AuthFailed)
}

/// The adversary's attempt: only the shares from compromised brokers.
/// Returns `Some(payload)` only if the coalition reaches the threshold.
pub fn adversary_recovers(network: &BrokerNetwork, msg: &PublishedMessage) -> Option<Vec<u8>> {
    let leaked: Vec<Share> = msg
        .shares
        .iter()
        .enumerate()
        .filter(|(i, _)| network.compromised.contains(i))
        .map(|(_, s)| s.clone())
        .collect();
    if leaked.len() < msg.k {
        return None; // information-theoretically nothing to work with
    }
    let key_bytes = combine(&leaked[..msg.k]).ok()?;
    let mut key = [0u8; 16];
    key.copy_from_slice(&key_bytes);
    AesGcm::new(&key)
        .open(&msg.nonce, msg.topic.as_bytes(), &msg.ciphertext)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(54)
    }

    #[test]
    fn healthy_network_delivers() {
        let net = BrokerNetwork::healthy(5);
        let msg = publish("v2x/percept", b"object list", 3, 5, &mut rng()).unwrap();
        assert_eq!(subscribe(&net, &msg).unwrap(), b"object list");
    }

    #[test]
    fn tolerates_up_to_n_minus_k_outages() {
        let msg = publish("t", b"payload", 3, 5, &mut rng()).unwrap();
        let net = BrokerNetwork::healthy(5).with_offline([0, 4]);
        assert_eq!(subscribe(&net, &msg).unwrap(), b"payload");
        let too_many = BrokerNetwork::healthy(5).with_offline([0, 1, 4]);
        assert_eq!(
            subscribe(&too_many, &msg).unwrap_err(),
            ProtoError::InsufficientShares
        );
    }

    #[test]
    fn sub_threshold_coalition_learns_nothing() {
        let msg = publish("t", b"secret telemetry", 3, 5, &mut rng()).unwrap();
        let net = BrokerNetwork::healthy(5).with_compromised([1, 3]);
        assert!(adversary_recovers(&net, &msg).is_none());
    }

    #[test]
    fn threshold_coalition_wins() {
        // The model is honest about its limits: k compromised brokers
        // DO break it — the deployment guidance is broker diversity.
        let msg = publish("t", b"secret", 3, 5, &mut rng()).unwrap();
        let net = BrokerNetwork::healthy(5).with_compromised([0, 2, 4]);
        assert_eq!(adversary_recovers(&net, &msg).unwrap(), b"secret");
    }

    #[test]
    fn topic_is_bound_into_the_aead() {
        let msg = publish("brake/commands", b"cmd", 2, 3, &mut rng()).unwrap();
        let mut moved = msg.clone();
        moved.topic = "infotainment/ads".into();
        let net = BrokerNetwork::healthy(3);
        assert_eq!(subscribe(&net, &moved).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn fresh_key_per_message() {
        let mut r = rng();
        let a = publish("t", b"same payload", 2, 3, &mut r).unwrap();
        let b = publish("t", b"same payload", 2, 3, &mut r).unwrap();
        assert_ne!(a.ciphertext, b.ciphertext);
        assert_ne!(a.shares[0].y, b.shares[0].y);
    }

    #[test]
    fn invalid_threshold_rejected() {
        assert_eq!(
            publish("t", b"x", 4, 3, &mut rng()).unwrap_err(),
            ProtoError::Malformed
        );
    }
}
