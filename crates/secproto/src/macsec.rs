//! IEEE 802.1AE MACsec (paper ref \[20\]).
//!
//! Hop-by-hop (or, in scenario S2/S3, end-to-end) layer-2 security:
//! AES-128-GCM over the frame with a SecTAG carrying the packet number
//! (PN) and secure channel identifier (SCI). The GCM nonce is the real
//! MACsec construction: `SCI (8 bytes) || PN (4 bytes)`.
//!
//! Confidentiality is optional in MACsec ([`MacsecMode`]); both
//! integrity-only and confidential modes are implemented because the
//! S1-vs-S2 comparison cares about the difference.

use autosec_crypto::AesGcm;

use crate::ProtoError;

/// SecTAG bytes on the wire: TCI/AN (1) + SL (1) + PN (4) + SCI (8).
pub const SECTAG_BYTES: usize = 14;
/// ICV bytes (full GCM tag).
pub const ICV_BYTES: usize = 16;

/// Whether MACsec encrypts or only authenticates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacsecMode {
    /// Integrity + confidentiality (TCI E=1, C=1).
    AuthenticatedEncryption,
    /// Integrity only (payload in clear, still GCM-authenticated).
    IntegrityOnly,
}

/// A MACsec-protected frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacsecFrame {
    /// Secure channel identifier of the transmitter.
    pub sci: u64,
    /// Packet number (replay protection).
    pub pn: u32,
    /// Protection mode.
    pub mode: MacsecMode,
    /// Protected payload: ciphertext||tag, or cleartext with detached tag.
    pub secure_data: Vec<u8>,
}

impl MacsecFrame {
    /// Total wire overhead added by MACsec.
    pub fn overhead_bytes() -> usize {
        SECTAG_BYTES + ICV_BYTES
    }

    /// Wire length of the protected frame body.
    pub fn wire_len(&self) -> usize {
        SECTAG_BYTES
            + match self.mode {
                MacsecMode::AuthenticatedEncryption => self.secure_data.len(),
                MacsecMode::IntegrityOnly => self.secure_data.len(),
            }
    }
}

/// Transmit side of a secure channel (one SC, one SA).
#[derive(Debug, Clone)]
pub struct MacsecTx {
    aead: AesGcm,
    sci: u64,
    next_pn: u32,
    mode: MacsecMode,
}

/// Receive side of a secure channel with an anti-replay window.
#[derive(Debug, Clone)]
pub struct MacsecRx {
    aead: AesGcm,
    sci: u64,
    highest_pn: u32,
    replay_window: u32,
    seen_mask: u64,
}

fn nonce(sci: u64, pn: u32) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&sci.to_be_bytes());
    n[8..].copy_from_slice(&pn.to_be_bytes());
    n
}

fn aad(sci: u64, pn: u32, mode: MacsecMode) -> Vec<u8> {
    let mut a = Vec::with_capacity(13);
    a.extend_from_slice(&sci.to_be_bytes());
    a.extend_from_slice(&pn.to_be_bytes());
    a.push(match mode {
        MacsecMode::AuthenticatedEncryption => 0x0C,
        MacsecMode::IntegrityOnly => 0x08,
    });
    a
}

impl MacsecTx {
    /// Creates a transmit SA from a secure association key (SAK).
    pub fn new(sak: [u8; 16], sci: u64, mode: MacsecMode) -> Self {
        Self {
            aead: AesGcm::new(&sak),
            sci,
            next_pn: 1,
            mode,
        }
    }

    /// The transmitter's SCI.
    pub fn sci(&self) -> u64 {
        self.sci
    }

    /// Protects a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::RekeyRequired`] when the 32-bit PN space is
    /// exhausted (MACsec mandates rekey before wrap).
    pub fn protect(&mut self, payload: &[u8]) -> Result<MacsecFrame, ProtoError> {
        if self.next_pn == u32::MAX {
            return Err(ProtoError::RekeyRequired);
        }
        let pn = self.next_pn;
        self.next_pn += 1;
        let n = nonce(self.sci, pn);
        let a = aad(self.sci, pn, self.mode);
        let secure_data = match self.mode {
            MacsecMode::AuthenticatedEncryption => self.aead.seal(&n, &a, payload),
            MacsecMode::IntegrityOnly => {
                // GCM with empty plaintext: tag over AAD||payload.
                let mut full_aad = a;
                full_aad.extend_from_slice(payload);
                let tag = self.aead.seal(&n, &full_aad, b"");
                let mut out = payload.to_vec();
                out.extend_from_slice(&tag);
                out
            }
        };
        Ok(MacsecFrame {
            sci: self.sci,
            pn,
            mode: self.mode,
            secure_data,
        })
    }
}

impl MacsecRx {
    /// Creates a receive SA bound to the peer's SCI.
    pub fn new(sak: [u8; 16], peer_sci: u64) -> Self {
        Self {
            aead: AesGcm::new(&sak),
            sci: peer_sci,
            highest_pn: 0,
            replay_window: 0,
            seen_mask: 0,
        }
    }

    /// Enables a replay window of `window` packets (0 = strict ordering).
    pub fn with_replay_window(mut self, window: u32) -> Self {
        self.replay_window = window.min(63);
        self
    }

    /// Verifies (and decrypts) a frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] for an unknown SCI or short frame,
    /// [`ProtoError::Replayed`] for PN reuse / stale PN,
    /// [`ProtoError::AuthFailed`] on ICV mismatch.
    pub fn verify(&mut self, frame: &MacsecFrame) -> Result<Vec<u8>, ProtoError> {
        if frame.sci != self.sci {
            return Err(ProtoError::Malformed);
        }
        self.check_replay(frame.pn)?;
        let n = nonce(frame.sci, frame.pn);
        let a = aad(frame.sci, frame.pn, frame.mode);
        let payload = match frame.mode {
            MacsecMode::AuthenticatedEncryption => self
                .aead
                .open(&n, &a, &frame.secure_data)
                .map_err(|_| ProtoError::AuthFailed)?,
            MacsecMode::IntegrityOnly => {
                if frame.secure_data.len() < ICV_BYTES {
                    return Err(ProtoError::Malformed);
                }
                let (payload, tag) = frame
                    .secure_data
                    .split_at(frame.secure_data.len() - ICV_BYTES);
                let mut full_aad = a;
                full_aad.extend_from_slice(payload);
                let mut sealed = Vec::with_capacity(ICV_BYTES);
                sealed.extend_from_slice(tag);
                self.aead
                    .open(&n, &full_aad, &sealed)
                    .map_err(|_| ProtoError::AuthFailed)?;
                payload.to_vec()
            }
        };
        self.accept(frame.pn);
        Ok(payload)
    }

    fn check_replay(&self, pn: u32) -> Result<(), ProtoError> {
        if pn == 0 {
            return Err(ProtoError::Malformed);
        }
        if pn > self.highest_pn {
            return Ok(());
        }
        let behind = self.highest_pn - pn;
        if behind >= self.replay_window.max(1) && self.replay_window > 0 {
            return Err(ProtoError::Replayed);
        }
        if self.replay_window == 0 {
            return Err(ProtoError::Replayed);
        }
        if (self.seen_mask >> behind) & 1 == 1 {
            return Err(ProtoError::Replayed);
        }
        Ok(())
    }

    fn accept(&mut self, pn: u32) {
        if pn > self.highest_pn {
            let shift = pn - self.highest_pn;
            self.seen_mask = if shift >= 64 {
                0
            } else {
                self.seen_mask << shift
            };
            self.seen_mask |= 1;
            self.highest_pn = pn;
        } else {
            let behind = self.highest_pn - pn;
            if behind < 64 {
                self.seen_mask |= 1 << behind;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(mode: MacsecMode) -> (MacsecTx, MacsecRx) {
        let sak = [9u8; 16];
        (
            MacsecTx::new(sak, 0xAABB_CCDD_0000_0001, mode),
            MacsecRx::new(sak, 0xAABB_CCDD_0000_0001),
        )
    }

    #[test]
    fn encrypt_round_trip() {
        let (mut tx, mut rx) = pair(MacsecMode::AuthenticatedEncryption);
        let f = tx.protect(b"zonal telemetry").unwrap();
        assert_ne!(f.secure_data[..15], b"zonal telemetry"[..]);
        assert_eq!(rx.verify(&f).unwrap(), b"zonal telemetry");
    }

    #[test]
    fn integrity_only_leaves_cleartext() {
        let (mut tx, mut rx) = pair(MacsecMode::IntegrityOnly);
        let f = tx.protect(b"visible but authentic").unwrap();
        assert_eq!(&f.secure_data[..21], b"visible but authentic");
        assert_eq!(rx.verify(&f).unwrap(), b"visible but authentic");
    }

    #[test]
    fn tamper_detected_both_modes() {
        for mode in [
            MacsecMode::AuthenticatedEncryption,
            MacsecMode::IntegrityOnly,
        ] {
            let (mut tx, mut rx) = pair(mode);
            let mut f = tx.protect(b"payload").unwrap();
            f.secure_data[0] ^= 1;
            assert_eq!(
                rx.verify(&f).unwrap_err(),
                ProtoError::AuthFailed,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn strict_replay_rejected() {
        let (mut tx, mut rx) = pair(MacsecMode::AuthenticatedEncryption);
        let f = tx.protect(b"once").unwrap();
        assert!(rx.verify(&f).is_ok());
        assert_eq!(rx.verify(&f).unwrap_err(), ProtoError::Replayed);
    }

    #[test]
    fn replay_window_allows_reorder_but_not_reuse() {
        let (mut tx, rx) = pair(MacsecMode::AuthenticatedEncryption);
        let mut rx = rx.with_replay_window(16);
        let f1 = tx.protect(b"1").unwrap();
        let f2 = tx.protect(b"2").unwrap();
        let f3 = tx.protect(b"3").unwrap();
        assert!(rx.verify(&f3).is_ok());
        assert!(rx.verify(&f1).is_ok(), "in-window reorder accepted");
        assert_eq!(rx.verify(&f1).unwrap_err(), ProtoError::Replayed);
        assert!(rx.verify(&f2).is_ok());
    }

    #[test]
    fn stale_pn_outside_window_rejected() {
        let (mut tx, rx) = pair(MacsecMode::AuthenticatedEncryption);
        let mut rx = rx.with_replay_window(4);
        let old = tx.protect(b"old").unwrap();
        for _ in 0..10 {
            let f = tx.protect(b"new").unwrap();
            rx.verify(&f).unwrap();
        }
        assert_eq!(rx.verify(&old).unwrap_err(), ProtoError::Replayed);
    }

    #[test]
    fn wrong_sci_rejected() {
        let sak = [9u8; 16];
        let mut tx = MacsecTx::new(sak, 111, MacsecMode::AuthenticatedEncryption);
        let mut rx = MacsecRx::new(sak, 222);
        let f = tx.protect(b"x").unwrap();
        assert_eq!(rx.verify(&f).unwrap_err(), ProtoError::Malformed);
    }

    #[test]
    fn wrong_sak_rejected() {
        let mut tx = MacsecTx::new([1u8; 16], 5, MacsecMode::AuthenticatedEncryption);
        let mut rx = MacsecRx::new([2u8; 16], 5);
        let f = tx.protect(b"x").unwrap();
        assert_eq!(rx.verify(&f).unwrap_err(), ProtoError::AuthFailed);
    }

    #[test]
    fn overhead_is_30_bytes() {
        assert_eq!(MacsecFrame::overhead_bytes(), 30);
    }

    #[test]
    fn pn_increments_per_frame() {
        let (mut tx, _) = pair(MacsecMode::AuthenticatedEncryption);
        let a = tx.protect(b"a").unwrap();
        let b = tx.protect(b"b").unwrap();
        assert_eq!(a.pn + 1, b.pn);
    }
}
