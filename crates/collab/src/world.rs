//! The 2-D traffic world and sensor models.

use autosec_sim::SimRng;
use rand::Rng;

/// A point in the plane (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance.
    pub fn dist(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Index of a vehicle in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VehicleId(pub usize);

/// Index of a ground-truth object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId(pub usize);

/// A single sensed detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Estimated position.
    pub position: Point,
    /// Which real object it corresponds to (`None` for a fabricated
    /// ghost; ground truth, never visible to the algorithms).
    pub truth: Option<ObjectId>,
}

/// Per-vehicle sensor characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorModel {
    /// Maximum detection range in metres.
    pub range_m: f64,
    /// One-sigma position noise in metres.
    pub noise_m: f64,
    /// Probability of missing an in-range object.
    pub miss_rate: f64,
}

impl Default for SensorModel {
    fn default() -> Self {
        Self {
            range_m: 60.0,
            noise_m: 0.5,
            miss_rate: 0.05,
        }
    }
}

/// The world: vehicle positions and ground-truth objects (pedestrians,
/// debris, other road users).
#[derive(Debug, Clone)]
pub struct World {
    vehicles: Vec<Point>,
    objects: Vec<Point>,
}

impl World {
    /// Builds a world from explicit positions.
    pub fn new(vehicles: Vec<Point>, objects: Vec<Point>) -> Self {
        Self { vehicles, objects }
    }

    /// Random world: `n_vehicles` vehicles and `n_vehicles * 2` objects
    /// in a `size x size` area.
    pub fn random(n_vehicles: usize, size: f64, rng: &mut SimRng) -> Self {
        let pt = |rng: &mut SimRng| Point {
            x: rng.gen_range(0.0..size),
            y: rng.gen_range(0.0..size),
        };
        let vehicles = (0..n_vehicles).map(|_| pt(rng)).collect();
        let objects = (0..n_vehicles * 2).map(|_| pt(rng)).collect();
        Self { vehicles, objects }
    }

    /// Vehicle ids.
    pub fn vehicles(&self) -> Vec<VehicleId> {
        (0..self.vehicles.len()).map(VehicleId).collect()
    }

    /// A vehicle's position.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn vehicle_pos(&self, v: VehicleId) -> Point {
        self.vehicles[v.0]
    }

    /// Ground-truth objects.
    pub fn objects(&self) -> &[Point] {
        &self.objects
    }

    /// Whether `v`'s sensor could plausibly see position `p`.
    pub fn in_range(&self, v: VehicleId, p: Point, sensor: &SensorModel) -> bool {
        self.vehicle_pos(v).dist(&p) <= sensor.range_m
    }

    /// Simulates one sensing cycle for vehicle `v`.
    pub fn sense(&self, v: VehicleId, sensor: &SensorModel, rng: &mut SimRng) -> Vec<Detection> {
        let pos = self.vehicle_pos(v);
        let mut out = Vec::new();
        for (i, obj) in self.objects.iter().enumerate() {
            if pos.dist(obj) > sensor.range_m {
                continue;
            }
            if rng.chance(sensor.miss_rate) {
                continue;
            }
            out.push(Detection {
                position: Point {
                    x: obj.x + rng.normal_with(0.0, sensor.noise_m),
                    y: obj.y + rng.normal_with(0.0, sensor.noise_m),
                },
                truth: Some(ObjectId(i)),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sensing_respects_range() {
        let world = World::new(
            vec![Point { x: 0.0, y: 0.0 }],
            vec![Point { x: 10.0, y: 0.0 }, Point { x: 500.0, y: 0.0 }],
        );
        let mut rng = SimRng::seed(1);
        let sensor = SensorModel {
            miss_rate: 0.0,
            ..SensorModel::default()
        };
        let dets = world.sense(VehicleId(0), &sensor, &mut rng);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].truth, Some(ObjectId(0)));
    }

    #[test]
    fn noise_is_bounded() {
        let world = World::new(
            vec![Point { x: 0.0, y: 0.0 }],
            vec![Point { x: 20.0, y: 20.0 }],
        );
        let sensor = SensorModel {
            miss_rate: 0.0,
            noise_m: 0.5,
            ..SensorModel::default()
        };
        let mut rng = SimRng::seed(2);
        for _ in 0..100 {
            let dets = world.sense(VehicleId(0), &sensor, &mut rng);
            let d = dets[0].position.dist(&Point { x: 20.0, y: 20.0 });
            assert!(d < 4.0, "{d}");
        }
    }

    #[test]
    fn misses_happen_at_configured_rate() {
        let world = World::new(
            vec![Point { x: 0.0, y: 0.0 }],
            vec![Point { x: 5.0, y: 5.0 }],
        );
        let sensor = SensorModel {
            miss_rate: 0.3,
            ..SensorModel::default()
        };
        let mut rng = SimRng::seed(3);
        let n = 2000;
        let seen: usize = (0..n)
            .map(|_| world.sense(VehicleId(0), &sensor, &mut rng).len())
            .sum();
        let rate = 1.0 - seen as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "{rate}");
    }

    #[test]
    fn random_world_shape() {
        let mut rng = SimRng::seed(4);
        let w = World::random(7, 100.0, &mut rng);
        assert_eq!(w.vehicles().len(), 7);
        assert_eq!(w.objects().len(), 14);
    }
}
