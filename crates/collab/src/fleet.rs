//! Concurrent fleet rounds: each vehicle runs on its own thread and
//! exchanges V2X messages over channels.
//!
//! The collaboration layer is inherently concurrent — every vehicle
//! senses, signs, and broadcasts independently. This module runs one
//! perception round with real threads (crossbeam channels as the V2X
//! medium) and deterministic per-vehicle RNG streams, so results are
//! identical to the sequential [`crate::perception::perception_round`]
//! modulo message arrival order (which the fusion step normalizes by
//! sorting on sender id).

use crossbeam::channel;

use autosec_sim::SimRng;

use crate::perception::{fuse, verify_message, FusedObject, V2xMessage};
use crate::world::{SensorModel, World};

/// Result of a concurrent round.
#[derive(Debug, Clone)]
pub struct FleetRound {
    /// All authentic messages, sorted by sender id.
    pub messages: Vec<V2xMessage>,
    /// The fused object list computed from them.
    pub fused: Vec<FusedObject>,
    /// Messages dropped for failing authentication.
    pub rejected: usize,
}

/// Runs one collaborative-perception round with one thread per vehicle.
///
/// Every vehicle derives its RNG from `master_seed` and its own id, so
/// the round is reproducible despite thread scheduling.
///
/// # Panics
///
/// Panics if a vehicle thread panics (propagated via `join`).
pub fn concurrent_round(
    world: &World,
    sensor: &SensorModel,
    key: &[u8],
    seq: u64,
    master_seed: u64,
) -> FleetRound {
    let vehicles = world.vehicles();
    let (tx, rx) = channel::unbounded::<V2xMessage>();

    std::thread::scope(|scope| {
        for v in &vehicles {
            let v = *v;
            let tx = tx.clone();
            let world_ref = &*world;
            let sensor_ref = &*sensor;
            let key_ref = key;
            scope.spawn(move || {
                let mut rng = SimRng::seed(master_seed).fork_idx(v.0 as u64);
                let detections = world_ref.sense(v, sensor_ref, &mut rng);
                let msg = crate::perception::sign_message(key_ref, v, seq, detections);
                tx.send(msg).expect("collector outlives senders");
            });
        }
    });
    drop(tx);

    let mut messages: Vec<V2xMessage> = Vec::with_capacity(vehicles.len());
    let mut rejected = 0;
    for msg in rx.iter() {
        if verify_message(key, &msg) {
            messages.push(msg);
        } else {
            rejected += 1;
        }
    }
    // Normalize arrival order for deterministic fusion.
    messages.sort_by_key(|m| m.sender);
    let fused = fuse(&messages, 3.0);
    FleetRound {
        messages,
        fused,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Point;

    const KEY: &[u8] = b"fleet key";

    fn world() -> World {
        World::new(
            vec![
                Point { x: 0.0, y: 0.0 },
                Point { x: 30.0, y: 0.0 },
                Point { x: 0.0, y: 30.0 },
                Point { x: 30.0, y: 30.0 },
            ],
            vec![Point { x: 15.0, y: 15.0 }, Point { x: 8.0, y: 22.0 }],
        )
    }

    fn sensor() -> SensorModel {
        SensorModel {
            miss_rate: 0.0,
            noise_m: 0.3,
            range_m: 60.0,
        }
    }

    #[test]
    fn concurrent_round_is_deterministic() {
        let w = world();
        let s = sensor();
        let a = concurrent_round(&w, &s, KEY, 1, 42);
        let b = concurrent_round(&w, &s, KEY, 1, 42);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.fused, b.fused);
    }

    #[test]
    fn all_vehicles_report_and_objects_fuse() {
        let w = world();
        let round = concurrent_round(&w, &sensor(), KEY, 1, 7);
        assert_eq!(round.messages.len(), 4);
        assert_eq!(round.rejected, 0);
        assert_eq!(round.fused.len(), 2, "two real objects");
        for f in &round.fused {
            assert_eq!(f.supporters.len(), 4, "everyone sees everything here");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w = world();
        let s = sensor();
        let a = concurrent_round(&w, &s, KEY, 1, 1);
        let b = concurrent_round(&w, &s, KEY, 1, 2);
        assert_ne!(a.messages, b.messages, "noise differs per seed");
    }
}
