//! Collaboration-layer fault-injection adapter for `autosec-faults`.
//!
//! [`PerceptionFaultTarget`] runs collaborative-perception rounds over a
//! fixed four-vehicle world while one compromised (but credentialed)
//! vehicle pads its detection list with fabricated ghosts. Health is
//! the fraction of fused objects that are corroborated by at least two
//! vehicles; a defended fleet runs the redundancy-based
//! [`MisbehaviorDetector`] and reports whether the fabricating claimant
//! was flagged.

use autosec_sim::inject::{FaultEffect, FaultTarget, InjectionRecord};
use autosec_sim::{ArchLayer, SimRng};

use crate::misbehavior::{MisbehaviorConfig, MisbehaviorDetector};
use crate::perception::{fuse, perception_round, sign_message};
use crate::world::{Detection, Point, SensorModel, World};

const GROUP_KEY: &[u8] = b"fault-injection group key";

/// Collaborative perception under fabricated-detection faults.
#[derive(Debug, Clone)]
pub struct PerceptionFaultTarget {
    /// Perception rounds per injection round.
    pub rounds: usize,
    /// Fusion / corroboration clustering radius.
    pub fuse_radius_m: f64,
}

impl Default for PerceptionFaultTarget {
    fn default() -> Self {
        Self {
            rounds: 4,
            fuse_radius_m: 3.0,
        }
    }
}

fn fixed_world() -> World {
    World::new(
        vec![
            Point { x: 0.0, y: 0.0 },
            Point { x: 30.0, y: 0.0 },
            Point { x: 0.0, y: 30.0 },
            Point { x: 30.0, y: 30.0 },
        ],
        vec![
            Point { x: 10.0, y: 10.0 },
            Point { x: 20.0, y: 20.0 },
            Point { x: 15.0, y: 5.0 },
        ],
    )
}

impl FaultTarget for PerceptionFaultTarget {
    fn layer(&self) -> ArchLayer {
        ArchLayer::Collaboration
    }

    fn name(&self) -> &'static str {
        "collab-perception"
    }

    fn apply(
        &mut self,
        effects: &[FaultEffect],
        defended: bool,
        rng: &mut SimRng,
    ) -> InjectionRecord {
        let ghosts: usize = effects
            .iter()
            .map(|e| match *e {
                FaultEffect::FabricateDetections { count } => count,
                _ => 0,
            })
            .sum();
        if ghosts == 0 {
            return InjectionRecord::clean(self.layer(), self.name());
        }

        let world = fixed_world();
        let sensor = SensorModel {
            miss_rate: 0.02,
            ..SensorModel::default()
        };
        let liar = world.vehicles()[0];
        let mut detector = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let mut corroborated = 0usize;
        let mut total = 0usize;
        let mut flagged = false;
        for seq in 0..self.rounds as u64 {
            let mut msgs = perception_round(&world, &sensor, GROUP_KEY, seq, rng);
            let mut dets: Vec<Detection> = msgs[0].detections.clone();
            for _ in 0..ghosts {
                dets.push(Detection {
                    position: Point {
                        x: rng.normal_with(15.0, 8.0),
                        y: rng.normal_with(15.0, 8.0),
                    },
                    truth: None,
                });
            }
            msgs[0] = sign_message(GROUP_KEY, liar, seq, dets);

            let fused = fuse(&msgs, self.fuse_radius_m);
            total += fused.len();
            corroborated += fused.iter().filter(|f| f.supporters.len() >= 2).count();
            if defended {
                let flags = detector.process_round(&world, &sensor, GROUP_KEY, &msgs);
                flagged |= flags.iter().any(|f| f.claimant == liar);
            }
        }
        let health = if total == 0 {
            0.0
        } else {
            corroborated as f64 / total as f64
        };
        InjectionRecord {
            layer: self.layer(),
            target: self.name(),
            applied: true,
            health,
            detected: defended && flagged,
            detail: format!(
                "{corroborated}/{total} fused objects corroborated over {} rounds",
                self.rounds
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(effects: &[FaultEffect], defended: bool) -> InjectionRecord {
        let mut t = PerceptionFaultTarget::default();
        let mut rng = SimRng::seed(77).fork("collab-fault");
        t.apply(effects, defended, &mut rng)
    }

    #[test]
    fn no_effects_is_clean() {
        let rec = apply(&[], true);
        assert_eq!(
            rec,
            InjectionRecord::clean(ArchLayer::Collaboration, "collab-perception")
        );
    }

    #[test]
    fn ghosts_pollute_the_fused_view() {
        let light = apply(&[FaultEffect::FabricateDetections { count: 1 }], false);
        let heavy = apply(&[FaultEffect::FabricateDetections { count: 8 }], false);
        assert!(light.applied && heavy.applied);
        assert!(
            heavy.health < light.health,
            "{} vs {}",
            heavy.health,
            light.health
        );
        assert!(!heavy.detected);
    }

    #[test]
    fn defended_fleet_flags_the_fabricator() {
        let rec = apply(&[FaultEffect::FabricateDetections { count: 8 }], true);
        assert!(rec.detected, "misbehaviour detector should flag the liar");
    }

    #[test]
    fn deterministic_per_substream() {
        let a = apply(&[FaultEffect::FabricateDetections { count: 3 }], true);
        let b = apply(&[FaultEffect::FabricateDetections { count: 3 }], true);
        assert_eq!(a, b);
    }
}
