//! # autosec-collab
//!
//! Collaboration layer — §VII of the paper.
//!
//! - [`world`] — a 2-D traffic world with ground-truth objects and
//!   noisy per-vehicle sensors (the collaborative-perception substrate,
//!   ref \[47\])
//! - [`perception`] — V2X detection sharing with authenticated messages,
//!   plus fusion into a common object list
//! - [`attacks`] — §VII-B adversaries: the **external** attacker
//!   injecting forged messages (stopped by authentication) and the
//!   **internal** attacker fabricating data *with* valid credentials
//!   (ref \[48\]) — ghost objects and object removal
//! - [`misbehavior`] — redundancy-based misbehaviour detection with
//!   per-vehicle trust scores: "intrusion detection methods which rely
//!   on redundant sources of information to validate received data"
//! - [`fleet`] — concurrent fleet rounds: one thread per vehicle over
//!   channel-based V2X (the multi-agent execution model)
//! - [`intersection`] — §VII-A's competing collaborative systems: a
//!   four-way intersection where self-interest buys individual time at
//!   the cost of conflicts and deadlocks
//!
//! ## Example
//!
//! ```
//! use autosec_collab::world::{World, SensorModel};
//! use autosec_sim::SimRng;
//!
//! let mut rng = SimRng::seed(11);
//! let world = World::random(10, 200.0, &mut rng);
//! let v = world.vehicles()[0];
//! let dets = world.sense(v, &SensorModel::default(), &mut rng);
//! assert!(!dets.is_empty());
//! ```

pub mod attacks;
pub mod faults;
pub mod fleet;
pub mod intersection;
pub mod misbehavior;
pub mod perception;
pub mod world;
