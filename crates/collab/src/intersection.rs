//! Competing collaborative systems at an intersection (§VII-A).
//!
//! *"Assuming these systems will 'honestly' collaborate is overly
//! simplistic... an optimization battle could arise among different
//! agents or software providers."* The model: a four-way intersection
//! with one protocol slot per round. Cooperative agents follow the
//! agreed priority order; a self-interested agent defects (goes out of
//! turn) with probability equal to its self-interest parameter. Two
//! simultaneous movers conflict — both must back off — and mutual
//! over-politeness can deadlock.

use autosec_sim::SimRng;

/// One agent approaching the intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agent {
    /// Probability of going out of turn per round (0 = fully
    /// cooperative, 1 = maximally self-interested).
    pub self_interest: f64,
    /// Probability of *hesitating* on its own turn (models overly
    /// defensive tuning; creates the deadlock the paper mentions).
    pub hesitation: f64,
}

impl Agent {
    /// A cooperative agent.
    pub fn cooperative() -> Self {
        Self {
            self_interest: 0.0,
            hesitation: 0.05,
        }
    }

    /// A selfish agent with the given defection probability.
    pub fn selfish(p: f64) -> Self {
        Self {
            self_interest: p.clamp(0.0, 1.0),
            hesitation: 0.05,
        }
    }
}

/// Result of an intersection simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntersectionReport {
    /// Vehicles that crossed per round (throughput).
    pub throughput: f64,
    /// Fraction of rounds with a conflict (two movers).
    pub conflict_rate: f64,
    /// Fraction of rounds where nobody moved (deadlock rounds).
    pub deadlock_rate: f64,
    /// Crossings by the most selfish agent minus the average of the
    /// others (what defection buys you individually).
    pub selfish_advantage: f64,
}

/// Outcome of a single protocol round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundOutcome {
    /// Exactly one agent moved: a crossing by that agent index.
    Crossed(usize),
    /// Two or more movers: everyone slams the brakes; slot wasted.
    Conflict,
    /// Nobody moved.
    Deadlock,
}

/// Plays round number `round` (its position fixes whose turn it is:
/// `round % 4`).
///
/// Rounds are independent given their number, so a sweep can run them
/// on any RNG streams (e.g. one [`SimRng::fork_idx`] stream per round
/// in a parallel run) and fold the outcomes into an
/// [`IntersectionAccumulator`].
///
/// # Panics
///
/// Panics unless exactly four agents are given.
pub fn round_outcome(agents: &[Agent], round: usize, rng: &mut SimRng) -> RoundOutcome {
    assert_eq!(agents.len(), 4, "four-way intersection needs four agents");
    let turn = round % 4;
    // Who attempts to move this round?
    let mut movers = Vec::new();
    for (i, agent) in agents.iter().enumerate() {
        let attempts = if i == turn {
            !rng.chance(agent.hesitation)
        } else {
            rng.chance(agent.self_interest)
        };
        if attempts {
            movers.push(i);
        }
    }
    match movers.len() {
        0 => RoundOutcome::Deadlock,
        1 => RoundOutcome::Crossed(movers[0]),
        _ => RoundOutcome::Conflict,
    }
}

/// Mergeable tally of round outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntersectionAccumulator {
    crossings: [usize; 4],
    conflicts: usize,
    deadlocks: usize,
    rounds: usize,
}

impl IntersectionAccumulator {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one round outcome in.
    pub fn add(&mut self, outcome: RoundOutcome) {
        match outcome {
            RoundOutcome::Crossed(i) => self.crossings[i] += 1,
            RoundOutcome::Conflict => self.conflicts += 1,
            RoundOutcome::Deadlock => self.deadlocks += 1,
        }
        self.rounds += 1;
    }

    /// Merges another tally (all counts add).
    pub fn merge(&mut self, other: &IntersectionAccumulator) {
        for (c, o) in self.crossings.iter_mut().zip(&other.crossings) {
            *c += o;
        }
        self.conflicts += other.conflicts;
        self.deadlocks += other.deadlocks;
        self.rounds += other.rounds;
    }

    /// Rounds folded in so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Finalizes into a report for the given agent set.
    ///
    /// # Panics
    ///
    /// Panics if no round was folded in or the agent count is not four.
    pub fn report(&self, agents: &[Agent]) -> IntersectionReport {
        assert_eq!(agents.len(), 4, "four-way intersection needs four agents");
        assert!(self.rounds > 0, "need at least one round");
        let total: usize = self.crossings.iter().sum();
        let max_selfish = agents
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.self_interest
                    .partial_cmp(&b.1.self_interest)
                    .expect("no NaN")
            })
            .map(|(i, _)| i)
            .expect("nonempty");
        let others: f64 = self
            .crossings
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != max_selfish)
            .map(|(_, &c)| c as f64)
            .sum::<f64>()
            / 3.0;

        IntersectionReport {
            throughput: total as f64 / self.rounds as f64,
            conflict_rate: self.conflicts as f64 / self.rounds as f64,
            deadlock_rate: self.deadlocks as f64 / self.rounds as f64,
            selfish_advantage: self.crossings[max_selfish] as f64 - others,
        }
    }
}

/// Simulates `rounds` protocol rounds with an endless queue behind each
/// of the four approaches.
///
/// # Panics
///
/// Panics unless exactly four agents are given.
pub fn simulate(agents: &[Agent], rounds: usize, rng: &mut SimRng) -> IntersectionReport {
    let mut acc = IntersectionAccumulator::new();
    for round in 0..rounds {
        acc.add(round_outcome(agents, round, rng));
    }
    acc.report(agents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooperative_agents_flow_smoothly() {
        let agents = [Agent::cooperative(); 4];
        let mut rng = SimRng::seed(1);
        let r = simulate(&agents, 4000, &mut rng);
        assert!(r.throughput > 0.9, "{}", r.throughput);
        assert!(r.conflict_rate < 0.02);
        assert!(r.deadlock_rate < 0.06);
    }

    #[test]
    fn one_selfish_agent_gains_individually() {
        let mut agents = [Agent::cooperative(); 4];
        agents[2] = Agent::selfish(0.3);
        let mut rng = SimRng::seed(2);
        let r = simulate(&agents, 4000, &mut rng);
        assert!(r.selfish_advantage > 100.0, "{}", r.selfish_advantage);
    }

    #[test]
    fn universal_selfishness_collapses_throughput() {
        let coop = simulate(&[Agent::cooperative(); 4], 4000, &mut SimRng::seed(3));
        let selfish = simulate(&[Agent::selfish(0.5); 4], 4000, &mut SimRng::seed(3));
        assert!(
            selfish.throughput < coop.throughput * 0.8,
            "coop {} vs selfish {}",
            coop.throughput,
            selfish.throughput
        );
        assert!(selfish.conflict_rate > 0.3);
    }

    #[test]
    fn hesitant_agents_deadlock() {
        let timid = Agent {
            self_interest: 0.0,
            hesitation: 0.8,
        };
        let r = simulate(&[timid; 4], 4000, &mut SimRng::seed(4));
        assert!(r.deadlock_rate > 0.5, "{}", r.deadlock_rate);
    }

    #[test]
    fn accumulator_merge_equals_single_pass() {
        let mut agents = [Agent::cooperative(); 4];
        agents[1] = Agent::selfish(0.4);
        let rounds = 1000;
        let root = SimRng::seed(11);
        let mut whole = IntersectionAccumulator::new();
        for r in 0..rounds {
            let mut rng = root.fork_idx(r as u64);
            whole.add(round_outcome(&agents, r, &mut rng));
        }
        let mut left = IntersectionAccumulator::new();
        let mut right = IntersectionAccumulator::new();
        for r in 0..rounds {
            let mut rng = root.fork_idx(r as u64);
            let out = round_outcome(&agents, r, &mut rng);
            if r < rounds / 3 {
                left.add(out);
            } else {
                right.add(out);
            }
        }
        left.merge(&right);
        assert_eq!(left.rounds(), whole.rounds());
        assert_eq!(left.report(&agents), whole.report(&agents));
    }

    #[test]
    #[should_panic(expected = "four-way")]
    fn wrong_agent_count_panics() {
        let _ = simulate(&[Agent::cooperative(); 3], 10, &mut SimRng::seed(5));
    }
}
