//! Competing collaborative systems at an intersection (§VII-A).
//!
//! *"Assuming these systems will 'honestly' collaborate is overly
//! simplistic... an optimization battle could arise among different
//! agents or software providers."* The model: a four-way intersection
//! with one protocol slot per round. Cooperative agents follow the
//! agreed priority order; a self-interested agent defects (goes out of
//! turn) with probability equal to its self-interest parameter. Two
//! simultaneous movers conflict — both must back off — and mutual
//! over-politeness can deadlock.

use autosec_sim::SimRng;

/// One agent approaching the intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agent {
    /// Probability of going out of turn per round (0 = fully
    /// cooperative, 1 = maximally self-interested).
    pub self_interest: f64,
    /// Probability of *hesitating* on its own turn (models overly
    /// defensive tuning; creates the deadlock the paper mentions).
    pub hesitation: f64,
}

impl Agent {
    /// A cooperative agent.
    pub fn cooperative() -> Self {
        Self {
            self_interest: 0.0,
            hesitation: 0.05,
        }
    }

    /// A selfish agent with the given defection probability.
    pub fn selfish(p: f64) -> Self {
        Self {
            self_interest: p.clamp(0.0, 1.0),
            hesitation: 0.05,
        }
    }
}

/// Result of an intersection simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntersectionReport {
    /// Vehicles that crossed per round (throughput).
    pub throughput: f64,
    /// Fraction of rounds with a conflict (two movers).
    pub conflict_rate: f64,
    /// Fraction of rounds where nobody moved (deadlock rounds).
    pub deadlock_rate: f64,
    /// Crossings by the most selfish agent minus the average of the
    /// others (what defection buys you individually).
    pub selfish_advantage: f64,
}

/// Simulates `rounds` protocol rounds with an endless queue behind each
/// of the four approaches.
///
/// # Panics
///
/// Panics unless exactly four agents are given.
pub fn simulate(agents: &[Agent], rounds: usize, rng: &mut SimRng) -> IntersectionReport {
    assert_eq!(agents.len(), 4, "four-way intersection needs four agents");
    let mut crossings = [0usize; 4];
    let mut conflicts = 0usize;
    let mut deadlocks = 0usize;

    for round in 0..rounds {
        let turn = round % 4;
        // Who attempts to move this round?
        let mut movers = Vec::new();
        for (i, agent) in agents.iter().enumerate() {
            let attempts = if i == turn {
                !rng.chance(agent.hesitation)
            } else {
                rng.chance(agent.self_interest)
            };
            if attempts {
                movers.push(i);
            }
        }
        match movers.len() {
            0 => deadlocks += 1,
            1 => crossings[movers[0]] += 1,
            _ => conflicts += 1, // everyone slams the brakes; slot wasted
        }
    }

    let total: usize = crossings.iter().sum();
    let max_selfish = agents
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.self_interest.partial_cmp(&b.1.self_interest).expect("no NaN"))
        .map(|(i, _)| i)
        .expect("nonempty");
    let others: f64 = crossings
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != max_selfish)
        .map(|(_, &c)| c as f64)
        .sum::<f64>()
        / 3.0;

    IntersectionReport {
        throughput: total as f64 / rounds as f64,
        conflict_rate: conflicts as f64 / rounds as f64,
        deadlock_rate: deadlocks as f64 / rounds as f64,
        selfish_advantage: crossings[max_selfish] as f64 - others,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooperative_agents_flow_smoothly() {
        let agents = [Agent::cooperative(); 4];
        let mut rng = SimRng::seed(1);
        let r = simulate(&agents, 4000, &mut rng);
        assert!(r.throughput > 0.9, "{}", r.throughput);
        assert!(r.conflict_rate < 0.02);
        assert!(r.deadlock_rate < 0.06);
    }

    #[test]
    fn one_selfish_agent_gains_individually() {
        let mut agents = [Agent::cooperative(); 4];
        agents[2] = Agent::selfish(0.3);
        let mut rng = SimRng::seed(2);
        let r = simulate(&agents, 4000, &mut rng);
        assert!(r.selfish_advantage > 100.0, "{}", r.selfish_advantage);
    }

    #[test]
    fn universal_selfishness_collapses_throughput() {
        let coop = simulate(&[Agent::cooperative(); 4], 4000, &mut SimRng::seed(3));
        let selfish = simulate(&[Agent::selfish(0.5); 4], 4000, &mut SimRng::seed(3));
        assert!(
            selfish.throughput < coop.throughput * 0.8,
            "coop {} vs selfish {}",
            coop.throughput,
            selfish.throughput
        );
        assert!(selfish.conflict_rate > 0.3);
    }

    #[test]
    fn hesitant_agents_deadlock() {
        let timid = Agent {
            self_interest: 0.0,
            hesitation: 0.8,
        };
        let r = simulate(&[timid; 4], 4000, &mut SimRng::seed(4));
        assert!(r.deadlock_rate > 0.5, "{}", r.deadlock_rate);
    }

    #[test]
    #[should_panic(expected = "four-way")]
    fn wrong_agent_count_panics() {
        let _ = simulate(&[Agent::cooperative(); 3], 10, &mut SimRng::seed(5));
    }
}
