//! Collaborative perception: authenticated V2X sharing and fusion.
//!
//! Each vehicle broadcasts its detection list in a V2X message
//! authenticated with a group key (HMAC; §VII-B's "secure communication
//! protocols"). The receiver drops messages that fail authentication —
//! which stops the **external** attacker but, as the paper stresses, not
//! an **internal** one holding valid credentials.

use autosec_crypto::HmacSha256;
use autosec_sim::SimRng;

use crate::world::{Detection, Point, SensorModel, VehicleId, World};

/// A shared V2X perception message.
#[derive(Debug, Clone, PartialEq)]
pub struct V2xMessage {
    /// Claimed sender.
    pub sender: VehicleId,
    /// Shared detections.
    pub detections: Vec<Detection>,
    /// Message sequence number (freshness).
    pub seq: u64,
    /// HMAC tag over (sender, seq, detections).
    pub tag: [u8; 32],
}

fn message_bytes(sender: VehicleId, seq: u64, detections: &[Detection]) -> Vec<u8> {
    let mut b = Vec::with_capacity(16 + detections.len() * 16);
    b.extend_from_slice(&(sender.0 as u64).to_be_bytes());
    b.extend_from_slice(&seq.to_be_bytes());
    for d in detections {
        b.extend_from_slice(&d.position.x.to_be_bytes());
        b.extend_from_slice(&d.position.y.to_be_bytes());
    }
    b
}

/// Signs a perception message with the group key.
pub fn sign_message(
    key: &[u8],
    sender: VehicleId,
    seq: u64,
    detections: Vec<Detection>,
) -> V2xMessage {
    let tag = HmacSha256::mac(key, &message_bytes(sender, seq, &detections));
    V2xMessage {
        sender,
        detections,
        seq,
        tag,
    }
}

/// Verifies a message; `true` if authentic.
pub fn verify_message(key: &[u8], msg: &V2xMessage) -> bool {
    HmacSha256::verify(
        key,
        &message_bytes(msg.sender, msg.seq, &msg.detections),
        &msg.tag,
    )
}

/// A fused object hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedObject {
    /// Mean position of the cluster.
    pub position: Point,
    /// Vehicles whose detections support it.
    pub supporters: Vec<VehicleId>,
}

/// Clusters shared detections within `radius` into fused objects
/// (greedy single-linkage — adequate at these densities).
pub fn fuse(messages: &[V2xMessage], radius: f64) -> Vec<FusedObject> {
    let mut clusters: Vec<(Point, Vec<VehicleId>, usize)> = Vec::new();
    for msg in messages {
        for det in &msg.detections {
            let mut merged = false;
            for (centroid, supporters, count) in clusters.iter_mut() {
                if centroid.dist(&det.position) <= radius {
                    // Running centroid update.
                    let n = *count as f64;
                    centroid.x = (centroid.x * n + det.position.x) / (n + 1.0);
                    centroid.y = (centroid.y * n + det.position.y) / (n + 1.0);
                    *count += 1;
                    if !supporters.contains(&msg.sender) {
                        supporters.push(msg.sender);
                    }
                    merged = true;
                    break;
                }
            }
            if !merged {
                clusters.push((det.position, vec![msg.sender], 1));
            }
        }
    }
    clusters
        .into_iter()
        .map(|(position, supporters, _)| FusedObject {
            position,
            supporters,
        })
        .collect()
}

/// Convenience: one full collaborative-perception round for every
/// vehicle in the world, returning the signed messages.
pub fn perception_round(
    world: &World,
    sensor: &SensorModel,
    key: &[u8],
    seq: u64,
    rng: &mut SimRng,
) -> Vec<V2xMessage> {
    world
        .vehicles()
        .into_iter()
        .map(|v| sign_message(key, v, seq, world.sense(v, sensor, rng)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ObjectId;

    const KEY: &[u8] = b"v2x group key";

    fn det(x: f64, y: f64) -> Detection {
        Detection {
            position: Point { x, y },
            truth: Some(ObjectId(0)),
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let msg = sign_message(KEY, VehicleId(3), 7, vec![det(1.0, 2.0)]);
        assert!(verify_message(KEY, &msg));
    }

    #[test]
    fn forged_message_rejected() {
        let mut msg = sign_message(KEY, VehicleId(3), 7, vec![det(1.0, 2.0)]);
        msg.detections[0].position.x = 99.0;
        assert!(!verify_message(KEY, &msg));
        let external = sign_message(b"wrong key", VehicleId(4), 1, vec![det(0.0, 0.0)]);
        assert!(!verify_message(KEY, &external));
    }

    #[test]
    fn fusion_merges_nearby_detections() {
        let m1 = sign_message(KEY, VehicleId(0), 1, vec![det(10.0, 10.0)]);
        let m2 = sign_message(KEY, VehicleId(1), 1, vec![det(10.4, 9.8)]);
        let m3 = sign_message(KEY, VehicleId(2), 1, vec![det(50.0, 50.0)]);
        let fused = fuse(&[m1, m2, m3], 2.0);
        assert_eq!(fused.len(), 2);
        let big = fused.iter().find(|f| f.supporters.len() == 2).unwrap();
        assert!(big.position.dist(&Point { x: 10.2, y: 9.9 }) < 0.5);
    }

    #[test]
    fn supporters_deduplicate_per_vehicle() {
        let m = sign_message(KEY, VehicleId(0), 1, vec![det(10.0, 10.0), det(10.1, 10.0)]);
        let fused = fuse(&[m], 2.0);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].supporters, vec![VehicleId(0)]);
    }

    #[test]
    fn full_round_sees_shared_objects() {
        let world = World::new(
            vec![Point { x: 0.0, y: 0.0 }, Point { x: 10.0, y: 0.0 }],
            vec![Point { x: 5.0, y: 0.0 }],
        );
        let sensor = SensorModel {
            miss_rate: 0.0,
            ..SensorModel::default()
        };
        let mut rng = autosec_sim::SimRng::seed(5);
        let msgs = perception_round(&world, &sensor, KEY, 1, &mut rng);
        assert_eq!(msgs.len(), 2);
        let fused = fuse(&msgs, 3.0);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].supporters.len(), 2, "both vehicles corroborate");
    }
}
