//! Collaboration-layer adversaries (§VII-B, paper ref \[48\]).

use autosec_sim::SimRng;
use rand::Rng;

use crate::perception::{sign_message, V2xMessage};
use crate::world::{Detection, Point, VehicleId, World};

/// The external attacker: no group key, injects forged messages hoping
/// receivers skip verification.
#[derive(Debug, Clone)]
pub struct ExternalInjector {
    /// The identity the attacker claims.
    pub spoofed_sender: VehicleId,
}

impl ExternalInjector {
    /// Builds a forged message (wrong key, fabricated ghost).
    pub fn forge(&self, seq: u64, ghost_at: Point) -> V2xMessage {
        sign_message(
            b"attacker does not know the group key",
            self.spoofed_sender,
            seq,
            vec![Detection {
                position: ghost_at,
                truth: None,
            }],
        )
    }
}

/// The internal attacker: a compromised fleet member with valid
/// credentials. Secure communication "alone is insufficient, as the
/// malicious node may possess legitimate credentials."
#[derive(Debug, Clone)]
pub struct InternalFabricator {
    /// The compromised vehicle.
    pub vehicle: VehicleId,
    /// Fabrication strategy.
    pub strategy: FabricationStrategy,
}

/// What the internal attacker fabricates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FabricationStrategy {
    /// Inject a ghost object at a chosen position (e.g. a phantom
    /// pedestrian to trigger emergency braking).
    GhostObject {
        /// Ghost position.
        at: Point,
    },
    /// Omit real objects from the shared list (hide a pedestrian).
    ObjectRemoval,
    /// Ghost placed far from other observers' coverage, to dodge
    /// redundancy checks.
    EvasiveGhost {
        /// Preferred distance from the nearest honest observer.
        standoff_m: f64,
    },
}

impl InternalFabricator {
    /// Produces the attacker's (validly signed!) message for this round.
    pub fn emit(
        &self,
        world: &World,
        honest_detections: Vec<Detection>,
        key: &[u8],
        seq: u64,
        rng: &mut SimRng,
    ) -> V2xMessage {
        let detections = match self.strategy {
            FabricationStrategy::GhostObject { at } => {
                let mut d = honest_detections;
                d.push(Detection {
                    position: at,
                    truth: None,
                });
                d
            }
            FabricationStrategy::ObjectRemoval => Vec::new(),
            FabricationStrategy::EvasiveGhost { standoff_m } => {
                // Place the ghost far from every other vehicle.
                let mut best = Point { x: 0.0, y: 0.0 };
                let mut best_min = -1.0;
                for _ in 0..32 {
                    let cand = Point {
                        x: rng.gen_range(-standoff_m * 2.0..standoff_m * 4.0),
                        y: rng.gen_range(-standoff_m * 2.0..standoff_m * 4.0),
                    };
                    let min_d = world
                        .vehicles()
                        .iter()
                        .filter(|v| **v != self.vehicle)
                        .map(|v| world.vehicle_pos(*v).dist(&cand))
                        .fold(f64::INFINITY, f64::min);
                    if min_d > best_min {
                        best_min = min_d;
                        best = cand;
                    }
                }
                let mut d = honest_detections;
                d.push(Detection {
                    position: best,
                    truth: None,
                });
                d
            }
        };
        sign_message(key, self.vehicle, seq, detections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perception::verify_message;
    use crate::world::SensorModel;

    const KEY: &[u8] = b"v2x group key";

    #[test]
    fn external_forgery_fails_authentication() {
        let atk = ExternalInjector {
            spoofed_sender: VehicleId(0),
        };
        let msg = atk.forge(1, Point { x: 5.0, y: 5.0 });
        assert!(!verify_message(KEY, &msg));
    }

    #[test]
    fn internal_ghost_passes_authentication() {
        let world = World::new(vec![Point { x: 0.0, y: 0.0 }], vec![]);
        let atk = InternalFabricator {
            vehicle: VehicleId(0),
            strategy: FabricationStrategy::GhostObject {
                at: Point { x: 30.0, y: 0.0 },
            },
        };
        let mut rng = SimRng::seed(1);
        let msg = atk.emit(&world, vec![], KEY, 1, &mut rng);
        assert!(verify_message(KEY, &msg), "the paper's core point");
        assert_eq!(msg.detections.len(), 1);
        assert_eq!(msg.detections[0].truth, None);
    }

    #[test]
    fn removal_attack_emits_empty_list() {
        let world = World::new(
            vec![Point { x: 0.0, y: 0.0 }],
            vec![Point { x: 10.0, y: 0.0 }],
        );
        let mut rng = SimRng::seed(2);
        let honest = world.sense(VehicleId(0), &SensorModel::default(), &mut rng);
        assert!(!honest.is_empty());
        let atk = InternalFabricator {
            vehicle: VehicleId(0),
            strategy: FabricationStrategy::ObjectRemoval,
        };
        let msg = atk.emit(&world, honest, KEY, 1, &mut rng);
        assert!(msg.detections.is_empty());
        assert!(verify_message(KEY, &msg));
    }

    #[test]
    fn evasive_ghost_lands_far_from_others() {
        let world = World::new(
            vec![
                Point { x: 0.0, y: 0.0 },
                Point { x: 10.0, y: 0.0 },
                Point { x: 0.0, y: 10.0 },
            ],
            vec![],
        );
        let atk = InternalFabricator {
            vehicle: VehicleId(0),
            strategy: FabricationStrategy::EvasiveGhost { standoff_m: 60.0 },
        };
        let mut rng = SimRng::seed(3);
        let msg = atk.emit(&world, vec![], KEY, 1, &mut rng);
        let ghost = msg.detections.last().unwrap().position;
        let min_d = [VehicleId(1), VehicleId(2)]
            .iter()
            .map(|v| world.vehicle_pos(*v).dist(&ghost))
            .fold(f64::INFINITY, f64::min);
        assert!(min_d > 60.0, "{min_d}");
    }
}
