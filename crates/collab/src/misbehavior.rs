//! Redundancy-based misbehaviour detection with trust scores.
//!
//! For every shared detection, the detector asks: *which other vehicles
//! should have seen this object, and did they?* A claim corroborated by
//! too few of its potential witnesses is flagged, and the claimant's
//! trust score decays. The paper's caveat is reproduced faithfully:
//! "such redundancy may not always be available" — an evasive ghost
//! placed outside everyone else's sensor range has zero potential
//! witnesses and sails through.

use std::collections::HashMap;

use crate::perception::{verify_message, V2xMessage};
use crate::world::{SensorModel, VehicleId, World};

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MisbehaviorConfig {
    /// Clustering radius for corroboration (m).
    pub corroborate_radius_m: f64,
    /// Minimum fraction of potential witnesses that must corroborate.
    pub min_witness_fraction: f64,
    /// Trust decay per flagged claim.
    pub trust_penalty: f64,
    /// Trust recovery per clean round.
    pub trust_recovery: f64,
    /// Trust threshold below which a vehicle is excluded.
    pub exclusion_threshold: f64,
}

impl Default for MisbehaviorConfig {
    fn default() -> Self {
        Self {
            corroborate_radius_m: 3.0,
            min_witness_fraction: 0.5,
            trust_penalty: 0.25,
            trust_recovery: 0.05,
            exclusion_threshold: 0.5,
        }
    }
}

/// One flagged claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Flag {
    /// The claiming vehicle.
    pub claimant: VehicleId,
    /// Potential witnesses for the claimed position.
    pub potential_witnesses: usize,
    /// How many corroborated.
    pub corroborating: usize,
}

/// Stateful misbehaviour detector shared by the fleet (or run by each
/// receiver identically).
#[derive(Debug, Clone)]
pub struct MisbehaviorDetector {
    cfg: MisbehaviorConfig,
    trust: HashMap<VehicleId, f64>,
}

impl MisbehaviorDetector {
    /// Creates a detector.
    pub fn new(cfg: MisbehaviorConfig) -> Self {
        Self {
            cfg,
            trust: HashMap::new(),
        }
    }

    /// Current trust of a vehicle (1.0 if unseen).
    pub fn trust(&self, v: VehicleId) -> f64 {
        self.trust.get(&v).copied().unwrap_or(1.0)
    }

    /// Whether a vehicle is currently excluded.
    pub fn is_excluded(&self, v: VehicleId) -> bool {
        self.trust(v) < self.cfg.exclusion_threshold
    }

    /// Processes one round of messages. Returns the flags raised.
    ///
    /// Messages failing authentication are dropped outright (external
    /// attacker); authenticated claims are cross-checked against the
    /// other senders' detections and the world's visibility geometry.
    pub fn process_round(
        &mut self,
        world: &World,
        sensor: &SensorModel,
        key: &[u8],
        messages: &[V2xMessage],
    ) -> Vec<Flag> {
        let authentic: Vec<&V2xMessage> =
            messages.iter().filter(|m| verify_message(key, m)).collect();
        let mut flags = Vec::new();
        let mut flagged_this_round: HashMap<VehicleId, bool> = HashMap::new();

        for msg in &authentic {
            if self.is_excluded(msg.sender) {
                continue;
            }
            for det in &msg.detections {
                // Which other vehicles could have seen this position?
                let witnesses: Vec<VehicleId> = authentic
                    .iter()
                    .filter(|m| m.sender != msg.sender && !self.is_excluded(m.sender))
                    .map(|m| m.sender)
                    .filter(|v| world.in_range(*v, det.position, sensor))
                    .collect();
                if witnesses.is_empty() {
                    // No redundancy available — the paper's hard case.
                    continue;
                }
                let corroborating = authentic
                    .iter()
                    .filter(|m| witnesses.contains(&m.sender))
                    .filter(|m| {
                        m.detections.iter().any(|d| {
                            d.position.dist(&det.position) <= self.cfg.corroborate_radius_m
                        })
                    })
                    .count();
                let fraction = corroborating as f64 / witnesses.len() as f64;
                if fraction < self.cfg.min_witness_fraction {
                    flags.push(Flag {
                        claimant: msg.sender,
                        potential_witnesses: witnesses.len(),
                        corroborating,
                    });
                    flagged_this_round.insert(msg.sender, true);
                }
            }
            flagged_this_round.entry(msg.sender).or_insert(false);
        }

        // Trust bookkeeping.
        for (v, was_flagged) in flagged_this_round {
            let t = self.trust.entry(v).or_insert(1.0);
            if was_flagged {
                *t = (*t - self.cfg.trust_penalty).max(0.0);
            } else {
                *t = (*t + self.cfg.trust_recovery).min(1.0);
            }
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{FabricationStrategy, InternalFabricator};
    use crate::perception::perception_round;
    use crate::world::Point;
    use autosec_sim::SimRng;

    const KEY: &[u8] = b"v2x group key";

    fn dense_world() -> World {
        // 4 vehicles around the origin, objects between them: every
        // position near the centre has several potential witnesses.
        World::new(
            vec![
                Point { x: 0.0, y: 0.0 },
                Point { x: 30.0, y: 0.0 },
                Point { x: 0.0, y: 30.0 },
                Point { x: 30.0, y: 30.0 },
            ],
            vec![Point { x: 15.0, y: 15.0 }, Point { x: 10.0, y: 20.0 }],
        )
    }

    fn clean_sensor() -> SensorModel {
        SensorModel {
            miss_rate: 0.0,
            noise_m: 0.3,
            range_m: 60.0,
        }
    }

    #[test]
    fn honest_rounds_raise_no_flags() {
        let world = dense_world();
        let sensor = clean_sensor();
        let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let mut rng = SimRng::seed(1);
        for seq in 0..10 {
            let msgs = perception_round(&world, &sensor, KEY, seq, &mut rng);
            let flags = det.process_round(&world, &sensor, KEY, &msgs);
            assert!(flags.is_empty(), "round {seq}: {flags:?}");
        }
        for v in world.vehicles() {
            assert!(det.trust(v) >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn ghost_in_covered_area_is_flagged_and_attacker_excluded() {
        let world = dense_world();
        let sensor = clean_sensor();
        let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let mut rng = SimRng::seed(2);
        let attacker = InternalFabricator {
            vehicle: crate::world::VehicleId(0),
            strategy: FabricationStrategy::GhostObject {
                at: Point { x: 22.0, y: 8.0 },
            },
        };
        let mut excluded_at = None;
        for seq in 0..6 {
            let mut msgs = perception_round(&world, &sensor, KEY, seq, &mut rng);
            let honest = msgs[0].detections.clone();
            msgs[0] = attacker.emit(&world, honest, KEY, seq, &mut rng);
            let flags = det.process_round(&world, &sensor, KEY, &msgs);
            assert!(
                flags.iter().any(|f| f.claimant == attacker.vehicle),
                "round {seq} should flag the ghost"
            );
            if det.is_excluded(attacker.vehicle) {
                excluded_at = Some(seq);
                break;
            }
        }
        assert!(excluded_at.is_some(), "attacker should lose trust");
        // Honest vehicles keep their trust.
        for v in [1, 2, 3] {
            assert!(!det.is_excluded(crate::world::VehicleId(v)));
        }
    }

    #[test]
    fn evasive_ghost_without_witnesses_is_missed() {
        // The paper: "such redundancy may not always be available,
        // making detection and mitigation even more challenging."
        let world = dense_world();
        let sensor = clean_sensor();
        let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let mut rng = SimRng::seed(3);
        let attacker = InternalFabricator {
            vehicle: crate::world::VehicleId(0),
            strategy: FabricationStrategy::EvasiveGhost { standoff_m: 100.0 },
        };
        let mut msgs = perception_round(&world, &sensor, KEY, 0, &mut rng);
        let honest = msgs[0].detections.clone();
        msgs[0] = attacker.emit(&world, honest, KEY, 0, &mut rng);
        let flags = det.process_round(&world, &sensor, KEY, &msgs);
        assert!(
            flags.iter().all(|f| f.claimant != attacker.vehicle),
            "no witnesses -> no flag (the known limitation)"
        );
    }

    #[test]
    fn external_messages_are_dropped_before_analysis() {
        let world = dense_world();
        let sensor = clean_sensor();
        let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let forged = crate::attacks::ExternalInjector {
            spoofed_sender: crate::world::VehicleId(1),
        }
        .forge(0, Point { x: 15.0, y: 15.0 });
        let flags = det.process_round(&world, &sensor, KEY, &[forged]);
        assert!(flags.is_empty());
        // The spoofed identity's trust is untouched.
        assert_eq!(det.trust(crate::world::VehicleId(1)), 1.0);
    }

    #[test]
    fn trust_recovers_after_clean_behaviour() {
        let world = dense_world();
        let sensor = clean_sensor();
        let cfg = MisbehaviorConfig {
            trust_penalty: 0.3,
            trust_recovery: 0.1,
            ..MisbehaviorConfig::default()
        };
        let mut det = MisbehaviorDetector::new(cfg);
        let mut rng = SimRng::seed(4);
        let v0 = crate::world::VehicleId(0);
        // One bad round.
        let attacker = InternalFabricator {
            vehicle: v0,
            strategy: FabricationStrategy::GhostObject {
                at: Point { x: 22.0, y: 8.0 },
            },
        };
        let mut msgs = perception_round(&world, &sensor, KEY, 0, &mut rng);
        msgs[0] = attacker.emit(&world, msgs[0].detections.clone(), KEY, 0, &mut rng);
        det.process_round(&world, &sensor, KEY, &msgs);
        let after_attack = det.trust(v0);
        assert!(after_attack < 1.0);
        // Clean rounds recover.
        for seq in 1..4 {
            let msgs = perception_round(&world, &sensor, KEY, seq, &mut rng);
            det.process_round(&world, &sensor, KEY, &msgs);
        }
        assert!(det.trust(v0) > after_attack);
    }
}
