//! Cross-layer attack campaign runner.
//!
//! The campaign iterates [`crate::scenario::scenario_registry`] — eight
//! pluggable [`ScenarioStep`](crate::scenario::ScenarioStep)s spanning
//! every layer of Fig. 1 — against a vehicle whose defenses are toggled
//! per layer. Each step runs the *actual* subsystem models from the
//! workbench crates and reports whether the attack succeeded, was
//! prevented, and/or was detected. Detections become
//! [`autosec_ids::correlate::LayerAlert`]s feeding the §VIII synergy
//! analysis (experiment E13).

use autosec_ids::correlate::LayerAlert;
use autosec_sim::{FaultEffect, SimRng, SimTime};

use crate::layers::ArchLayer;
use crate::scenario::{scenario_registry, PostureCtx};

/// Which layers run their defenses — one toggle per [`ArchLayer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefensePosture {
    /// §II defenses: secure ranging, enlargement detection.
    pub physical: bool,
    /// §III defenses: SECOC + CAN IDS.
    pub network: bool,
    /// §IV defenses: zero-trust reconfiguration, signed updates.
    pub platform: bool,
    /// §V defenses: hardened backend.
    pub data: bool,
    /// §VI defenses: decoupling, attack-surface minimization.
    pub sos: bool,
    /// §VII defenses: misbehaviour detection.
    pub collaboration: bool,
}

impl DefensePosture {
    /// Everything off (the legacy vehicle).
    pub fn none() -> Self {
        Self {
            physical: false,
            network: false,
            platform: false,
            data: false,
            sos: false,
            collaboration: false,
        }
    }

    /// Everything on.
    pub fn full() -> Self {
        Self {
            physical: true,
            network: true,
            platform: true,
            data: true,
            sos: true,
            collaboration: true,
        }
    }

    /// Only one layer defended (the §VIII "no synergy" ablation).
    pub fn only(layer: ArchLayer) -> Self {
        Self::none().with(layer)
    }

    /// The first `n` layers of [`ArchLayer::ALL`] defended, bottom-up —
    /// the defense-in-depth sweep axis (`depth(0)` = [`Self::none`],
    /// `depth(6)` = [`Self::full`]; deeper than 6 saturates).
    pub fn depth(n: usize) -> Self {
        let mut p = Self::none();
        for &layer in ArchLayer::ALL.iter().take(n) {
            p.set(layer, true);
        }
        p
    }

    /// Whether `layer`'s defenses run under this posture.
    pub fn enabled(&self, layer: ArchLayer) -> bool {
        match layer {
            ArchLayer::Physical => self.physical,
            ArchLayer::Network => self.network,
            ArchLayer::SoftwarePlatform => self.platform,
            ArchLayer::Data => self.data,
            ArchLayer::SystemOfSystems => self.sos,
            ArchLayer::Collaboration => self.collaboration,
        }
    }

    /// Toggles `layer`'s defenses.
    pub fn set(&mut self, layer: ArchLayer, on: bool) {
        match layer {
            ArchLayer::Physical => self.physical = on,
            ArchLayer::Network => self.network = on,
            ArchLayer::SoftwarePlatform => self.platform = on,
            ArchLayer::Data => self.data = on,
            ArchLayer::SystemOfSystems => self.sos = on,
            ArchLayer::Collaboration => self.collaboration = on,
        }
    }

    /// Builder form of [`DefensePosture::set`]: this posture with
    /// `layer` defended.
    pub fn with(mut self, layer: ArchLayer) -> Self {
        self.set(layer, true);
        self
    }

    /// Number of defended layers.
    pub fn enabled_count(&self) -> usize {
        ArchLayer::ALL.iter().filter(|&&l| self.enabled(l)).count()
    }

    /// The defended layers, bottom-up.
    pub fn enabled_layers(&self) -> Vec<ArchLayer> {
        ArchLayer::ALL
            .into_iter()
            .filter(|&l| self.enabled(l))
            .collect()
    }
}

/// Outcome of one campaign step.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStep {
    /// Attack name (matches the [`crate::layers::attack_catalog`]).
    pub attack: &'static str,
    /// Targeted layer.
    pub layer: ArchLayer,
    /// Did the attacker reach their goal?
    pub succeeded: bool,
    /// Was the attack prevented outright?
    pub prevented: bool,
    /// Was the attack detected (alert raised)?
    pub detected: bool,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-step outcomes, in execution order.
    pub steps: Vec<CampaignStep>,
    /// Alerts raised, tagged for correlation.
    pub alerts: Vec<LayerAlert>,
}

impl CampaignReport {
    /// Attacks that reached their goal.
    pub fn succeeded_attacks(&self) -> usize {
        self.steps.iter().filter(|s| s.succeeded).count()
    }

    /// Attacks detected.
    pub fn detected_attacks(&self) -> usize {
        self.steps.iter().filter(|s| s.detected).count()
    }

    /// Attacks prevented.
    pub fn prevented_attacks(&self) -> usize {
        self.steps.iter().filter(|s| s.prevented).count()
    }

    /// Total steps.
    pub fn total_attacks(&self) -> usize {
        self.steps.len()
    }
}

/// Runs the registered campaign steps under `posture` with a
/// deterministic `seed`. Steps are spaced 100 ms apart on the campaign
/// clock; step `i` executes on the substream
/// `SimRng::seed(seed).fork(step.rng_label())`, so steps never perturb
/// each other's randomness.
pub fn run_campaign(posture: &DefensePosture, seed: u64) -> CampaignReport {
    run_campaign_faulted(posture, seed, |_, _| Vec::new())
}

/// [`run_campaign`] with a fault plan riding along: `faults_for_step`
/// returns the effects active while step `idx` (attacking `layer`)
/// executes. Returning an empty vector for every step reproduces
/// [`run_campaign`] bit-identically — the fault-free no-op guarantee.
pub fn run_campaign_faulted(
    posture: &DefensePosture,
    seed: u64,
    faults_for_step: impl Fn(usize, ArchLayer) -> Vec<FaultEffect>,
) -> CampaignReport {
    let root = SimRng::seed(seed);
    let mut steps = Vec::new();
    let mut alerts = Vec::new();

    for (idx, step) in scenario_registry().iter().enumerate() {
        let faults = faults_for_step(idx, step.layer());
        let ctx = PostureCtx {
            posture,
            faults: &faults,
        };
        let mut rng = root.fork(step.rng_label());
        let out = step.execute(&ctx, &mut rng);
        if out.detected {
            alerts.push(LayerAlert {
                layer: step.layer(),
                at: SimTime::from_ms(idx as u64 * 100),
                attack_id: Some(idx),
                detail: out.detail.to_owned(),
            });
        }
        steps.push(CampaignStep {
            attack: step.name(),
            layer: step.layer(),
            succeeded: out.succeeded,
            prevented: out.prevented,
            detected: out.detected,
        });
    }

    CampaignReport { steps, alerts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefended_vehicle_loses_everywhere() {
        let r = run_campaign(&DefensePosture::none(), 1);
        assert_eq!(r.total_attacks(), 9);
        assert!(
            r.succeeded_attacks() >= 7,
            "{} of {} succeeded",
            r.succeeded_attacks(),
            r.total_attacks()
        );
        assert_eq!(r.detected_attacks(), 0);
    }

    #[test]
    fn fully_defended_vehicle_stops_or_sees_everything() {
        let r = run_campaign(&DefensePosture::full(), 1);
        assert!(
            r.succeeded_attacks() <= 2,
            "{} attacks still succeeded",
            r.succeeded_attacks()
        );
        assert!(r.detected_attacks() >= 6, "{}", r.detected_attacks());
    }

    #[test]
    fn single_layer_defense_is_insufficient() {
        // The paper's synergy argument, quantified: any single defended
        // layer leaves most of the campaign unseen.
        let full = run_campaign(&DefensePosture::full(), 2);
        for layer in ArchLayer::ALL {
            let partial = run_campaign(&DefensePosture::only(layer), 2);
            assert!(
                partial.detected_attacks() < full.detected_attacks(),
                "{layer} alone should not match the full stack"
            );
        }
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let a = run_campaign(&DefensePosture::full(), 7);
        let b = run_campaign(&DefensePosture::full(), 7);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn empty_fault_plan_is_a_noop() {
        for seed in [1, 7, 42] {
            let plain = run_campaign(&DefensePosture::full(), seed);
            let faulted = run_campaign_faulted(&DefensePosture::full(), seed, |_, _| Vec::new());
            assert_eq!(plain.steps, faulted.steps, "seed {seed}");
            assert_eq!(plain.alerts.len(), faulted.alerts.len());
        }
    }

    #[test]
    fn fault_load_changes_outcomes() {
        // Full sensor dropout on physical steps suppresses the PKES
        // relay outcome (neither success nor detection).
        let plain = run_campaign(&DefensePosture::none(), 1);
        let faulted = run_campaign_faulted(&DefensePosture::none(), 1, |_, layer| {
            if layer == ArchLayer::Physical {
                vec![FaultEffect::SensorDropout { p: 1.0 }]
            } else {
                Vec::new()
            }
        });
        assert!(plain.steps[0].succeeded, "relay wins undefended");
        assert!(!faulted.steps[0].succeeded, "dropout swallows the exchange");
        // Non-physical steps are untouched.
        assert_eq!(plain.steps[2..], faulted.steps[2..]);
    }

    #[test]
    fn alerts_reference_their_steps() {
        let r = run_campaign(&DefensePosture::full(), 3);
        for alert in &r.alerts {
            let idx = alert.attack_id.expect("campaign alerts carry ids");
            assert!(idx < r.steps.len());
            assert!(r.steps[idx].detected);
            assert_eq!(alert.layer, r.steps[idx].layer);
        }
    }

    #[test]
    fn posture_helpers() {
        assert_eq!(DefensePosture::none().enabled_count(), 0);
        assert_eq!(DefensePosture::full().enabled_count(), 6);
        assert_eq!(DefensePosture::only(ArchLayer::Network).enabled_count(), 1);
        for layer in ArchLayer::ALL {
            let p = DefensePosture::only(layer);
            assert!(p.enabled(layer));
            assert_eq!(p.enabled_layers(), vec![layer]);
        }
        let mut p = DefensePosture::full();
        p.set(ArchLayer::Data, false);
        assert_eq!(p.enabled_count(), 5);
        assert!(!p.enabled(ArchLayer::Data));
    }

    #[test]
    fn depth_walks_the_stack_bottom_up() {
        assert_eq!(DefensePosture::depth(0), DefensePosture::none());
        assert_eq!(DefensePosture::depth(6), DefensePosture::full());
        assert_eq!(DefensePosture::depth(99), DefensePosture::full());
        for n in 0..=6 {
            let p = DefensePosture::depth(n);
            assert_eq!(p.enabled_count(), n);
            assert_eq!(p.enabled_layers(), ArchLayer::ALL[..n].to_vec());
        }
        // Each depth strictly extends the previous one.
        for n in 1..=6 {
            let prev = DefensePosture::depth(n - 1);
            let cur = DefensePosture::depth(n);
            for layer in ArchLayer::ALL {
                if prev.enabled(layer) {
                    assert!(cur.enabled(layer));
                }
            }
        }
    }
}
