//! Cross-layer attack campaign runner.
//!
//! Eight attack steps spanning every layer of Fig. 1 execute against a
//! vehicle whose defenses are toggled per layer. Each step runs the
//! *actual* subsystem models from the workbench crates — nothing here is
//! a probability table — and reports whether the attack succeeded, was
//! prevented, and/or was detected. Detections become
//! [`autosec_ids::correlate::LayerAlert`]s feeding the §VIII synergy
//! analysis (experiment E13).

use autosec_collab::attacks::{FabricationStrategy, InternalFabricator};
use autosec_collab::misbehavior::{MisbehaviorConfig, MisbehaviorDetector};
use autosec_collab::perception::perception_round;
use autosec_collab::world::{Point, SensorModel, VehicleId, World};
use autosec_data::killchain::Attacker as KillChainAttacker;
use autosec_data::service::{DefenseConfig, TelemetryBackend};
use autosec_ids::correlate::{Layer, LayerAlert};
use autosec_ids::detectors::{FingerprintDetector, SpecificationDetector};
use autosec_ivn::attacks::{FloodAttack, MasqueradeAttack};
use autosec_ivn::bus::CanBus;
use autosec_ivn::can::{CanFrame, CanId};
use autosec_phy::attacks::{OvershadowAttack, RelayAttack};
use autosec_phy::collision::{CollisionAvoidance, CollisionScenario, VehicleAction};
use autosec_phy::pkes::{Pkes, PkesState, ProximityBackend};
use autosec_secproto::secoc::{SecOcAuthenticator, SecOcConfig, SecOcPdu};
use autosec_sim::{SimDuration, SimRng, SimTime};

use crate::layers::ArchLayer;

/// Which layers run their defenses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefensePosture {
    /// §II defenses: secure ranging, enlargement detection.
    pub physical: bool,
    /// §III defenses: SECOC + CAN IDS.
    pub network: bool,
    /// §IV defenses: zero-trust reconfiguration, signed updates.
    pub platform: bool,
    /// §V defenses: hardened backend.
    pub data: bool,
    /// §VII defenses: misbehaviour detection.
    pub collaboration: bool,
}

impl DefensePosture {
    /// Everything off (the legacy vehicle).
    pub fn none() -> Self {
        Self {
            physical: false,
            network: false,
            platform: false,
            data: false,
            collaboration: false,
        }
    }

    /// Everything on.
    pub fn full() -> Self {
        Self {
            physical: true,
            network: true,
            platform: true,
            data: true,
            collaboration: true,
        }
    }

    /// Only one layer defended (the §VIII "no synergy" ablation).
    pub fn only(layer: ArchLayer) -> Self {
        let mut p = Self::none();
        match layer {
            ArchLayer::Physical => p.physical = true,
            ArchLayer::Network => p.network = true,
            ArchLayer::SoftwarePlatform => p.platform = true,
            ArchLayer::Data | ArchLayer::SystemOfSystems => p.data = true,
            ArchLayer::Collaboration => p.collaboration = true,
        }
        p
    }

    /// Number of defended layers.
    pub fn enabled_count(&self) -> usize {
        usize::from(self.physical)
            + usize::from(self.network)
            + usize::from(self.platform)
            + usize::from(self.data)
            + usize::from(self.collaboration)
    }
}

/// Outcome of one campaign step.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStep {
    /// Attack name (matches the [`crate::layers::attack_catalog`]).
    pub attack: &'static str,
    /// Targeted layer.
    pub layer: ArchLayer,
    /// Did the attacker reach their goal?
    pub succeeded: bool,
    /// Was the attack prevented outright?
    pub prevented: bool,
    /// Was the attack detected (alert raised)?
    pub detected: bool,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-step outcomes, in execution order.
    pub steps: Vec<CampaignStep>,
    /// Alerts raised, tagged for correlation.
    pub alerts: Vec<LayerAlert>,
}

impl CampaignReport {
    /// Attacks that reached their goal.
    pub fn succeeded_attacks(&self) -> usize {
        self.steps.iter().filter(|s| s.succeeded).count()
    }

    /// Attacks detected.
    pub fn detected_attacks(&self) -> usize {
        self.steps.iter().filter(|s| s.detected).count()
    }

    /// Attacks prevented.
    pub fn prevented_attacks(&self) -> usize {
        self.steps.iter().filter(|s| s.prevented).count()
    }

    /// Total steps.
    pub fn total_attacks(&self) -> usize {
        self.steps.len()
    }
}

fn arch_to_ids_layer(l: ArchLayer) -> Layer {
    match l {
        ArchLayer::Physical => Layer::Physical,
        ArchLayer::Network => Layer::Network,
        ArchLayer::SoftwarePlatform => Layer::Platform,
        ArchLayer::Data => Layer::Data,
        ArchLayer::SystemOfSystems | ArchLayer::Collaboration => Layer::SystemOfSystems,
    }
}

/// Runs the eight-step campaign under `posture` with a deterministic
/// `seed`. Steps are spaced 100 ms apart on the campaign clock.
pub fn run_campaign(posture: &DefensePosture, seed: u64) -> CampaignReport {
    let root = SimRng::seed(seed);
    let mut steps = Vec::new();
    let mut alerts = Vec::new();
    let mut step_idx = 0usize;

    let push = |steps: &mut Vec<CampaignStep>,
                alerts: &mut Vec<LayerAlert>,
                idx: &mut usize,
                attack: &'static str,
                layer: ArchLayer,
                succeeded: bool,
                prevented: bool,
                detected: bool,
                detail: &str| {
        let at = SimTime::from_ms(*idx as u64 * 100);
        if detected {
            alerts.push(LayerAlert {
                layer: arch_to_ids_layer(layer),
                at,
                attack_id: Some(*idx),
                detail: detail.to_owned(),
            });
        }
        steps.push(CampaignStep {
            attack,
            layer,
            succeeded,
            prevented,
            detected,
        });
        *idx += 1;
    };

    // ---- Step 0 (Physical): PKES relay. ----
    {
        let mut rng = root.fork("pkes");
        let backend = if posture.physical {
            ProximityBackend::UwbToF
        } else {
            ProximityBackend::LegacyRssi
        };
        let pkes = Pkes::new(backend, 2.0);
        let out = pkes.try_unlock(43.0, Some(&RelayAttack::typical()), &mut rng);
        let succeeded = out.state == PkesState::Unlocked;
        push(
            &mut steps,
            &mut alerts,
            &mut step_idx,
            "pkes-relay",
            ArchLayer::Physical,
            succeeded,
            !succeeded,
            !succeeded,
            "relay produced impossible time-of-flight",
        );
    }

    // ---- Step 1 (Physical): distance enlargement on collision avoidance. ----
    {
        let mut rng = root.fork("enlargement");
        let ca = CollisionAvoidance::new(CollisionScenario {
            detection_enabled: posture.physical,
            ..CollisionScenario::default()
        });
        let atk = OvershadowAttack {
            delay_m: 20.0,
            power: 3.0,
            residual: 0.25,
        };
        let out = ca.decide(Some(&atk), &mut rng);
        let detected = out.action == VehicleAction::DefensiveBrake;
        push(
            &mut steps,
            &mut alerts,
            &mut step_idx,
            "distance-enlargement",
            ArchLayer::Physical,
            out.unsafe_decision,
            detected,
            detected,
            "pre-arrival energy above noise floor",
        );
    }

    // ---- Step 2 (Network): CAN masquerade. ----
    {
        // Clean training traffic.
        let build_traffic = |attack: bool| {
            let mut bus = CanBus::new(500_000);
            let legit = bus.add_node(2.0);
            let attacker = bus.add_node(7.5);
            let mut t = SimTime::ZERO;
            while t <= SimTime::from_ms(300) {
                bus.enqueue(
                    legit,
                    t,
                    CanFrame::new(CanId::standard(0x0A0).expect("valid"), &[1; 8])
                        .expect("valid frame"),
                )
                .expect("node exists");
                t += SimDuration::from_ms(10);
            }
            if attack {
                MasqueradeAttack {
                    attacker,
                    spoofed_id: 0x0A0,
                    period: SimDuration::from_ms(9),
                    payload: [0xFF; 8],
                }
                .inject(&mut bus, SimTime::from_ms(2), SimTime::from_ms(300))
                .expect("attacker can enqueue");
            }
            bus.run(SimTime::from_secs(2))
        };
        let clean = build_traffic(false);
        let attacked = build_traffic(true);
        let forged_delivered = attacked.len() > clean.len();
        let detected = if posture.network {
            let det = FingerprintDetector::train(&clean);
            !det.analyze(&attacked).is_empty()
        } else {
            false
        };
        push(
            &mut steps,
            &mut alerts,
            &mut step_idx,
            "can-masquerade",
            ArchLayer::Network,
            forged_delivered && !detected,
            false,
            detected,
            "spoofed id with foreign analog fingerprint",
        );
    }

    // ---- Step 3 (Network): flood DoS. ----
    {
        let build = |attack: bool| {
            let mut bus = CanBus::new(500_000);
            let legit = bus.add_node(2.0);
            let attacker = bus.add_node(5.0);
            bus.enqueue(
                legit,
                SimTime::ZERO,
                CanFrame::new(CanId::standard(0x100).expect("valid"), &[1; 8])
                    .expect("valid frame"),
            )
            .expect("node exists");
            if attack {
                FloodAttack {
                    attacker,
                    burst: 200,
                }
                .inject(&mut bus, SimTime::ZERO)
                .expect("attacker can enqueue");
            }
            bus.run(SimTime::from_secs(2))
        };
        let clean = build(false);
        let attacked = build(true);
        let victim_latency = attacked
            .iter()
            .find(|e| e.frame.id().raw() == 0x100)
            .map(|e| e.latency().as_ms_f64())
            .unwrap_or(f64::INFINITY);
        let succeeded = victim_latency > 10.0;
        let detected = if posture.network {
            let det = SpecificationDetector::train(&clean);
            !det.analyze(&attacked).is_empty()
        } else {
            false
        };
        push(
            &mut steps,
            &mut alerts,
            &mut step_idx,
            "can-flood-dos",
            ArchLayer::Network,
            succeeded,
            false,
            detected,
            "unknown high-priority id flooding the bus",
        );
    }

    // ---- Step 4 (Network): SECOC PDU forgery. ----
    {
        let mut rng = root.fork("secoc-forgery");
        if posture.network {
            let cfg = SecOcConfig::default();
            let mut rx = SecOcAuthenticator::new_receiver(cfg, [1u8; 16], 0x0B0);
            // Attacker forges a PDU with a random MAC.
            use rand::RngCore;
            let mut mac = vec![0u8; 3];
            rng.fill_bytes(&mut mac);
            let forged = SecOcPdu {
                data_id: 0x0B0,
                payload: b"brake=off".to_vec(),
                truncated_freshness: 1,
                truncated_mac: mac,
            };
            let accepted = rx.verify(&forged).is_ok();
            push(
                &mut steps,
                &mut alerts,
                &mut step_idx,
                "pdu-forgery",
                ArchLayer::Network,
                accepted,
                !accepted,
                !accepted,
                "SECOC MAC verification failed on forged PDU",
            );
        } else {
            // Plain CAN: any frame with the right id is accepted.
            push(
                &mut steps,
                &mut alerts,
                &mut step_idx,
                "pdu-forgery",
                ArchLayer::Network,
                true,
                false,
                false,
                "",
            );
        }
    }

    // ---- Step 5 (Platform): rogue software placement. ----
    {
        let mut rng = root.fork("sdv");
        if posture.platform {
            use autosec_sdv::component::{Asil, HardwareNode, SoftwareComponent};
            use autosec_sdv::platform::SdvPlatform;
            use autosec_sdv::SdvError;
            let (mut platform, mut oem) = SdvPlatform::new(&mut rng);
            platform
                .register_node(
                    &mut rng,
                    HardwareNode {
                        id: "hpc-0".into(),
                        provides: vec!["can-if".into()],
                        compute_capacity: 100,
                        max_asil: Asil::D,
                    },
                    &mut oem,
                )
                .expect("node registration");
            let mut rogue =
                autosec_ssi::wallet::Wallet::create(&mut rng, "rogue-vendor", platform.registry());
            platform
                .register_component(
                    &mut rng,
                    SoftwareComponent {
                        id: "implant".into(),
                        vendor: "rogue".into(),
                        version: (1, 0, 0),
                        requires: vec!["can-if".into()],
                        compute_cost: 1,
                        asil: Asil::Qm,
                    },
                    &mut rogue,
                )
                .expect("registration itself is open");
            let result = platform.place("implant", "hpc-0");
            let prevented = matches!(result, Err(SdvError::AuthFailed(_)));
            push(
                &mut steps,
                &mut alerts,
                &mut step_idx,
                "rogue-software-placement",
                ArchLayer::SoftwarePlatform,
                !prevented,
                prevented,
                prevented,
                "component credential has no trust path to an anchor",
            );
        } else {
            push(
                &mut steps,
                &mut alerts,
                &mut step_idx,
                "rogue-software-placement",
                ArchLayer::SoftwarePlatform,
                true,
                false,
                false,
                "",
            );
        }
    }

    // ---- Step 6 (Data): the CARIAD kill chain. ----
    {
        let mut rng = root.fork("killchain");
        let defenses = if posture.data {
            DefenseConfig::hardened()
        } else {
            DefenseConfig::none()
        };
        let backend = TelemetryBackend::build(500, defenses, &mut rng);
        let report = KillChainAttacker::new().execute(&backend, &mut rng);
        push(
            &mut steps,
            &mut alerts,
            &mut step_idx,
            "telemetry-kill-chain",
            ArchLayer::Data,
            report.records_exfiltrated > 0,
            report.blocked_at.is_some(),
            report.detected_at.is_some(),
            "enumeration burst / bulk export anomaly",
        );
    }

    // ---- Step 7 (Collaboration): internal ghost object. ----
    {
        let mut rng = root.fork("collab");
        let world = World::new(
            vec![
                Point { x: 0.0, y: 0.0 },
                Point { x: 30.0, y: 0.0 },
                Point { x: 0.0, y: 30.0 },
                Point { x: 30.0, y: 30.0 },
            ],
            vec![Point { x: 15.0, y: 15.0 }],
        );
        let sensor = SensorModel {
            miss_rate: 0.0,
            noise_m: 0.3,
            range_m: 60.0,
        };
        let key = b"campaign v2x key";
        let attacker = InternalFabricator {
            vehicle: VehicleId(0),
            strategy: FabricationStrategy::GhostObject {
                at: Point { x: 22.0, y: 8.0 },
            },
        };
        let mut msgs = perception_round(&world, &sensor, key, 0, &mut rng);
        let honest = msgs[0].detections.clone();
        msgs[0] = attacker.emit(&world, honest, key, 0, &mut rng);
        let detected = if posture.collaboration {
            let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
            let flags = det.process_round(&world, &sensor, key, &msgs);
            flags.iter().any(|f| f.claimant == VehicleId(0))
        } else {
            false
        };
        push(
            &mut steps,
            &mut alerts,
            &mut step_idx,
            "v2x-ghost-object",
            ArchLayer::Collaboration,
            !detected,
            false,
            detected,
            "claim lacks corroboration from in-range witnesses",
        );
    }

    CampaignReport { steps, alerts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefended_vehicle_loses_everywhere() {
        let r = run_campaign(&DefensePosture::none(), 1);
        assert_eq!(r.total_attacks(), 8);
        assert!(
            r.succeeded_attacks() >= 7,
            "{} of {} succeeded",
            r.succeeded_attacks(),
            r.total_attacks()
        );
        assert_eq!(r.detected_attacks(), 0);
    }

    #[test]
    fn fully_defended_vehicle_stops_or_sees_everything() {
        let r = run_campaign(&DefensePosture::full(), 1);
        assert!(
            r.succeeded_attacks() <= 2,
            "{} attacks still succeeded",
            r.succeeded_attacks()
        );
        assert!(r.detected_attacks() >= 6, "{}", r.detected_attacks());
    }

    #[test]
    fn single_layer_defense_is_insufficient() {
        // The paper's synergy argument, quantified: any single defended
        // layer leaves most of the campaign unseen.
        let full = run_campaign(&DefensePosture::full(), 2);
        for layer in ArchLayer::ALL {
            let partial = run_campaign(&DefensePosture::only(layer), 2);
            assert!(
                partial.detected_attacks() < full.detected_attacks(),
                "{layer} alone should not match the full stack"
            );
        }
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let a = run_campaign(&DefensePosture::full(), 7);
        let b = run_campaign(&DefensePosture::full(), 7);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn alerts_reference_their_steps() {
        let r = run_campaign(&DefensePosture::full(), 3);
        for alert in &r.alerts {
            let idx = alert.attack_id.expect("campaign alerts carry ids");
            assert!(idx < r.steps.len());
            assert!(r.steps[idx].detected);
        }
    }

    #[test]
    fn posture_helpers() {
        assert_eq!(DefensePosture::none().enabled_count(), 0);
        assert_eq!(DefensePosture::full().enabled_count(), 5);
        assert_eq!(DefensePosture::only(ArchLayer::Network).enabled_count(), 1);
    }
}
