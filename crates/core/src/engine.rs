//! Two-tier scenario execution: live steps and calibrated outcome
//! tables behind one [`ScenarioEngine`] interface.
//!
//! Everything below the campaign executes *live* models — a
//! [`ScenarioStep`] replays PKES ranging exchanges, CAN arbitration,
//! SDV reconfiguration races end to end, which costs milliseconds per
//! execution. That fidelity is the right default for experiments that
//! study one attack, but population-scale simulation (the live fleet)
//! cannot pay replay prices on its hot path. The layered-abstraction
//! answer: *measure* each step's outcome distribution against the live
//! model once, then resolve attacks at table-lookup prices.
//!
//! - [`measure_step`] is the shared calibration primitive: it runs one
//!   step `trials` times under a posture through
//!   [`par_trials`](autosec_runner::par_trials) and distills an
//!   [`OutcomeStats`]. The adversary crate's edge calibration and the
//!   outcome tables here both ride on it, so every probability in the
//!   workspace traces back to the same machinery (and is bit-identical
//!   for any job count at a fixed seed).
//! - [`ScenarioEngine`] abstracts "resolve attack step `idx` under this
//!   posture, drawing from this RNG".
//! - [`LiveScenarioEngine`] is tier one: the registry steps executed
//!   end to end (exact, slow).
//! - [`StepOutcomeTable`] is tier two: per step × calibrated-posture
//!   success/alert probabilities; resolving draws two Bernoulli
//!   variates (approximate in distribution, ~10⁵× faster).
//!
//! The table is calibrated over an explicit posture ladder (by default
//! the bottom-up depth sweep, [`StepOutcomeTable::calibrate_depths`]).
//! Lookups for a posture outside the ladder fall back by the step's own
//! layer toggle — exact for the registry steps, each of which consults
//! only its own layer's defense — choosing the deepest calibrated
//! posture that agrees on that toggle.

use autosec_runner::par_trials;
use autosec_sim::{ArchLayer, SimRng};

use crate::campaign::DefensePosture;
use crate::scenario::{scenario_registry, PostureCtx, ScenarioStep, StepOutcome};

/// Measured success/alert rates of one scenario step under one posture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeStats {
    /// Fraction of trials in which the attacker reached their goal.
    pub success: f64,
    /// Fraction of trials in which an alert was raised.
    pub detect: f64,
}

/// Measures one step's outcome distribution under `posture`:
/// `trials` independent executions of the live model, trial `i` on
/// `base.fork_idx(i).fork(step.rng_label())`.
///
/// Deterministic in `(base, trials)`; `jobs` only changes wall-clock
/// time. This is the primitive the adversary's attack-graph edge
/// calibration and the [`StepOutcomeTable`] share.
pub fn measure_step(
    step: &dyn ScenarioStep,
    posture: &DefensePosture,
    base: &SimRng,
    trials: usize,
    jobs: usize,
) -> OutcomeStats {
    let outcomes = par_trials(jobs, trials, base, |_, rng| {
        let ctx = PostureCtx::new(posture);
        let mut stream = rng.fork(step.rng_label());
        let out = step.execute(&ctx, &mut stream);
        (out.succeeded, out.detected)
    });
    let n = trials as f64;
    OutcomeStats {
        success: outcomes.iter().filter(|o| o.0).count() as f64 / n,
        detect: outcomes.iter().filter(|o| o.1).count() as f64 / n,
    }
}

/// One resolver over the campaign's attack steps.
///
/// Implementations agree on the step index space (the registry order of
/// [`scenario_registry`]) and on the contract that `resolve` draws all
/// of its randomness from the `rng` it is handed — so two engines can
/// be swapped under a caller without perturbing any other stream.
pub trait ScenarioEngine: Send + Sync {
    /// Number of attack steps this engine resolves.
    fn step_count(&self) -> usize;

    /// Name of step `idx`.
    fn step_name(&self, idx: usize) -> &'static str;

    /// Layer step `idx` attacks.
    fn step_layer(&self, idx: usize) -> ArchLayer;

    /// Resolves one execution of step `idx` under `ctx`, drawing from
    /// `rng`.
    fn resolve(&self, idx: usize, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome;
}

/// Tier one: the registry steps executed live, end to end.
pub struct LiveScenarioEngine {
    steps: Vec<Box<dyn ScenarioStep>>,
}

impl LiveScenarioEngine {
    /// The engine over [`scenario_registry`].
    pub fn from_registry() -> Self {
        Self {
            steps: scenario_registry(),
        }
    }

    /// The underlying steps.
    pub fn steps(&self) -> &[Box<dyn ScenarioStep>] {
        &self.steps
    }
}

impl Default for LiveScenarioEngine {
    fn default() -> Self {
        Self::from_registry()
    }
}

impl ScenarioEngine for LiveScenarioEngine {
    fn step_count(&self) -> usize {
        self.steps.len()
    }
    fn step_name(&self, idx: usize) -> &'static str {
        self.steps[idx].name()
    }
    fn step_layer(&self, idx: usize) -> ArchLayer {
        self.steps[idx].layer()
    }
    fn resolve(&self, idx: usize, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        self.steps[idx].execute(ctx, rng)
    }
}

/// One step's row of a [`StepOutcomeTable`].
#[derive(Debug, Clone)]
pub struct TableStep {
    /// Step name (registry identity).
    pub name: &'static str,
    /// Layer the step attacks.
    pub layer: ArchLayer,
    /// Measured stats per calibrated posture, in
    /// [`StepOutcomeTable::postures`] order.
    pub by_posture: Vec<OutcomeStats>,
}

/// Tier two: calibrated per step × posture outcome probabilities.
///
/// Built by running every registry step through [`measure_step`] under
/// every posture of a ladder — nothing in the table is a hand-typed
/// constant. Resolving a step draws exactly two Bernoulli variates
/// (success, then alert) from the caller's RNG.
#[derive(Debug, Clone)]
pub struct StepOutcomeTable {
    postures: Vec<DefensePosture>,
    steps: Vec<TableStep>,
    trials: usize,
}

impl StepOutcomeTable {
    /// Calibrates the registry steps under each posture of `postures`:
    /// step `s` × posture `p` measures on the substream
    /// `base.fork("table/{step}/p{p}")`.
    ///
    /// Deterministic in `(base, trials, postures)`; `jobs` only changes
    /// wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if `postures` is empty or `trials` is zero.
    pub fn calibrate(
        postures: &[DefensePosture],
        trials: usize,
        jobs: usize,
        base: &SimRng,
    ) -> Self {
        assert!(!postures.is_empty(), "table needs at least one posture");
        assert!(trials > 0, "table needs at least one trial per cell");
        let steps = scenario_registry()
            .iter()
            .map(|step| TableStep {
                name: step.name(),
                layer: step.layer(),
                by_posture: postures
                    .iter()
                    .enumerate()
                    .map(|(pi, posture)| {
                        measure_step(
                            step.as_ref(),
                            posture,
                            &base.fork(&format!("table/{}/p{pi}", step.name())),
                            trials,
                            jobs,
                        )
                    })
                    .collect(),
            })
            .collect();
        Self {
            postures: postures.to_vec(),
            steps,
            trials,
        }
    }

    /// Calibrates over the bottom-up depth ladder
    /// [`DefensePosture::depth`]`(0..=6)` — one table serving every
    /// posture of a defense-in-depth sweep.
    pub fn calibrate_depths(trials: usize, jobs: usize, base: &SimRng) -> Self {
        let ladder: Vec<DefensePosture> = (0..=ArchLayer::ALL.len())
            .map(DefensePosture::depth)
            .collect();
        Self::calibrate(&ladder, trials, jobs, base)
    }

    /// The calibrated posture ladder, in column order.
    pub fn postures(&self) -> &[DefensePosture] {
        &self.postures
    }

    /// The per-step rows, in registry order.
    pub fn steps(&self) -> &[TableStep] {
        &self.steps
    }

    /// Monte-Carlo trials behind each cell.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The stats governing step `idx` under `posture`.
    ///
    /// An exact ladder match wins; otherwise the lookup falls back by
    /// the step's own layer toggle (see the module docs), preferring
    /// the deepest calibrated posture that agrees on it.
    ///
    /// # Panics
    ///
    /// Panics if no calibrated posture agrees with `posture` on the
    /// step's layer (never happens for a ladder containing both
    /// [`DefensePosture::none`] and [`DefensePosture::full`]).
    pub fn stats_for(&self, idx: usize, posture: &DefensePosture) -> OutcomeStats {
        let row = &self.steps[idx];
        if let Some(pi) = self.postures.iter().position(|p| p == posture) {
            return row.by_posture[pi];
        }
        let want = posture.enabled(row.layer);
        let pi = self
            .postures
            .iter()
            .rposition(|p| p.enabled(row.layer) == want)
            .unwrap_or_else(|| {
                panic!(
                    "no calibrated posture covers {} with layer {} {}",
                    row.name,
                    row.layer,
                    if want { "defended" } else { "undefended" }
                )
            });
        row.by_posture[pi]
    }

    /// Whether [`Self::stats_for`] can resolve every step under
    /// `posture` without panicking — i.e. for each step some calibrated
    /// posture agrees on that step's own layer toggle. A runtime
    /// defender that mutates the posture mid-run checks this before
    /// committing to a hardening action.
    pub fn covers(&self, posture: &DefensePosture) -> bool {
        self.steps.iter().all(|row| {
            let want = posture.enabled(row.layer);
            self.postures.iter().any(|p| p.enabled(row.layer) == want)
        })
    }
}

impl ScenarioEngine for StepOutcomeTable {
    fn step_count(&self) -> usize {
        self.steps.len()
    }
    fn step_name(&self, idx: usize) -> &'static str {
        self.steps[idx].name
    }
    fn step_layer(&self, idx: usize) -> ArchLayer {
        self.steps[idx].layer
    }
    /// Two Bernoulli draws against the calibrated cell: success, then
    /// alert. Active fault effects in `ctx` do not modulate a table
    /// lookup (they do modulate live execution) — the fidelity gap the
    /// mixed-mode drift probes measure.
    fn resolve(&self, idx: usize, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        let stats = self.stats_for(idx, ctx.posture);
        let succeeded = rng.chance(stats.success);
        let detected = rng.chance(stats.detect);
        StepOutcome {
            succeeded,
            prevented: detected && !succeeded,
            detected,
            detail: "",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::OnceLock;

    const TRIALS: usize = 16;

    fn depth_table(jobs: usize) -> StepOutcomeTable {
        // jobs must not change the table (asserted below), so serial
        // calls share one cached calibration.
        static SERIAL: OnceLock<StepOutcomeTable> = OnceLock::new();
        let build = || {
            StepOutcomeTable::calibrate_depths(TRIALS, jobs, &SimRng::seed(11).fork("engine-test"))
        };
        if jobs == 1 {
            SERIAL.get_or_init(build).clone()
        } else {
            build()
        }
    }

    #[test]
    fn live_engine_mirrors_the_registry() {
        let live = LiveScenarioEngine::from_registry();
        let reg = scenario_registry();
        assert_eq!(live.step_count(), reg.len());
        for (i, step) in reg.iter().enumerate() {
            assert_eq!(live.step_name(i), step.name());
            assert_eq!(live.step_layer(i), step.layer());
        }
    }

    #[test]
    fn measure_step_is_jobs_invariant() {
        let step = scenario_registry().remove(0);
        let base = SimRng::seed(3).fork("measure");
        let full = DefensePosture::full();
        let a = measure_step(step.as_ref(), &full, &base, 40, 1);
        let b = measure_step(step.as_ref(), &full, &base, 40, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn table_is_deterministic_across_jobs() {
        let a = depth_table(1);
        let b = depth_table(3);
        assert_eq!(a.postures(), b.postures());
        for (ra, rb) in a.steps().iter().zip(b.steps()) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.by_posture, rb.by_posture, "{}", ra.name);
        }
    }

    #[test]
    fn success_is_monotone_in_posture_depth() {
        // Each step's success may only fall (weakly) as layers turn on
        // bottom-up: the defended side of its own layer never exceeds
        // the undefended side, and other layers leave it untouched.
        let t = depth_table(1);
        for row in t.steps() {
            let undefended = row.by_posture[0].success;
            let defended = row.by_posture.last().unwrap().success;
            assert!(
                defended <= undefended + 1e-12,
                "{}: full-depth success {} > undefended {}",
                row.name,
                defended,
                undefended
            );
        }
    }

    #[test]
    fn lookup_prefers_exact_posture_then_layer_toggle() {
        let t = depth_table(1);
        // Exact: depth 3 is in the ladder.
        let d3 = DefensePosture::depth(3);
        let pi = t.postures().iter().position(|p| *p == d3).unwrap();
        for (i, row) in t.steps().iter().enumerate() {
            assert_eq!(t.stats_for(i, &d3), row.by_posture[pi], "{}", row.name);
        }
        // Off-ladder: a single defended layer resolves by that step's
        // own toggle — defended steps read a defended column, others
        // the undefended extreme consistent with their layer.
        for (i, row) in t.steps().iter().enumerate() {
            let only = DefensePosture::only(row.layer);
            let got = t.stats_for(i, &only);
            let deepest = row.by_posture.last().unwrap();
            assert_eq!(got, *deepest, "{} defended lookup", row.name);
        }
    }

    #[test]
    fn never_calibrated_postures_resolve_by_layer_toggle() {
        // A two-posture {none, full} table queried with all 62 mixed
        // postures it never saw: every lookup must land on the column
        // that agrees with the step's own layer toggle — generated
        // campaigns walk arbitrary postures, so this fallback is their
        // hot path.
        let t = StepOutcomeTable::calibrate(
            &[DefensePosture::none(), DefensePosture::full()],
            4,
            1,
            &SimRng::seed(21).fork("fallback"),
        );
        for bits in 1..63u8 {
            let mut p = DefensePosture::none();
            for (i, layer) in ArchLayer::ALL.iter().enumerate() {
                p.set(*layer, bits & (1 << i) != 0);
            }
            assert!(t.covers(&p), "bits {bits:#b}");
            for (i, row) in t.steps().iter().enumerate() {
                let want = if p.enabled(row.layer) { 1 } else { 0 };
                assert_eq!(
                    t.stats_for(i, &p),
                    row.by_posture[want],
                    "{} under bits {bits:#b}",
                    row.name
                );
            }
        }
    }

    #[test]
    fn fallback_prefers_the_deepest_agreeing_posture() {
        // Ladder {none, depth(2), full}: an off-ladder posture that
        // defends a step's layer must read the *deepest* agreeing
        // column (rposition), not the first one.
        let ladder = [
            DefensePosture::none(),
            DefensePosture::depth(2),
            DefensePosture::full(),
        ];
        let t = StepOutcomeTable::calibrate(&ladder, 4, 1, &SimRng::seed(22).fork("deepest"));
        for (i, row) in t.steps().iter().enumerate() {
            // Defended toggle: full() is always the deepest agreement.
            let only = DefensePosture::only(row.layer);
            assert_eq!(t.stats_for(i, &only), row.by_posture[2], "{}", row.name);
            // Undefended toggle: depth(2) outranks none() whenever it
            // leaves this layer off.
            let mut all_but = DefensePosture::full();
            all_but.set(row.layer, false);
            let expect = if ladder[1].enabled(row.layer) { 0 } else { 1 };
            assert_eq!(
                t.stats_for(i, &all_but),
                row.by_posture[expect],
                "{}",
                row.name
            );
        }
    }

    #[test]
    fn depth_ladder_covers_any_posture() {
        let t = depth_table(1);
        // The ladder spans none..full, so both toggle values exist for
        // every layer — arbitrary postures all resolve.
        for bits in 0..64u8 {
            let mut p = DefensePosture::none();
            for (i, layer) in ArchLayer::ALL.iter().enumerate() {
                p.set(*layer, bits & (1 << i) != 0);
            }
            assert!(t.covers(&p), "bits {bits:#b}");
        }
        // A single-posture calibration covers only layer-compatible
        // postures.
        let single = StepOutcomeTable::calibrate(
            &[DefensePosture::none()],
            1,
            1,
            &SimRng::seed(3).fork("cover"),
        );
        assert!(single.covers(&DefensePosture::none()));
        assert!(!single.covers(&DefensePosture::full()));
    }

    #[test]
    fn table_resolution_matches_the_cell_in_distribution() {
        let t = StepOutcomeTable::calibrate(
            &[DefensePosture::none()],
            60,
            2,
            &SimRng::seed(5).fork("engine-dist"),
        );
        let posture = DefensePosture::none();
        let ctx = PostureCtx::new(&posture);
        let mut rng = SimRng::seed(9).fork("engine-dist-draws");
        let n = 4_000;
        for (i, row) in t.steps().iter().enumerate() {
            let hits = (0..n)
                .filter(|_| t.resolve(i, &ctx, &mut rng).succeeded)
                .count();
            let rate = hits as f64 / n as f64;
            assert!(
                (rate - row.by_posture[0].success).abs() < 0.05,
                "{}: resolved {} vs cell {}",
                row.name,
                rate,
                row.by_posture[0].success
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one posture")]
    fn empty_posture_ladder_is_rejected() {
        let _ = StepOutcomeTable::calibrate(&[], 4, 1, &SimRng::seed(1));
    }
}
