//! The pluggable scenario engine behind the cross-layer campaign.
//!
//! Each attack of the §VIII campaign is a [`ScenarioStep`]: a named,
//! layer-tagged unit that executes the *actual* subsystem models from
//! the workbench crates against a [`PostureCtx`] and reports a
//! [`StepOutcome`]. [`scenario_registry`] collects the steps of the
//! paper's campaign in execution order — one per architectural layer
//! at minimum — `run_campaign` is a thin driver over it, and new steps
//! plug in without touching the driver. Each step also carries a
//! [`Stride`] threat class so the scenario generator
//! (`autosec-scengen`) can report STRIDE×layer coverage.
//!
//! Every step name must appear in [`crate::layers::attack_catalog`] on
//! the step's layer — the registry/catalog consistency test keeps the
//! paper-as-code catalog and the executable campaign in lock-step.

use autosec_collab::attacks::{FabricationStrategy, InternalFabricator};
use autosec_collab::misbehavior::{MisbehaviorConfig, MisbehaviorDetector};
use autosec_collab::perception::perception_round;
use autosec_collab::world::{Point, SensorModel, VehicleId, World};
use autosec_data::killchain::Attacker as KillChainAttacker;
use autosec_data::service::{DefenseConfig, TelemetryBackend};
use autosec_ids::detectors::{FingerprintDetector, SpecificationDetector};
use autosec_ivn::attacks::{FloodAttack, MasqueradeAttack};
use autosec_ivn::bus::CanBus;
use autosec_ivn::can::{CanFrame, CanId};
use autosec_phy::attacks::{OvershadowAttack, RelayAttack};
use autosec_phy::collision::{CollisionAvoidance, CollisionScenario, VehicleAction};
use autosec_phy::pkes::{Pkes, PkesState, ProximityBackend};
use autosec_secproto::secoc::{SecOcAuthenticator, SecOcConfig, SecOcPdu};
use autosec_sim::inject::ChannelFault;
use autosec_sim::{ArchLayer, FaultEffect, SimDuration, SimRng, SimTime, Stride};
use autosec_sos::cascade::{cascade_trial, with_coupling_scale};
use autosec_sos::reference::maas_reference;

use crate::campaign::DefensePosture;

/// Execution context handed to every step: the vehicle's defense
/// posture, queried by layer, plus any fault effects active on the
/// step's layer while it runs (the campaign can carry a fault plan).
#[derive(Debug, Clone, Copy)]
pub struct PostureCtx<'a> {
    /// The per-layer defense toggles.
    pub posture: &'a DefensePosture,
    /// Fault effects active during this step (empty when the campaign
    /// runs fault-free). Steps must not consume extra randomness when
    /// this is empty — the fault-free no-op guarantee.
    pub faults: &'a [FaultEffect],
}

impl<'a> PostureCtx<'a> {
    /// A fault-free context.
    pub fn new(posture: &'a DefensePosture) -> Self {
        Self {
            posture,
            faults: &[],
        }
    }

    /// Whether `layer` runs its defenses under this posture.
    pub fn defended(&self, layer: ArchLayer) -> bool {
        self.posture.enabled(layer)
    }

    /// Strongest active sensor-dropout probability (0.0 when none).
    pub fn sensor_dropout_p(&self) -> f64 {
        self.faults
            .iter()
            .filter_map(|e| match *e {
                FaultEffect::SensorDropout { p } => Some(p),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Frame-level effects folded into a channel interception hook.
    pub fn channel_fault(&self) -> ChannelFault {
        ChannelFault::from_effects(self.faults)
    }

    /// Total fabricated detections injected per perception round.
    pub fn fabricated_detections(&self) -> usize {
        self.faults
            .iter()
            .map(|e| match *e {
                FaultEffect::FabricateDetections { count } => count,
                _ => 0,
            })
            .sum()
    }
}

/// What one step reports back to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Did the attacker reach their goal?
    pub succeeded: bool,
    /// Was the attack prevented outright?
    pub prevented: bool,
    /// Was the attack detected (alert raised)?
    pub detected: bool,
    /// Alert detail when detected (empty otherwise).
    pub detail: &'static str,
}

/// One pluggable campaign step.
///
/// Implementations run real subsystem models — nothing here is a
/// probability table. Steps draw all randomness from the `SimRng`
/// substream the driver forks for them ([`ScenarioStep::rng_label`]),
/// so adding or reordering steps never perturbs another step's stream.
pub trait ScenarioStep: Send + Sync {
    /// Attack name; must match an entry of
    /// [`crate::layers::attack_catalog`].
    fn name(&self) -> &'static str;

    /// The layer this step attacks.
    fn layer(&self) -> ArchLayer;

    /// The STRIDE threat class this step realises. Together with
    /// [`ScenarioStep::layer`] this places the step in one cell of the
    /// STRIDE×layer coverage matrix the generator reports.
    fn stride(&self) -> Stride;

    /// Label of the RNG substream the driver forks for this step.
    ///
    /// Defaults to [`ScenarioStep::name`]; the original eight steps
    /// override it with their historical labels so that campaign
    /// outcomes are bit-identical to the pre-registry monolith.
    fn rng_label(&self) -> &'static str {
        self.name()
    }

    /// Runs the attack under `ctx` with the step's own substream.
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome;
}

/// The steps of the paper's campaign, in execution order: the original
/// eight plus the system-of-systems breach cascade, so every
/// `ArchLayer` variant has at least one executable step.
pub fn scenario_registry() -> Vec<Box<dyn ScenarioStep>> {
    vec![
        Box::new(PkesRelayStep),
        Box::new(DistanceEnlargementStep),
        Box::new(CanMasqueradeStep),
        Box::new(CanFloodStep),
        Box::new(PduForgeryStep),
        Box::new(RogueSoftwareStep),
        Box::new(TelemetryKillChainStep),
        Box::new(BreachCascadeStep),
        Box::new(GhostObjectStep),
    ]
}

/// Step 0 (Physical): PKES relay against legacy RSSI vs UWB ToF.
pub struct PkesRelayStep;

impl ScenarioStep for PkesRelayStep {
    fn name(&self) -> &'static str {
        "pkes-relay"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::Physical
    }
    fn stride(&self) -> Stride {
        Stride::Spoofing
    }
    fn rng_label(&self) -> &'static str {
        "pkes"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        // An active sensor-dropout fault can swallow the ranging
        // exchange outright: nobody unlocks, nobody alerts.
        let dropout = ctx.sensor_dropout_p();
        if dropout > 0.0 && rng.chance(dropout) {
            return StepOutcome {
                succeeded: false,
                prevented: false,
                detected: false,
                detail: "",
            };
        }
        let backend = if ctx.defended(ArchLayer::Physical) {
            ProximityBackend::UwbToF
        } else {
            ProximityBackend::LegacyRssi
        };
        let pkes = Pkes::new(backend, 2.0);
        let out = pkes.try_unlock(43.0, Some(&RelayAttack::typical()), rng);
        let succeeded = out.state == PkesState::Unlocked;
        StepOutcome {
            succeeded,
            prevented: !succeeded,
            detected: !succeeded,
            detail: "relay produced impossible time-of-flight",
        }
    }
}

/// Step 1 (Physical): distance enlargement on collision avoidance.
pub struct DistanceEnlargementStep;

impl ScenarioStep for DistanceEnlargementStep {
    fn name(&self) -> &'static str {
        "distance-enlargement"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::Physical
    }
    fn stride(&self) -> Stride {
        Stride::Tampering
    }
    fn rng_label(&self) -> &'static str {
        "enlargement"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        let ca = CollisionAvoidance::new(CollisionScenario {
            detection_enabled: ctx.defended(ArchLayer::Physical),
            ..CollisionScenario::default()
        });
        let atk = OvershadowAttack {
            delay_m: 20.0,
            power: 3.0,
            residual: 0.25,
        };
        let out = ca.decide(Some(&atk), rng);
        let detected = out.action == VehicleAction::DefensiveBrake;
        StepOutcome {
            succeeded: out.unsafe_decision,
            prevented: detected,
            detected,
            detail: "pre-arrival energy above noise floor",
        }
    }
}

/// Step 2 (Network): CAN masquerade vs analog fingerprinting.
pub struct CanMasqueradeStep;

impl ScenarioStep for CanMasqueradeStep {
    fn name(&self) -> &'static str {
        "can-masquerade"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::Network
    }
    fn stride(&self) -> Stride {
        Stride::Spoofing
    }
    fn rng_label(&self) -> &'static str {
        "masquerade"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, _rng: &mut SimRng) -> StepOutcome {
        // Clean training traffic vs the attacked bus.
        let build_traffic = |attack: bool| {
            let mut bus = CanBus::new(500_000);
            let legit = bus.add_node(2.0);
            let attacker = bus.add_node(7.5);
            let mut t = SimTime::ZERO;
            while t <= SimTime::from_ms(300) {
                bus.enqueue(
                    legit,
                    t,
                    CanFrame::new(CanId::standard(0x0A0).expect("valid"), &[1; 8])
                        .expect("valid frame"),
                )
                .expect("node exists");
                t += SimDuration::from_ms(10);
            }
            if attack {
                MasqueradeAttack {
                    attacker,
                    spoofed_id: 0x0A0,
                    period: SimDuration::from_ms(9),
                    payload: [0xFF; 8],
                }
                .inject(&mut bus, SimTime::from_ms(2), SimTime::from_ms(300))
                .expect("attacker can enqueue");
            }
            bus.run(SimTime::from_secs(2))
        };
        let clean = build_traffic(false);
        let attacked = build_traffic(true);
        let forged_delivered = attacked.len() > clean.len();
        let detected = if ctx.defended(ArchLayer::Network) {
            let det = FingerprintDetector::train(&clean);
            !det.analyze(&attacked).is_empty()
        } else {
            false
        };
        StepOutcome {
            succeeded: forged_delivered && !detected,
            prevented: false,
            detected,
            detail: "spoofed id with foreign analog fingerprint",
        }
    }
}

/// Step 3 (Network): flood DoS vs specification IDS.
pub struct CanFloodStep;

impl ScenarioStep for CanFloodStep {
    fn name(&self) -> &'static str {
        "can-flood-dos"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::Network
    }
    fn stride(&self) -> Stride {
        Stride::DenialOfService
    }
    fn rng_label(&self) -> &'static str {
        "flood"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        let cf = ctx.channel_fault();
        let mut build = |attack: bool| {
            let mut bus = CanBus::new(500_000);
            let legit = bus.add_node(2.0);
            let attacker = bus.add_node(5.0);
            // Frame faults intercept the victim's traffic during the
            // attacked run only; the clean run is the pre-fault
            // training baseline.
            let action = if attack && !cf.is_noop() {
                cf.decide(rng)
            } else {
                autosec_sim::FrameAction::Pass
            };
            let frame = CanFrame::new(CanId::standard(0x100).expect("valid"), &[1; 8])
                .expect("valid frame");
            match action {
                autosec_sim::FrameAction::Drop => {}
                autosec_sim::FrameAction::Delay(d) => {
                    bus.enqueue(legit, SimTime::ZERO + d, frame)
                        .expect("node exists");
                }
                autosec_sim::FrameAction::Corrupt => {
                    bus.enqueue(
                        legit,
                        SimTime::ZERO,
                        CanFrame::new(CanId::standard(0x1C0).expect("valid"), &[0xEE; 8])
                            .expect("valid frame"),
                    )
                    .expect("node exists");
                }
                autosec_sim::FrameAction::Duplicate => {
                    bus.enqueue(legit, SimTime::ZERO, frame.clone())
                        .expect("node exists");
                    bus.enqueue(legit, SimTime::ZERO, frame)
                        .expect("node exists");
                }
                autosec_sim::FrameAction::Pass => {
                    bus.enqueue(legit, SimTime::ZERO, frame)
                        .expect("node exists");
                }
            }
            if attack {
                FloodAttack {
                    attacker,
                    burst: 200,
                }
                .inject(&mut bus, SimTime::ZERO)
                .expect("attacker can enqueue");
            }
            bus.run(SimTime::from_secs(2))
        };
        let clean = build(false);
        let attacked = build(true);
        let victim_latency = attacked
            .iter()
            .find(|e| e.frame.id().raw() == 0x100)
            .map(|e| e.latency().as_ms_f64())
            .unwrap_or(f64::INFINITY);
        let succeeded = victim_latency > 10.0;
        let detected = if ctx.defended(ArchLayer::Network) {
            let det = SpecificationDetector::train(&clean);
            !det.analyze(&attacked).is_empty()
        } else {
            false
        };
        StepOutcome {
            succeeded,
            prevented: false,
            detected,
            detail: "unknown high-priority id flooding the bus",
        }
    }
}

/// Step 4 (Network): SECOC PDU forgery.
pub struct PduForgeryStep;

impl ScenarioStep for PduForgeryStep {
    fn name(&self) -> &'static str {
        "pdu-forgery"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::Network
    }
    fn stride(&self) -> Stride {
        Stride::Tampering
    }
    fn rng_label(&self) -> &'static str {
        "secoc-forgery"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        if !ctx.defended(ArchLayer::Network) {
            // Plain CAN: any frame with the right id is accepted.
            return StepOutcome {
                succeeded: true,
                prevented: false,
                detected: false,
                detail: "",
            };
        }
        let cfg = SecOcConfig::default();
        let mut rx = SecOcAuthenticator::new_receiver(cfg, [1u8; 16], 0x0B0);
        // Attacker forges a PDU with a random MAC.
        use rand::RngCore;
        let mut mac = vec![0u8; 3];
        rng.fill_bytes(&mut mac);
        let forged = SecOcPdu {
            data_id: 0x0B0,
            payload: b"brake=off".to_vec(),
            truncated_freshness: 1,
            truncated_mac: mac,
        };
        let accepted = rx.verify(&forged).is_ok();
        StepOutcome {
            succeeded: accepted,
            prevented: !accepted,
            detected: !accepted,
            detail: "SECOC MAC verification failed on forged PDU",
        }
    }
}

/// Step 5 (Platform): rogue software placement vs zero-trust SDV.
pub struct RogueSoftwareStep;

impl ScenarioStep for RogueSoftwareStep {
    fn name(&self) -> &'static str {
        "rogue-software-placement"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::SoftwarePlatform
    }
    fn stride(&self) -> Stride {
        Stride::ElevationOfPrivilege
    }
    fn rng_label(&self) -> &'static str {
        "sdv"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        if !ctx.defended(ArchLayer::SoftwarePlatform) {
            return StepOutcome {
                succeeded: true,
                prevented: false,
                detected: false,
                detail: "",
            };
        }
        use autosec_sdv::component::{Asil, HardwareNode, SoftwareComponent};
        use autosec_sdv::platform::SdvPlatform;
        use autosec_sdv::SdvError;
        let (mut platform, mut oem) = SdvPlatform::new(rng);
        platform
            .register_node(
                rng,
                HardwareNode {
                    id: "hpc-0".into(),
                    provides: vec!["can-if".into()],
                    compute_capacity: 100,
                    max_asil: Asil::D,
                },
                &mut oem,
            )
            .expect("node registration");
        let mut rogue =
            autosec_ssi::wallet::Wallet::create(rng, "rogue-vendor", platform.registry());
        platform
            .register_component(
                rng,
                SoftwareComponent {
                    id: "implant".into(),
                    vendor: "rogue".into(),
                    version: (1, 0, 0),
                    requires: vec!["can-if".into()],
                    compute_cost: 1,
                    asil: Asil::Qm,
                },
                &mut rogue,
            )
            .expect("registration itself is open");
        let result = platform.place("implant", "hpc-0");
        let prevented = matches!(result, Err(SdvError::AuthFailed(_)));
        StepOutcome {
            succeeded: !prevented,
            prevented,
            detected: prevented,
            detail: "component credential has no trust path to an anchor",
        }
    }
}

/// Step 6 (Data): the CARIAD kill chain against the telemetry backend.
pub struct TelemetryKillChainStep;

impl ScenarioStep for TelemetryKillChainStep {
    fn name(&self) -> &'static str {
        "telemetry-kill-chain"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::Data
    }
    fn stride(&self) -> Stride {
        Stride::InformationDisclosure
    }
    fn rng_label(&self) -> &'static str {
        "killchain"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        let defenses = if ctx.defended(ArchLayer::Data) {
            DefenseConfig::hardened()
        } else {
            DefenseConfig::none()
        };
        let backend = TelemetryBackend::build(500, defenses, rng);
        let report = KillChainAttacker::new().execute(&backend, rng);
        StepOutcome {
            succeeded: report.records_exfiltrated > 0,
            prevented: report.blocked_at.is_some(),
            detected: report.detected_at.is_some(),
            detail: "enumeration burst / bulk export anomaly",
        }
    }
}

/// Step 7 (System of systems): a vehicle-OS breach cascading through
/// the MaaS dependency graph toward a safety-critical node.
///
/// Defending the SoS layer swaps the tightly coupled reference graph
/// for its decoupled variant (coupling probabilities halved), the same
/// mitigation the E10 cascade experiment measures. Compromise of the
/// SoS layer is only observable through downstream loss, so this step
/// never raises an alert — the monitoring gap §VI calls out.
pub struct BreachCascadeStep;

impl ScenarioStep for BreachCascadeStep {
    fn name(&self) -> &'static str {
        "breach-cascade"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::SystemOfSystems
    }
    fn stride(&self) -> Stride {
        Stride::DenialOfService
    }
    fn rng_label(&self) -> &'static str {
        "cascade"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        let reference = maas_reference();
        let graph = if ctx.defended(ArchLayer::SystemOfSystems) {
            with_coupling_scale(&reference, 0.5)
        } else {
            reference
        };
        let entry = graph.find("vehicle-os").expect("reference graph node");
        let mask = cascade_trial(&graph, entry, rng);
        let safety_hit = ["braking", "steering", "act"]
            .iter()
            .filter_map(|n| graph.find(n))
            .any(|id| mask[id.0]);
        StepOutcome {
            succeeded: safety_hit,
            prevented: false,
            detected: false,
            detail: "",
        }
    }
}

/// Step 8 (Collaboration): internal ghost object vs misbehaviour
/// detection.
pub struct GhostObjectStep;

impl ScenarioStep for GhostObjectStep {
    fn name(&self) -> &'static str {
        "v2x-ghost-object"
    }
    fn layer(&self) -> ArchLayer {
        ArchLayer::Collaboration
    }
    fn stride(&self) -> Stride {
        Stride::Spoofing
    }
    fn rng_label(&self) -> &'static str {
        "collab"
    }
    fn execute(&self, ctx: &PostureCtx<'_>, rng: &mut SimRng) -> StepOutcome {
        let world = World::new(
            vec![
                Point { x: 0.0, y: 0.0 },
                Point { x: 30.0, y: 0.0 },
                Point { x: 0.0, y: 30.0 },
                Point { x: 30.0, y: 30.0 },
            ],
            vec![Point { x: 15.0, y: 15.0 }],
        );
        let sensor = SensorModel {
            miss_rate: 0.0,
            noise_m: 0.3,
            range_m: 60.0,
        };
        let key = b"campaign v2x key";
        let attacker = InternalFabricator {
            vehicle: VehicleId(0),
            strategy: FabricationStrategy::GhostObject {
                at: Point { x: 22.0, y: 8.0 },
            },
        };
        let mut msgs = perception_round(&world, &sensor, key, 0, rng);
        let mut honest = msgs[0].detections.clone();
        // A fabricated-detections fault floods the round with extra
        // ghosts from the compromised participant.
        let fabricated = ctx.fabricated_detections();
        for _ in 0..fabricated {
            honest.push(autosec_collab::world::Detection {
                position: Point {
                    x: rng.normal_with(15.0, 8.0),
                    y: rng.normal_with(15.0, 8.0),
                },
                truth: None,
            });
        }
        msgs[0] = attacker.emit(&world, honest, key, 0, rng);
        let detected = if ctx.defended(ArchLayer::Collaboration) {
            let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
            let flags = det.process_round(&world, &sensor, key, &msgs);
            flags.iter().any(|f| f.claimant == VehicleId(0))
        } else {
            false
        };
        StepOutcome {
            succeeded: !detected,
            prevented: false,
            detected,
            detail: "claim lacks corroboration from in-range witnesses",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::attack_catalog;

    #[test]
    fn registry_has_the_nine_campaign_steps() {
        let steps = scenario_registry();
        assert!(steps.len() >= 9, "{} steps", steps.len());
        let mut names: Vec<&str> = steps.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), steps.len(), "duplicate step names");
    }

    #[test]
    fn registry_is_exhaustive_over_layers_with_unique_substreams() {
        let steps = scenario_registry();
        for layer in ArchLayer::ALL {
            assert!(
                steps.iter().any(|s| s.layer() == layer),
                "no registered step attacks the {layer} layer"
            );
        }
        let mut labels: Vec<&str> = steps.iter().map(|s| s.rng_label()).collect();
        labels.sort_unstable();
        let n = labels.len();
        labels.dedup();
        assert_eq!(
            labels.len(),
            n,
            "duplicate rng_label would alias substreams"
        );
    }

    #[test]
    fn every_step_is_catalogued_on_its_layer() {
        let catalog = attack_catalog();
        for step in scenario_registry() {
            let entry = catalog
                .iter()
                .find(|a| a.name == step.name())
                .unwrap_or_else(|| panic!("{} not in attack_catalog()", step.name()));
            assert_eq!(
                entry.layer,
                step.layer(),
                "{} catalogued at {} but registered at {}",
                step.name(),
                entry.layer,
                step.layer()
            );
        }
    }

    #[test]
    fn steps_are_deterministic_per_substream() {
        let posture = DefensePosture::full();
        let ctx = PostureCtx::new(&posture);
        let root = SimRng::seed(7);
        for step in scenario_registry() {
            let a = step.execute(&ctx, &mut root.fork(step.rng_label()));
            let b = step.execute(&ctx, &mut root.fork(step.rng_label()));
            assert_eq!(a, b, "{} not deterministic", step.name());
        }
    }

    #[test]
    fn undefended_ctx_disables_every_layer() {
        let posture = DefensePosture::none();
        let ctx = PostureCtx::new(&posture);
        for layer in ArchLayer::ALL {
            assert!(!ctx.defended(layer));
        }
        assert_eq!(ctx.sensor_dropout_p(), 0.0);
        assert_eq!(ctx.fabricated_detections(), 0);
        assert!(ctx.channel_fault().is_noop());
    }

    #[test]
    fn fault_helpers_fold_active_effects() {
        let posture = DefensePosture::none();
        let faults = [
            FaultEffect::SensorDropout { p: 0.4 },
            FaultEffect::DropFrames { p: 0.2 },
            FaultEffect::FabricateDetections { count: 3 },
        ];
        let ctx = PostureCtx {
            posture: &posture,
            faults: &faults,
        };
        assert_eq!(ctx.sensor_dropout_p(), 0.4);
        assert_eq!(ctx.fabricated_detections(), 3);
        assert_eq!(ctx.channel_fault().drop_p, 0.2);
    }

    #[test]
    fn faulted_steps_equal_unfaulted_when_plan_is_empty() {
        // The fault-free no-op guarantee at step granularity: an empty
        // effect slice must leave every step's outcome bit-identical.
        let posture = DefensePosture::full();
        let plain = PostureCtx::new(&posture);
        let faulted = PostureCtx {
            posture: &posture,
            faults: &[],
        };
        let root = SimRng::seed(17);
        for step in scenario_registry() {
            let a = step.execute(&plain, &mut root.fork(step.rng_label()));
            let b = step.execute(&faulted, &mut root.fork(step.rng_label()));
            assert_eq!(a, b, "{} diverged under empty faults", step.name());
        }
    }

    #[test]
    fn total_sensor_dropout_suppresses_pkes_relay() {
        let posture = DefensePosture::none();
        let faults = [FaultEffect::SensorDropout { p: 1.0 }];
        let ctx = PostureCtx {
            posture: &posture,
            faults: &faults,
        };
        let out = PkesRelayStep.execute(&ctx, &mut SimRng::seed(1).fork("pkes"));
        assert!(!out.succeeded && !out.detected);
    }
}
