//! The Fig. 1 layer stack and the paper-as-code catalog.
//!
//! The layer enum itself lives in `autosec-sim` ([`autosec_sim::layer`])
//! so that every crate — including `autosec-ids`, which tags alerts by
//! layer — shares one vocabulary. It is re-exported here because the
//! framework is where most callers reach for it.

pub use autosec_sim::ArchLayer;

/// A catalogued attack with its implementing module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackEntry {
    /// Short name.
    pub name: &'static str,
    /// Layer it targets.
    pub layer: ArchLayer,
    /// Where the executable model lives.
    pub module: &'static str,
}

/// A catalogued defense with its implementing module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefenseEntry {
    /// Short name.
    pub name: &'static str,
    /// Layer it protects.
    pub layer: ArchLayer,
    /// Where the executable model lives.
    pub module: &'static str,
    /// Attacks (by name) it prevents or detects.
    pub counters: &'static [&'static str],
}

/// Every attack the paper discusses, mapped to its implementation.
pub fn attack_catalog() -> Vec<AttackEntry> {
    vec![
        AttackEntry {
            name: "pkes-relay",
            layer: ArchLayer::Physical,
            module: "autosec_phy::attacks::RelayAttack",
        },
        AttackEntry {
            name: "cicada-early-pulse",
            layer: ArchLayer::Physical,
            module: "autosec_phy::attacks::HrpAttack",
        },
        AttackEntry {
            name: "early-detect-late-commit",
            layer: ArchLayer::Physical,
            module: "autosec_phy::attacks::HrpAttack",
        },
        AttackEntry {
            name: "distance-enlargement",
            layer: ArchLayer::Physical,
            module: "autosec_phy::attacks::OvershadowAttack",
        },
        AttackEntry {
            name: "db-early-commit",
            layer: ArchLayer::Physical,
            module: "autosec_phy::lrp::LrpAttack",
        },
        AttackEntry {
            name: "can-masquerade",
            layer: ArchLayer::Network,
            module: "autosec_ivn::attacks::MasqueradeAttack",
        },
        AttackEntry {
            name: "can-flood-dos",
            layer: ArchLayer::Network,
            module: "autosec_ivn::attacks::FloodAttack",
        },
        AttackEntry {
            name: "can-bus-off",
            layer: ArchLayer::Network,
            module: "autosec_ivn::attacks::BusOffAttack",
        },
        AttackEntry {
            name: "pdu-forgery",
            layer: ArchLayer::Network,
            module: "autosec_secproto::secoc (negative tests)",
        },
        AttackEntry {
            name: "frame-replay",
            layer: ArchLayer::Network,
            module: "autosec_secproto::macsec (replay tests)",
        },
        AttackEntry {
            name: "rogue-software-placement",
            layer: ArchLayer::SoftwarePlatform,
            module: "autosec_sdv::platform (unvouched component)",
        },
        AttackEntry {
            name: "forged-ota-update",
            layer: ArchLayer::SoftwarePlatform,
            module: "autosec_sdv::update (tampered package)",
        },
        AttackEntry {
            name: "did-hijack",
            layer: ArchLayer::SoftwarePlatform,
            module: "autosec_ssi::registry (rotation tests)",
        },
        AttackEntry {
            name: "telemetry-kill-chain",
            layer: ArchLayer::Data,
            module: "autosec_data::killchain::Attacker",
        },
        AttackEntry {
            name: "breach-cascade",
            layer: ArchLayer::SystemOfSystems,
            module: "autosec_sos::cascade",
        },
        AttackEntry {
            name: "realtime-dos",
            layer: ArchLayer::SystemOfSystems,
            module: "autosec_sos::realtime",
        },
        AttackEntry {
            name: "v2x-external-injection",
            layer: ArchLayer::Collaboration,
            module: "autosec_collab::attacks::ExternalInjector",
        },
        AttackEntry {
            name: "v2x-ghost-object",
            layer: ArchLayer::Collaboration,
            module: "autosec_collab::attacks::InternalFabricator",
        },
        AttackEntry {
            name: "v2x-object-removal",
            layer: ArchLayer::Collaboration,
            module: "autosec_collab::attacks::InternalFabricator",
        },
        AttackEntry {
            name: "selfish-optimization",
            layer: ArchLayer::Collaboration,
            module: "autosec_collab::intersection",
        },
    ]
}

/// Every defense the paper discusses, mapped to its implementation.
pub fn defense_catalog() -> Vec<DefenseEntry> {
    vec![
        DefenseEntry {
            name: "uwb-tof-ranging",
            layer: ArchLayer::Physical,
            module: "autosec_phy::lrp + pkes",
            counters: &["pkes-relay"],
        },
        DefenseEntry {
            name: "hrp-integrity-check",
            layer: ArchLayer::Physical,
            module: "autosec_phy::hrp::ReceiverKind::IntegrityChecked",
            counters: &["cicada-early-pulse", "early-detect-late-commit"],
        },
        DefenseEntry {
            name: "distance-bounding",
            layer: ArchLayer::Physical,
            module: "autosec_phy::lrp::LrpSession",
            counters: &["db-early-commit", "pkes-relay"],
        },
        DefenseEntry {
            name: "uwb-ed-enlargement-detection",
            layer: ArchLayer::Physical,
            module: "autosec_phy::enlargement::EnlargementDetector",
            counters: &["distance-enlargement"],
        },
        DefenseEntry {
            name: "secoc",
            layer: ArchLayer::Network,
            module: "autosec_secproto::secoc",
            counters: &["can-masquerade", "pdu-forgery", "frame-replay"],
        },
        DefenseEntry {
            name: "macsec",
            layer: ArchLayer::Network,
            module: "autosec_secproto::macsec",
            counters: &["pdu-forgery", "frame-replay"],
        },
        DefenseEntry {
            name: "cansec",
            layer: ArchLayer::Network,
            module: "autosec_secproto::cansec",
            counters: &["pdu-forgery", "frame-replay"],
        },
        DefenseEntry {
            name: "canal-e2e-macsec",
            layer: ArchLayer::Network,
            module: "autosec_secproto::canal",
            counters: &["pdu-forgery"],
        },
        DefenseEntry {
            name: "can-ids",
            layer: ArchLayer::Network,
            module: "autosec_ids::detectors",
            counters: &["can-masquerade", "can-flood-dos", "can-bus-off"],
        },
        DefenseEntry {
            name: "sender-fingerprinting",
            layer: ArchLayer::Network,
            module: "autosec_ids::detectors::FingerprintDetector",
            counters: &["can-masquerade"],
        },
        DefenseEntry {
            name: "zero-trust-reconfiguration",
            layer: ArchLayer::SoftwarePlatform,
            module: "autosec_sdv::platform",
            counters: &["rogue-software-placement"],
        },
        DefenseEntry {
            name: "signed-ota",
            layer: ArchLayer::SoftwarePlatform,
            module: "autosec_sdv::update",
            counters: &["forged-ota-update"],
        },
        DefenseEntry {
            name: "ssi-multi-anchor-trust",
            layer: ArchLayer::SoftwarePlatform,
            module: "autosec_ssi",
            counters: &["rogue-software-placement", "did-hijack"],
        },
        DefenseEntry {
            name: "backend-hardening",
            layer: ArchLayer::Data,
            module: "autosec_data::service::DefenseConfig",
            counters: &["telemetry-kill-chain"],
        },
        DefenseEntry {
            name: "owner-access-control",
            layer: ArchLayer::Data,
            module: "autosec_data::access::OwnerPolicy",
            counters: &["telemetry-kill-chain"],
        },
        DefenseEntry {
            name: "attack-surface-minimization",
            layer: ArchLayer::Data,
            module: "autosec_data::surface::SurfaceInventory::minimized",
            counters: &["telemetry-kill-chain", "breach-cascade"],
        },
        DefenseEntry {
            name: "decoupling",
            layer: ArchLayer::SystemOfSystems,
            module: "autosec_sos::cascade::with_coupling_scale",
            counters: &["breach-cascade"],
        },
        DefenseEntry {
            name: "v2x-authentication",
            layer: ArchLayer::Collaboration,
            module: "autosec_collab::perception",
            counters: &["v2x-external-injection"],
        },
        DefenseEntry {
            name: "misbehavior-detection",
            layer: ArchLayer::Collaboration,
            module: "autosec_collab::misbehavior",
            counters: &["v2x-ghost-object"],
        },
        DefenseEntry {
            name: "response-engine",
            layer: ArchLayer::Network,
            module: "autosec_ids::response",
            counters: &["can-masquerade", "can-flood-dos"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_layer_has_attacks_and_defenses() {
        let attacks = attack_catalog();
        let defenses = defense_catalog();
        for layer in ArchLayer::ALL {
            assert!(
                attacks.iter().any(|a| a.layer == layer),
                "no attack at {layer}"
            );
            // The SoS layer's defenses are structural (decoupling),
            // catalogued under SoS.
            assert!(
                defenses.iter().any(|d| d.layer == layer)
                    || layer == ArchLayer::Collaboration
                    || layer == ArchLayer::SystemOfSystems,
                "no defense at {layer}"
            );
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let attacks = attack_catalog();
        let names: BTreeSet<&str> = attacks.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), attacks.len());
        let defenses = defense_catalog();
        let names: BTreeSet<&str> = defenses.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), defenses.len());
    }

    #[test]
    fn every_defense_counters_a_known_attack() {
        let attack_names: BTreeSet<&str> = attack_catalog().iter().map(|a| a.name).collect();
        for d in defense_catalog() {
            assert!(!d.counters.is_empty(), "{} counters nothing", d.name);
            for c in d.counters {
                assert!(attack_names.contains(c), "{} counters unknown {c}", d.name);
            }
        }
    }

    #[test]
    fn every_attack_is_countered_by_something() {
        let defenses = defense_catalog();
        for a in attack_catalog() {
            // `selfish-optimization` and `realtime-dos` are governance /
            // capacity problems the paper flags as open — no technical
            // counter in the catalog, which is itself paper-faithful.
            if a.name == "selfish-optimization"
                || a.name == "realtime-dos"
                || a.name == "v2x-object-removal"
            {
                continue;
            }
            assert!(
                defenses.iter().any(|d| d.counters.contains(&a.name)),
                "{} has no counter",
                a.name
            );
        }
    }
}
