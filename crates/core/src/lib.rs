//! # autosec-core
//!
//! The paper's primary contribution as code: the layered security
//! architecture of Fig. 1 with every attack and defense the paper
//! discusses wired into one framework.
//!
//! - [`layers`] — the Fig. 1 layer stack plus a machine-readable catalog
//!   mapping every paper-discussed attack and defense to the workbench
//!   module that implements it
//! - [`scenario`] — the pluggable scenario engine: every campaign attack
//!   is a registered [`scenario::ScenarioStep`], cross-checked against
//!   the catalog
//! - [`campaign`] — the cross-layer attack campaign runner: a thin
//!   driver iterating [`scenario::scenario_registry`] against a
//!   configurable per-layer defense posture ([`campaign::DefensePosture`])
//! - [`assessment`] — holistic scoring (§VIII): prevention/detection
//!   coverage, defense-in-depth depth, and the synergy metric showing
//!   the fused multi-layer view dominating any single layer
//! - [`engine`] — two-tier scenario execution: the live
//!   [`scenario::ScenarioStep`] path and calibrated
//!   [`engine::StepOutcomeTable`] outcome tables behind one
//!   [`engine::ScenarioEngine`] interface, plus the shared
//!   [`engine::measure_step`] calibration primitive
//!
//! ## Example
//!
//! ```
//! use autosec_core::campaign::{run_campaign, DefensePosture};
//!
//! let undefended = run_campaign(&DefensePosture::none(), 42);
//! let defended = run_campaign(&DefensePosture::full(), 42);
//! assert!(defended.succeeded_attacks() < undefended.succeeded_attacks());
//! ```

pub mod assessment;
pub mod campaign;
pub mod engine;
pub mod layers;
pub mod scenario;
