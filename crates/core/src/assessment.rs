//! Holistic security assessment (§VIII).
//!
//! The paper's closing argument: a complex, layered autonomous system
//! needs a security solution that is "both holistic and multi-layered",
//! with layers "designed to work in synergy". This module turns that
//! into numbers over a [`CampaignReport`].

use autosec_ids::correlate::{correlate, fused_coverage, layer_coverage, Incident};
use autosec_sim::SimDuration;

use crate::campaign::{run_campaign, CampaignReport, DefensePosture};
use crate::layers::ArchLayer;

/// The holistic scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// Fraction of attacks prevented outright.
    pub prevention_rate: f64,
    /// Fraction of attacks detected.
    pub detection_rate: f64,
    /// Fraction of attacks that reached their goal.
    pub attack_success_rate: f64,
    /// Coverage of the fused multi-layer alert view.
    pub fused_coverage: f64,
    /// Best coverage achievable by any single layer's alerts.
    pub best_single_layer_coverage: f64,
    /// Fused minus best-single: the paper's synergy gain.
    pub synergy_gain: f64,
    /// Correlated incidents.
    pub incidents: Vec<Incident>,
}

/// Scores a campaign report.
pub fn score(report: &CampaignReport) -> Scorecard {
    let n = report.total_attacks().max(1);
    let fused = fused_coverage(&report.alerts, n);
    let best_single = ArchLayer::ALL
        .into_iter()
        .map(|l| layer_coverage(&report.alerts, l, n))
        .fold(0.0, f64::max);

    Scorecard {
        prevention_rate: report.prevented_attacks() as f64 / n as f64,
        detection_rate: report.detected_attacks() as f64 / n as f64,
        attack_success_rate: report.succeeded_attacks() as f64 / n as f64,
        fused_coverage: fused,
        best_single_layer_coverage: best_single,
        synergy_gain: fused - best_single,
        incidents: correlate(report.alerts.clone(), SimDuration::from_ms(150)),
    }
}

/// One row of the defense-in-depth sweep: posture size → outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthPoint {
    /// Number of defended layers.
    pub defended_layers: usize,
    /// Attack success rate at that depth.
    pub attack_success_rate: f64,
    /// Detection rate at that depth.
    pub detection_rate: f64,
}

/// Sweeps defense depth 0..=6 by enabling layers bottom-up (Fig. 1
/// order), running the campaign at each depth (experiment E1/E13's
/// headline curve). Postures are enumerated programmatically from
/// [`ArchLayer::ALL`], so a new layer extends the sweep automatically.
pub fn depth_sweep(seed: u64) -> Vec<DepthPoint> {
    let mut postures = vec![DefensePosture::none()];
    let mut p = DefensePosture::none();
    for layer in ArchLayer::ALL {
        p.set(layer, true);
        postures.push(p);
    }
    postures
        .into_iter()
        .map(|p| {
            let r = run_campaign(&p, seed);
            let s = score(&r);
            DepthPoint {
                defended_layers: p.enabled_count(),
                attack_success_rate: s.attack_success_rate,
                detection_rate: s.detection_rate,
            }
        })
        .collect()
}

/// Human-readable layer summary used by the quickstart example.
pub fn layer_summary() -> String {
    use std::fmt::Write;
    let attacks = crate::layers::attack_catalog();
    let defenses = crate::layers::defense_catalog();
    let mut out = String::new();
    for layer in ArchLayer::ALL {
        let a = attacks.iter().filter(|x| x.layer == layer).count();
        let d = defenses.iter().filter(|x| x.layer == layer).count();
        writeln!(
            out,
            "§{:<4} {:<20} {a} attacks, {d} defenses",
            layer.paper_section(),
            layer.to_string()
        )
        .expect("write to string");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorecard_of_full_defense() {
        let r = run_campaign(&DefensePosture::full(), 5);
        let s = score(&r);
        assert!(s.detection_rate >= 0.75, "{}", s.detection_rate);
        assert!(s.attack_success_rate <= 0.25, "{}", s.attack_success_rate);
        assert!(s.fused_coverage >= s.best_single_layer_coverage);
        assert!(s.synergy_gain > 0.0, "multi-layer must beat single-layer");
    }

    #[test]
    fn scorecard_of_no_defense() {
        let r = run_campaign(&DefensePosture::none(), 5);
        let s = score(&r);
        assert_eq!(s.detection_rate, 0.0);
        assert!(s.attack_success_rate >= 0.8);
        assert!(s.incidents.is_empty());
    }

    #[test]
    fn depth_sweep_is_monotone_enough() {
        let sweep = depth_sweep(11);
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0].defended_layers, 0);
        assert_eq!(sweep[6].defended_layers, 6);
        // Attack success never increases with more defended layers.
        for w in sweep.windows(2) {
            assert!(
                w[1].attack_success_rate <= w[0].attack_success_rate + 1e-9,
                "{w:?}"
            );
        }
        // And the endpoints differ substantially.
        assert!(sweep[0].attack_success_rate - sweep[6].attack_success_rate > 0.5);
    }

    #[test]
    fn layer_summary_mentions_every_layer() {
        let s = layer_summary();
        for layer in ArchLayer::ALL {
            assert!(s.contains(&layer.to_string()), "{layer} missing:\n{s}");
        }
    }
}
