//! E2 / E2b: physical-layer experiments (paper Fig. 2 and §II-B).

use autosec_phy::attacks::{HrpAttack, OvershadowAttack};
use autosec_phy::enlargement::{EnlargementConfig, EnlargementDetector};
use autosec_phy::hrp::{HrpConfig, HrpRanging, ReceiverKind};
use autosec_phy::lrp::{LrpAttack, LrpConfig, LrpSession};
use autosec_runner::{par_trials, par_trials_fold, RunCtx};
use autosec_sim::SimRng;

use crate::Table;

/// Trials per sweep point (kept moderate so the full suite runs in
/// seconds; raise for tighter confidence intervals).
pub const TRIALS: usize = 200;

/// Attack-success statistics for one HRP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HrpPoint {
    /// Attacker power relative to the legitimate signal.
    pub power: f64,
    /// Attacker STS knowledge (0 = Cicada, towards 1 = ED/LC oracle).
    pub knowledge: f64,
    /// Distance-reduction success rate.
    pub success_rate: f64,
    /// Measurement-rejection rate.
    pub rejection_rate: f64,
}

/// Sweeps an HRP attack against one receiver kind.
///
/// Each power point gets its own `fork`ed substream of `base`, and its
/// [`TRIALS`] Monte-Carlo trials fan out over [`par_trials`] with
/// `fork_idx` per-trial streams — results are bit-identical for every
/// `jobs` value.
pub fn hrp_sweep(
    kind: ReceiverKind,
    knowledge: f64,
    powers: &[f64],
    base: &SimRng,
    jobs: usize,
    trials: usize,
) -> Vec<HrpPoint> {
    let session = HrpRanging::new(HrpConfig::default(), kind);
    powers
        .iter()
        .map(|&power| {
            let attack = HrpAttack::ed_lc(8.0, power, knowledge);
            let stream = base.fork(&format!("power-{power:.3}"));
            let (success, rejected) = par_trials_fold(
                jobs,
                trials,
                &stream,
                |_, mut rng| {
                    let out = session.measure(20.0, Some(&attack), &mut rng);
                    (out.rejected, !out.rejected && out.reduction_m > 1.0)
                },
                (0usize, 0usize),
                |(mut success, mut rejected), _, (was_rejected, won)| {
                    if was_rejected {
                        rejected += 1;
                    } else if won {
                        success += 1;
                    }
                    (success, rejected)
                },
            );
            HrpPoint {
                power,
                knowledge,
                success_rate: success as f64 / trials as f64,
                rejection_rate: rejected as f64 / trials as f64,
            }
        })
        .collect()
}

/// E2 main table: distance-reduction success, naive vs integrity-checked
/// receiver, blind (Cicada) vs partial-knowledge (ED/LC) attacker.
pub fn e2_hrp_attack_table(ctx: &RunCtx) -> Table {
    let powers = [1.0, 2.0, 3.0, 5.0];
    let mut t = Table::new(
        "E2",
        "Fig. 2 — HRP STS ranging: distance-reduction attacks vs receiver",
        &[
            "attacker",
            "power",
            "naive success",
            "checked success",
            "checked rejects",
        ],
    );
    let base = ctx.rng("e2-hrp-attacks");
    for (label, knowledge) in [("cicada (blind)", 0.0), ("ed/lc k=0.7", 0.7)] {
        let naive = hrp_sweep(
            ReceiverKind::NaiveLeadingEdge,
            knowledge,
            &powers,
            &base.fork(&format!("{label}/naive")),
            ctx.jobs,
            ctx.trials(TRIALS),
        );
        let checked = hrp_sweep(
            ReceiverKind::IntegrityChecked,
            knowledge,
            &powers,
            &base.fork(&format!("{label}/checked")),
            ctx.jobs,
            ctx.trials(TRIALS),
        );
        for (n, c) in naive.iter().zip(checked.iter()) {
            t.push_row(vec![
                label.to_owned(),
                format!("{:.0}x", n.power),
                format!("{:.1}%", n.success_rate * 100.0),
                format!("{:.1}%", c.success_rate * 100.0),
                format!("{:.1}%", c.rejection_rate * 100.0),
            ]);
        }
    }
    t
}

/// E2 LRP table: early-commit success probability versus round count.
///
/// The 2000-trial sweep per row runs on [`par_trials`]: trial `i`
/// always uses the `fork_idx(i)` stream, so rows are identical for any
/// `ctx.jobs`.
pub fn e2_lrp_rounds_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E2",
        "Fig. 2 — LRP distance bounding: early-commit survival vs rounds",
        &["rounds", "measured survival", "theory 2^-n"],
    );
    for n_rounds in [1usize, 2, 4, 8, 16, 32] {
        let session = LrpSession::new(LrpConfig {
            n_rounds,
            ..LrpConfig::default()
        });
        let base = ctx.rng("e2-lrp-rounds").fork(&n_rounds.to_string());
        let trials = ctx.trials(2000);
        let survived = par_trials(ctx.jobs, trials, &base, |_, mut rng| {
            let out = session.measure(
                20.0,
                Some(LrpAttack::EarlyCommit { advance_m: 10.0 }),
                &mut rng,
            );
            !out.aborted
        })
        .into_iter()
        .filter(|&s| s)
        .count();
        t.push_row(vec![
            n_rounds.to_string(),
            format!("{:.2}%", survived as f64 / trials as f64 * 100.0),
            format!("{:.2}%", session.early_commit_success_probability() * 100.0),
        ]);
    }
    t
}

/// E2b table: enlargement attack vs UWB-ED residual sweep.
///
/// Each residual point's [`TRIALS`] trials fan out over [`par_trials`]
/// on a residual-specific substream.
pub fn e2b_enlargement_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E2b",
        "§II-B — distance enlargement vs UWB-ED detection",
        &["residual", "enlarged", "detected", "undetected+enlarged"],
    );
    let det = EnlargementDetector::new(EnlargementConfig::default());
    let base = ctx.rng("e2b-enlargement");
    for residual in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5] {
        let atk = OvershadowAttack {
            delay_m: 15.0,
            power: 3.0,
            residual,
        };
        let stream = base.fork(&format!("residual-{residual:.2}"));
        let outcomes = par_trials(ctx.jobs, TRIALS, &stream, |_, mut rng| {
            let out = det.measure(25.0, Some(&atk), &mut rng);
            (out.enlarged, out.detected)
        });
        let enlarged = outcomes.iter().filter(|o| o.0).count();
        let detected = outcomes.iter().filter(|o| o.1).count();
        let dangerous = outcomes.iter().filter(|o| o.0 && !o.1).count();
        let pct = |x: usize| format!("{:.1}%", x as f64 / TRIALS as f64 * 100.0);
        t.push_row(vec![
            format!("{residual:.2}"),
            pct(enlarged),
            pct(detected),
            pct(dangerous),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_shape_naive_loses_checked_wins() {
        let base = SimRng::seed(1);
        let naive = hrp_sweep(
            ReceiverKind::NaiveLeadingEdge,
            0.0,
            &[3.0],
            &base,
            1,
            TRIALS,
        );
        let checked = hrp_sweep(
            ReceiverKind::IntegrityChecked,
            0.0,
            &[3.0],
            &base,
            1,
            TRIALS,
        );
        assert!(naive[0].success_rate > 0.5, "{:?}", naive[0]);
        assert!(checked[0].success_rate < 0.05, "{:?}", checked[0]);
    }

    #[test]
    fn tables_render() {
        let ctx = RunCtx::default();
        assert!(e2_hrp_attack_table(&ctx).rows.len() == 8);
        assert!(e2_lrp_rounds_table(&ctx).rows.len() == 6);
        assert!(e2b_enlargement_table(&ctx).rows.len() == 6);
    }

    #[test]
    fn lrp_survival_decays_with_rounds() {
        let t = e2_lrp_rounds_table(&RunCtx::default());
        let pct = |row: &[String]| -> f64 { row[1].trim_end_matches('%').parse().expect("number") };
        assert!(pct(&t.rows[0]) > 40.0, "1 round ≈ coin flip");
        assert!(pct(&t.rows[5]) < 1.0, "32 rounds ≈ 2^-32");
    }
}
