//! Experiment runner: regenerates every table/figure of the paper.
//!
//! ```sh
//! cargo run -p autosec-bench --bin experiments                 # everything
//! cargo run -p autosec-bench --bin experiments -- --list       # catalogue
//! cargo run -p autosec-bench --bin experiments -- E10          # one group
//! cargo run -p autosec-bench --bin experiments -- \
//!     --filter e2-lrp-rounds --jobs 4 --seed 7 --json          # one table,
//!                                                # four workers, artifacts
//! cargo run -p autosec-bench --bin experiments -- \
//!     --json --keep-going                        # degrade, don't abort
//! cargo run -p autosec-bench --bin experiments -- \
//!     --json --resume                            # finish a prior run
//! cargo run -p autosec-bench --bin experiments -- \
//!     fleet --vehicles 100000 --ticks 200 --shards 4 --json
//!                                                # live-fleet service mode
//! ```
//!
//! Filters match an experiment's group id (`E10`) or slug
//! (`e10-cascade`) **exactly**, case-insensitively — `E1` never drags
//! in E10–E13 — a `tag:` prefix (`tag:parallel`) selects by registry
//! tag, and `failed:DIR` re-selects the failures a prior manifest
//! recorded. Several filters may be given (positionally or via
//! repeated `--filter`); an experiment matched by more than one still
//! runs exactly once. With `--json`, per-experiment artifacts plus a
//! `manifest.json` land in `target/experiments/` (override with
//! `--out DIR`), rewritten after every experiment so even an
//! interrupted run leaves a resumable manifest. Tables are
//! bit-identical for any `--jobs` value, and `--trials-scale`
//! multiplies Monte-Carlo trial counts without touching per-trial
//! streams.
//!
//! Fault tolerance: each experiment runs under `catch_unwind` with a
//! soft deadline derived from its cost class (`--deadline-secs`
//! overrides). A panicking or overtime experiment normally aborts the
//! suite (exit 1, failure recorded in the manifest); with
//! `--keep-going` it is recorded and the suite continues — healthy
//! experiments produce bit-identical artifacts to a clean run.
//! `--resume` re-reads the prior manifest and re-runs only failures
//! and gaps for the same `(seed, trials-scale, filter set)`.

use std::process::ExitCode;
use std::time::Duration;

use autosec_bench::{registry, ArtifactStore, RunCtx, RunManifest};
use autosec_core::campaign::DefensePosture;
use autosec_fleet::{DefenderMode, Fidelity, FleetConfig, FleetEngine};
use autosec_runner::{run_suite, ResumeState, RunStatus, SuiteOptions, DEFAULT_ARTIFACT_DIR};

struct Args {
    filters: Vec<String>,
    seed: u64,
    jobs: usize,
    trials_scale: f64,
    json: bool,
    canonical: bool,
    list: bool,
    keep_going: bool,
    deadline_secs: Option<u64>,
    resume: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments [FILTER...] [--filter F] [--seed N] [--jobs N] [--trials-scale F] [--json] [--canonical] [--keep-going] [--deadline-secs N] [--resume] [--out DIR] [--list]
       experiments fleet [...]   (live-fleet service mode; see `fleet --help`)

  FILTER        group id (e.g. E10) or slug (e.g. e10-cascade); exact,
                case-insensitive match. tag:<tag> (e.g. tag:parallel)
                selects every experiment carrying that tag;
                failed:<dir-or-manifest> re-selects the failed /
                timed-out entries of a prior manifest. May be repeated;
                overlapping filters never run an experiment twice
  --seed N      master seed (default 42); every table is a pure function
                of it
  --jobs N      worker threads (default 1); output is identical for any N
  --trials-scale F
                multiply Monte-Carlo trial counts by F (default 1.0);
                a precision/runtime knob like --jobs, excluded from
                canonical artifacts
  --json        write per-experiment artifacts + manifest.json (the
                manifest is rewritten after every experiment, so an
                interrupted run stays resumable)
  --canonical   strip volatile keys (durations, jobs) from artifacts so
                runs with different --jobs diff byte-identical
  --keep-going  record a panicking or overtime experiment in the
                manifest and continue instead of aborting (exit 1 if
                anything failed)
  --deadline-secs N
                soft per-experiment deadline replacing the cost-derived
                defaults (cheap 30s / moderate 120s / heavy 600s)
  --resume      skip experiments whose artifact a prior manifest in the
                --out dir already covers for the same (seed,
                trials-scale, filter set); re-runs failures and gaps.
                Implies --json
  --out DIR     artifact directory (default {DEFAULT_ARTIFACT_DIR})
  --list        print the experiment catalogue and exit"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        filters: Vec::new(),
        seed: autosec_runner::DEFAULT_SEED,
        jobs: 1,
        trials_scale: 1.0,
        json: false,
        canonical: false,
        list: false,
        keep_going: false,
        deadline_secs: None,
        resume: false,
        out: DEFAULT_ARTIFACT_DIR.to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--filter" | "-f" => args.filters.push(value("--filter")),
            "--seed" | "-s" => {
                let v = value("--seed");
                args.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed {v:?}: expected an unsigned integer");
                    usage()
                });
            }
            "--jobs" | "-j" => {
                let v = value("--jobs");
                args.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --jobs {v:?}: expected a positive integer");
                    usage()
                });
            }
            "--trials-scale" | "-t" => {
                let v = value("--trials-scale");
                args.trials_scale = v
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("invalid --trials-scale {v:?}: expected a positive number");
                        usage()
                    });
            }
            "--deadline-secs" | "-d" => {
                let v = value("--deadline-secs");
                args.deadline_secs = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --deadline-secs {v:?}: expected a positive integer");
                    usage()
                }));
            }
            "--json" => args.json = true,
            "--canonical" => args.canonical = true,
            "--keep-going" | "-k" => args.keep_going = true,
            "--resume" | "-r" => {
                args.resume = true;
                args.json = true;
            }
            "--list" | "-l" => args.list = true,
            "--out" | "-o" => args.out = value("--out"),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                // Positional filter(s), compatible with the old runner.
                args.filters.push(other.to_owned());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn fleet_usage() -> ! {
    eprintln!(
        "usage: experiments fleet [--vehicles N] [--ticks N] [--shards N] [--seed N]
                          [--snapshot-every N] [--posture full|none|depth:K]
                          [--fidelity live|calibrated|mixed:K]
                          [--attack-rate F] [--no-faults]
                          [--defender off|static|closed-loop]
                          [--defender-budget F] [--json] [--canonical]
                          [--out DIR]

  Runs the live-fleet service mode: N per-vehicle state machines under
  continuous attack, fault and defense pressure for the given number of
  ticks. --fidelity picks the attack-resolution tier: 'calibrated'
  (default) resolves attacks against an outcome table calibrated from
  the live scenario models, 'live' replays every model end to end, and
  'mixed:K' (K >= 1) runs calibrated state with ~every Kth resolution
  shadowed by a live replay feeding a drift statistic.

  --defender arms the fleet-wide defense policy: 'static' spends
  --defender-budget up front hardening layers, 'closed-loop' holds it
  for a between-tick rule policy reading the alert tallies and census.
  A zero budget is the null defender, bit-identical to 'off'.

  --shards defaults to the available parallelism (capped by the
  vehicle count); pass it explicitly to override. On a single-core
  machine extra shards cost thread overhead instead of buying
  wall-clock time (see BENCH_fleet.json) — results are bit-identical
  for any --shards value either way; --json writes the canonical-keyed
  fleet.json artifact (with --canonical the volatile throughput keys
  are stripped so artifacts from different shard counts diff
  byte-identical)."
    );
    std::process::exit(2);
}

/// Parsed `fleet` subcommand arguments.
#[derive(Debug)]
struct FleetArgs {
    cfg: FleetConfig,
    json: bool,
    canonical: bool,
    /// Whether `--shards` was given explicitly (otherwise the caller
    /// defaults it to the available parallelism).
    shards_given: bool,
    out: String,
}

/// Parses the `fleet` argument grammar. Every rejection is a
/// `Result::Err` with the exact message the CLI prints — each parse
/// path is unit-tested below without spawning a process.
fn parse_fleet(args: &[String]) -> Result<FleetArgs, String> {
    let mut cfg = FleetConfig {
        vehicles: 10_000,
        ticks: 200,
        snapshot_every: 50,
        ..FleetConfig::default()
    };
    let mut json = false;
    let mut canonical = false;
    let mut shards_given = false;
    let mut out = DEFAULT_ARTIFACT_DIR.to_owned();

    fn parsed<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("invalid {name} {v:?}"))
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vehicles" | "-n" => cfg.vehicles = parsed("--vehicles", &value("--vehicles")?)?,
            "--ticks" => cfg.ticks = parsed("--ticks", &value("--ticks")?)?,
            "--shards" => {
                cfg.shards = parsed("--shards", &value("--shards")?)?;
                shards_given = true;
            }
            "--seed" | "-s" => cfg.seed = parsed("--seed", &value("--seed")?)?,
            "--snapshot-every" => {
                cfg.snapshot_every = parsed("--snapshot-every", &value("--snapshot-every")?)?;
            }
            "--attack-rate" => {
                let v = value("--attack-rate")?;
                cfg.attack_rate = parsed::<f64>("--attack-rate", &v)
                    .ok()
                    .filter(|r| r.is_finite() && *r >= 0.0)
                    .ok_or_else(|| {
                        format!("invalid --attack-rate {v:?}: expected a finite nonnegative rate")
                    })?;
            }
            "--posture" => {
                let v = value("--posture")?;
                cfg.posture = match v.as_str() {
                    "full" => DefensePosture::full(),
                    "none" => DefensePosture::none(),
                    other => {
                        let k: usize = other
                            .strip_prefix("depth:")
                            .and_then(|k| k.parse().ok())
                            .ok_or_else(|| {
                                format!("invalid --posture {v:?}: expected full, none or depth:K")
                            })?;
                        if k > 6 {
                            return Err(format!(
                                "invalid --posture {v:?}: the architecture has 6 layers (K <= 6)"
                            ));
                        }
                        DefensePosture::depth(k)
                    }
                };
            }
            "--fidelity" => {
                let v = value("--fidelity")?;
                cfg.fidelity = Fidelity::parse(&v).ok_or_else(|| {
                    format!(
                        "invalid --fidelity {v:?}: expected live, calibrated or mixed:K (K >= 1)"
                    )
                })?;
            }
            "--defender" => {
                let v = value("--defender")?;
                cfg.defender = DefenderMode::parse(&v).ok_or_else(|| {
                    format!("invalid --defender {v:?}: expected off, static or closed-loop")
                })?;
            }
            "--defender-budget" => {
                let v = value("--defender-budget")?;
                cfg.defender_budget = parsed::<f64>("--defender-budget", &v)
                    .ok()
                    .filter(|b| b.is_finite() && *b >= 0.0)
                    .ok_or_else(|| {
                        format!(
                            "invalid --defender-budget {v:?}: expected a finite nonnegative budget"
                        )
                    })?;
            }
            "--no-faults" => cfg.faults_enabled = false,
            "--json" => json = true,
            "--canonical" => canonical = true,
            "--out" | "-o" => out = value("--out")?,
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown fleet argument {other:?}")),
        }
    }
    if cfg.vehicles == 0 || cfg.ticks == 0 {
        return Err("--vehicles and --ticks must be positive".to_owned());
    }
    Ok(FleetArgs {
        cfg,
        json,
        canonical,
        shards_given,
        out,
    })
}

/// The `fleet` subcommand: one live-fleet run with a human summary
/// and an optional `fleet.json` artifact.
fn fleet_main(args: &[String]) -> ExitCode {
    let FleetArgs {
        mut cfg,
        json,
        canonical,
        shards_given,
        out,
    } = match parse_fleet(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            if msg != "help" {
                eprintln!("{msg}");
            }
            fleet_usage();
        }
    };
    if !shards_given {
        // Default: one shard per available core, capped by fleet size.
        // An explicit --shards overrides (still capped at runtime).
        cfg.shards = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(cfg.vehicles);
    }
    if cfg.shards == 0 {
        cfg.shards = 1;
    }

    eprintln!(
        "fleet: {} vehicles x {} ticks, {} shard(s), posture {}, fidelity {}, seed {}{}",
        cfg.vehicles,
        cfg.ticks,
        cfg.shards,
        cfg.posture_label(),
        cfg.fidelity.label(),
        cfg.seed,
        if cfg.defender_active() {
            format!(
                ", defender {} (budget {})",
                cfg.defender.label(),
                cfg.defender_budget
            )
        } else {
            String::new()
        }
    );
    let report = FleetEngine::new(cfg).run();
    let census = &report.final_snapshot().census;
    let totals = report.totals();
    println!(
        "fleet availability {:.4}  mttr {:.1} ms  throughput {:.0} vehicle-ticks/s",
        report.availability,
        report.mttr_ms(),
        report.throughput()
    );
    println!(
        "final census: {} healthy / {} degraded / {} compromised / {} isolated / {} lost",
        census.healthy, census.degraded, census.compromised, census.isolated, census.lost
    );
    println!(
        "totals: {} attacks ({} succeeded), {} infections, {} fault injections, {} alerts, {} recoveries, {} backend breaches",
        totals.attacks_attempted,
        totals.attacks_succeeded,
        totals.infections,
        totals.fault_injections,
        totals.alerts,
        totals.recoveries,
        totals.backend_breaches
    );
    if report.drift.probes > 0 {
        println!(
            "drift: {} live probes, agreement {:.4}, success gap {:+.4}",
            report.drift.probes,
            report.drift.agreement_rate(),
            report.drift.success_gap()
        );
    }
    if let Some(d) = &report.defender {
        let dj = d.to_json();
        println!(
            "defender: {} action(s), spent {}/{}, hardened [{}], monitor boost {:.2}",
            dj["actions"],
            dj["spent"],
            dj["budget"],
            dj["hardened"]
                .as_array()
                .map(|a| a
                    .iter()
                    .filter_map(|l| l.as_str())
                    .collect::<Vec<_>>()
                    .join(", "))
                .unwrap_or_default(),
            dj["monitor_boost"].as_f64().unwrap_or(0.0)
        );
    }

    if json {
        let store = match ArtifactStore::create(&out) {
            Ok(s) if canonical => s.canonical(),
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create artifact dir {out:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match store.write_json("fleet", &report.to_json()) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("fleet artifact write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // The `fleet` subcommand has its own argument grammar.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("fleet") {
        return fleet_main(&raw[1..]);
    }

    let args = parse_args();
    let reg = registry();

    if args.list {
        println!(
            "{:<22} {:<6} {:<9} {:<9} {:<34} title",
            "slug", "id", "cost", "deadline", "tags"
        );
        for e in reg.iter() {
            let deadline = args
                .deadline_secs
                .map(Duration::from_secs)
                .unwrap_or_else(|| e.cost.deadline());
            println!(
                "{:<22} {:<6} {:<9} {:<9} {:<34} {}",
                e.slug,
                e.id,
                e.cost.to_string(),
                format!("{}s", deadline.as_secs()),
                e.tags.join(","),
                e.title
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected = if args.filters.is_empty() {
        reg.all()
    } else {
        reg.select_many(&args.filters)
    };
    if selected.is_empty() {
        eprintln!(
            "no experiment matched {:?}; available ids: {}\n(or pick a slug from --list)",
            args.filters.join(","),
            reg.group_ids().join(" ")
        );
        return ExitCode::FAILURE;
    }

    let ctx = RunCtx::new(args.seed, args.jobs).with_trials_scale(args.trials_scale);
    let store = if args.json {
        match ArtifactStore::create(&args.out) {
            Ok(s) if args.canonical => Some(s.canonical()),
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot create artifact dir {:?}: {e}", args.out);
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    // Resume: reuse completed artifacts from the prior manifest when
    // the run parameters line up.
    let mut skip = std::collections::BTreeSet::new();
    if args.resume {
        match ResumeState::load(&args.out) {
            Some(state) if state.compatible_with(ctx.seed, ctx.trials_scale, &args.filters) => {
                skip = state.reusable(std::path::Path::new(&args.out));
                eprintln!(
                    "resume: reusing {} artifact(s), re-running {} failure(s) and any gaps",
                    skip.len(),
                    state.failed.len()
                );
            }
            Some(state) => {
                eprintln!(
                    "resume: prior manifest (seed {}, trials-scale {}, filter {:?}) does not match this run; re-running everything",
                    state.seed,
                    state.trials_scale,
                    state.filter.as_deref().unwrap_or("none")
                );
            }
            None => {
                eprintln!(
                    "resume: no usable manifest in {:?}; re-running everything",
                    args.out
                );
            }
        }
    }

    let opts = SuiteOptions {
        keep_going: args.keep_going,
        deadline_override: args.deadline_secs.map(Duration::from_secs),
        skip,
    };

    // The manifest grows record by record and is rewritten after every
    // experiment, so a killed run still leaves a resumable trail.
    let mut manifest = RunManifest {
        seed: ctx.seed,
        jobs: ctx.jobs,
        trials_scale: ctx.trials_scale,
        filter: if args.filters.is_empty() {
            None
        } else {
            Some(args.filters.join(","))
        },
        records: Vec::new(),
    };

    let report = run_suite(&selected, &ctx, &opts, |record| {
        match &record.status {
            RunStatus::Ok => {
                let table = record.table.as_ref().expect("ok record has a table");
                println!("{table}");
                if let Some(store) = &store {
                    if let Err(e) = store.write_record(record, ctx.seed, ctx.jobs, ctx.trials_scale)
                    {
                        eprintln!("artifact write failed for {}: {e}", record.slug);
                    }
                }
            }
            RunStatus::Failed { message } => {
                eprintln!(
                    "FAILED {} after {:.1} ms: {message}",
                    record.slug,
                    record.duration.as_secs_f64() * 1e3
                );
            }
            RunStatus::TimedOut { deadline } => {
                eprintln!(
                    "TIMED OUT {} after {:.1} s (deadline {} s); worker detached",
                    record.slug,
                    record.duration.as_secs_f64(),
                    deadline.as_secs()
                );
            }
            RunStatus::Skipped => {
                eprintln!("skipped {} (artifact reused from prior run)", record.slug);
            }
        }
        if let Some(store) = &store {
            manifest.records.push(record.clone());
            if let Err(e) = store.write_manifest(&manifest) {
                eprintln!("manifest write failed: {e}");
            }
        }
    });

    if let Some(store) = &store {
        eprintln!(
            "wrote {} artifact(s) + {}",
            report
                .records
                .iter()
                .filter(|r| r.status == RunStatus::Ok)
                .count(),
            store.dir().join("manifest.json").display()
        );
    }

    let failures = report.failures();
    if !failures.is_empty() {
        eprintln!(
            "{} experiment(s) did not complete: {}{}",
            failures.len(),
            failures
                .iter()
                .map(|r| r.slug.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            if report.aborted {
                " (suite aborted; use --keep-going to degrade instead)"
            } else {
                ""
            }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(args: &[&str]) -> Result<FleetArgs, String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        parse_fleet(&owned)
    }

    #[test]
    fn fleet_defaults_parse() {
        let a = fleet(&[]).expect("empty args are the defaults");
        assert_eq!(a.cfg.vehicles, 10_000);
        assert_eq!(a.cfg.ticks, 200);
        assert!(!a.shards_given);
        assert_eq!(a.cfg.defender, DefenderMode::Off);
    }

    #[test]
    fn fleet_attack_rate_rejects_nan_negative_and_garbage() {
        for bad in ["NaN", "nan", "-0.5", "inf", "rate"] {
            let err = fleet(&["--attack-rate", bad]).unwrap_err();
            assert!(err.contains("--attack-rate"), "{bad}: {err}");
            assert!(err.contains("finite nonnegative"), "{bad}: {err}");
        }
        assert_eq!(fleet(&["--attack-rate", "0"]).unwrap().cfg.attack_rate, 0.0);
        let ok = fleet(&["--attack-rate", "2.5e-3"]).unwrap();
        assert!((ok.cfg.attack_rate - 2.5e-3).abs() < 1e-12);
    }

    #[test]
    fn fleet_fidelity_rejects_zero_period() {
        let err = fleet(&["--fidelity", "mixed:0"]).unwrap_err();
        assert!(err.contains("mixed:K (K >= 1)"), "{err}");
        let err = fleet(&["--fidelity", "tables"]).unwrap_err();
        assert!(err.contains("--fidelity"), "{err}");
        let ok = fleet(&["--fidelity", "mixed:16"]).unwrap();
        assert_eq!(ok.cfg.fidelity, Fidelity::Mixed { every: 16 });
    }

    #[test]
    fn fleet_posture_depth_rejects_beyond_six_layers() {
        let err = fleet(&["--posture", "depth:7"]).unwrap_err();
        assert!(err.contains("K <= 6"), "{err}");
        let err = fleet(&["--posture", "deep:2"]).unwrap_err();
        assert!(err.contains("full, none or depth:K"), "{err}");
        let ok = fleet(&["--posture", "depth:6"]).unwrap();
        assert_eq!(ok.cfg.posture, DefensePosture::full());
    }

    #[test]
    fn fleet_defender_flags_parse_and_validate() {
        let ok = fleet(&["--defender", "closed-loop", "--defender-budget", "4"]).unwrap();
        assert_eq!(ok.cfg.defender, DefenderMode::ClosedLoop);
        assert_eq!(ok.cfg.defender_budget, 4.0);
        assert!(ok.cfg.defender_active());

        let err = fleet(&["--defender", "adaptive"]).unwrap_err();
        assert!(err.contains("off, static or closed-loop"), "{err}");
        for bad in ["NaN", "-1", "inf"] {
            let err = fleet(&["--defender-budget", bad]).unwrap_err();
            assert!(err.contains("--defender-budget"), "{bad}: {err}");
        }
        // Zero budget parses fine — it is the null defender.
        let ok = fleet(&["--defender", "static", "--defender-budget", "0"]).unwrap();
        assert!(!ok.cfg.defender_active());
    }

    #[test]
    fn fleet_rejects_missing_values_and_unknown_flags() {
        assert_eq!(
            fleet(&["--vehicles"]).unwrap_err(),
            "missing value for --vehicles"
        );
        assert!(fleet(&["--warp"])
            .unwrap_err()
            .contains("unknown fleet argument"));
        assert_eq!(
            fleet(&["--vehicles", "0"]).unwrap_err(),
            "--vehicles and --ticks must be positive"
        );
        assert!(fleet(&["--ticks", "-3"]).unwrap_err().contains("--ticks"));
    }
}
