//! Experiment runner: regenerates every table/figure of the paper.
//!
//! ```sh
//! cargo run -p autosec-bench --bin experiments            # everything
//! cargo run -p autosec-bench --bin experiments -- E9      # one experiment
//! ```

use autosec_bench::all_tables;

fn main() {
    let filter: Option<String> = std::env::args().nth(1).map(|s| s.to_uppercase());
    let mut printed = 0;
    for table in all_tables() {
        let keep = filter
            .as_deref()
            .map(|f| table.id.to_uppercase().contains(f))
            .unwrap_or(true);
        if keep {
            println!("{table}");
            printed += 1;
        }
    }
    if printed == 0 {
        eprintln!(
            "no experiment matched {:?}; available ids: E1 E2 E2b E3 E4 E5-E7 E8 E8b E9 E10 E11 E12 E13",
            filter.unwrap_or_default()
        );
        std::process::exit(1);
    }
}
