//! Experiment runner: regenerates every table/figure of the paper.
//!
//! ```sh
//! cargo run -p autosec-bench --bin experiments                 # everything
//! cargo run -p autosec-bench --bin experiments -- --list       # catalogue
//! cargo run -p autosec-bench --bin experiments -- E10          # one group
//! cargo run -p autosec-bench --bin experiments -- \
//!     --filter e2-lrp-rounds --jobs 4 --seed 7 --json          # one table,
//!                                                # four workers, artifacts
//! ```
//!
//! Filters match an experiment's group id (`E10`) or slug
//! (`e10-cascade`) **exactly**, case-insensitively — `E1` never drags
//! in E10–E13 — and a `tag:` prefix (`tag:parallel`) selects by
//! registry tag instead. With `--json`, per-experiment artifacts plus a
//! `manifest.json` land in `target/experiments/` (override with
//! `--out DIR`). Tables are bit-identical for any `--jobs` value.

use std::process::ExitCode;
use std::time::Instant;

use autosec_bench::{registry, ArtifactStore, ExperimentRecord, RunCtx, RunManifest};
use autosec_runner::DEFAULT_ARTIFACT_DIR;

struct Args {
    filter: Option<String>,
    seed: u64,
    jobs: usize,
    json: bool,
    canonical: bool,
    list: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments [FILTER] [--filter F] [--seed N] [--jobs N] [--json] [--canonical] [--out DIR] [--list]

  FILTER        group id (e.g. E10) or slug (e.g. e10-cascade); exact,
                case-insensitive match. tag:<tag> (e.g. tag:parallel)
                selects every experiment carrying that tag
  --seed N      master seed (default 42); every table is a pure function
                of it
  --jobs N      worker threads (default 1); output is identical for any N
  --json        write per-experiment artifacts + manifest.json
  --canonical   strip volatile keys (durations, jobs) from artifacts so
                runs with different --jobs diff byte-identical
  --out DIR     artifact directory (default {DEFAULT_ARTIFACT_DIR})
  --list        print the experiment catalogue and exit"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        filter: None,
        seed: autosec_runner::DEFAULT_SEED,
        jobs: 1,
        json: false,
        canonical: false,
        list: false,
        out: DEFAULT_ARTIFACT_DIR.to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--filter" | "-f" => args.filter = Some(value("--filter")),
            "--seed" | "-s" => {
                let v = value("--seed");
                args.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed {v:?}: expected an unsigned integer");
                    usage()
                });
            }
            "--jobs" | "-j" => {
                let v = value("--jobs");
                args.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --jobs {v:?}: expected a positive integer");
                    usage()
                });
            }
            "--json" => args.json = true,
            "--canonical" => args.canonical = true,
            "--list" | "-l" => args.list = true,
            "--out" | "-o" => args.out = value("--out"),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && args.filter.is_none() => {
                // Positional filter, compatible with the old runner.
                args.filter = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let reg = registry();

    if args.list {
        println!(
            "{:<22} {:<6} {:<9} {:<34} title",
            "slug", "id", "cost", "tags"
        );
        for e in reg.iter() {
            println!(
                "{:<22} {:<6} {:<9} {:<34} {}",
                e.slug,
                e.id,
                e.cost.to_string(),
                e.tags.join(","),
                e.title
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<_> = match args.filter.as_deref() {
        Some(f) => reg.select(f),
        None => reg.iter().collect(),
    };
    if selected.is_empty() {
        eprintln!(
            "no experiment matched {:?}; available ids: {}\n(or pick a slug from --list)",
            args.filter.unwrap_or_default(),
            reg.group_ids().join(" ")
        );
        return ExitCode::FAILURE;
    }

    let ctx = RunCtx::new(args.seed, args.jobs);
    let mut records = Vec::new();
    for e in &selected {
        let start = Instant::now();
        let table = e.run(&ctx);
        let duration = start.elapsed();
        println!("{table}");
        records.push(ExperimentRecord {
            slug: e.slug.to_owned(),
            id: e.id.to_owned(),
            duration,
            table,
        });
    }

    if args.json {
        let manifest = RunManifest {
            seed: ctx.seed,
            jobs: ctx.jobs,
            filter: args.filter.clone(),
            records,
        };
        let store = match ArtifactStore::create(&args.out) {
            Ok(s) if args.canonical => s.canonical(),
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create artifact dir {:?}: {e}", args.out);
                return ExitCode::FAILURE;
            }
        };
        match store.write_run(&manifest) {
            Ok(path) => eprintln!(
                "wrote {} artifacts + {}",
                manifest.records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("artifact write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
