//! Experiment runner: regenerates every table/figure of the paper.
//!
//! ```sh
//! cargo run -p autosec-bench --bin experiments                 # everything
//! cargo run -p autosec-bench --bin experiments -- --list       # catalogue
//! cargo run -p autosec-bench --bin experiments -- E10          # one group
//! cargo run -p autosec-bench --bin experiments -- \
//!     --filter e2-lrp-rounds --jobs 4 --seed 7 --json          # one table,
//!                                                # four workers, artifacts
//! cargo run -p autosec-bench --bin experiments -- \
//!     --json --keep-going                        # degrade, don't abort
//! cargo run -p autosec-bench --bin experiments -- \
//!     --json --resume                            # finish a prior run
//! cargo run -p autosec-bench --bin experiments -- \
//!     fleet --vehicles 100000 --ticks 200 --shards 4 --json
//!                                                # live-fleet service mode
//! cargo run -p autosec-bench --bin experiments -- \
//!     generate --count 16 --max-len 6 --seed 7 --json
//!                                                # generative composer
//! ```
//!
//! Filters match an experiment's group id (`E10`) or slug
//! (`e10-cascade`) **exactly**, case-insensitively — `E1` never drags
//! in E10–E13 — a `tag:` prefix (`tag:parallel`) selects by registry
//! tag, a `stride:` prefix (`stride:spoofing`) selects by STRIDE
//! threat-class annotation, and `failed:DIR` re-selects the failures a
//! prior manifest recorded. Several filters may be given (positionally or via
//! repeated `--filter`); an experiment matched by more than one still
//! runs exactly once. With `--json`, per-experiment artifacts plus a
//! `manifest.json` land in `target/experiments/` (override with
//! `--out DIR`), rewritten after every experiment so even an
//! interrupted run leaves a resumable manifest. Tables are
//! bit-identical for any `--jobs` value, and `--trials-scale`
//! multiplies Monte-Carlo trial counts without touching per-trial
//! streams.
//!
//! Fault tolerance: each experiment runs under `catch_unwind` with a
//! soft deadline derived from its cost class (`--deadline-secs`
//! overrides). A panicking or overtime experiment normally aborts the
//! suite (exit 1, failure recorded in the manifest); with
//! `--keep-going` it is recorded and the suite continues — healthy
//! experiments produce bit-identical artifacts to a clean run.
//! `--resume` re-reads the prior manifest and re-runs only failures
//! and gaps for the same `(seed, trials-scale, filter set)`.
//!
//! Process isolation: `--isolate on` executes each entry in a spawned
//! child process (this binary re-invoked with the hidden
//! `--worker-one <slug>` mode), so a deadline SIGKILLs the child for
//! real and per-experiment budgets become enforceable —
//! `--rss-limit-mb` caps peak resident set, `--cpu-limit-secs` caps
//! CPU time (default: the cost-derived deadline × jobs). Violations
//! are recorded as `oom_killed` / `cpu_exceeded` manifest statuses.
//! `--isolate auto` (the default) switches isolation on exactly when
//! a budget flag is present. `--retries N` re-runs any failed entry up
//! to N extra times with exponential backoff jittered from the run's
//! own seeded substream — the schedule is deterministic and
//! jobs-invariant. Healthy artifacts are bit-identical between
//! `--isolate on` and `off`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use autosec_adversary::{calibrated_graph, CalibrationConfig};
use autosec_bench::{registry, ArtifactStore, RunCtx, RunManifest};
use autosec_core::campaign::DefensePosture;
use autosec_fleet::{CampaignMode, DefenderMode, Fidelity, FleetConfig, FleetEngine};
use autosec_runner::{
    apply_worker_rlimits, panic_message, run_suite, silence_panics, worker_failure_path,
    ExperimentRecord, IsolateMode, Isolation, ResourceBudgets, ResumeState, RunStatus,
    SuiteOptions, WorkerSpec, DEFAULT_ARTIFACT_DIR,
};
use autosec_scengen::{evaluate_campaign, generate, CoverageMatrix, GenConfig};
use autosec_sim::{ArchLayer, SimRng, Stride};
use serde_json::{json, Value};

struct Args {
    filters: Vec<String>,
    seed: u64,
    jobs: usize,
    trials_scale: f64,
    json: bool,
    canonical: bool,
    list: bool,
    keep_going: bool,
    deadline_secs: Option<u64>,
    resume: bool,
    out: String,
    isolate: IsolateMode,
    retries: u32,
    rss_limit_mb: Option<u64>,
    cpu_limit_secs: Option<u64>,
    /// Hidden worker mode: run exactly one experiment and hand the
    /// artifact back through `--out` (set by the supervising parent,
    /// never by hand).
    worker_one: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments [FILTER...] [--filter F] [--seed N] [--jobs N] [--trials-scale F] [--json] [--canonical] [--keep-going] [--retries N] [--deadline-secs N] [--isolate on|off|auto] [--rss-limit-mb N] [--cpu-limit-secs N] [--resume] [--out DIR] [--list]
       experiments fleet [...]   (live-fleet service mode; see `fleet --help`)
       experiments generate [...] (generative scenario composer; see `generate --help`)

  FILTER        group id (e.g. E10) or slug (e.g. e10-cascade); exact,
                case-insensitive match. tag:<tag> (e.g. tag:parallel)
                selects every experiment carrying that tag;
                stride:<class> (e.g. stride:spoofing) selects by STRIDE
                threat-class annotation;
                failed:<dir-or-manifest> re-selects the failed /
                timed-out entries of a prior manifest. May be repeated;
                overlapping filters never run an experiment twice
  --seed N      master seed (default 42); every table is a pure function
                of it
  --jobs N      worker threads (default 1); output is identical for any N
  --trials-scale F
                multiply Monte-Carlo trial counts by F (default 1.0);
                a precision/runtime knob like --jobs, excluded from
                canonical artifacts
  --json        write per-experiment artifacts + manifest.json (the
                manifest is rewritten after every experiment, so an
                interrupted run stays resumable)
  --canonical   strip volatile keys (durations, jobs) from artifacts so
                runs with different --jobs diff byte-identical
  --keep-going  record a panicking or overtime experiment in the
                manifest and continue instead of aborting (exit 1 if
                anything failed)
  --deadline-secs N
                soft per-experiment deadline replacing the cost-derived
                defaults (cheap 30s / moderate 120s / heavy 600s)
  --isolate on|off|auto
                on: run each experiment in a supervised child process —
                a deadline SIGKILLs it for real and resource budgets are
                enforced. off: in-process threads (overtime workers are
                detached, flagged overtime_detached in the manifest).
                auto (default): on iff a budget flag is given
  --rss-limit-mb N
                kill a worker child whose peak resident set crosses N
                MiB (manifest status oom_killed); implies isolation
                under --isolate auto
  --cpu-limit-secs N
                kill a worker child whose CPU time crosses N seconds
                (manifest status cpu_exceeded); default under
                --isolate on: the cost-derived deadline x --jobs
  --retries N   re-run a failed/timed-out/killed experiment up to N
                extra times, with exponential backoff jittered from the
                run's seeded substream (deterministic, jobs-invariant);
                the manifest records the attempt count
  --resume      skip experiments whose artifact a prior manifest in the
                --out dir already covers for the same (seed,
                trials-scale, filter set); re-runs failures and gaps.
                Implies --json
  --out DIR     artifact directory (default {DEFAULT_ARTIFACT_DIR})
  --list        print the experiment catalogue and exit"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        filters: Vec::new(),
        seed: autosec_runner::DEFAULT_SEED,
        jobs: 1,
        trials_scale: 1.0,
        json: false,
        canonical: false,
        list: false,
        keep_going: false,
        deadline_secs: None,
        resume: false,
        out: DEFAULT_ARTIFACT_DIR.to_owned(),
        isolate: IsolateMode::Auto,
        retries: 0,
        rss_limit_mb: None,
        cpu_limit_secs: None,
        worker_one: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--filter" | "-f" => args.filters.push(value("--filter")),
            "--seed" | "-s" => {
                let v = value("--seed");
                args.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed {v:?}: expected an unsigned integer");
                    usage()
                });
            }
            "--jobs" | "-j" => {
                let v = value("--jobs");
                args.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --jobs {v:?}: expected a positive integer");
                    usage()
                });
            }
            "--trials-scale" | "-t" => {
                let v = value("--trials-scale");
                args.trials_scale = v
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("invalid --trials-scale {v:?}: expected a positive number");
                        usage()
                    });
            }
            "--deadline-secs" | "-d" => {
                let v = value("--deadline-secs");
                args.deadline_secs = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --deadline-secs {v:?}: expected a positive integer");
                    usage()
                }));
            }
            "--isolate" => {
                let v = value("--isolate");
                args.isolate = IsolateMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("invalid --isolate {v:?}: expected on, off or auto");
                    usage()
                });
            }
            "--retries" => {
                let v = value("--retries");
                args.retries = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --retries {v:?}: expected an unsigned integer");
                    usage()
                });
            }
            "--rss-limit-mb" => {
                let v = value("--rss-limit-mb");
                args.rss_limit_mb =
                    Some(v.parse().ok().filter(|mb| *mb > 0).unwrap_or_else(|| {
                        eprintln!("invalid --rss-limit-mb {v:?}: expected a positive integer");
                        usage()
                    }));
            }
            "--cpu-limit-secs" => {
                let v = value("--cpu-limit-secs");
                args.cpu_limit_secs =
                    Some(v.parse().ok().filter(|s| *s > 0).unwrap_or_else(|| {
                        eprintln!("invalid --cpu-limit-secs {v:?}: expected a positive integer");
                        usage()
                    }));
            }
            "--worker-one" => args.worker_one = Some(value("--worker-one")),
            "--json" => args.json = true,
            "--canonical" => args.canonical = true,
            "--keep-going" | "-k" => args.keep_going = true,
            "--resume" | "-r" => {
                args.resume = true;
                args.json = true;
            }
            "--list" | "-l" => args.list = true,
            "--out" | "-o" => args.out = value("--out"),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                // Positional filter(s), compatible with the old runner.
                args.filters.push(other.to_owned());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn fleet_usage() -> ! {
    eprintln!(
        "usage: experiments fleet [--vehicles N] [--ticks N] [--shards N] [--seed N]
                          [--snapshot-every N] [--posture full|none|depth:K]
                          [--fidelity live|calibrated|mixed:K]
                          [--campaign fixed|generated:N]
                          [--attack-rate F] [--no-faults]
                          [--defender off|static|closed-loop]
                          [--defender-budget F] [--json] [--canonical]
                          [--out DIR]

  Runs the live-fleet service mode: N per-vehicle state machines under
  continuous attack, fault and defense pressure for the given number of
  ticks. --fidelity picks the attack-resolution tier: 'calibrated'
  (default) resolves attacks against an outcome table calibrated from
  the live scenario models, 'live' replays every model end to end, and
  'mixed:K' (K >= 1) runs calibrated state with ~every Kth resolution
  shadowed by a live replay feeding a drift statistic.

  --campaign picks where direct attack pressure comes from: 'fixed'
  (default) replays the paper's step catalog, 'generated:N' (N >= 1)
  composes a pool of N capability-consistent multi-step campaigns from
  the calibrated attack graph (seeded by --seed) and replays those.
  Generated runs stay bit-identical across --shards and --fidelity.

  --defender arms the fleet-wide defense policy: 'static' spends
  --defender-budget up front hardening layers, 'closed-loop' holds it
  for a between-tick rule policy reading the alert tallies and census.
  A zero budget is the null defender, bit-identical to 'off'.

  --shards defaults to the available parallelism (capped by the
  vehicle count); pass it explicitly to override. On a single-core
  machine extra shards cost thread overhead instead of buying
  wall-clock time (see BENCH_fleet.json) — results are bit-identical
  for any --shards value either way; --json writes the canonical-keyed
  fleet.json artifact (with --canonical the volatile throughput keys
  are stripped so artifacts from different shard counts diff
  byte-identical)."
    );
    std::process::exit(2);
}

/// Parsed `fleet` subcommand arguments.
#[derive(Debug)]
struct FleetArgs {
    cfg: FleetConfig,
    json: bool,
    canonical: bool,
    /// Whether `--shards` was given explicitly (otherwise the caller
    /// defaults it to the available parallelism).
    shards_given: bool,
    out: String,
}

/// Parses the `fleet` argument grammar. Every rejection is a
/// `Result::Err` with the exact message the CLI prints — each parse
/// path is unit-tested below without spawning a process.
fn parse_fleet(args: &[String]) -> Result<FleetArgs, String> {
    let mut cfg = FleetConfig {
        vehicles: 10_000,
        ticks: 200,
        snapshot_every: 50,
        ..FleetConfig::default()
    };
    let mut json = false;
    let mut canonical = false;
    let mut shards_given = false;
    let mut out = DEFAULT_ARTIFACT_DIR.to_owned();

    fn parsed<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("invalid {name} {v:?}"))
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vehicles" | "-n" => cfg.vehicles = parsed("--vehicles", &value("--vehicles")?)?,
            "--ticks" => cfg.ticks = parsed("--ticks", &value("--ticks")?)?,
            "--shards" => {
                cfg.shards = parsed("--shards", &value("--shards")?)?;
                shards_given = true;
            }
            "--seed" | "-s" => cfg.seed = parsed("--seed", &value("--seed")?)?,
            "--snapshot-every" => {
                cfg.snapshot_every = parsed("--snapshot-every", &value("--snapshot-every")?)?;
            }
            "--attack-rate" => {
                let v = value("--attack-rate")?;
                cfg.attack_rate = parsed::<f64>("--attack-rate", &v)
                    .ok()
                    .filter(|r| r.is_finite() && *r >= 0.0)
                    .ok_or_else(|| {
                        format!("invalid --attack-rate {v:?}: expected a finite nonnegative rate")
                    })?;
            }
            "--posture" => {
                let v = value("--posture")?;
                cfg.posture = match v.as_str() {
                    "full" => DefensePosture::full(),
                    "none" => DefensePosture::none(),
                    other => {
                        let k: usize = other
                            .strip_prefix("depth:")
                            .and_then(|k| k.parse().ok())
                            .ok_or_else(|| {
                                format!("invalid --posture {v:?}: expected full, none or depth:K")
                            })?;
                        if k > 6 {
                            return Err(format!(
                                "invalid --posture {v:?}: the architecture has 6 layers (K <= 6)"
                            ));
                        }
                        DefensePosture::depth(k)
                    }
                };
            }
            "--fidelity" => {
                let v = value("--fidelity")?;
                cfg.fidelity = Fidelity::parse(&v).ok_or_else(|| {
                    format!(
                        "invalid --fidelity {v:?}: expected live, calibrated or mixed:K (K >= 1)"
                    )
                })?;
            }
            "--campaign" => {
                let v = value("--campaign")?;
                cfg.campaign = CampaignMode::parse(&v).ok_or_else(|| {
                    format!("invalid --campaign {v:?}: expected fixed or generated:N (N >= 1)")
                })?;
            }
            "--defender" => {
                let v = value("--defender")?;
                cfg.defender = DefenderMode::parse(&v).ok_or_else(|| {
                    format!("invalid --defender {v:?}: expected off, static or closed-loop")
                })?;
            }
            "--defender-budget" => {
                let v = value("--defender-budget")?;
                cfg.defender_budget = parsed::<f64>("--defender-budget", &v)
                    .ok()
                    .filter(|b| b.is_finite() && *b >= 0.0)
                    .ok_or_else(|| {
                        format!(
                            "invalid --defender-budget {v:?}: expected a finite nonnegative budget"
                        )
                    })?;
            }
            "--no-faults" => cfg.faults_enabled = false,
            "--json" => json = true,
            "--canonical" => canonical = true,
            "--out" | "-o" => out = value("--out")?,
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown fleet argument {other:?}")),
        }
    }
    if cfg.vehicles == 0 || cfg.ticks == 0 {
        return Err("--vehicles and --ticks must be positive".to_owned());
    }
    Ok(FleetArgs {
        cfg,
        json,
        canonical,
        shards_given,
        out,
    })
}

/// The `fleet` subcommand: one live-fleet run with a human summary
/// and an optional `fleet.json` artifact.
fn fleet_main(args: &[String]) -> ExitCode {
    let FleetArgs {
        mut cfg,
        json,
        canonical,
        shards_given,
        out,
    } = match parse_fleet(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            if msg != "help" {
                eprintln!("{msg}");
            }
            fleet_usage();
        }
    };
    if !shards_given {
        // Default: one shard per available core, capped by fleet size.
        // An explicit --shards overrides (still capped at runtime).
        cfg.shards = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(cfg.vehicles);
    }
    if cfg.shards == 0 {
        cfg.shards = 1;
    }

    eprintln!(
        "fleet: {} vehicles x {} ticks, {} shard(s), posture {}, fidelity {}, campaign {}, seed {}{}",
        cfg.vehicles,
        cfg.ticks,
        cfg.shards,
        cfg.posture_label(),
        cfg.fidelity.label(),
        cfg.campaign.label(),
        cfg.seed,
        if cfg.defender_active() {
            format!(
                ", defender {} (budget {})",
                cfg.defender.label(),
                cfg.defender_budget
            )
        } else {
            String::new()
        }
    );
    let report = FleetEngine::new(cfg).run();
    let census = &report.final_snapshot().census;
    let totals = report.totals();
    println!(
        "fleet availability {:.4}  mttr {:.1} ms  throughput {:.0} vehicle-ticks/s",
        report.availability,
        report.mttr_ms(),
        report.throughput()
    );
    println!(
        "final census: {} healthy / {} degraded / {} compromised / {} isolated / {} lost",
        census.healthy, census.degraded, census.compromised, census.isolated, census.lost
    );
    println!(
        "totals: {} attacks ({} succeeded), {} infections, {} fault injections, {} alerts, {} recoveries, {} backend breaches",
        totals.attacks_attempted,
        totals.attacks_succeeded,
        totals.infections,
        totals.fault_injections,
        totals.alerts,
        totals.recoveries,
        totals.backend_breaches
    );
    if report.drift.probes > 0 {
        println!(
            "drift: {} live probes, agreement {:.4}, success gap {:+.4}",
            report.drift.probes,
            report.drift.agreement_rate(),
            report.drift.success_gap()
        );
    }
    if let Some(d) = &report.defender {
        let dj = d.to_json();
        println!(
            "defender: {} action(s), spent {}/{}, hardened [{}], monitor boost {:.2}",
            dj["actions"],
            dj["spent"],
            dj["budget"],
            dj["hardened"]
                .as_array()
                .map(|a| a
                    .iter()
                    .filter_map(|l| l.as_str())
                    .collect::<Vec<_>>()
                    .join(", "))
                .unwrap_or_default(),
            dj["monitor_boost"].as_f64().unwrap_or(0.0)
        );
    }

    if json {
        let store = match ArtifactStore::create(&out) {
            Ok(s) if canonical => s.canonical(),
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create artifact dir {out:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match store.write_json("fleet", &report.to_json()) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("fleet artifact write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn generate_usage() -> ! {
    eprintln!(
        "usage: experiments generate [--count N] [--max-len N] [--seed N] [--jobs N]
                            [--trials N] [--layer L] [--stride-class S]
                            [--json] [--canonical] [--out DIR]

  Composes capability-consistent multi-step attack campaigns from the
  calibrated attack graph and replays each under the empty and full
  defense postures, then rolls the pool up into the STRIDE x layer
  coverage matrix (verdicts: covered / GAP / n/a).

  --count N        target number of distinct campaigns (default 16)
  --max-len N      maximum steps per campaign (default 6)
  --seed N         generator + calibration seed (default 42); the
                   output is a pure function of it
  --jobs N         worker threads for calibration and replay
                   (default 1); output is identical for any N
  --trials N       Monte-Carlo replays per campaign x posture
                   (default 200)
  --layer L        keep only campaigns touching this layer: physical,
                   network, software/platform, data, system-of-systems
                   or collaboration
  --stride-class S keep only campaigns touching this STRIDE class:
                   spoofing, tampering, repudiation, info-disclosure,
                   denial-of-service or elevation-of-privilege
                   (mnemonics s/t/r/i/d/e accepted)
  --json           write the scengen.json artifact
  --canonical      strip volatile keys (jobs) so runs with different
                   --jobs diff byte-identical
  --out DIR        artifact directory (default {DEFAULT_ARTIFACT_DIR})"
    );
    std::process::exit(2);
}

/// Parsed `generate` subcommand arguments.
#[derive(Debug)]
struct GenerateArgs {
    cfg: GenConfig,
    trials: usize,
    jobs: usize,
    json: bool,
    canonical: bool,
    out: String,
}

/// Parses an [`ArchLayer`] CLI label (the `Display` strings, plus a
/// few forgiving aliases).
fn parse_layer(s: &str) -> Option<ArchLayer> {
    match s.to_lowercase().as_str() {
        "physical" | "phy" => Some(ArchLayer::Physical),
        "network" | "net" | "ivn" => Some(ArchLayer::Network),
        "software/platform" | "software-platform" | "platform" | "sdv" => {
            Some(ArchLayer::SoftwarePlatform)
        }
        "data" => Some(ArchLayer::Data),
        "system-of-systems" | "sos" => Some(ArchLayer::SystemOfSystems),
        "collaboration" | "collab" => Some(ArchLayer::Collaboration),
        _ => None,
    }
}

/// Parses the `generate` argument grammar; `Err` carries the exact
/// message the CLI prints (unit-tested below).
fn parse_generate(args: &[String]) -> Result<GenerateArgs, String> {
    let mut cfg = GenConfig::new(16, 6, autosec_runner::DEFAULT_SEED);
    let mut trials = 200usize;
    let mut jobs = 1usize;
    let mut json = false;
    let mut canonical = false;
    let mut out = DEFAULT_ARTIFACT_DIR.to_owned();

    fn parsed<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("invalid {name} {v:?}"))
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--count" | "-c" => cfg.count = parsed("--count", &value("--count")?)?,
            "--max-len" => cfg.max_len = parsed("--max-len", &value("--max-len")?)?,
            "--seed" | "-s" => cfg.seed = parsed("--seed", &value("--seed")?)?,
            "--jobs" | "-j" => jobs = parsed("--jobs", &value("--jobs")?)?,
            "--trials" => trials = parsed("--trials", &value("--trials")?)?,
            "--layer" => {
                let v = value("--layer")?;
                cfg.layer = Some(parse_layer(&v).ok_or_else(|| {
                    format!(
                        "invalid --layer {v:?}: expected physical, network, software/platform, data, system-of-systems or collaboration"
                    )
                })?);
            }
            "--stride-class" => {
                let v = value("--stride-class")?;
                cfg.stride = Some(Stride::parse(&v).ok_or_else(|| {
                    format!(
                        "invalid --stride-class {v:?}: expected a STRIDE class label (e.g. spoofing, denial-of-service) or mnemonic s/t/r/i/d/e"
                    )
                })?);
            }
            "--json" => json = true,
            "--canonical" => canonical = true,
            "--out" | "-o" => out = value("--out")?,
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown generate argument {other:?}")),
        }
    }
    if cfg.count == 0 || cfg.max_len == 0 || trials == 0 || jobs == 0 {
        return Err("--count, --max-len, --trials and --jobs must be positive".to_owned());
    }
    Ok(GenerateArgs {
        cfg,
        trials,
        jobs,
        json,
        canonical,
        out,
    })
}

/// The `generate` subcommand: compose, replay, and report coverage.
fn generate_main(args: &[String]) -> ExitCode {
    let GenerateArgs {
        cfg,
        trials,
        jobs,
        json: write_json,
        canonical,
        out,
    } = match parse_generate(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            if msg != "help" {
                eprintln!("{msg}");
            }
            generate_usage();
        }
    };

    // Same calibration machinery and trial count as the fleet service
    // mode — generated campaigns replay the measured graph, never a
    // hand-typed table.
    let calib = CalibrationConfig::new(12, jobs);
    let graph = calibrated_graph(&calib, &SimRng::seed(cfg.seed).fork("scengen/calibration"));
    let pool = generate(&graph, &cfg);
    eprintln!(
        "generate: {} campaign(s) (requested {}), max-len {}, seed {}{}{}",
        pool.len(),
        cfg.count,
        cfg.max_len,
        cfg.seed,
        cfg.layer
            .map(|l| format!(", layer {l}"))
            .unwrap_or_default(),
        cfg.stride
            .map(|s| format!(", stride {s}"))
            .unwrap_or_default(),
    );
    if pool.is_empty() {
        eprintln!(
            "no campaign satisfied the acceptance filters; try a larger --count or --max-len"
        );
        return ExitCode::FAILURE;
    }

    let none = DefensePosture::none();
    let full = DefensePosture::full();
    let mut campaigns = Vec::with_capacity(pool.len());
    for campaign in &pool {
        let base = SimRng::seed(cfg.seed).fork(&format!("scengen/eval/{}", campaign.id));
        let undefended = evaluate_campaign(&graph, campaign, &none, &base, trials, jobs);
        let defended = evaluate_campaign(&graph, campaign, &full, &base, trials, jobs);
        let names = campaign.names(&graph);
        println!(
            "{}  len {}  breach {:.3} -> {:.3}  detect {:.3}  [{}]",
            campaign.id,
            campaign.edges.len(),
            undefended.breach,
            defended.breach,
            defended.detect,
            names.join(" -> "),
        );
        campaigns.push(json!({
            "id": campaign.id.clone(),
            "steps": names,
            "layers": campaign.edges.iter()
                .map(|&i| graph.edges()[i].layer.to_string()).collect::<Vec<_>>(),
            "strides": campaign.edges.iter()
                .map(|&i| graph.edges()[i].stride.label()).collect::<Vec<_>>(),
            "breach_undefended": undefended.breach,
            "breach_defended": defended.breach,
            "detect_defended": defended.detect,
        }));
    }

    let matrix = CoverageMatrix::build(&graph, &pool);
    println!(
        "coverage: {}/{} modeled STRIDE x layer cells ({:.0}%), {} GAP, {} unmodeled",
        matrix.covered(),
        matrix.modeled(),
        matrix.coverage() * 100.0,
        matrix.gaps(),
        matrix.cells.len() - matrix.modeled(),
    );
    for cell in matrix.cells.iter().filter(|c| c.pool_edges > 0) {
        println!(
            "  {:<24} {:<18} edges {}  hits {}  {}",
            cell.stride.label(),
            cell.layer.to_string(),
            cell.pool_edges,
            cell.campaign_hits,
            cell.verdict.label(),
        );
    }

    if write_json {
        let artifact: Value = json!({
            "config": {
                "count": cfg.count,
                "max_len": cfg.max_len,
                "seed": cfg.seed,
                "layer": cfg.layer.map(|l| l.to_string()),
                "stride": cfg.stride.map(|s| s.label()),
                "trials": trials,
            },
            "jobs": jobs,
            "campaigns": campaigns,
            "coverage": {
                "covered": matrix.covered(),
                "modeled": matrix.modeled(),
                "gaps": matrix.gaps(),
                "fraction": matrix.coverage(),
                "cells": matrix.cells.iter().map(|c| json!({
                    "stride": c.stride.label(),
                    "layer": c.layer.to_string(),
                    "edges": c.pool_edges,
                    "campaign_hits": c.campaign_hits,
                    "undefended_success": c.undefended_success,
                    "defended_success": c.defended_success,
                    "defended_detect": c.defended_detect,
                    "verdict": c.verdict.label(),
                })).collect::<Vec<_>>(),
            },
        });
        let store = match ArtifactStore::create(&out) {
            Ok(s) if canonical => s.canonical(),
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create artifact dir {out:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match store.write_json("scengen", &artifact) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("scengen artifact write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The hidden `--worker-one <slug>` mode: run exactly one experiment
/// in-process and hand the result back through the `--out` handoff
/// directory. Exit 0 + `<slug>.json` on success; exit 101 +
/// `<slug>.panic.txt` carrying the original panic message on panic.
/// The supervising parent polls budgets and classifies kills — this
/// child only installs the rlimit backstops and computes.
fn worker_main(slug: &str, args: &Args) -> ExitCode {
    apply_worker_rlimits(ResourceBudgets {
        rss_limit_mb: args.rss_limit_mb,
        cpu_limit_secs: args.cpu_limit_secs,
    });
    let reg = registry();
    let selected = reg.select(slug);
    let Some(exp) = selected.first() else {
        eprintln!("worker: unknown experiment slug {slug:?}");
        return ExitCode::FAILURE;
    };
    let ctx = RunCtx::new(args.seed, args.jobs).with_trials_scale(args.trials_scale);
    let store = match ArtifactStore::create(&args.out) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("worker: cannot create handoff dir {:?}: {e}", args.out);
            return ExitCode::FAILURE;
        }
    };
    // The parent reports the panic through the manifest; a default-hook
    // stderr dump would interleave with the parent's own output.
    let _quiet = silence_panics();
    let start = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| exp.run(&ctx))) {
        Ok(table) => {
            let record = ExperimentRecord::ok(exp.slug, exp.id, start.elapsed(), table);
            match store.write_record(&record, ctx.seed, ctx.jobs, ctx.trials_scale) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("worker: artifact write failed for {}: {e}", exp.slug);
                    ExitCode::FAILURE
                }
            }
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            let _ = std::fs::write(
                worker_failure_path(Path::new(&args.out), exp.slug),
                &message,
            );
            ExitCode::from(101)
        }
    }
}

fn main() -> ExitCode {
    // The `fleet` and `generate` subcommands have their own argument
    // grammars.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("fleet") {
        return fleet_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("generate") {
        return generate_main(&raw[1..]);
    }

    let args = parse_args();
    if let Some(slug) = args.worker_one.clone() {
        return worker_main(&slug, &args);
    }
    let reg = registry();

    if args.list {
        println!(
            "{:<22} {:<6} {:<9} {:<9} {:<34} {:<22} title",
            "slug", "id", "cost", "deadline", "tags", "stride"
        );
        for e in reg.iter() {
            let deadline = args
                .deadline_secs
                .map(Duration::from_secs)
                .unwrap_or_else(|| e.cost.deadline());
            let stride = if e.strides.is_empty() {
                "-".to_owned()
            } else {
                e.strides.join(",")
            };
            println!(
                "{:<22} {:<6} {:<9} {:<9} {:<34} {:<22} {}",
                e.slug,
                e.id,
                e.cost.to_string(),
                format!("{}s", deadline.as_secs()),
                e.tags.join(","),
                stride,
                e.title
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected = if args.filters.is_empty() {
        reg.all()
    } else {
        reg.select_many(&args.filters)
    };
    if selected.is_empty() {
        eprintln!(
            "no experiment matched {:?}; available ids: {}\n(or pick a slug from --list)",
            args.filters.join(","),
            reg.group_ids().join(" ")
        );
        return ExitCode::FAILURE;
    }

    let ctx = RunCtx::new(args.seed, args.jobs).with_trials_scale(args.trials_scale);
    let store = if args.json {
        match ArtifactStore::create(&args.out) {
            Ok(s) if args.canonical => Some(s.canonical()),
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot create artifact dir {:?}: {e}", args.out);
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    // Resume: reuse completed artifacts from the prior manifest when
    // the run parameters line up.
    let mut skip = std::collections::BTreeSet::new();
    if args.resume {
        match ResumeState::load(&args.out) {
            Some(state) if state.compatible_with(ctx.seed, ctx.trials_scale, &args.filters) => {
                skip = state.reusable(std::path::Path::new(&args.out));
                eprintln!(
                    "resume: reusing {} artifact(s), re-running {} failure(s) and any gaps",
                    skip.len(),
                    state.failed.len()
                );
            }
            Some(state) => {
                eprintln!(
                    "resume: prior manifest (seed {}, trials-scale {}, filter {:?}) does not match this run; re-running everything",
                    state.seed,
                    state.trials_scale,
                    state.filter.as_deref().unwrap_or("none")
                );
            }
            None => {
                eprintln!(
                    "resume: no usable manifest in {:?}; re-running everything",
                    args.out
                );
            }
        }
    }

    // Isolation: auto resolves to child processes exactly when a
    // budget was requested (budgets are unenforceable in-process).
    let budgets = ResourceBudgets {
        rss_limit_mb: args.rss_limit_mb,
        cpu_limit_secs: args.cpu_limit_secs,
    };
    let isolate_on = match args.isolate {
        IsolateMode::On => true,
        IsolateMode::Off => false,
        IsolateMode::Auto => budgets.any(),
    };
    let handoff_root = Path::new(&args.out).join(".workers");
    let isolation = if isolate_on {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("--isolate on: cannot locate own binary: {e}");
                return ExitCode::FAILURE;
            }
        };
        Some(Isolation {
            spec: WorkerSpec {
                exe,
                base_args: vec![
                    "--seed".into(),
                    ctx.seed.to_string(),
                    "--jobs".into(),
                    ctx.jobs.to_string(),
                    "--trials-scale".into(),
                    ctx.trials_scale.to_string(),
                ],
            },
            budgets,
            handoff_root: handoff_root.clone(),
        })
    } else {
        if budgets.any() {
            eprintln!("note: resource budgets need a child process; ignored under --isolate off");
        }
        None
    };

    let opts = SuiteOptions {
        keep_going: args.keep_going,
        deadline_override: args.deadline_secs.map(Duration::from_secs),
        skip,
        retries: args.retries,
        isolation,
    };

    // The manifest grows record by record and is rewritten after every
    // experiment, so a killed run still leaves a resumable trail.
    let mut manifest = RunManifest {
        seed: ctx.seed,
        jobs: ctx.jobs,
        trials_scale: ctx.trials_scale,
        filter: if args.filters.is_empty() {
            None
        } else {
            Some(args.filters.join(","))
        },
        records: Vec::new(),
    };

    let report = run_suite(&selected, &ctx, &opts, |record| {
        match &record.status {
            RunStatus::Ok => {
                let table = record.table.as_ref().expect("ok record has a table");
                println!("{table}");
                if let Some(store) = &store {
                    if let Err(e) = store.write_record(record, ctx.seed, ctx.jobs, ctx.trials_scale)
                    {
                        eprintln!("artifact write failed for {}: {e}", record.slug);
                    }
                }
            }
            RunStatus::Failed { message } => {
                eprintln!(
                    "FAILED {} after {:.1} ms: {message}",
                    record.slug,
                    record.duration.as_secs_f64() * 1e3
                );
            }
            RunStatus::TimedOut { deadline, detached } => {
                eprintln!(
                    "TIMED OUT {} after {:.1} s (deadline {} s); {}",
                    record.slug,
                    record.duration.as_secs_f64(),
                    deadline.as_secs(),
                    if *detached {
                        "worker detached (still running — use --isolate on for real kills)"
                    } else {
                        "worker killed"
                    }
                );
            }
            RunStatus::OomKilled {
                peak_rss_mb,
                limit_mb,
            } => {
                eprintln!(
                    "OOM-KILLED {} after {:.1} s (peak rss {} MiB, limit {} MiB)",
                    record.slug,
                    record.duration.as_secs_f64(),
                    peak_rss_mb,
                    limit_mb
                );
            }
            RunStatus::CpuExceeded {
                cpu_secs,
                limit_secs,
            } => {
                eprintln!(
                    "CPU-EXCEEDED {} after {:.1} s ({:.1} cpu-s, limit {} s)",
                    record.slug,
                    record.duration.as_secs_f64(),
                    cpu_secs,
                    limit_secs
                );
            }
            RunStatus::Skipped => {
                eprintln!("skipped {} (artifact reused from prior run)", record.slug);
            }
        }
        if let Some(store) = &store {
            manifest.records.push(record.clone());
            if let Err(e) = store.write_manifest(&manifest) {
                eprintln!("manifest write failed: {e}");
            }
        }
    });

    // The per-slug handoff dirs are removed as each verdict lands;
    // dropping the (now empty) root keeps isolate-on artifact trees
    // diffable against isolate-off ones.
    let _ = std::fs::remove_dir(&handoff_root);

    if let Some(store) = &store {
        eprintln!(
            "wrote {} artifact(s) + {}",
            report
                .records
                .iter()
                .filter(|r| r.status == RunStatus::Ok)
                .count(),
            store.dir().join("manifest.json").display()
        );
    }

    let failures = report.failures();
    if !failures.is_empty() {
        eprintln!(
            "{} experiment(s) did not complete: {}{}",
            failures.len(),
            failures
                .iter()
                .map(|r| r.slug.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            if report.aborted {
                " (suite aborted; use --keep-going to degrade instead)"
            } else {
                ""
            }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(args: &[&str]) -> Result<FleetArgs, String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        parse_fleet(&owned)
    }

    #[test]
    fn fleet_defaults_parse() {
        let a = fleet(&[]).expect("empty args are the defaults");
        assert_eq!(a.cfg.vehicles, 10_000);
        assert_eq!(a.cfg.ticks, 200);
        assert!(!a.shards_given);
        assert_eq!(a.cfg.defender, DefenderMode::Off);
    }

    #[test]
    fn fleet_attack_rate_rejects_nan_negative_and_garbage() {
        for bad in ["NaN", "nan", "-0.5", "inf", "rate"] {
            let err = fleet(&["--attack-rate", bad]).unwrap_err();
            assert!(err.contains("--attack-rate"), "{bad}: {err}");
            assert!(err.contains("finite nonnegative"), "{bad}: {err}");
        }
        assert_eq!(fleet(&["--attack-rate", "0"]).unwrap().cfg.attack_rate, 0.0);
        let ok = fleet(&["--attack-rate", "2.5e-3"]).unwrap();
        assert!((ok.cfg.attack_rate - 2.5e-3).abs() < 1e-12);
    }

    #[test]
    fn fleet_fidelity_rejects_zero_period() {
        let err = fleet(&["--fidelity", "mixed:0"]).unwrap_err();
        assert!(err.contains("mixed:K (K >= 1)"), "{err}");
        let err = fleet(&["--fidelity", "tables"]).unwrap_err();
        assert!(err.contains("--fidelity"), "{err}");
        let ok = fleet(&["--fidelity", "mixed:16"]).unwrap();
        assert_eq!(ok.cfg.fidelity, Fidelity::Mixed { every: 16 });
    }

    #[test]
    fn fleet_posture_depth_rejects_beyond_six_layers() {
        let err = fleet(&["--posture", "depth:7"]).unwrap_err();
        assert!(err.contains("K <= 6"), "{err}");
        let err = fleet(&["--posture", "deep:2"]).unwrap_err();
        assert!(err.contains("full, none or depth:K"), "{err}");
        let ok = fleet(&["--posture", "depth:6"]).unwrap();
        assert_eq!(ok.cfg.posture, DefensePosture::full());
    }

    #[test]
    fn fleet_defender_flags_parse_and_validate() {
        let ok = fleet(&["--defender", "closed-loop", "--defender-budget", "4"]).unwrap();
        assert_eq!(ok.cfg.defender, DefenderMode::ClosedLoop);
        assert_eq!(ok.cfg.defender_budget, 4.0);
        assert!(ok.cfg.defender_active());

        let err = fleet(&["--defender", "adaptive"]).unwrap_err();
        assert!(err.contains("off, static or closed-loop"), "{err}");
        for bad in ["NaN", "-1", "inf"] {
            let err = fleet(&["--defender-budget", bad]).unwrap_err();
            assert!(err.contains("--defender-budget"), "{bad}: {err}");
        }
        // Zero budget parses fine — it is the null defender.
        let ok = fleet(&["--defender", "static", "--defender-budget", "0"]).unwrap();
        assert!(!ok.cfg.defender_active());
    }

    #[test]
    fn fleet_campaign_flag_parses_and_validates() {
        let ok = fleet(&["--campaign", "generated:12"]).unwrap();
        assert_eq!(ok.cfg.campaign, CampaignMode::Generated { count: 12 });
        let ok = fleet(&["--campaign", "fixed"]).unwrap();
        assert_eq!(ok.cfg.campaign, CampaignMode::Fixed);
        for bad in ["generated:0", "generated", "scripted"] {
            let err = fleet(&["--campaign", bad]).unwrap_err();
            assert!(err.contains("fixed or generated:N"), "{bad}: {err}");
        }
    }

    fn gen(args: &[&str]) -> Result<GenerateArgs, String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        parse_generate(&owned)
    }

    #[test]
    fn generate_defaults_parse() {
        let a = gen(&[]).expect("empty args are the defaults");
        assert_eq!(a.cfg.count, 16);
        assert_eq!(a.cfg.max_len, 6);
        assert_eq!(a.cfg.seed, autosec_runner::DEFAULT_SEED);
        assert_eq!(a.trials, 200);
        assert_eq!(a.jobs, 1);
        assert!(a.cfg.layer.is_none() && a.cfg.stride.is_none());
        assert!(!a.json && !a.canonical);
    }

    #[test]
    fn generate_filters_parse() {
        let a = gen(&["--layer", "sos", "--stride-class", "dos"]).unwrap();
        assert_eq!(a.cfg.layer, Some(ArchLayer::SystemOfSystems));
        assert_eq!(a.cfg.stride, Some(Stride::DenialOfService));
        let a = gen(&["--layer", "software/platform", "--stride-class", "e"]).unwrap();
        assert_eq!(a.cfg.layer, Some(ArchLayer::SoftwarePlatform));
        assert_eq!(a.cfg.stride, Some(Stride::ElevationOfPrivilege));

        let err = gen(&["--layer", "cloud"]).unwrap_err();
        assert!(err.contains("--layer"), "{err}");
        let err = gen(&["--stride-class", "phishing"]).unwrap_err();
        assert!(err.contains("--stride-class"), "{err}");
    }

    #[test]
    fn generate_rejects_zero_sizes_and_unknown_flags() {
        for bad in [
            &["--count", "0"][..],
            &["--max-len", "0"],
            &["--trials", "0"],
            &["--jobs", "0"],
        ] {
            let err = gen(bad).unwrap_err();
            assert!(err.contains("must be positive"), "{bad:?}: {err}");
        }
        assert_eq!(gen(&["--count"]).unwrap_err(), "missing value for --count");
        assert!(gen(&["--warp"]).unwrap_err().contains("unknown generate"));
    }

    #[test]
    fn layer_labels_round_trip_through_parse_layer() {
        for layer in ArchLayer::ALL {
            assert_eq!(parse_layer(&layer.to_string()), Some(layer));
        }
        assert_eq!(parse_layer("SOS"), Some(ArchLayer::SystemOfSystems));
        assert_eq!(parse_layer("nope"), None);
    }

    #[test]
    fn fleet_rejects_missing_values_and_unknown_flags() {
        assert_eq!(
            fleet(&["--vehicles"]).unwrap_err(),
            "missing value for --vehicles"
        );
        assert!(fleet(&["--warp"])
            .unwrap_err()
            .contains("unknown fleet argument"));
        assert_eq!(
            fleet(&["--vehicles", "0"]).unwrap_err(),
            "--vehicles and --ticks must be positive"
        );
        assert!(fleet(&["--ticks", "-3"]).unwrap_err().contains("--ticks"));
    }
}
