//! Experiment runner: regenerates every table/figure of the paper.
//!
//! ```sh
//! cargo run -p autosec-bench --bin experiments                 # everything
//! cargo run -p autosec-bench --bin experiments -- --list       # catalogue
//! cargo run -p autosec-bench --bin experiments -- E10          # one group
//! cargo run -p autosec-bench --bin experiments -- \
//!     --filter e2-lrp-rounds --jobs 4 --seed 7 --json          # one table,
//!                                                # four workers, artifacts
//! ```
//!
//! Filters match an experiment's group id (`E10`) or slug
//! (`e10-cascade`) **exactly**, case-insensitively — `E1` never drags
//! in E10–E13 — and a `tag:` prefix (`tag:parallel`) selects by
//! registry tag instead. Several filters may be given (positionally or
//! via repeated `--filter`); an experiment matched by more than one
//! still runs exactly once. With `--json`, per-experiment artifacts
//! plus a `manifest.json` land in `target/experiments/` (override with
//! `--out DIR`). Tables are bit-identical for any `--jobs` value, and
//! `--trials-scale` multiplies Monte-Carlo trial counts without
//! touching per-trial streams.

use std::process::ExitCode;
use std::time::Instant;

use autosec_bench::{registry, ArtifactStore, ExperimentRecord, RunCtx, RunManifest};
use autosec_runner::DEFAULT_ARTIFACT_DIR;

struct Args {
    filters: Vec<String>,
    seed: u64,
    jobs: usize,
    trials_scale: f64,
    json: bool,
    canonical: bool,
    list: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments [FILTER...] [--filter F] [--seed N] [--jobs N] [--trials-scale F] [--json] [--canonical] [--out DIR] [--list]

  FILTER        group id (e.g. E10) or slug (e.g. e10-cascade); exact,
                case-insensitive match. tag:<tag> (e.g. tag:parallel)
                selects every experiment carrying that tag. May be
                repeated; overlapping filters never run an experiment
                twice
  --seed N      master seed (default 42); every table is a pure function
                of it
  --jobs N      worker threads (default 1); output is identical for any N
  --trials-scale F
                multiply Monte-Carlo trial counts by F (default 1.0);
                a precision/runtime knob like --jobs, excluded from
                canonical artifacts
  --json        write per-experiment artifacts + manifest.json
  --canonical   strip volatile keys (durations, jobs) from artifacts so
                runs with different --jobs diff byte-identical
  --out DIR     artifact directory (default {DEFAULT_ARTIFACT_DIR})
  --list        print the experiment catalogue and exit"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        filters: Vec::new(),
        seed: autosec_runner::DEFAULT_SEED,
        jobs: 1,
        trials_scale: 1.0,
        json: false,
        canonical: false,
        list: false,
        out: DEFAULT_ARTIFACT_DIR.to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--filter" | "-f" => args.filters.push(value("--filter")),
            "--seed" | "-s" => {
                let v = value("--seed");
                args.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed {v:?}: expected an unsigned integer");
                    usage()
                });
            }
            "--jobs" | "-j" => {
                let v = value("--jobs");
                args.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --jobs {v:?}: expected a positive integer");
                    usage()
                });
            }
            "--trials-scale" | "-t" => {
                let v = value("--trials-scale");
                args.trials_scale = v
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("invalid --trials-scale {v:?}: expected a positive number");
                        usage()
                    });
            }
            "--json" => args.json = true,
            "--canonical" => args.canonical = true,
            "--list" | "-l" => args.list = true,
            "--out" | "-o" => args.out = value("--out"),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                // Positional filter(s), compatible with the old runner.
                args.filters.push(other.to_owned());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let reg = registry();

    if args.list {
        println!(
            "{:<22} {:<6} {:<9} {:<34} title",
            "slug", "id", "cost", "tags"
        );
        for e in reg.iter() {
            println!(
                "{:<22} {:<6} {:<9} {:<34} {}",
                e.slug,
                e.id,
                e.cost.to_string(),
                e.tags.join(","),
                e.title
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<_> = if args.filters.is_empty() {
        reg.iter().collect()
    } else {
        reg.select_many(&args.filters)
    };
    if selected.is_empty() {
        eprintln!(
            "no experiment matched {:?}; available ids: {}\n(or pick a slug from --list)",
            args.filters.join(","),
            reg.group_ids().join(" ")
        );
        return ExitCode::FAILURE;
    }

    let ctx = RunCtx::new(args.seed, args.jobs).with_trials_scale(args.trials_scale);
    let mut records = Vec::new();
    for e in &selected {
        let start = Instant::now();
        let table = e.run(&ctx);
        let duration = start.elapsed();
        println!("{table}");
        records.push(ExperimentRecord {
            slug: e.slug.to_owned(),
            id: e.id.to_owned(),
            duration,
            table,
        });
    }

    if args.json {
        let manifest = RunManifest {
            seed: ctx.seed,
            jobs: ctx.jobs,
            trials_scale: ctx.trials_scale,
            filter: if args.filters.is_empty() {
                None
            } else {
                Some(args.filters.join(","))
            },
            records,
        };
        let store = match ArtifactStore::create(&args.out) {
            Ok(s) if args.canonical => s.canonical(),
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create artifact dir {:?}: {e}", args.out);
                return ExitCode::FAILURE;
            }
        };
        match store.write_run(&manifest) {
            Ok(path) => eprintln!(
                "wrote {} artifacts + {}",
                manifest.records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("artifact write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
