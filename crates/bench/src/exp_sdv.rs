//! E8 / E8b: SDV reconfiguration and the plug-and-charge comparison
//! (Fig. 7 and §IV-C).

use autosec_runner::{par_trials, RunCtx};
use autosec_sdv::charging::{iso15118_flow, ssi_flow};
use autosec_sdv::component::{Asil, HardwareNode, SoftwareComponent};
use autosec_sdv::platform::SdvPlatform;
use autosec_sdv::SdvError;
use autosec_sim::SimRng;
use autosec_ssi::prelude::*;

use crate::Table;

/// Outcome of the reconfiguration experiment for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigOutcome {
    /// Components successfully placed.
    pub placed: usize,
    /// Rogue placements rejected.
    pub rogue_rejected: usize,
    /// Components re-placed after a node failure.
    pub failover_recovered: usize,
    /// Mutual-authentication operations performed.
    pub auth_ops: usize,
}

/// Runs the reconfiguration scenario: register nodes & components,
/// attempt one rogue placement, fail a node, re-place. All randomness
/// comes from the caller-supplied substream.
pub fn reconfiguration_run(n_components: usize, rng: &mut SimRng) -> ReconfigOutcome {
    let (mut platform, mut oem) = SdvPlatform::new(rng);
    for id in ["hpc-0", "hpc-1"] {
        platform
            .register_node(
                rng,
                HardwareNode {
                    id: id.into(),
                    provides: vec!["can-if".into()],
                    compute_capacity: 1000,
                    max_asil: Asil::D,
                },
                &mut oem,
            )
            .expect("node registration");
    }
    let mut placed = 0;
    for i in 0..n_components {
        let id = format!("svc-{i}");
        platform
            .register_component(
                rng,
                SoftwareComponent {
                    id: id.clone(),
                    vendor: "oem".into(),
                    version: (1, 0, 0),
                    requires: vec!["can-if".into()],
                    compute_cost: 5,
                    asil: Asil::B,
                },
                &mut oem,
            )
            .expect("component registration");
        if platform.place(&id, "hpc-0").is_ok() {
            placed += 1;
        }
    }

    // Rogue attempt.
    let mut rogue = Wallet::create(rng, "rogue", platform.registry());
    platform
        .register_component(
            rng,
            SoftwareComponent {
                id: "implant".into(),
                vendor: "rogue".into(),
                version: (1, 0, 0),
                requires: vec!["can-if".into()],
                compute_cost: 1,
                asil: Asil::Qm,
            },
            &mut rogue,
        )
        .expect("registration is open");
    let rogue_rejected = usize::from(matches!(
        platform.place("implant", "hpc-0"),
        Err(SdvError::AuthFailed(_))
    ));

    // Failover.
    let stranded = platform.fail_node("hpc-0").expect("known node");
    ReconfigOutcome {
        placed,
        rogue_rejected,
        failover_recovered: placed - stranded.len(),
        auth_ops: platform.auth_operations,
    }
}

/// E8 table: each fleet size runs as an independent [`par_trials`]
/// trial on its own `fork_idx` substream.
pub fn e8_reconfiguration_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E8",
        "Fig. 7 — zero-trust SDV reconfiguration",
        &[
            "components",
            "placed",
            "rogue rejected",
            "failover recovered",
            "auth ops",
        ],
    );
    const SIZES: [usize; 3] = [2, 5, 10];
    let base = ctx.rng("e8-reconfiguration");
    let outcomes = par_trials(ctx.jobs, SIZES.len(), &base, |i, mut rng| {
        reconfiguration_run(SIZES[i], &mut rng)
    });
    for (n, r) in SIZES.iter().zip(outcomes.iter()) {
        t.push_row(vec![
            n.to_string(),
            r.placed.to_string(),
            if r.rogue_rejected == 1 { "yes" } else { "NO" }.into(),
            format!("{}/{}", r.failover_recovered, r.placed),
            r.auth_ops.to_string(),
        ]);
    }
    t
}

/// E8b table: charging flows.
pub fn e8b_charging_table() -> Table {
    let mut t = Table::new(
        "E8b",
        "§IV-C — plug-and-charge: ISO-15118-style PKI vs SSI",
        &[
            "flow",
            "messages",
            "verifications",
            "station roots",
            "offline",
            "authorized",
        ],
    );
    let mut rng = SimRng::seed(15118);
    for n_emsp in [1usize, 4, 16] {
        let r = iso15118_flow(&mut rng, n_emsp).expect("flow completes");
        t.push_row(vec![
            format!("ISO 15118 ({n_emsp} eMSPs)"),
            r.messages.to_string(),
            r.signature_verifications.to_string(),
            r.station_trust_roots.to_string(),
            r.supports_offline.to_string(),
            r.authorized.to_string(),
        ]);
    }
    for (label, offline) in [("SSI online", false), ("SSI offline", true)] {
        let r = ssi_flow(&mut rng, offline).expect("flow completes");
        t.push_row(vec![
            label.to_owned(),
            r.messages.to_string(),
            r.signature_verifications.to_string(),
            r.station_trust_roots.to_string(),
            r.supports_offline.to_string(),
            r.authorized.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconfiguration_recovers_and_rejects() {
        let r = reconfiguration_run(3, &mut SimRng::seed(1));
        assert_eq!(r.placed, 3);
        assert_eq!(r.rogue_rejected, 1);
        assert_eq!(r.failover_recovered, 3);
        assert!(r.auth_ops >= 12, "{}", r.auth_ops); // 2 per placement incl. failover
    }

    #[test]
    fn charging_table_has_five_rows() {
        let t = e8b_charging_table();
        assert_eq!(t.rows.len(), 5);
    }
}
