//! E14 / E15: resilience experiments — fault sweeps and self-healing
//! recovery (the dependability counterpart to the attack campaign).
//!
//! E14 sweeps each parameterized fault family over an intensity grid
//! and measures the layer adapter's residual health and detection rate;
//! the zero-intensity column doubles as a live no-op check. E15 runs
//! the [`FaultPlan::standard`] cross-layer plan through the
//! [`RecoveryEngine`]'s detect → isolate → reconfigure → verify loop
//! and reports MTTR and availability, plus the attack campaign replayed
//! under the same fault load.

use autosec_core::campaign::{run_campaign, run_campaign_faulted, DefensePosture};
use autosec_faults::{FaultPlan, RecoveryEngine};
use autosec_runner::{par_trials, RunCtx};
use autosec_sim::{FaultEffect, SimDuration};

use crate::Table;

/// Monte-Carlo trials per (family, intensity) point and per recovery
/// posture. Moderate on purpose: the collaboration adapter signs real
/// V2X messages per trial.
pub const TRIALS: usize = 40;

/// A fault family: stable name plus the intensity → effect mapping.
pub type SweepFamily = (&'static str, fn(f64) -> FaultEffect);

/// The continuously parameterized fault families swept by E14.
///
/// Intensity 0.0 must map every family to a no-op effect — that row is
/// the sweep's built-in control. The discrete platform faults
/// (crash/restart/rollback) have no intensity axis and are exercised by
/// E15's standard plan instead.
pub fn sweep_families() -> Vec<SweepFamily> {
    vec![
        ("frame-drop", |x| FaultEffect::DropFrames { p: x }),
        ("frame-delay", |x| FaultEffect::DelayFrames {
            p: x,
            delay: SimDuration::from_ms(5),
        }),
        ("sensor-dropout", |x| FaultEffect::SensorDropout { p: x }),
        ("energy-burst", |x| FaultEffect::EnergyBurst {
            power: x * 6.0,
        }),
        ("fabricated-detections", |x| {
            FaultEffect::FabricateDetections {
                count: (x * 10.0).round() as usize,
            }
        }),
        ("clock-skew", |x| FaultEffect::ClockSkew {
            skew_ns: x * 4_000.0,
        }),
        ("link-failure", |x| FaultEffect::FailLinks { p: x }),
    ]
}

/// Mean health and detection rate for one fault at one intensity.
///
/// Trials fan out over [`par_trials`] on `fork_idx` substreams of
/// `stream` — bit-identical for every `jobs` value.
fn sweep_point(
    effect: FaultEffect,
    stream: &autosec_sim::SimRng,
    jobs: usize,
    trials: usize,
) -> (f64, f64) {
    let layer = effect.layer();
    let outcomes = par_trials(jobs, trials, stream, move |_, mut rng| {
        let rec = autosec_faults::target_for(layer).apply(&[effect], true, &mut rng);
        (rec.health, rec.detected)
    });
    let health: f64 = outcomes.iter().map(|o| o.0).sum::<f64>() / trials as f64;
    let detected = outcomes.iter().filter(|o| o.1).count() as f64 / trials as f64;
    (health, detected)
}

/// E14 table: residual health and detection rate per fault family and
/// intensity — the resilience curves behind the paper's graceful-
/// degradation argument.
pub fn e14_fault_sweep_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E14",
        "§VIII — fault-sweep resilience curves per layer adapter",
        &["fault", "layer", "intensity", "mean health", "detected"],
    );
    let base = ctx.rng("e14-fault-sweep");
    for (family, make) in sweep_families() {
        for intensity in [0.0, 0.1, 0.25, 0.5] {
            let effect = make(intensity);
            let stream = base.fork(&format!("{family}/{intensity:.2}"));
            let (health, detected) = sweep_point(effect, &stream, ctx.jobs, ctx.trials(TRIALS));
            t.push_row(vec![
                family.to_owned(),
                effect.layer().to_string(),
                format!("{intensity:.2}"),
                format!("{:.1}%", health * 100.0),
                format!("{:.1}%", detected * 100.0),
            ]);
        }
    }
    t
}

/// Aggregated recovery statistics for one posture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPoint {
    /// Fraction of injected faults detected.
    pub detected: f64,
    /// Fraction repaired and verified inside the horizon.
    pub recovered: f64,
    /// Mean time to recovery in ms (over recovered incidents).
    pub mttr_ms: f64,
    /// Time-averaged composite service health.
    pub availability: f64,
}

/// Runs [`TRIALS`] independent standard plans through the recovery
/// engine and averages the report metrics.
pub fn recovery_sweep(
    defended: bool,
    base: &autosec_sim::SimRng,
    jobs: usize,
    trials: usize,
) -> RecoveryPoint {
    let reports = par_trials(jobs, trials, base, move |_, rng| {
        let plan = FaultPlan::standard(&rng.fork("plan"));
        let r = RecoveryEngine::new(defended).run(&plan, &rng.fork("run"));
        (
            r.detected() as f64 / plan.len() as f64,
            r.recovered() as f64 / plan.len() as f64,
            r.mttr_ms(),
            r.availability(),
        )
    });
    let n = trials as f64;
    let mean = |f: fn(&(f64, f64, f64, f64)) -> f64| reports.iter().map(f).sum::<f64>() / n;
    RecoveryPoint {
        detected: mean(|r| r.0),
        recovered: mean(|r| r.1),
        mttr_ms: mean(|r| r.2),
        availability: mean(|r| r.3),
    }
}

/// E15 table: recovery and MTTR under combined attack + fault load.
///
/// The recovery columns average [`TRIALS`] standard plans per posture;
/// the campaign columns replay the eight-step attack campaign with and
/// without the fault plan active, showing how faults mask or amplify
/// attack outcomes.
pub fn e15_recovery_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E15",
        "§VIII — self-healing recovery and MTTR under attack + fault load",
        &[
            "posture",
            "detected",
            "recovered",
            "MTTR",
            "availability",
            "campaign wins clean",
            "campaign wins faulted",
        ],
    );
    let base = ctx.rng("e15-recovery");
    let campaign_plan = FaultPlan::standard(&base.fork("campaign-plan"));
    for (label, posture, defended) in [
        ("none", DefensePosture::none(), false),
        ("full", DefensePosture::full(), true),
    ] {
        let point = recovery_sweep(defended, &base.fork(label), ctx.jobs, ctx.trials(TRIALS));
        let clean = run_campaign(&posture, ctx.seed);
        let faulted = run_campaign_faulted(&posture, ctx.seed, campaign_plan.campaign_faults());
        t.push_row(vec![
            label.to_owned(),
            format!("{:.1}%", point.detected * 100.0),
            format!("{:.1}%", point.recovered * 100.0),
            format!("{:.1} ms", point.mttr_ms),
            format!("{:.1}%", point.availability * 100.0),
            format!("{}/{}", clean.succeeded_attacks(), clean.total_attacks()),
            format!(
                "{}/{}",
                faulted.succeeded_attacks(),
                faulted.total_attacks()
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_sim::SimRng;

    #[test]
    fn e14_zero_intensity_rows_are_clean() {
        let t = e14_fault_sweep_table(&RunCtx::default());
        assert_eq!(t.rows.len(), sweep_families().len() * 4);
        for row in t.rows.iter().filter(|r| r[2] == "0.00") {
            assert_eq!(row[3], "100.0%", "{row:?}");
            assert_eq!(row[4], "0.0%", "{row:?}");
        }
    }

    #[test]
    fn e14_health_degrades_with_intensity() {
        let t = e14_fault_sweep_table(&RunCtx::default());
        let health =
            |row: &[String]| -> f64 { row[3].trim_end_matches('%').parse().expect("number") };
        for family in ["frame-drop", "sensor-dropout", "link-failure"] {
            let rows: Vec<_> = t.rows.iter().filter(|r| r[0] == family).collect();
            assert!(
                health(rows[0]) > health(rows[3]),
                "{family}: {} !> {}",
                health(rows[0]),
                health(rows[3])
            );
        }
    }

    #[test]
    fn e15_defended_beats_undefended() {
        let base = SimRng::seed(3).fork("e15-test");
        let none = recovery_sweep(false, &base, 1, TRIALS);
        let full = recovery_sweep(true, &base, 1, TRIALS);
        assert_eq!(none.detected, 0.0);
        assert_eq!(none.recovered, 0.0);
        assert!(full.detected > 0.8, "{full:?}");
        assert!(
            full.availability > none.availability,
            "{full:?} vs {none:?}"
        );
    }

    #[test]
    fn e15_table_renders_both_postures() {
        let t = e15_recovery_table(&RunCtx::default());
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "none");
        assert_eq!(t.rows[1][0], "full");
    }

    #[test]
    fn tables_are_jobs_invariant() {
        let serial = RunCtx::new(42, 1);
        let par = RunCtx::new(42, 4);
        assert_eq!(
            e14_fault_sweep_table(&serial).to_json(),
            e14_fault_sweep_table(&par).to_json()
        );
        assert_eq!(
            e15_recovery_table(&serial).to_json(),
            e15_recovery_table(&par).to_json()
        );
    }
}
