//! Ablation experiments (A1–A6): the security/cost knobs behind the
//! headline results, swept one at a time.

use autosec_phy::attacks::HrpAttack;
use autosec_phy::hrp::{HrpConfig, HrpRanging, ReceiverKind};
use autosec_phy::vrange::{measure as vrange_measure, VRangeAttack, VRangeConfig};
use autosec_runner::{par_trials, RunCtx};
use autosec_secproto::canal::{CanalSender, CANAL_HEADER_BYTES, CANAL_TRAILER_BYTES};
use autosec_secproto::secoc::SecOcConfig;
use autosec_secproto::seemqtt::{adversary_recovers, publish, subscribe, BrokerNetwork};

use crate::Table;

/// A1: HRP consistency-threshold sweep — security versus availability.
///
/// Each threshold's trials fan out over [`par_trials`]; one trial runs
/// a matched attacked + clean measurement pair on its own `fork_idx`
/// substream.
pub fn a1_hrp_threshold_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "A1",
        "ablation — HRP integrity-check threshold: attack success vs false rejects",
        &["min consistency", "cicada success", "clean rejects"],
    );
    let attack = HrpAttack::cicada(8.0, 3.0);
    let base = ctx.rng("a1-hrp-threshold");
    for consistency_min in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let cfg = HrpConfig {
            consistency_min,
            ..HrpConfig::default()
        };
        let session = HrpRanging::new(cfg, ReceiverKind::IntegrityChecked);
        let stream = base.fork(&format!("threshold-{consistency_min:.1}"));
        let trials = ctx.trials(150);
        let outcomes = par_trials(ctx.jobs, trials, &stream, |_, mut rng| {
            let o = session.measure(20.0, Some(&attack), &mut rng);
            let c = session.measure(20.0, None, &mut rng);
            (!o.rejected && o.reduction_m > 1.0, c.rejected)
        });
        let wins = outcomes.iter().filter(|o| o.0).count();
        let clean_rejects = outcomes.iter().filter(|o| o.1).count();
        t.push_row(vec![
            format!("{consistency_min:.1}"),
            format!("{:.1}%", wins as f64 / trials as f64 * 100.0),
            format!("{:.1}%", clean_rejects as f64 / trials as f64 * 100.0),
        ]);
    }
    t
}

/// A2: SECOC truncation sweep — wire bytes versus forgery probability.
pub fn a2_secoc_truncation_table() -> Table {
    let mut t = Table::new(
        "A2",
        "ablation — SECOC MAC/freshness truncation: overhead vs forgery odds",
        &["MAC bits", "FV bits", "overhead B", "P[forge one PDU]"],
    );
    for (mac_bits, fv_bits) in [(16u8, 8u8), (24, 8), (32, 8), (24, 16), (64, 16)] {
        let cfg = SecOcConfig {
            mac_tx_bits: mac_bits,
            freshness_tx_bits: fv_bits,
            resync_attempts: 2,
        };
        t.push_row(vec![
            mac_bits.to_string(),
            fv_bits.to_string(),
            cfg.overhead_bytes().to_string(),
            format!("2^-{mac_bits}"),
        ]);
    }
    t
}

/// A3: CANAL MTU sweep for a 1500-byte tunneled Ethernet frame.
pub fn a3_canal_mtu_table() -> Table {
    let mut t = Table::new(
        "A3",
        "ablation — CANAL MTU: segmentation count and overhead (1500 B SDU)",
        &["XL mtu", "frames", "CANAL overhead B", "overhead %"],
    );
    for mtu in [64usize, 128, 256, 512, 1024, 2048] {
        let tx = CanalSender::new(0x40, 1, mtu);
        let frames = tx.frames_needed(1500);
        let overhead = frames * CANAL_HEADER_BYTES + CANAL_TRAILER_BYTES;
        t.push_row(vec![
            mtu.to_string(),
            frames.to_string(),
            overhead.to_string(),
            format!("{:.1}%", overhead as f64 / 1500.0 * 100.0),
        ]);
    }
    t
}

/// A4: SeeMQTT threshold sweep — availability versus coalition
/// resistance.
pub fn a4_seemqtt_table() -> Table {
    let mut t = Table::new(
        "A4",
        "ablation — SeeMQTT (k, n): outage tolerance vs broker-coalition resistance",
        &[
            "k/n",
            "tolerated outages",
            "min breaking coalition",
            "delivered",
            "leaked to k-1",
        ],
    );
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(54);
    for (k, n) in [(1usize, 3usize), (2, 3), (3, 5), (4, 5), (5, 5)] {
        let msg = publish("topic", b"payload", k, n, &mut rng).expect("valid k/n");
        // Deliver with exactly n-k brokers offline.
        let offline: Vec<usize> = (0..(n - k)).collect();
        let net = BrokerNetwork::healthy(n).with_offline(offline);
        let delivered = subscribe(&net, &msg).is_ok();
        // Adversary with k-1 brokers.
        let coalition: Vec<usize> = (0..k.saturating_sub(1)).collect();
        let adv = BrokerNetwork::healthy(n).with_compromised(coalition);
        let leaked = adversary_recovers(&adv, &msg).is_some();
        t.push_row(vec![
            format!("{k}/{n}"),
            (n - k).to_string(),
            k.to_string(),
            delivered.to_string(),
            leaked.to_string(),
        ]);
    }
    t
}

/// A5: V-Range security strength sweep.
///
/// The 3000-trial sweep per configuration runs on [`par_trials`] with
/// a config-specific substream.
pub fn a5_vrange_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "A5",
        "ablation — V-Range secured bits: reduction success (measured vs theory)",
        &["symbols", "bits/symbol", "measured success", "theory"],
    );
    let base = ctx.rng("a5-vrange");
    for (n_symbols, bits) in [(2usize, 1u32), (4, 1), (4, 2), (8, 2), (14, 4)] {
        let cfg = VRangeConfig {
            n_symbols,
            secured_bits_per_symbol: bits,
            ..VRangeConfig::default()
        };
        let stream = base.fork(&format!("{n_symbols}-{bits}"));
        let trials = ctx.trials(3000);
        let wins = par_trials(ctx.jobs, trials, &stream, |_, mut rng| {
            let o = vrange_measure(
                &cfg,
                50.0,
                Some(VRangeAttack::Reduce { advance_m: 20.0 }),
                &mut rng,
            );
            !o.aborted
        })
        .into_iter()
        .filter(|&w| w)
        .count();
        let theory = cfg.undetected_manipulation_probability(n_symbols);
        t.push_row(vec![
            n_symbols.to_string(),
            bits.to_string(),
            format!("{:.2}%", wins as f64 / trials as f64 * 100.0),
            format!("{:.2}%", theory * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_tradeoff_direction() {
        let t = a1_hrp_threshold_table(&RunCtx::default());
        // Loosest threshold lets some attacks through; strictest rejects
        // some clean measurements.
        let loose_success: f64 = t.rows[0][1].trim_end_matches('%').parse().expect("number");
        let strict_success: f64 = t.rows[4][1].trim_end_matches('%').parse().expect("number");
        assert!(loose_success >= strict_success);
    }

    #[test]
    fn a2_overhead_scales() {
        let t = a2_secoc_truncation_table();
        let first: usize = t.rows[0][2].parse().expect("number");
        let last: usize = t.rows[4][2].parse().expect("number");
        assert!(last > first);
    }

    #[test]
    fn a3_bigger_mtu_fewer_frames() {
        let t = a3_canal_mtu_table();
        let f64_: usize = t.rows[0][1].parse().expect("number");
        let f2048: usize = t.rows[5][1].parse().expect("number");
        assert!(f64_ > f2048);
        assert_eq!(f2048, 1);
    }

    #[test]
    fn a4_invariants() {
        let t = a4_seemqtt_table();
        for row in &t.rows {
            assert_eq!(row[3], "true", "delivery with n-k outages: {row:?}");
            assert_eq!(row[4], "false", "k-1 coalition leak: {row:?}");
        }
    }

    #[test]
    fn a5_measured_tracks_theory() {
        let t = a5_vrange_table(&RunCtx::default());
        for row in &t.rows {
            let measured: f64 = row[2].trim_end_matches('%').parse().expect("number");
            let theory: f64 = row[3].trim_end_matches('%').parse().expect("number");
            assert!((measured - theory).abs() < 5.0, "{row:?}");
        }
    }
}
