//! E18: harness resilience — the runner's own fault tolerance measured
//! as an experiment.
//!
//! The other experiments assume the harness survives their workloads;
//! E18 turns that assumption into a table. It runs a real Monte-Carlo
//! estimate (mean breach depth through a layered defense, the same
//! quantity behind the defense-in-depth curve of E1) while injecting
//! trial-level panics at swept rates, and shows the quarantine-aware
//! accumulator ([`RunningStats`] over the surviving trials) converging
//! to the clean estimate as long as coverage stays non-trivial.
//!
//! Determinism structure: chaos decisions and trial computation draw
//! from **independent** streams. All rates share one `mc` stream, so a
//! surviving trial `i` computes exactly the value the clean run
//! computes for trial `i`; the per-rate `chaos/<rate>` stream only
//! picks which trials die. Survivors are therefore an unbiased sample
//! of the clean trial population, which is why the estimate converges
//! instead of drifting.
//!
//! The module also hosts the hidden `x0-chaos` probe: an experiment
//! registered only when `AUTOSEC_CHAOS` is set, which panics, sleeps,
//! or succeeds on demand. CI uses it to drive a real suite through
//! `--keep-going` and `--resume` without polluting the normal registry.

use autosec_runner::{try_par_trials, RunCtx, TrialOutcome};
use autosec_sim::{RunningStats, SimRng};

use crate::Table;

/// Monte-Carlo trials per chaos rate. High enough that a 50% survivor
/// population still estimates the mean within a few percent.
pub const TRIALS: usize = 600;

/// Injected per-trial panic probabilities swept by E18. Rate 0.0 is
/// the clean control every other row is compared against.
pub const CHAOS_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.25, 0.50];

/// Success probability of penetrating one more defense layer, and the
/// layer budget. Mean depth ≈ p/(1-p) truncated at the budget.
const LAYER_PENETRATION: f64 = 0.55;
const LAYER_BUDGET: usize = 12;

/// One clean trial: how many defense layers an attacker penetrates
/// before detection.
fn breach_depth(rng: &mut SimRng) -> f64 {
    let mut depth = 0usize;
    while depth < LAYER_BUDGET && rng.chance(LAYER_PENETRATION) {
        depth += 1;
    }
    depth as f64
}

/// Quarantine-aware estimate at one chaos rate: [`RunningStats`] over
/// the surviving trials plus the coverage fraction.
///
/// The trial stream is `mc` (shared across rates); the chaos stream is
/// derived from `chaos` per trial index, so killing a trial never
/// perturbs what any other trial computes.
pub fn chaos_point(
    jobs: usize,
    trials: usize,
    mc: &SimRng,
    chaos: &SimRng,
    rate: f64,
) -> (RunningStats, f64) {
    let outcomes = try_par_trials(jobs, trials, mc, move |i, mut rng| {
        if chaos.fork_idx(i as u64).chance(rate) {
            panic!("injected chaos at trial {i}");
        }
        breach_depth(&mut rng)
    });
    let mut stats = RunningStats::new();
    for outcome in &outcomes {
        if let TrialOutcome::Ok(v) = outcome {
            stats.push(*v);
        }
    }
    let coverage = stats.count() as f64 / trials as f64;
    (stats, coverage)
}

/// E18 table: survivor-population estimates under swept panic rates.
///
/// Columns: injected rate, surviving/total trials, coverage, survivor
/// mean breach depth, and its absolute bias against the rate-0 clean
/// estimate. Bit-identical for every `jobs` value — including which
/// trials get quarantined.
pub fn e18_harness_resilience_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E18",
        "§VIII — harness resilience: estimates from quarantined Monte-Carlo sweeps",
        &[
            "panic rate",
            "survivors",
            "coverage",
            "mean depth",
            "bias vs clean",
        ],
    );
    let base = ctx.rng("e18-harness-resilience");
    let mc = base.fork("mc");
    let trials = ctx.trials(TRIALS);
    let mut clean_mean = 0.0;
    for rate in CHAOS_RATES {
        let chaos = base.fork(&format!("chaos/{rate:.2}"));
        let (stats, coverage) = chaos_point(ctx.jobs, trials, &mc, &chaos, rate);
        if rate == 0.0 {
            clean_mean = stats.mean();
        }
        t.push_row(vec![
            format!("{rate:.2}"),
            format!("{}/{trials}", stats.count()),
            format!("{:.1}%", coverage * 100.0),
            format!("{:.3}", stats.mean()),
            format!("{:.3}", (stats.mean() - clean_mean).abs()),
        ]);
    }
    t
}

/// The hidden chaos probe (id `X0`, slug `x0-chaos`), registered only
/// when `AUTOSEC_CHAOS` is set:
///
/// - `panic` — panics with a fixed message;
/// - `sleep:<ms>` — sleeps that long, then succeeds (deadline fodder);
/// - anything else — succeeds immediately.
///
/// CI sets `AUTOSEC_CHAOS=panic` to verify `--keep-going` records the
/// failure while healthy artifacts stay bit-identical, then flips it to
/// `ok` and `--resume`s the run to completion.
pub fn x0_chaos_table(_ctx: &RunCtx) -> Table {
    let mode = std::env::var("AUTOSEC_CHAOS").unwrap_or_default();
    if mode == "panic" {
        panic!("chaos probe: injected panic (AUTOSEC_CHAOS=panic)");
    }
    if let Some(ms) = mode.strip_prefix("sleep:") {
        let ms: u64 = ms.parse().unwrap_or(0);
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    let mut t = Table::new("X0", "chaos probe", &["mode", "outcome"]);
    t.push_row(vec![mode, "survived".to_owned()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RunCtx {
        RunCtx::new(42, 1).with_trials_scale(0.25)
    }

    #[test]
    fn tables_are_jobs_invariant() {
        let serial = e18_harness_resilience_table(&ctx());
        let parallel = e18_harness_resilience_table(&RunCtx::new(42, 4).with_trials_scale(0.25));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn clean_row_has_full_coverage_and_zero_bias() {
        let t = e18_harness_resilience_table(&ctx());
        assert_eq!(t.rows[0][0], "0.00");
        assert_eq!(t.rows[0][2], "100.0%");
        assert_eq!(t.rows[0][4], "0.000");
    }

    #[test]
    fn coverage_tracks_the_injected_rate() {
        let base = SimRng::seed(42);
        let mc = base.fork("mc");
        let mut prev = f64::INFINITY;
        for rate in [0.0, 0.25, 0.50] {
            let chaos = base.fork(&format!("chaos/{rate:.2}"));
            let (_, coverage) = chaos_point(1, 400, &mc, &chaos, rate);
            assert!(
                (coverage - (1.0 - rate)).abs() < 0.08,
                "rate {rate}: coverage {coverage}"
            );
            assert!(coverage < prev + 1e-9, "coverage must not grow with rate");
            prev = coverage;
        }
    }

    #[test]
    fn survivor_estimate_converges_to_the_clean_one() {
        // The headline claim: quarantining half the trials moves the
        // estimate by sampling noise, not by bias.
        let base = SimRng::seed(42);
        let mc = base.fork("mc");
        let clean = chaos_point(1, 600, &mc, &base.fork("chaos/0.00"), 0.0).0;
        let noisy = chaos_point(1, 600, &mc, &base.fork("chaos/0.50"), 0.5).0;
        assert!(noisy.count() > 200, "survivor population too small");
        assert!(
            (noisy.mean() - clean.mean()).abs() < 0.15,
            "clean {} vs survivors {}",
            clean.mean(),
            noisy.mean()
        );
    }

    #[test]
    fn survivors_compute_exactly_the_clean_values() {
        // Stream independence, stated sharply: every surviving trial's
        // value equals the clean run's value at the same index.
        let base = SimRng::seed(7);
        let mc = base.fork("mc");
        let clean: Vec<f64> = (0..64).map(|i| breach_depth(&mut mc.fork_idx(i))).collect();
        let chaos = base.fork("chaos/0.25");
        let outcomes = try_par_trials(1, 64, &mc, |i, mut rng| {
            if chaos.fork_idx(i as u64).chance(0.25) {
                panic!("die");
            }
            breach_depth(&mut rng)
        });
        for (i, outcome) in outcomes.iter().enumerate() {
            if let TrialOutcome::Ok(v) = outcome {
                assert_eq!(*v, clean[i], "trial {i} diverged from the clean run");
            }
        }
    }

    #[test]
    fn chaos_probe_succeeds_without_the_env_var() {
        // Tests must not set AUTOSEC_CHAOS (process-global); the
        // default path is the only one exercised here. CI drives the
        // panic/sleep modes through the binary.
        if std::env::var("AUTOSEC_CHAOS").is_err() {
            let t = x0_chaos_table(&ctx());
            assert_eq!(t.rows[0][1], "survived");
        }
    }
}
