//! E18/E26: harness resilience — the runner's own fault tolerance
//! measured as experiments.
//!
//! The other experiments assume the harness survives their workloads;
//! E18 turns that assumption into a table. It runs a real Monte-Carlo
//! estimate (mean breach depth through a layered defense, the same
//! quantity behind the defense-in-depth curve of E1) while injecting
//! trial-level panics at swept rates, and shows the quarantine-aware
//! accumulator ([`RunningStats`] over the surviving trials) converging
//! to the clean estimate as long as coverage stays non-trivial.
//!
//! Determinism structure: chaos decisions and trial computation draw
//! from **independent** streams. All rates share one `mc` stream, so a
//! surviving trial `i` computes exactly the value the clean run
//! computes for trial `i`; the per-rate `chaos/<rate>` stream only
//! picks which trials die. Survivors are therefore an unbiased sample
//! of the clean trial population, which is why the estimate converges
//! instead of drifting.
//!
//! E26 extends the same claim to the process-isolated runner: units
//! stand in for supervised worker children, a seeded kill stream
//! decides which attempts die (and whether by OOM or CPU ceiling), and
//! the retry budget from [`retry_delay`]'s schedule decides how many
//! chances each unit gets. Units that converge within the budget
//! contribute exactly their clean trial values, so the survivor
//! estimate tracks the clean one while the kill/retry bookkeeping —
//! including the backoff schedule itself — stays byte-identical for
//! every `--jobs` value.
//!
//! The module also hosts the hidden `x0-chaos` probe: an experiment
//! registered only when `AUTOSEC_CHAOS` is set, which panics, sleeps,
//! leaks memory, busy-loops, or succeeds on demand. CI uses it to
//! drive a real suite through `--keep-going`, `--resume`, and the
//! process-isolation budgets without polluting the normal registry.

use autosec_runner::{par_trials, retry_delay, try_par_trials, RunCtx, TrialOutcome};
use autosec_sim::{RunningStats, SimRng};

use crate::Table;

/// Monte-Carlo trials per chaos rate. High enough that a 50% survivor
/// population still estimates the mean within a few percent.
pub const TRIALS: usize = 600;

/// Injected per-trial panic probabilities swept by E18. Rate 0.0 is
/// the clean control every other row is compared against.
pub const CHAOS_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.25, 0.50];

/// Success probability of penetrating one more defense layer, and the
/// layer budget. Mean depth ≈ p/(1-p) truncated at the budget.
const LAYER_PENETRATION: f64 = 0.55;
const LAYER_BUDGET: usize = 12;

/// One clean trial: how many defense layers an attacker penetrates
/// before detection.
fn breach_depth(rng: &mut SimRng) -> f64 {
    let mut depth = 0usize;
    while depth < LAYER_BUDGET && rng.chance(LAYER_PENETRATION) {
        depth += 1;
    }
    depth as f64
}

/// Quarantine-aware estimate at one chaos rate: [`RunningStats`] over
/// the surviving trials plus the coverage fraction.
///
/// The trial stream is `mc` (shared across rates); the chaos stream is
/// derived from `chaos` per trial index, so killing a trial never
/// perturbs what any other trial computes.
pub fn chaos_point(
    jobs: usize,
    trials: usize,
    mc: &SimRng,
    chaos: &SimRng,
    rate: f64,
) -> (RunningStats, f64) {
    let outcomes = try_par_trials(jobs, trials, mc, move |i, mut rng| {
        if chaos.fork_idx(i as u64).chance(rate) {
            panic!("injected chaos at trial {i}");
        }
        breach_depth(&mut rng)
    });
    let mut stats = RunningStats::new();
    for outcome in &outcomes {
        if let TrialOutcome::Ok(v) = outcome {
            stats.push(*v);
        }
    }
    let coverage = stats.count() as f64 / trials as f64;
    (stats, coverage)
}

/// E18 table: survivor-population estimates under swept panic rates.
///
/// Columns: injected rate, surviving/total trials, coverage, survivor
/// mean breach depth, and its absolute bias against the rate-0 clean
/// estimate. Bit-identical for every `jobs` value — including which
/// trials get quarantined.
pub fn e18_harness_resilience_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E18",
        "§VIII — harness resilience: estimates from quarantined Monte-Carlo sweeps",
        &[
            "panic rate",
            "survivors",
            "coverage",
            "mean depth",
            "bias vs clean",
        ],
    );
    let base = ctx.rng("e18-harness-resilience");
    let mc = base.fork("mc");
    let trials = ctx.trials(TRIALS);
    let mut clean_mean = 0.0;
    for rate in CHAOS_RATES {
        let chaos = base.fork(&format!("chaos/{rate:.2}"));
        let (stats, coverage) = chaos_point(ctx.jobs, trials, &mc, &chaos, rate);
        if rate == 0.0 {
            clean_mean = stats.mean();
        }
        t.push_row(vec![
            format!("{rate:.2}"),
            format!("{}/{trials}", stats.count()),
            format!("{:.1}%", coverage * 100.0),
            format!("{:.3}", stats.mean()),
            format!("{:.3}", (stats.mean() - clean_mean).abs()),
        ]);
    }
    t
}

/// Simulated worker units per E26 kill rate. Each stands in for one
/// supervised child process in the isolated suite runner.
pub const E26_UNITS: usize = 48;

/// Monte-Carlo trials each converged unit contributes to the survivor
/// estimate.
pub const E26_TRIALS_PER_UNIT: usize = 12;

/// Retry budget per unit, mirroring `--retries 3` on the real runner.
pub const E26_RETRIES: u32 = 3;

/// Per-attempt kill probabilities swept by E26. Rate 0.0 is the clean
/// control every other row is compared against.
pub const E26_KILL_RATES: [f64; 5] = [0.0, 0.10, 0.20, 0.35, 0.50];

/// One simulated supervised unit: up to `1 + E26_RETRIES` attempts,
/// each killed with probability `rate`; a killed attempt dies by OOM
/// or CPU ceiling on a fair coin from the same stream.
///
/// Returns `(attempts used, converged, oom kills, cpu kills)`. Pure
/// function of `(chaos stream, unit, rate)` — the supervision loop is
/// serial bookkeeping, so it can never depend on `jobs`.
fn supervise_unit(chaos: &SimRng, unit: usize, rate: f64) -> (u32, bool, u32, u32) {
    let unit_stream = chaos.fork_idx(unit as u64);
    let (mut oom, mut cpu) = (0u32, 0u32);
    for attempt in 0..=E26_RETRIES {
        let mut attempt_stream = unit_stream.fork_idx(u64::from(attempt));
        if !attempt_stream.chance(rate) {
            return (attempt + 1, true, oom, cpu);
        }
        if attempt_stream.chance(0.5) {
            oom += 1;
        } else {
            cpu += 1;
        }
    }
    (E26_RETRIES + 1, false, oom, cpu)
}

/// E26 table: survivor convergence under injected worker kills with a
/// seeded retry budget.
///
/// Columns per kill rate: units converged within the retry budget,
/// total attempts spent, kill counts by cause (OOM / CPU), trial
/// coverage, survivor mean breach depth, its absolute bias against the
/// rate-0 clean estimate, and the retry backoff schedule in
/// milliseconds (from [`retry_delay`], the same pure function the real
/// runner sleeps on — identical on every row and for every `--jobs`
/// value, which is exactly the point).
///
/// Determinism structure mirrors E18: all rates share one `mc` trial
/// stream (parallel via [`par_trials`]), while the per-rate
/// `kills/<rate>` stream only decides which attempts die. A unit that
/// converges contributes exactly the clean values for its trial span.
pub fn e26_isolation_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E26",
        "§VIII — harness isolation: survivor convergence under injected kills",
        &[
            "kill rate",
            "converged",
            "attempts",
            "oom/cpu kills",
            "coverage",
            "mean depth",
            "bias vs clean",
            "backoff ms",
        ],
    );
    let base = ctx.rng("e26-isolation");
    let mc = base.fork("mc");
    let units = ctx.trials(E26_UNITS);
    let total = units * E26_TRIALS_PER_UNIT;
    let clean: Vec<f64> = par_trials(ctx.jobs, total, &mc, |_i, mut rng| breach_depth(&mut rng));
    let backoff = (0..E26_RETRIES)
        .map(|k| {
            retry_delay(ctx.seed, "e26-isolation", k)
                .as_millis()
                .to_string()
        })
        .collect::<Vec<_>>()
        .join("/");
    let mut clean_mean = 0.0;
    for rate in E26_KILL_RATES {
        let chaos = base.fork(&format!("kills/{rate:.2}"));
        let mut stats = RunningStats::new();
        let (mut converged, mut attempts_total) = (0usize, 0u32);
        let (mut oom_total, mut cpu_total) = (0u32, 0u32);
        for unit in 0..units {
            let (attempts, ok, oom, cpu) = supervise_unit(&chaos, unit, rate);
            attempts_total += attempts;
            oom_total += oom;
            cpu_total += cpu;
            if ok {
                converged += 1;
                for v in &clean[unit * E26_TRIALS_PER_UNIT..(unit + 1) * E26_TRIALS_PER_UNIT] {
                    stats.push(*v);
                }
            }
        }
        if rate == 0.0 {
            clean_mean = stats.mean();
        }
        t.push_row(vec![
            format!("{rate:.2}"),
            format!("{converged}/{units}"),
            format!("{attempts_total}"),
            format!("{oom_total}/{cpu_total}"),
            format!("{:.1}%", stats.count() as f64 / total as f64 * 100.0),
            format!("{:.3}", stats.mean()),
            format!("{:.3}", (stats.mean() - clean_mean).abs()),
            backoff.clone(),
        ]);
    }
    t
}

/// The hidden chaos probe (id `X0`, slug `x0-chaos`), registered only
/// when `AUTOSEC_CHAOS` is set:
///
/// - `panic` — panics with a fixed message;
/// - `sleep:<ms>` — sleeps that long, then succeeds (deadline fodder);
/// - `alloc:<mb>` — leaks that many MiB of touched pages, then idles
///   (RSS-budget fodder: under `--rss-limit-mb` below the target the
///   supervisor kills it mid-leak);
/// - `spin:<secs>` — busy-loops that long (CPU-budget fodder: burns
///   CPU-seconds at wall rate so a `--cpu-limit-secs` ceiling fires);
/// - `flaky:<path>` — panics and drops a marker file on the first
///   attempt, succeeds once the marker exists (retry fodder);
/// - anything else — succeeds immediately.
///
/// CI sets `AUTOSEC_CHAOS=panic` to verify `--keep-going` records the
/// failure while healthy artifacts stay bit-identical, then flips it to
/// `ok` and `--resume`s the run to completion. The isolation job uses
/// `sleep:`/`alloc:`/`spin:` to land `timed_out`/`oom_killed`/
/// `cpu_exceeded` for real, and `flaky:` to prove `--retries` goes
/// green.
pub fn x0_chaos_table(_ctx: &RunCtx) -> Table {
    let mode = std::env::var("AUTOSEC_CHAOS").unwrap_or_default();
    if mode == "panic" {
        panic!("chaos probe: injected panic (AUTOSEC_CHAOS=panic)");
    }
    if let Some(ms) = mode.strip_prefix("sleep:") {
        let ms: u64 = ms.parse().unwrap_or(0);
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    if let Some(mb) = mode.strip_prefix("alloc:") {
        let mb: usize = mb.parse().unwrap_or(0);
        let mut hoard: Vec<Vec<u8>> = Vec::new();
        for _ in 0..mb {
            // Touch a byte per page so the MiB lands in RSS, not just
            // in the virtual address space.
            let mut block = vec![0u8; 1024 * 1024];
            for i in (0..block.len()).step_by(4096) {
                block[i] = 1;
            }
            hoard.push(block);
        }
        std::hint::black_box(&hoard);
        // Hold the leak briefly so a supervisor whose poll interval
        // straddled the last allocation still observes the peak.
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
    if let Some(secs) = mode.strip_prefix("spin:") {
        let secs: u64 = secs.parse().unwrap_or(0);
        let end = std::time::Instant::now() + std::time::Duration::from_secs(secs);
        let mut x = 1u64;
        while std::time::Instant::now() < end {
            for _ in 0..100_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
        }
        std::hint::black_box(x);
    }
    if let Some(path) = mode.strip_prefix("flaky:") {
        if !std::path::Path::new(path).exists() {
            let _ = std::fs::write(path, "first attempt\n");
            panic!("chaos probe: flaky first attempt (AUTOSEC_CHAOS=flaky)");
        }
    }
    let mut t = Table::new("X0", "chaos probe", &["mode", "outcome"]);
    t.push_row(vec![mode, "survived".to_owned()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RunCtx {
        RunCtx::new(42, 1).with_trials_scale(0.25)
    }

    #[test]
    fn tables_are_jobs_invariant() {
        let serial = e18_harness_resilience_table(&ctx());
        let parallel = e18_harness_resilience_table(&RunCtx::new(42, 4).with_trials_scale(0.25));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn clean_row_has_full_coverage_and_zero_bias() {
        let t = e18_harness_resilience_table(&ctx());
        assert_eq!(t.rows[0][0], "0.00");
        assert_eq!(t.rows[0][2], "100.0%");
        assert_eq!(t.rows[0][4], "0.000");
    }

    #[test]
    fn coverage_tracks_the_injected_rate() {
        let base = SimRng::seed(42);
        let mc = base.fork("mc");
        let mut prev = f64::INFINITY;
        for rate in [0.0, 0.25, 0.50] {
            let chaos = base.fork(&format!("chaos/{rate:.2}"));
            let (_, coverage) = chaos_point(1, 400, &mc, &chaos, rate);
            assert!(
                (coverage - (1.0 - rate)).abs() < 0.08,
                "rate {rate}: coverage {coverage}"
            );
            assert!(coverage < prev + 1e-9, "coverage must not grow with rate");
            prev = coverage;
        }
    }

    #[test]
    fn survivor_estimate_converges_to_the_clean_one() {
        // The headline claim: quarantining half the trials moves the
        // estimate by sampling noise, not by bias.
        let base = SimRng::seed(42);
        let mc = base.fork("mc");
        let clean = chaos_point(1, 600, &mc, &base.fork("chaos/0.00"), 0.0).0;
        let noisy = chaos_point(1, 600, &mc, &base.fork("chaos/0.50"), 0.5).0;
        assert!(noisy.count() > 200, "survivor population too small");
        assert!(
            (noisy.mean() - clean.mean()).abs() < 0.15,
            "clean {} vs survivors {}",
            clean.mean(),
            noisy.mean()
        );
    }

    #[test]
    fn survivors_compute_exactly_the_clean_values() {
        // Stream independence, stated sharply: every surviving trial's
        // value equals the clean run's value at the same index.
        let base = SimRng::seed(7);
        let mc = base.fork("mc");
        let clean: Vec<f64> = (0..64).map(|i| breach_depth(&mut mc.fork_idx(i))).collect();
        let chaos = base.fork("chaos/0.25");
        let outcomes = try_par_trials(1, 64, &mc, |i, mut rng| {
            if chaos.fork_idx(i as u64).chance(0.25) {
                panic!("die");
            }
            breach_depth(&mut rng)
        });
        for (i, outcome) in outcomes.iter().enumerate() {
            if let TrialOutcome::Ok(v) = outcome {
                assert_eq!(*v, clean[i], "trial {i} diverged from the clean run");
            }
        }
    }

    #[test]
    fn e26_is_jobs_invariant() {
        // The acceptance bar: the kill/retry bookkeeping — including
        // the backoff schedule column — must be byte-identical across
        // --jobs values, not just the survivor estimates.
        let serial = e26_isolation_table(&ctx());
        let parallel = e26_isolation_table(&RunCtx::new(42, 4).with_trials_scale(0.25));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn e26_clean_row_converges_everything() {
        let t = e26_isolation_table(&ctx());
        let units = RunCtx::default().with_trials_scale(0.25).trials(E26_UNITS);
        assert_eq!(t.rows[0][1], format!("{units}/{units}"));
        assert_eq!(t.rows[0][4], "100.0%");
        assert_eq!(t.rows[0][6], "0.000");
    }

    #[test]
    fn e26_survivors_converge_under_heavy_kills() {
        // Even at a 50% per-attempt kill rate, the retry budget keeps
        // most units alive and the survivor mean near the clean one.
        let t = e26_isolation_table(&RunCtx::new(42, 1));
        let last = t.rows.last().expect("rows");
        let bias: f64 = last[6].parse().expect("bias cell");
        assert!(bias < 0.3, "survivor bias too large: {bias}");
        let converged: usize = last[1].split('/').next().unwrap().parse().unwrap();
        assert!(
            converged * 100 >= E26_UNITS * 80,
            "retry budget should rescue most units: {converged}/{E26_UNITS}"
        );
    }

    #[test]
    fn e26_coverage_shrinks_with_the_kill_rate() {
        let t = e26_isolation_table(&ctx());
        let pct = |row: &Vec<String>| -> f64 { row[4].trim_end_matches('%').parse().unwrap() };
        let mut prev = f64::INFINITY;
        for row in &t.rows {
            let c = pct(row);
            assert!(c <= prev + 1e-9, "coverage must not grow with rate");
            prev = c;
        }
    }

    #[test]
    fn e26_backoff_column_is_the_real_retry_schedule() {
        let t = e26_isolation_table(&ctx());
        let want = (0..E26_RETRIES)
            .map(|k| retry_delay(42, "e26-isolation", k).as_millis().to_string())
            .collect::<Vec<_>>()
            .join("/");
        for row in &t.rows {
            assert_eq!(row[7], want, "schedule must match retry_delay exactly");
        }
        // Sanity: the schedule actually backs off.
        let ms: Vec<u128> = want.split('/').map(|s| s.parse().unwrap()).collect();
        assert!(ms.windows(2).all(|w| w[1] > w[0]), "not increasing: {want}");
    }

    #[test]
    fn supervise_unit_is_deterministic_and_counts_attempts() {
        let chaos = SimRng::seed(9).fork("kills/0.50");
        for unit in 0..32 {
            let a = supervise_unit(&chaos, unit, 0.5);
            let b = supervise_unit(&chaos, unit, 0.5);
            assert_eq!(a, b, "unit {unit}");
            let (attempts, ok, oom, cpu) = a;
            assert!((1..=E26_RETRIES + 1).contains(&attempts));
            // Every non-final attempt died exactly once, by one cause.
            let kills = oom + cpu;
            assert_eq!(kills, if ok { attempts - 1 } else { attempts });
        }
    }

    #[test]
    fn chaos_probe_succeeds_without_the_env_var() {
        // Tests must not set AUTOSEC_CHAOS (process-global); the
        // default path is the only one exercised here. CI drives the
        // panic/sleep modes through the binary.
        if std::env::var("AUTOSEC_CHAOS").is_err() {
            let t = x0_chaos_table(&ctx());
            assert_eq!(t.rows[0][1], "survived");
        }
    }
}
