//! E19/E20: the live-fleet service mode measured as experiments.
//!
//! Everything up to E18 measures one mechanism in isolation; these two
//! run the whole stack at once — tens of thousands of per-vehicle
//! state machines under continuous scenario-step attacks, epidemic
//! V2X infection, cross-layer fault onsets, and the shared
//! IDS/response/repair pipeline ([`autosec_fleet`]).
//!
//! - **E19** sweeps defense depth bottom-up
//!   ([`DefensePosture::depth`]) and watches the epidemic: how far
//!   compromise spreads through the fleet at each posture depth, from
//!   an undefended population (epidemic take-off) to the full stack
//!   (containment).
//! - **E20** crosses posture `none`/`full` with the standard fault
//!   plan off/on and reports steady-state availability and MTTR — the
//!   operational quantities the paper's resilience discussion
//!   ultimately cares about.
//!
//! The attack graph is calibrated **once** per experiment (it carries
//! both posture sides), then shared across every fleet run of the
//! sweep, so posture rows differ only in posture. `ctx.jobs` maps to
//! `--shards`, which by the fleet's invariance contract never changes
//! a table cell; `ctx.trials_scale` scales the fleet size.

use autosec_adversary::{calibrated_graph, AttackGraph, CalibrationConfig};
use autosec_core::campaign::DefensePosture;
use autosec_fleet::{posture_label, FleetConfig, FleetEngine};
use autosec_runner::RunCtx;

use crate::Table;

/// E19 fleet size at `--trials-scale 1`.
pub const E19_VEHICLES: usize = 1_500;
/// E19 run length in ticks.
pub const E19_TICKS: u64 = 120;
/// E19 direct-attack rate — raised above the service default so the
/// epidemic has seeds to spread from within the run window.
pub const E19_ATTACK_RATE: f64 = 2e-3;
/// E20 fleet size at `--trials-scale 1`.
pub const E20_VEHICLES: usize = 2_000;
/// E20 run length in ticks.
pub const E20_TICKS: u64 = 150;
/// Calibration trials per attack-graph edge at `--trials-scale 1`.
pub const CALIBRATION_TRIALS: usize = 12;

/// One shared calibrated graph for a whole sweep.
fn fleet_graph(ctx: &RunCtx, label: &str) -> AttackGraph {
    let calib = CalibrationConfig::new(ctx.trials(CALIBRATION_TRIALS), ctx.jobs);
    calibrated_graph(&calib, &ctx.rng(label))
}

/// E19 — epidemic compromise spread vs defense depth.
pub fn e19_epidemic_table(ctx: &RunCtx) -> Table {
    let graph = fleet_graph(ctx, "e19/calibration");
    let mut t = Table::new(
        "E19",
        "§VIII — epidemic compromise spread vs defense depth (live fleet)",
        &[
            "depth",
            "posture",
            "attacks_ok",
            "infections",
            "peak_compromised",
            "final_compromised",
            "availability",
            "mttr_ms",
        ],
    );
    for depth in 0..=6usize {
        let posture = DefensePosture::depth(depth);
        let cfg = FleetConfig {
            vehicles: ctx.trials(E19_VEHICLES),
            ticks: E19_TICKS,
            shards: ctx.jobs,
            seed: ctx.seed,
            snapshot_every: 10,
            posture,
            attack_rate: E19_ATTACK_RATE,
            // Faults off: E19 isolates the attack/epidemic story; E20
            // runs the combined load.
            faults_enabled: false,
            ..FleetConfig::default()
        };
        let report = FleetEngine::with_graph(cfg, graph.clone()).run();
        let peak = report
            .snapshots
            .iter()
            .map(|s| s.census.compromised)
            .max()
            .unwrap_or(0);
        let totals = *report.totals();
        t.push_row(vec![
            depth.to_string(),
            posture_label(&posture),
            totals.attacks_succeeded.to_string(),
            totals.infections.to_string(),
            peak.to_string(),
            report.final_snapshot().census.compromised.to_string(),
            format!("{:.4}", report.availability),
            format!("{:.1}", report.mttr_ms()),
        ]);
    }
    t
}

/// E20 — steady-state availability and MTTR under combined
/// fault + adversary load.
pub fn e20_availability_table(ctx: &RunCtx) -> Table {
    let graph = fleet_graph(ctx, "e20/calibration");
    let mut t = Table::new(
        "E20",
        "§VIII — steady-state availability and MTTR under combined load (live fleet)",
        &[
            "posture",
            "faults",
            "availability",
            "mttr_ms",
            "recoveries",
            "alerts",
            "isolations",
            "breaches",
        ],
    );
    for (label, posture) in [
        ("none", DefensePosture::none()),
        ("full", DefensePosture::full()),
    ] {
        for faults in [false, true] {
            let cfg = FleetConfig {
                vehicles: ctx.trials(E20_VEHICLES),
                ticks: E20_TICKS,
                shards: ctx.jobs,
                seed: ctx.seed,
                posture,
                faults_enabled: faults,
                ..FleetConfig::default()
            };
            let report = FleetEngine::with_graph(cfg, graph.clone()).run();
            let totals = *report.totals();
            t.push_row(vec![
                label.to_owned(),
                if faults { "on" } else { "off" }.to_owned(),
                format!("{:.4}", report.availability),
                format!("{:.1}", report.mttr_ms()),
                totals.recoveries.to_string(),
                totals.alerts.to_string(),
                (totals.responses_isolate + totals.responses_limp_home).to_string(),
                totals.backend_breaches.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx(jobs: usize) -> RunCtx {
        RunCtx::new(7, jobs).with_trials_scale(0.02)
    }

    #[test]
    fn e19_has_one_row_per_depth() {
        let t = e19_epidemic_table(&tiny_ctx(2));
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.rows[0][1], "none");
        assert_eq!(t.rows[6][1], "full");
    }

    #[test]
    fn e20_covers_the_grid() {
        let t = e20_availability_table(&tiny_ctx(2));
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let availability: f64 = row[2].parse().unwrap();
            assert!(availability > 0.0 && availability <= 1.0);
        }
    }

    #[test]
    fn fleet_tables_are_jobs_invariant() {
        // `--jobs` maps to `--shards`, and shards never change cells.
        let a = e19_epidemic_table(&tiny_ctx(1));
        let b = e19_epidemic_table(&tiny_ctx(3));
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
