//! E19/E20: the live-fleet service mode measured as experiments.
//!
//! Everything up to E18 measures one mechanism in isolation; these two
//! run the whole stack at once — tens of thousands of per-vehicle
//! state machines under continuous scenario-step attacks, epidemic
//! V2X infection, cross-layer fault onsets, and the shared
//! IDS/response/repair pipeline ([`autosec_fleet`]).
//!
//! - **E19** sweeps defense depth bottom-up
//!   ([`DefensePosture::depth`]) and watches the epidemic: how far
//!   compromise spreads through the fleet at each posture depth, from
//!   an undefended population (epidemic take-off) to the full stack
//!   (containment).
//! - **E20** crosses posture `none`/`full` with the standard fault
//!   plan off/on and reports steady-state availability and MTTR — the
//!   operational quantities the paper's resilience discussion
//!   ultimately cares about.
//! - **E21** audits the two-tier scenario engine itself: per step ×
//!   posture, the calibrated [`StepOutcomeTable`]'s success/detect
//!   rates against an independent live measurement of the same model,
//!   with a 3-sigma drift verdict per row (`ok`/`DRIFT` — the CI
//!   fidelity job greps for the latter).
//!
//! The attack graph and the step outcome table are each calibrated
//! **once** per experiment (the graph carries both posture sides, the
//! table the whole depth ladder), then shared across every fleet run
//! of the sweep, so posture rows differ only in posture. `ctx.jobs`
//! maps to `--shards`, which by the fleet's invariance contract never
//! changes a table cell; `ctx.trials_scale` scales the fleet size.

use autosec_adversary::{calibrated_graph, AttackGraph, CalibrationConfig};
use autosec_core::campaign::DefensePosture;
use autosec_core::engine::{measure_step, StepOutcomeTable};
use autosec_core::scenario::scenario_registry;
use autosec_fleet::{posture_label, FleetConfig, FleetEngine};
use autosec_runner::RunCtx;

use crate::Table;

/// E19 fleet size at `--trials-scale 1`.
pub const E19_VEHICLES: usize = 1_500;
/// E19 run length in ticks.
pub const E19_TICKS: u64 = 120;
/// E19 direct-attack rate — raised above the service default so the
/// epidemic has seeds to spread from within the run window.
pub const E19_ATTACK_RATE: f64 = 2e-3;
/// E20 fleet size at `--trials-scale 1`.
pub const E20_VEHICLES: usize = 2_000;
/// E20 run length in ticks.
pub const E20_TICKS: u64 = 150;
/// Calibration trials per attack-graph edge at `--trials-scale 1`.
pub const CALIBRATION_TRIALS: usize = 12;
/// E21 Monte-Carlo trials per fidelity estimate at `--trials-scale 1`
/// (each drift row compares two independent estimates of this size).
pub const E21_TRIALS: usize = 160;

/// One shared calibrated graph for a whole sweep.
fn fleet_graph(ctx: &RunCtx, label: &str) -> AttackGraph {
    let calib = CalibrationConfig::new(ctx.trials(CALIBRATION_TRIALS), ctx.jobs);
    calibrated_graph(&calib, &ctx.rng(label))
}

/// One shared depth-ladder outcome table for a whole sweep — every
/// posture row of E19/E20 resolves attacks against the same
/// calibration.
fn fleet_table(ctx: &RunCtx, label: &str) -> StepOutcomeTable {
    StepOutcomeTable::calibrate_depths(
        ctx.trials(CALIBRATION_TRIALS).max(1),
        ctx.jobs,
        &ctx.rng(label),
    )
}

/// E19 — epidemic compromise spread vs defense depth.
pub fn e19_epidemic_table(ctx: &RunCtx) -> Table {
    let graph = fleet_graph(ctx, "e19/calibration");
    let table = fleet_table(ctx, "e19/table");
    let mut t = Table::new(
        "E19",
        "§VIII — epidemic compromise spread vs defense depth (live fleet)",
        &[
            "depth",
            "posture",
            "attacks_ok",
            "infections",
            "peak_compromised",
            "final_compromised",
            "availability",
            "mttr_ms",
        ],
    );
    for depth in 0..=6usize {
        let posture = DefensePosture::depth(depth);
        let cfg = FleetConfig {
            vehicles: ctx.trials(E19_VEHICLES),
            ticks: E19_TICKS,
            shards: ctx.jobs,
            seed: ctx.seed,
            snapshot_every: 10,
            posture,
            attack_rate: E19_ATTACK_RATE,
            // Faults off: E19 isolates the attack/epidemic story; E20
            // runs the combined load.
            faults_enabled: false,
            ..FleetConfig::default()
        };
        let report = FleetEngine::with_parts(cfg, graph.clone(), Some(table.clone())).run();
        let peak = report
            .snapshots
            .iter()
            .map(|s| s.census.compromised)
            .max()
            .unwrap_or(0);
        let totals = *report.totals();
        t.push_row(vec![
            depth.to_string(),
            posture_label(&posture),
            totals.attacks_succeeded.to_string(),
            totals.infections.to_string(),
            peak.to_string(),
            report.final_snapshot().census.compromised.to_string(),
            format!("{:.4}", report.availability),
            format!("{:.1}", report.mttr_ms()),
        ]);
    }
    t
}

/// E20 — steady-state availability and MTTR under combined
/// fault + adversary load.
pub fn e20_availability_table(ctx: &RunCtx) -> Table {
    let graph = fleet_graph(ctx, "e20/calibration");
    let table = fleet_table(ctx, "e20/table");
    let mut t = Table::new(
        "E20",
        "§VIII — steady-state availability and MTTR under combined load (live fleet)",
        &[
            "posture",
            "faults",
            "availability",
            "mttr_ms",
            "recoveries",
            "alerts",
            "isolations",
            "breaches",
        ],
    );
    for (label, posture) in [
        ("none", DefensePosture::none()),
        ("full", DefensePosture::full()),
    ] {
        for faults in [false, true] {
            let cfg = FleetConfig {
                vehicles: ctx.trials(E20_VEHICLES),
                ticks: E20_TICKS,
                shards: ctx.jobs,
                seed: ctx.seed,
                posture,
                faults_enabled: faults,
                ..FleetConfig::default()
            };
            let report = FleetEngine::with_parts(cfg, graph.clone(), Some(table.clone())).run();
            let totals = *report.totals();
            t.push_row(vec![
                label.to_owned(),
                if faults { "on" } else { "off" }.to_owned(),
                format!("{:.4}", report.availability),
                format!("{:.1}", report.mttr_ms()),
                totals.recoveries.to_string(),
                totals.alerts.to_string(),
                (totals.responses_isolate + totals.responses_limp_home).to_string(),
                totals.backend_breaches.to_string(),
            ]);
        }
    }
    t
}

/// E21 — calibrated-vs-live fidelity drift of the two-tier scenario
/// engine.
///
/// For every registry step under postures `none` and `full`, the row
/// compares the [`StepOutcomeTable`] cell (the tier the fleet hot path
/// resolves against) with an **independent** live measurement of the
/// same model on a disjoint RNG substream. `gap` is the absolute
/// success-rate difference; `tol` is a 3-sigma bound for two
/// independent binomial estimates of this size plus a 0.02
/// discretization floor. A row outside its bound prints the grep-able
/// verdict `DRIFT` (the CI fidelity job fails on it); `ok` otherwise.
pub fn e21_fidelity_table(ctx: &RunCtx) -> Table {
    let trials = ctx.trials(E21_TRIALS).max(2);
    let postures = [
        ("none", DefensePosture::none()),
        ("full", DefensePosture::full()),
    ];
    let ladder: Vec<DefensePosture> = postures.iter().map(|(_, p)| *p).collect();
    let table = StepOutcomeTable::calibrate(&ladder, trials, ctx.jobs, &ctx.rng("e21/table"));
    let steps = scenario_registry();
    let mut t = Table::new(
        "E21",
        "§VIII — calibrated-vs-live fidelity drift (two-tier scenario engine)",
        &[
            "step",
            "posture",
            "table_success",
            "live_success",
            "gap",
            "table_detect",
            "live_detect",
            "tol",
            "verdict",
        ],
    );
    for (si, step) in steps.iter().enumerate() {
        for (pi, (plabel, posture)) in postures.iter().enumerate() {
            let cell = table.steps()[si].by_posture[pi];
            let live = measure_step(
                step.as_ref(),
                posture,
                &ctx.rng(&format!("e21/live/{}/{plabel}", step.name())),
                trials,
                ctx.jobs,
            );
            let gap = (cell.success - live.success).abs();
            let detect_gap = (cell.detect - live.detect).abs();
            let tol = drift_tolerance(cell.success, live.success, trials).max(drift_tolerance(
                cell.detect,
                live.detect,
                trials,
            ));
            let verdict = if gap <= tol && detect_gap <= tol {
                "ok"
            } else {
                "DRIFT"
            };
            t.push_row(vec![
                step.name().to_owned(),
                (*plabel).to_owned(),
                format!("{:.4}", cell.success),
                format!("{:.4}", live.success),
                format!("{gap:.4}"),
                format!("{:.4}", cell.detect),
                format!("{:.4}", live.detect),
                format!("{tol:.4}"),
                verdict.to_owned(),
            ]);
        }
    }
    t
}

/// 3-sigma tolerance for the gap between two independent `n`-trial
/// binomial estimates of the same probability, with a 0.02 floor for
/// 1/n discretization.
fn drift_tolerance(a: f64, b: f64, n: usize) -> f64 {
    let p = ((a + b) / 2.0).clamp(0.0, 1.0);
    3.0 * (p * (1.0 - p) * 2.0 / n as f64).sqrt() + 0.02
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx(jobs: usize) -> RunCtx {
        RunCtx::new(7, jobs).with_trials_scale(0.02)
    }

    #[test]
    fn e19_has_one_row_per_depth() {
        let t = e19_epidemic_table(&tiny_ctx(2));
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.rows[0][1], "none");
        assert_eq!(t.rows[6][1], "full");
    }

    #[test]
    fn e20_covers_the_grid() {
        let t = e20_availability_table(&tiny_ctx(2));
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let availability: f64 = row[2].parse().unwrap();
            assert!(availability > 0.0 && availability <= 1.0);
        }
    }

    #[test]
    fn fleet_tables_are_jobs_invariant() {
        // `--jobs` maps to `--shards`, and shards never change cells.
        let a = e19_epidemic_table(&tiny_ctx(1));
        let b = e19_epidemic_table(&tiny_ctx(3));
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn e21_covers_every_step_under_both_postures() {
        // Scale 0.1 matches the CI fidelity job's drift bound check.
        let ctx = RunCtx::new(7, 2).with_trials_scale(0.1);
        let t = e21_fidelity_table(&ctx);
        assert_eq!(t.rows.len(), 18, "9 steps x 2 postures");
        for row in &t.rows {
            let gap: f64 = row[4].parse().unwrap();
            let tol: f64 = row[7].parse().unwrap();
            assert!(gap >= 0.0 && tol > 0.0);
            assert!(
                row[8] == "ok" || row[8] == "DRIFT",
                "verdict must be grep-able"
            );
        }
        // Independent estimates of identical models stay inside a
        // 3-sigma bound at this seed.
        assert!(
            t.rows.iter().all(|r| r[8] == "ok"),
            "fidelity drift at scale 0.1"
        );
    }

    #[test]
    fn e21_is_jobs_invariant() {
        let a = e21_fidelity_table(&tiny_ctx(1));
        let b = e21_fidelity_table(&tiny_ctx(4));
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
