//! E10: system-of-systems cascade risk and real-time DoS (Fig. 9, §VI).

use autosec_runner::{par_trials, par_trials_fold, RunCtx};
use autosec_sim::SimRng;
use autosec_sos::cascade::{cascade_trial, simulate, with_coupling_scale, CascadeAccumulator};
use autosec_sos::model::SystemLevel;
use autosec_sos::realtime::RealtimeLink;
use autosec_sos::reference::maas_reference;

use crate::Table;

/// E10 main table: cascade risk per entry point and coupling scale.
///
/// Each cell folds 2000 [`cascade_trial`] masks into a
/// [`CascadeAccumulator`] via [`par_trials_fold`] — trial `i` on the
/// `fork_idx(i)` stream, merged in trial order, so the table is
/// identical for any `ctx.jobs`.
pub fn e10_cascade_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E10",
        "Fig. 9 — breach cascades in the MaaS system of systems",
        &[
            "entry point",
            "coupling",
            "E[compromised]",
            "P[reach safety fn]",
        ],
    );
    let base = maas_reference();
    for entry_name in [
        "maas-platform",
        "cloud-backend",
        "passenger-os",
        "vehicle-os",
    ] {
        for scale in [0.5, 1.0, 1.5] {
            let g = with_coupling_scale(&base, scale);
            let entry = g.find(entry_name).expect("reference node");
            let trial_base = ctx
                .rng("e10-cascade")
                .fork(entry_name)
                .fork(&format!("{scale:.1}"));
            let acc = par_trials_fold(
                ctx.jobs,
                ctx.trials(2000),
                &trial_base,
                |_, mut rng| cascade_trial(&g, entry, &mut rng),
                CascadeAccumulator::new(&g),
                |mut acc, _, mask| {
                    acc.add(&mask);
                    acc
                },
            );
            let r = acc.report(entry);
            t.push_row(vec![
                entry_name.to_owned(),
                format!("{scale:.1}x"),
                format!("{:.2}", r.expected_compromised),
                format!("{:.1}%", r.safety_reach_probability * 100.0),
            ]);
        }
    }
    t
}

/// E10 structural table: the Fig. 9 levels.
pub fn e10_structure_table() -> Table {
    let mut t = Table::new(
        "E10",
        "Fig. 9 — levels, entry points, responsibility coverage",
        &["level", "nodes", "entry points", "stakeholders"],
    );
    let g = maas_reference();
    for (level, label) in [
        (SystemLevel::L0Platform, "L0 platform"),
        (SystemLevel::L1System, "L1 systems"),
        (SystemLevel::L2Subsystem, "L2 subsystems"),
        (SystemLevel::L3Function, "L3 functions"),
    ] {
        let nodes: Vec<_> = g.nodes_at(level).collect();
        let eps: usize = nodes.iter().map(|(_, n)| n.entry_points.len()).sum();
        let stakeholders: std::collections::BTreeSet<&str> = nodes
            .iter()
            .filter_map(|(_, n)| n.stakeholder.as_deref())
            .collect();
        t.push_row(vec![
            label.to_owned(),
            nodes.len().to_string(),
            eps.to_string(),
            stakeholders.len().to_string(),
        ]);
    }
    t
}

/// E10 companion: real-time deadline misses under DoS flooding.
///
/// Each flood level's 5000 messages fan out over [`par_trials`] on a
/// level-specific substream — message `i` always draws from
/// `fork_idx(i)`, so the miss rates are identical for any `ctx.jobs`.
pub fn e10_realtime_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E10",
        "§VI-B — real-time stream under DoS flood",
        &[
            "flood msgs/s",
            "utilisation",
            "mean wait ms",
            "deadline misses",
        ],
    );
    let link = RealtimeLink::control_stream();
    let base = ctx.rng("e10-realtime");
    for attack in [0.0, 300.0, 600.0, 800.0, 880.0, 950.0] {
        let stream = base.fork(&format!("flood-{attack:.0}"));
        let msgs = ctx.trials(5000);
        let missed = par_trials(ctx.jobs, msgs, &stream, |_, mut rng| {
            link.message_misses_deadline(attack, &mut rng)
        })
        .into_iter()
        .filter(|&m| m)
        .count();
        let miss = missed as f64 / msgs as f64;
        let wait = link.expected_wait_ms(attack);
        t.push_row(vec![
            format!("{attack:.0}"),
            format!("{:.0}%", link.utilisation(attack) * 100.0),
            if wait.is_finite() {
                format!("{wait:.2}")
            } else {
                "inf".into()
            },
            format!("{:.1}%", miss * 100.0),
        ]);
    }
    t
}

/// Cascade run used by the Criterion bench.
pub fn cascade_run(trials: usize) -> f64 {
    let g = maas_reference();
    let entry = g.find("maas-platform").expect("reference node");
    let mut rng = SimRng::seed(3030);
    simulate(&g, entry, trials, &mut rng).expected_compromised
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_table_risk_grows_with_coupling() {
        let t = e10_cascade_table(&RunCtx::default());
        // Rows come in triples per entry; within each triple, expected
        // compromised must be nondecreasing.
        for chunk in t.rows.chunks(3) {
            let vals: Vec<f64> = chunk
                .iter()
                .map(|r| r[2].parse().expect("number"))
                .collect();
            assert!(
                vals[0] <= vals[1] + 0.2 && vals[1] <= vals[2] + 0.2,
                "{vals:?}"
            );
        }
    }

    #[test]
    fn structure_table_matches_fig9() {
        let t = e10_structure_table();
        assert_eq!(t.rows[0][1], "1");
        assert_eq!(t.rows[1][1], "4");
        assert_eq!(t.rows[2][1], "3");
        assert_eq!(t.rows[3][1], "6");
    }

    #[test]
    fn realtime_misses_increase() {
        let t = e10_realtime_table(&RunCtx::default());
        let first: f64 = t.rows[0][3].trim_end_matches('%').parse().expect("number");
        let last: f64 = t.rows[5][3].trim_end_matches('%').parse().expect("number");
        assert!(first < 1.0);
        assert!(last > 90.0);
    }
}
