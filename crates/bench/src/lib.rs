//! # autosec-bench
//!
//! The experiment harness: every table and figure of the paper (plus the
//! quantitative experiments the surrounding text implies) regenerated as
//! code. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.
//!
//! Each `exp_*` module exposes functions returning [`Table`]s; the
//! [`registry`] collects them as [`Experiment`]s with ids, slugs, tags
//! and cost classes, the `experiments` binary runs the registry (with
//! `--jobs`/`--seed`/`--json`), and the Criterion benches in `benches/`
//! measure the runtime of the underlying workloads.

pub use autosec_runner::{
    ArtifactStore, Cost, Experiment, ExperimentRecord, Registry, RunCtx, RunManifest, Table,
};

pub mod exp_ablations;
pub mod exp_adversary;
pub mod exp_collab;
pub mod exp_data;
pub mod exp_faults;
pub mod exp_fleet;
pub mod exp_harness;
pub mod exp_ids;
pub mod exp_ivn;
pub mod exp_phy;
pub mod exp_proto;
pub mod exp_scengen;
pub mod exp_sdv;
pub mod exp_selfplay;
pub mod exp_sos;

/// Every experiment of the suite, in paper order.
///
/// Slugs are the artifact file stems and must stay unique; ids are the
/// paper's table groups (several experiments can share one id, e.g. the
/// three E10 tables).
pub fn registry() -> Registry {
    use Cost::{Cheap, Heavy, Moderate};
    let mut r = Registry::new();
    let mut reg = |id,
                   slug,
                   title,
                   tags,
                   strides: &'static [&'static str],
                   cost,
                   run: fn(&RunCtx) -> Table| {
        r.register(Experiment::new(id, slug, title, tags, cost, run).with_strides(strides));
    };
    reg(
        "E1",
        "e1-depth-sweep",
        "Fig. 1 — defense-in-depth curve",
        &["framework", "campaign", "parallel"],
        &[
            "spoofing",
            "tampering",
            "denial-of-service",
            "info-disclosure",
            "elevation-of-privilege",
        ],
        Moderate,
        exp_ids::e1_depth_sweep,
    );
    reg(
        "E2",
        "e2-hrp-attacks",
        "Fig. 2 — HRP STS distance-reduction attacks",
        &["phy", "ranging", "parallel"],
        &["spoofing"],
        Moderate,
        exp_phy::e2_hrp_attack_table,
    );
    reg(
        "E2",
        "e2-lrp-rounds",
        "Fig. 2 — LRP early-commit survival vs rounds",
        &["phy", "ranging", "parallel"],
        &[],
        Heavy,
        exp_phy::e2_lrp_rounds_table,
    );
    reg(
        "E2b",
        "e2b-enlargement",
        "§II-B — distance enlargement vs UWB-ED",
        &["phy", "ranging", "parallel"],
        &["tampering"],
        Moderate,
        exp_phy::e2b_enlargement_table,
    );
    reg(
        "E3",
        "e3-technologies",
        "Table — IVN technology comparison",
        &["ivn"],
        &[],
        Cheap,
        |_| exp_ivn::e3_technology_table(),
    );
    reg(
        "E3",
        "e3-zonal-latency",
        "§III — zonal network latency under load",
        &["ivn", "simulation", "parallel"],
        &[],
        Moderate,
        exp_ivn::e3_zonal_simulation_table,
    );
    reg(
        "E3",
        "e3-masquerade",
        "§III — CAN masquerade detection",
        &["ivn", "attack"],
        &["spoofing"],
        Moderate,
        |_| exp_ivn::e3_masquerade_table(),
    );
    reg(
        "E4",
        "e4-protocol-matrix",
        "Table 1 — security protocol comparison",
        &["protocols"],
        &[],
        Cheap,
        |_| exp_proto::e4_table1(),
    );
    reg(
        "E4",
        "e4-overhead",
        "§IV — protocol overhead measurements",
        &["protocols", "overhead"],
        &[],
        Moderate,
        |_| exp_proto::e4_overhead_table(),
    );
    reg(
        "E5-E7",
        "e567-scenarios",
        "§V — end-to-end attack scenarios",
        &["scenarios"],
        &[],
        Moderate,
        |_| exp_proto::e567_scenario_table(),
    );
    reg(
        "E8",
        "e8-reconfiguration",
        "§V — SDV reconfiguration race",
        &["sdv", "parallel"],
        &[],
        Moderate,
        exp_sdv::e8_reconfiguration_table,
    );
    reg(
        "E8b",
        "e8b-charging",
        "§V — charging-session SSI handshake",
        &["sdv", "ssi"],
        &[],
        Moderate,
        |_| exp_sdv::e8b_charging_table(),
    );
    reg(
        "E9",
        "e9-killchain",
        "§VI — data-driven kill chain",
        &["data", "parallel"],
        &["info-disclosure"],
        Moderate,
        exp_data::e9_killchain_table,
    );
    reg(
        "E9",
        "e9-surface",
        "§VI — attack-surface inventory",
        &["data"],
        &[],
        Cheap,
        |_| exp_data::e9_surface_table(),
    );
    reg(
        "E10",
        "e10-structure",
        "Fig. 9 — MaaS system-of-systems structure",
        &["sos"],
        &[],
        Cheap,
        |_| exp_sos::e10_structure_table(),
    );
    reg(
        "E10",
        "e10-cascade",
        "Fig. 9 — breach cascades across the SoS",
        &["sos", "montecarlo", "parallel"],
        &["denial-of-service"],
        Heavy,
        exp_sos::e10_cascade_table,
    );
    reg(
        "E10",
        "e10-realtime",
        "§VI-B — real-time stream under DoS",
        &["sos", "realtime", "parallel"],
        &["denial-of-service"],
        Moderate,
        exp_sos::e10_realtime_table,
    );
    reg(
        "E11",
        "e11-competition",
        "§VII-A — intersection competition",
        &["collab", "gametheory", "parallel"],
        &[],
        Heavy,
        exp_collab::e11_competition_table,
    );
    reg(
        "E12",
        "e12-misbehavior",
        "§VII-B — ghost-object fabrication vs redundancy",
        &["collab", "misbehavior", "parallel"],
        &["spoofing"],
        Heavy,
        exp_collab::e12_misbehavior_table,
    );
    reg(
        "E12",
        "e12-removal",
        "§VII-B — object-removal attack",
        &["collab", "misbehavior", "parallel"],
        &["tampering"],
        Heavy,
        exp_collab::e12_removal_table,
    );
    reg(
        "E13",
        "e13-synergy",
        "§VIII — IDS multi-layer synergy",
        &["ids", "campaign", "parallel"],
        &[],
        Heavy,
        exp_ids::e13_synergy_table,
    );
    reg(
        "E14",
        "e14-fault-sweep",
        "§VIII — fault-sweep resilience curves",
        &["faults", "resilience", "parallel"],
        &[],
        Heavy,
        exp_faults::e14_fault_sweep_table,
    );
    reg(
        "E15",
        "e15-recovery",
        "§VIII — self-healing recovery and MTTR",
        &["faults", "recovery", "campaign", "parallel"],
        &[],
        Heavy,
        exp_faults::e15_recovery_table,
    );
    reg(
        "E16",
        "e16-planner",
        "§VIII — adaptive attack planner vs static replay",
        &["adversary", "campaign", "parallel"],
        &[],
        Heavy,
        exp_adversary::e16_planner_table,
    );
    reg(
        "E17",
        "e17-defense-frontier",
        "§VIII — greedy defense-budget frontier",
        &["adversary", "defense", "parallel"],
        &[],
        Heavy,
        exp_adversary::e17_defense_frontier_table,
    );
    reg(
        "E18",
        "e18-harness-resilience",
        "§VIII — harness resilience under injected trial panics",
        &["harness", "resilience", "parallel"],
        &[],
        Moderate,
        exp_harness::e18_harness_resilience_table,
    );
    reg(
        "E19",
        "e19-fleet-epidemic",
        "§VIII — live-fleet epidemic spread vs defense depth",
        &["fleet", "epidemic", "campaign", "parallel"],
        &[],
        Heavy,
        exp_fleet::e19_epidemic_table,
    );
    reg(
        "E20",
        "e20-fleet-availability",
        "§VIII — live-fleet availability and MTTR under combined load",
        &["fleet", "availability", "recovery", "parallel"],
        &[],
        Heavy,
        exp_fleet::e20_availability_table,
    );
    reg(
        "E21",
        "e21-fidelity-drift",
        "§VIII — calibrated-vs-live fidelity drift (two-tier scenario engine)",
        &["fleet", "fidelity", "calibration", "parallel"],
        &[],
        Heavy,
        exp_fleet::e21_fidelity_table,
    );
    reg(
        "E22",
        "e22-selfplay-tournament",
        "§VIII — self-play tournament: adaptive attacker vs closed-loop defender",
        &["adversary", "selfplay", "defense", "parallel"],
        &[],
        Heavy,
        exp_selfplay::e22_tournament_table,
    );
    reg(
        "E23",
        "e23-closed-vs-static",
        "§VIII — closed-loop defender vs static greedy frontier at equal cost",
        &["adversary", "selfplay", "defense", "parallel"],
        &[],
        Heavy,
        exp_selfplay::e23_equal_cost_table,
    );
    reg(
        "E24",
        "e24-scengen-sweep",
        "§VIII — generated-campaign sweep over the defense-depth ladder",
        &["scengen", "campaign", "generative", "parallel"],
        &[
            "spoofing",
            "tampering",
            "denial-of-service",
            "info-disclosure",
            "elevation-of-privilege",
        ],
        Heavy,
        exp_scengen::e24_scengen_sweep_table,
    );
    reg(
        "E25",
        "e25-coverage-matrix",
        "§VIII — STRIDE×layer coverage matrix of the generated scenario pool",
        &["scengen", "coverage", "generative"],
        &[
            "spoofing",
            "tampering",
            "repudiation",
            "info-disclosure",
            "denial-of-service",
            "elevation-of-privilege",
        ],
        Moderate,
        exp_scengen::e25_coverage_matrix_table,
    );
    reg(
        "E26",
        "e26-isolation",
        "§VIII — harness isolation: survivor convergence under injected kills",
        &["harness", "isolation", "parallel"],
        &[],
        Moderate,
        exp_harness::e26_isolation_table,
    );
    reg(
        "A1",
        "a1-hrp-threshold",
        "Ablation — HRP integrity threshold sweep",
        &["ablation", "phy", "parallel"],
        &[],
        Moderate,
        exp_ablations::a1_hrp_threshold_table,
    );
    reg(
        "A2",
        "a2-secoc-truncation",
        "Ablation — SecOC MAC truncation",
        &["ablation", "ivn"],
        &[],
        Moderate,
        |_| exp_ablations::a2_secoc_truncation_table(),
    );
    reg(
        "A3",
        "a3-canal-mtu",
        "Ablation — CANAL MTU sweep",
        &["ablation", "ivn"],
        &[],
        Moderate,
        |_| exp_ablations::a3_canal_mtu_table(),
    );
    reg(
        "A4",
        "a4-seemqtt",
        "Ablation — SeeMQTT trust chain",
        &["ablation", "protocols"],
        &[],
        Moderate,
        |_| exp_ablations::a4_seemqtt_table(),
    );
    reg(
        "A5",
        "a5-vrange",
        "Ablation — V-Range defense sweep",
        &["ablation", "phy", "parallel"],
        &[],
        Moderate,
        exp_ablations::a5_vrange_table,
    );
    // The hidden chaos probe exists only when explicitly summoned: CI
    // sets AUTOSEC_CHAOS to drive --keep-going / --resume through a
    // real (deterministic) failure without touching the normal suite.
    if std::env::var("AUTOSEC_CHAOS").is_ok() {
        reg(
            "X0",
            "x0-chaos",
            "hidden chaos probe (AUTOSEC_CHAOS: panic | sleep:<ms> | alloc:<mb> | spin:<secs> | flaky:<path> | ok)",
            &["chaos"],
            &[],
            Cheap,
            exp_harness::x0_chaos_table,
        );
    }
    r
}

/// Every experiment table in order, under the default context
/// (seed 42, one worker). Compatibility wrapper over [`registry`].
pub fn all_tables() -> Vec<Table> {
    let ctx = RunCtx::default();
    registry().iter().map(|e| e.run(&ctx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_groups() {
        let r = registry();
        // 39 normally; +1 when a chaos-probe env var leaks into the
        // test environment.
        let chaos = std::env::var("AUTOSEC_CHAOS").is_ok() as usize;
        assert_eq!(r.len(), 39 + chaos);
        let ids = r.group_ids();
        for want in [
            "E1", "E2", "E2b", "E3", "E4", "E5-E7", "E8", "E8b", "E9", "E10", "E11", "E12", "E13",
            "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25",
            "E26", "A1", "A2", "A3", "A4", "A5",
        ] {
            assert!(ids.contains(&want), "missing group {want}");
        }
    }

    #[test]
    fn registry_selects_exact_groups() {
        let r = registry();
        // Substring matching would drag E10–E13 in here.
        assert_eq!(r.select("E1").len(), 1);
        assert_eq!(r.select("e10").len(), 3);
        assert_eq!(r.select("e2-lrp-rounds").len(), 1);
        assert!(r.select("E99").is_empty());
    }

    #[test]
    fn cheap_experiments_run_under_default_ctx() {
        let ctx = RunCtx::default();
        for e in registry().iter().filter(|e| e.cost == Cost::Cheap) {
            let t = e.run(&ctx);
            assert!(!t.rows.is_empty(), "{} produced no rows", e.slug);
        }
    }
}
