//! # autosec-bench
//!
//! The experiment harness: every table and figure of the paper (plus the
//! quantitative experiments the surrounding text implies) regenerated as
//! code. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.
//!
//! Each `exp_*` module exposes functions returning [`Table`]s; the
//! `experiments` binary prints them, and the Criterion benches in
//! `benches/` measure the runtime of the underlying workloads.

pub mod exp_ablations;
pub mod exp_collab;
pub mod exp_data;
pub mod exp_ids;
pub mod exp_ivn;
pub mod exp_phy;
pub mod exp_proto;
pub mod exp_sdv;
pub mod exp_sos;

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id, e.g. `"E2"`.
    pub id: &'static str,
    /// Title (paper anchor).
    pub title: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from string-convertible headers.
    pub fn new(id: &'static str, title: &'static str, headers: &[&str]) -> Self {
        Self {
            id,
            title,
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:<w$}  ", h, w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{}  ", "-".repeat(widths[i]))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:<w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Every experiment in order, for the `all` runner.
pub fn all_tables() -> Vec<Table> {
    vec![
        exp_ids::e1_depth_sweep(),
        exp_phy::e2_hrp_attack_table(),
        exp_phy::e2_lrp_rounds_table(),
        exp_phy::e2b_enlargement_table(),
        exp_ivn::e3_technology_table(),
        exp_ivn::e3_zonal_simulation_table(),
        exp_ivn::e3_masquerade_table(),
        exp_proto::e4_table1(),
        exp_proto::e4_overhead_table(),
        exp_proto::e567_scenario_table(),
        exp_sdv::e8_reconfiguration_table(),
        exp_sdv::e8b_charging_table(),
        exp_data::e9_killchain_table(),
        exp_data::e9_surface_table(),
        exp_sos::e10_structure_table(),
        exp_sos::e10_cascade_table(),
        exp_sos::e10_realtime_table(),
        exp_collab::e11_competition_table(),
        exp_collab::e12_misbehavior_table(),
        exp_collab::e12_removal_table(),
        exp_ids::e13_synergy_table(),
        exp_ablations::a1_hrp_threshold_table(),
        exp_ablations::a2_secoc_truncation_table(),
        exp_ablations::a3_canal_mtu_table(),
        exp_ablations::a4_seemqtt_table(),
        exp_ablations::a5_vrange_table(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("EX", "demo", &["a", "long-header"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("EX"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("EX", "demo", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }
}
