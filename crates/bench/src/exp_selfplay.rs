//! E22 / E23: attacker-vs-defender self-play over the calibrated
//! attack graph.
//!
//! E22 sweeps the tournament matrix: two adaptive-attacker profiles
//! (the E17 silent planner and a noisy `stealth_weight`-discounted
//! variant) against the closed-loop runtime defender at increasing
//! defense budgets, under the default rule table and under weights
//! relearned from duel outcomes ([`learn_weights`]). E23 is the
//! equal-cost anchor: at every greedy-frontier budget K the closed-loop
//! defender that pre-spends the frontier's own K knobs must do at least
//! as well as the static allocation — and on the same evaluation
//! streams a fully pre-spent duel replays the static run bit for bit,
//! so the verdict column is decided deterministically, not
//! statistically. A second column pair repeats the comparison against
//! the noisy attacker with half the budget held in reserve, where the
//! reactive rules actually fire.
//!
//! Everything fans out via `par_trials` on forked substreams: both
//! tables are bit-identical across `--jobs` values at a fixed seed.

use autosec_adversary::{
    calibrated_graph, evaluate_with, greedy_frontier, AttackConfig, AttackGraph, CalibrationConfig,
    DefenseKnob,
};
use autosec_autodefense::{learn_weights, run_cell, CellSummary, DefenderConfig, DuelConfig};
use autosec_runner::RunCtx;

use crate::Table;

/// Monte-Carlo trials per edge per posture side during calibration.
pub const CALIB_TRIALS: usize = 120;

/// Duels per tournament cell (E22) and per frontier point (E23).
pub const DUEL_TRIALS: usize = 320;

/// Training duels for the feedback-learning pass.
pub const LEARN_TRIALS: usize = 240;

/// Attack-step budget for every duel (the E16/E17 value).
pub const STEP_BUDGET: usize = 10;

/// Defender budgets swept by the E22 matrix.
pub const DEFENDER_BUDGETS: [f64; 5] = [0.0, 1.0, 2.0, 4.0, 6.0];

/// Stealth weight of the noisy attacker profile: it still prefers
/// quiet routes but no longer treats detection pressure as decisive,
/// so the defender's alert stream carries real signal.
pub const NOISY_STEALTH_WEIGHT: f64 = 0.4;

/// Calibrates the shared attack graph for one experiment.
fn graph_for(ctx: &RunCtx, label: &str) -> AttackGraph {
    let cfg = CalibrationConfig::new(ctx.trials(CALIB_TRIALS), ctx.jobs);
    calibrated_graph(&cfg, &ctx.rng(label))
}

/// The two attacker profiles of the tournament.
fn profiles() -> [(&'static str, AttackConfig); 2] {
    [
        ("silent", AttackConfig::new(STEP_BUDGET)),
        (
            "noisy",
            AttackConfig {
                stealth_weight: NOISY_STEALTH_WEIGHT,
                ..AttackConfig::new(STEP_BUDGET)
            },
        ),
    ]
}

fn cell_row(attacker: &str, budget: f64, policy: &str, cell: &CellSummary) -> Vec<String> {
    vec![
        attacker.to_owned(),
        format!("{budget}"),
        policy.to_owned(),
        format!("{:.1}%", cell.breach_rate * 100.0),
        format!("{:.2}", cell.mean_depth),
        format!("{:.2}", cell.mean_ttb),
        format!("{:.2}", cell.mean_spend),
        format!("{:.2}", cell.mean_alerts),
    ]
}

/// E22 table: the self-play tournament matrix. Rows sweep (attacker
/// profile × defender budget) under the reactive rule table, then
/// repeat the noisy profile under weights learned from a training
/// batch at the middle budget. Cells within one profile share trial
/// streams (common random numbers), so reading down a column shows
/// what each defense dollar buys against identical attacker luck.
pub fn e22_tournament_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E22",
        "§VIII — self-play tournament: adaptive attacker vs closed-loop defender",
        &[
            "attacker",
            "def budget",
            "policy",
            "breach",
            "depth",
            "ttb",
            "def spend",
            "alerts",
        ],
    );
    let graph = graph_for(ctx, "e22/calib");
    let trials = ctx.trials(DUEL_TRIALS);

    for (name, attack) in profiles() {
        let duels = ctx.rng(&format!("e22/duels/{name}"));
        for budget in DEFENDER_BUDGETS {
            let cfg = DuelConfig {
                attack,
                defense: DefenderConfig::reactive(budget),
            };
            let cell = run_cell(&graph, &cfg, trials, ctx.jobs, &duels);
            t.push_row(cell_row(name, budget, "reactive", &cell));
        }
    }

    // Feedback learning: reweight the rule table from a training batch
    // against the noisy attacker at the middle budget, then re-sweep
    // that profile on the same evaluation streams as its reactive rows.
    let (name, attack) = profiles()[1];
    let train_cfg = DuelConfig {
        attack,
        defense: DefenderConfig::reactive(DEFENDER_BUDGETS[3]),
    };
    let weights = learn_weights(
        &graph,
        &train_cfg,
        ctx.trials(LEARN_TRIALS),
        ctx.jobs,
        &ctx.rng("e22/train"),
    );
    let duels = ctx.rng(&format!("e22/duels/{name}"));
    for budget in DEFENDER_BUDGETS {
        let cfg = DuelConfig {
            attack,
            defense: DefenderConfig {
                weights,
                ..DefenderConfig::reactive(budget)
            },
        };
        let cell = run_cell(&graph, &cfg, trials, ctx.jobs, &duels);
        t.push_row(cell_row(name, budget, "learned", &cell));
    }
    t
}

/// E23 table: closed-loop vs static defense at equal cost along the
/// greedy frontier. At each K the static column is the E17 frontier
/// evaluation; the closed-loop column pre-deploys the same K knobs
/// with nothing in reserve on the same trial streams, which replays
/// the static run bit for bit — the verdict is `=` at every point by
/// construction (and `<` would also satisfy weak dominance). The noisy
/// pair re-runs the comparison against the `stealth_weight`-discounted
/// attacker with only half the budget pre-deployed, the half-reactive
/// configuration where the runtime rules earn their keep.
pub fn e23_equal_cost_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E23",
        "§VIII — closed-loop defender vs static greedy frontier at equal cost",
        &[
            "K",
            "knob added",
            "static success",
            "closed success",
            "verdict",
            "noisy static",
            "noisy closed",
        ],
    );
    let graph = graph_for(ctx, "e23/calib");
    let trials = ctx.trials(DUEL_TRIALS);
    let eval = ctx.rng("e23/eval");
    let noisy_eval = ctx.rng("e23/noisy");
    let frontier = greedy_frontier(&graph, STEP_BUDGET, trials, ctx.jobs, &eval);
    let noisy_attack = AttackConfig {
        stealth_weight: NOISY_STEALTH_WEIGHT,
        ..AttackConfig::new(STEP_BUDGET)
    };

    for k in 0..=frontier.len() {
        let (label, knobs, static_success): (String, &[DefenseKnob], f64) = if k == 0 {
            let open = evaluate_with(
                &graph,
                &[],
                &AttackConfig::new(STEP_BUDGET),
                trials,
                ctx.jobs,
                &eval,
            );
            ("(undefended)".to_owned(), &[], open.success)
        } else {
            let alloc = &frontier[k - 1];
            (
                alloc
                    .knobs
                    .last()
                    .expect("one knob per step")
                    .label()
                    .to_owned(),
                &alloc.knobs,
                alloc.eval.success,
            )
        };
        // Equal cost, zero reserve: the whole budget K buys the
        // frontier's own knobs at deployment time.
        let closed_cfg = DuelConfig {
            attack: AttackConfig::new(STEP_BUDGET),
            defense: DefenderConfig {
                budget: k as f64,
                pre_spend: knobs.to_vec(),
                ..DefenderConfig::reactive(0.0)
            },
        };
        let closed = run_cell(&graph, &closed_cfg, trials, ctx.jobs, &eval);
        let verdict = if closed.breach_rate < static_success {
            "<"
        } else if closed.breach_rate == static_success {
            "="
        } else {
            ">"
        };
        // The honest half: same budget K against the noisy attacker,
        // half pre-deployed and half held for the runtime rules.
        let noisy_static =
            evaluate_with(&graph, knobs, &noisy_attack, trials, ctx.jobs, &noisy_eval);
        let noisy_cfg = DuelConfig {
            attack: noisy_attack,
            defense: DefenderConfig {
                budget: k as f64,
                pre_spend: knobs[..k / 2].to_vec(),
                ..DefenderConfig::reactive(0.0)
            },
        };
        let noisy_closed = run_cell(&graph, &noisy_cfg, trials, ctx.jobs, &noisy_eval);
        t.push_row(vec![
            k.to_string(),
            label,
            format!("{:.1}%", static_success * 100.0),
            format!("{:.1}%", closed.breach_rate * 100.0),
            verdict.to_owned(),
            format!("{:.1}%", noisy_static.success * 100.0),
            format!("{:.1}%", noisy_closed.breach_rate * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> RunCtx {
        RunCtx::new(42, 1).with_trials_scale(0.1)
    }

    #[test]
    fn e22_matrix_is_jobs_invariant() {
        let a = e22_tournament_table(&RunCtx::new(7, 1).with_trials_scale(0.05));
        let b = e22_tournament_table(&RunCtx::new(7, 4).with_trials_scale(0.05));
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn e22_covers_both_profiles_and_the_learned_policy() {
        let t = e22_tournament_table(&small_ctx());
        assert_eq!(t.rows.len(), 3 * DEFENDER_BUDGETS.len());
        assert!(t
            .rows
            .iter()
            .any(|r| r[0] == "silent" && r[2] == "reactive"));
        assert!(t.rows.iter().any(|r| r[0] == "noisy" && r[2] == "learned"));
    }

    #[test]
    fn e23_closed_loop_weakly_dominates_static_at_equal_cost() {
        let t = e23_equal_cost_table(&small_ctx());
        assert_eq!(t.rows.len(), 9, "K = 0..=8");
        // The acceptance bar is >= 3 budget points; the zero-reserve
        // construction makes it all nine, bit for bit.
        let dominated = t.rows.iter().filter(|r| r[4] == "=" || r[4] == "<").count();
        assert!(
            dominated >= 3,
            "weak dominance at {dominated} points: {:?}",
            t.rows
        );
        for r in &t.rows {
            assert_eq!(
                r[2], r[3],
                "zero-reserve pre-spend must replay the static run bit for bit at K={}",
                r[0]
            );
        }
    }

    #[test]
    fn e23_is_jobs_invariant() {
        let a = e23_equal_cost_table(&RunCtx::new(9, 1).with_trials_scale(0.05));
        let b = e23_equal_cost_table(&RunCtx::new(9, 3).with_trials_scale(0.05));
        assert_eq!(a.rows, b.rows);
    }
}
