//! E11 / E12: intersection competition and collaborative-perception
//! misbehaviour detection (§VII).

use autosec_collab::attacks::{FabricationStrategy, InternalFabricator};
use autosec_collab::intersection::{round_outcome, Agent, IntersectionAccumulator};
use autosec_collab::misbehavior::{MisbehaviorConfig, MisbehaviorDetector};
use autosec_collab::perception::perception_round;
use autosec_collab::world::{Point, SensorModel, VehicleId, World};
use autosec_runner::{par_trials, par_trials_fold, RunCtx};
use autosec_sim::SimRng;

use crate::Table;

/// E11 table: intersection outcomes versus self-interest.
///
/// Each row plays 20 000 protocol rounds through [`par_trials_fold`]:
/// round `i` on the `fork_idx(i)` stream, outcomes folded into an
/// [`IntersectionAccumulator`] in round order — identical for any
/// `ctx.jobs`.
pub fn e11_competition_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E11",
        "§VII-A — intersection competition vs self-interest",
        &[
            "self-interest",
            "throughput",
            "conflicts",
            "deadlocks",
            "selfish gain",
        ],
    );
    for p in [0.0, 0.1, 0.2, 0.3, 0.5, 0.8] {
        // One selfish agent among cooperatives.
        let mut agents = [Agent::cooperative(); 4];
        agents[0] = Agent::selfish(p);
        let base = ctx.rng("e11-competition").fork(&format!("{p:.1}"));
        let acc = par_trials_fold(
            ctx.jobs,
            ctx.trials(20_000),
            &base,
            |round, mut rng| round_outcome(&agents, round, &mut rng),
            IntersectionAccumulator::new(),
            |mut acc, _, outcome| {
                acc.add(outcome);
                acc
            },
        );
        let r = acc.report(&agents);
        t.push_row(vec![
            format!("{p:.1}"),
            format!("{:.2}", r.throughput),
            format!("{:.1}%", r.conflict_rate * 100.0),
            format!("{:.1}%", r.deadlock_rate * 100.0),
            format!("{:+.0}", r.selfish_advantage),
        ]);
    }
    t
}

/// A world with `n` honest observers around the target area.
fn observer_world(n: usize) -> World {
    let mut vehicles = vec![Point { x: 0.0, y: 0.0 }]; // attacker
    for i in 0..n {
        let angle = i as f64 / n.max(1) as f64 * std::f64::consts::TAU;
        vehicles.push(Point {
            x: 15.0 + 25.0 * angle.cos(),
            y: 15.0 + 25.0 * angle.sin(),
        });
    }
    World::new(vehicles, vec![Point { x: 15.0, y: 15.0 }])
}

/// Ghost detection rate with `n_observers` honest witnesses.
///
/// Rounds are independent (a fresh detector per round measures
/// single-shot detection), so round `i` runs on `base.fork_idx(i)`
/// under [`par_trials`] — the rate is identical for any `jobs`.
pub fn ghost_detection_rate(n_observers: usize, rounds: u64, base: &SimRng, jobs: usize) -> f64 {
    let world = observer_world(n_observers);
    let sensor = SensorModel {
        miss_rate: 0.02,
        noise_m: 0.3,
        range_m: 60.0,
    };
    let attacker = InternalFabricator {
        vehicle: VehicleId(0),
        strategy: FabricationStrategy::GhostObject {
            at: Point { x: 25.0, y: 5.0 },
        },
    };
    let key = b"bench key";
    let detected = par_trials(jobs, rounds as usize, base, |round, mut rng| {
        // Fresh detector per round: measures single-shot detection.
        let round = round as u64;
        let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let mut msgs = perception_round(&world, &sensor, key, round, &mut rng);
        let honest = msgs[0].detections.clone();
        msgs[0] = attacker.emit(&world, honest, key, round, &mut rng);
        let flags = det.process_round(&world, &sensor, key, &msgs);
        flags.iter().any(|f| f.claimant == VehicleId(0))
    })
    .into_iter()
    .filter(|&d| d)
    .count();
    detected as f64 / rounds as f64
}

/// False-positive rate with honest traffic only.
pub fn honest_false_positive_rate(
    n_observers: usize,
    rounds: u64,
    base: &SimRng,
    jobs: usize,
) -> f64 {
    let world = observer_world(n_observers);
    let sensor = SensorModel {
        miss_rate: 0.02,
        noise_m: 0.3,
        range_m: 60.0,
    };
    let key = b"bench key";
    let flagged = par_trials(jobs, rounds as usize, base, |round, mut rng| {
        let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let msgs = perception_round(&world, &sensor, key, round as u64, &mut rng);
        !det.process_round(&world, &sensor, key, &msgs).is_empty()
    })
    .into_iter()
    .filter(|&d| d)
    .count();
    flagged as f64 / rounds as f64
}

/// Object-removal impact: probability that the real object *disappears*
/// from the fused view when the attacker omits it (§VII-B's stealthier
/// fabrication — redundancy keeps the object alive).
pub fn removal_loss_rate(n_observers: usize, rounds: u64, base: &SimRng, jobs: usize) -> f64 {
    let world = observer_world(n_observers);
    let sensor = SensorModel {
        miss_rate: 0.05,
        noise_m: 0.3,
        range_m: 60.0,
    };
    let attacker = InternalFabricator {
        vehicle: VehicleId(0),
        strategy: FabricationStrategy::ObjectRemoval,
    };
    let key = b"bench key";
    let target = Point { x: 15.0, y: 15.0 };
    let lost = par_trials(jobs, rounds as usize, base, |round, mut rng| {
        let round = round as u64;
        let mut msgs = perception_round(&world, &sensor, key, round, &mut rng);
        let honest = msgs[0].detections.clone();
        msgs[0] = attacker.emit(&world, honest, key, round, &mut rng);
        let fused = autosec_collab::perception::fuse(&msgs, 3.0);
        !fused.iter().any(|f| f.position.dist(&target) < 3.0)
    })
    .into_iter()
    .filter(|&l| l)
    .count();
    lost as f64 / rounds as f64
}

/// E12 removal table.
pub fn e12_removal_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E12",
        "§VII-B — object-removal attack: target lost from fused view",
        &["honest observers", "object lost"],
    );
    for n in [0usize, 1, 2, 4] {
        let base = ctx.rng("e12-removal").fork(&n.to_string());
        let loss = removal_loss_rate(n, ctx.trials(100) as u64, &base, ctx.jobs);
        t.push_row(vec![n.to_string(), format!("{:.0}%", loss * 100.0)]);
    }
    t
}

/// E12 table: detection vs redundancy.
pub fn e12_misbehavior_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E12",
        "§VII-B — internal fabrication vs redundancy (ghost object)",
        &["honest observers", "ghost detected", "false positives"],
    );
    for n in [0usize, 1, 2, 3, 5, 8] {
        let det_base = ctx.rng("e12-ghost").fork(&n.to_string());
        let fp_base = ctx.rng("e12-false-positive").fork(&n.to_string());
        let det = ghost_detection_rate(n, ctx.trials(100) as u64, &det_base, ctx.jobs);
        let fp = honest_false_positive_rate(n, ctx.trials(100) as u64, &fp_base, ctx.jobs);
        t.push_row(vec![
            n.to_string(),
            format!("{:.0}%", det * 100.0),
            format!("{:.0}%", fp * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_needs_redundancy() {
        // Zero observers: undetectable (the paper's hard case).
        assert_eq!(ghost_detection_rate(0, 30, &SimRng::seed(1), 1), 0.0);
        // Several observers: reliably detected.
        assert!(ghost_detection_rate(4, 30, &SimRng::seed(1), 1) > 0.9);
    }

    #[test]
    fn false_positives_stay_low() {
        assert!(honest_false_positive_rate(4, 30, &SimRng::seed(2), 1) < 0.15);
    }

    #[test]
    fn removal_needs_redundancy_too() {
        // Lone attacker as only observer: object vanishes every time.
        assert!(removal_loss_rate(0, 30, &SimRng::seed(3), 1) > 0.95);
        // Any honest observer keeps the object alive (minus sensor
        // misses).
        assert!(removal_loss_rate(2, 30, &SimRng::seed(3), 1) < 0.1);
    }

    #[test]
    fn competition_table_shape() {
        let t = e11_competition_table(&RunCtx::default());
        assert_eq!(t.rows.len(), 6);
        // Selfish gain at p=0 is ~0; at p=0.5 it is large.
        let gain0: f64 = t.rows[0][4].parse().expect("number");
        let gain5: f64 = t.rows[4][4].parse().expect("number");
        assert!(gain5 > gain0 + 100.0, "{gain0} vs {gain5}");
    }
}
