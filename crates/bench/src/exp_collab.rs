//! E11 / E12: intersection competition and collaborative-perception
//! misbehaviour detection (§VII).

use autosec_collab::attacks::{FabricationStrategy, InternalFabricator};
use autosec_collab::intersection::{simulate, Agent};
use autosec_collab::misbehavior::{MisbehaviorConfig, MisbehaviorDetector};
use autosec_collab::perception::perception_round;
use autosec_collab::world::{Point, SensorModel, VehicleId, World};
use autosec_sim::SimRng;

use crate::Table;

/// E11 table: intersection outcomes versus self-interest.
pub fn e11_competition_table() -> Table {
    let mut t = Table::new(
        "E11",
        "§VII-A — intersection competition vs self-interest",
        &["self-interest", "throughput", "conflicts", "deadlocks", "selfish gain"],
    );
    for p in [0.0, 0.1, 0.2, 0.3, 0.5, 0.8] {
        // One selfish agent among cooperatives.
        let mut agents = [Agent::cooperative(); 4];
        agents[0] = Agent::selfish(p);
        let mut rng = SimRng::seed(4040);
        let r = simulate(&agents, 20_000, &mut rng);
        t.push_row(vec![
            format!("{p:.1}"),
            format!("{:.2}", r.throughput),
            format!("{:.1}%", r.conflict_rate * 100.0),
            format!("{:.1}%", r.deadlock_rate * 100.0),
            format!("{:+.0}", r.selfish_advantage),
        ]);
    }
    t
}

/// A world with `n` honest observers around the target area.
fn observer_world(n: usize) -> World {
    let mut vehicles = vec![Point { x: 0.0, y: 0.0 }]; // attacker
    for i in 0..n {
        let angle = i as f64 / n.max(1) as f64 * std::f64::consts::TAU;
        vehicles.push(Point {
            x: 15.0 + 25.0 * angle.cos(),
            y: 15.0 + 25.0 * angle.sin(),
        });
    }
    World::new(vehicles, vec![Point { x: 15.0, y: 15.0 }])
}

/// Ghost detection rate with `n_observers` honest witnesses.
pub fn ghost_detection_rate(n_observers: usize, rounds: u64, seed: u64) -> f64 {
    let world = observer_world(n_observers);
    let sensor = SensorModel {
        miss_rate: 0.02,
        noise_m: 0.3,
        range_m: 60.0,
    };
    let attacker = InternalFabricator {
        vehicle: VehicleId(0),
        strategy: FabricationStrategy::GhostObject {
            at: Point { x: 25.0, y: 5.0 },
        },
    };
    let key = b"bench key";
    let mut detected = 0u64;
    let mut rng = SimRng::seed(seed);
    for round in 0..rounds {
        // Fresh detector per round: measures single-shot detection.
        let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let mut msgs = perception_round(&world, &sensor, key, round, &mut rng);
        let honest = msgs[0].detections.clone();
        msgs[0] = attacker.emit(&world, honest, key, round, &mut rng);
        let flags = det.process_round(&world, &sensor, key, &msgs);
        if flags.iter().any(|f| f.claimant == VehicleId(0)) {
            detected += 1;
        }
    }
    detected as f64 / rounds as f64
}

/// False-positive rate with honest traffic only.
pub fn honest_false_positive_rate(n_observers: usize, rounds: u64, seed: u64) -> f64 {
    let world = observer_world(n_observers);
    let sensor = SensorModel {
        miss_rate: 0.02,
        noise_m: 0.3,
        range_m: 60.0,
    };
    let key = b"bench key";
    let mut flagged = 0u64;
    let mut rng = SimRng::seed(seed);
    for round in 0..rounds {
        let mut det = MisbehaviorDetector::new(MisbehaviorConfig::default());
        let msgs = perception_round(&world, &sensor, key, round, &mut rng);
        if !det.process_round(&world, &sensor, key, &msgs).is_empty() {
            flagged += 1;
        }
    }
    flagged as f64 / rounds as f64
}

/// Object-removal impact: probability that the real object *disappears*
/// from the fused view when the attacker omits it (§VII-B's stealthier
/// fabrication — redundancy keeps the object alive).
pub fn removal_loss_rate(n_observers: usize, rounds: u64, seed: u64) -> f64 {
    let world = observer_world(n_observers);
    let sensor = SensorModel {
        miss_rate: 0.05,
        noise_m: 0.3,
        range_m: 60.0,
    };
    let attacker = InternalFabricator {
        vehicle: VehicleId(0),
        strategy: FabricationStrategy::ObjectRemoval,
    };
    let key = b"bench key";
    let target = Point { x: 15.0, y: 15.0 };
    let mut lost = 0u64;
    let mut rng = SimRng::seed(seed);
    for round in 0..rounds {
        let mut msgs = perception_round(&world, &sensor, key, round, &mut rng);
        let honest = msgs[0].detections.clone();
        msgs[0] = attacker.emit(&world, honest, key, round, &mut rng);
        let fused = autosec_collab::perception::fuse(&msgs, 3.0);
        if !fused.iter().any(|f| f.position.dist(&target) < 3.0) {
            lost += 1;
        }
    }
    lost as f64 / rounds as f64
}

/// E12 removal table.
pub fn e12_removal_table() -> Table {
    let mut t = Table::new(
        "E12",
        "§VII-B — object-removal attack: target lost from fused view",
        &["honest observers", "object lost"],
    );
    for n in [0usize, 1, 2, 4] {
        let loss = removal_loss_rate(n, 100, 7070);
        t.push_row(vec![n.to_string(), format!("{:.0}%", loss * 100.0)]);
    }
    t
}

/// E12 table: detection vs redundancy.
pub fn e12_misbehavior_table() -> Table {
    let mut t = Table::new(
        "E12",
        "§VII-B — internal fabrication vs redundancy (ghost object)",
        &["honest observers", "ghost detected", "false positives"],
    );
    for n in [0usize, 1, 2, 3, 5, 8] {
        let det = ghost_detection_rate(n, 100, 5050);
        let fp = honest_false_positive_rate(n, 100, 6060);
        t.push_row(vec![
            n.to_string(),
            format!("{:.0}%", det * 100.0),
            format!("{:.0}%", fp * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_needs_redundancy() {
        // Zero observers: undetectable (the paper's hard case).
        assert_eq!(ghost_detection_rate(0, 30, 1), 0.0);
        // Several observers: reliably detected.
        assert!(ghost_detection_rate(4, 30, 1) > 0.9);
    }

    #[test]
    fn false_positives_stay_low() {
        assert!(honest_false_positive_rate(4, 30, 2) < 0.15);
    }

    #[test]
    fn removal_needs_redundancy_too() {
        // Lone attacker as only observer: object vanishes every time.
        assert!(removal_loss_rate(0, 30, 3) > 0.95);
        // Any honest observer keeps the object alive (minus sensor
        // misses).
        assert!(removal_loss_rate(2, 30, 3) < 0.1);
    }

    #[test]
    fn competition_table_shape() {
        let t = e11_competition_table();
        assert_eq!(t.rows.len(), 6);
        // Selfish gain at p=0 is ~0; at p=0.5 it is large.
        let gain0: f64 = t.rows[0][4].parse().expect("number");
        let gain5: f64 = t.rows[4][4].parse().expect("number");
        assert!(gain5 > gain0 + 100.0, "{gain0} vs {gain5}");
    }
}
