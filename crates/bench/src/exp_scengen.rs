//! E24/E25: the generative scenario composer measured as experiments.
//!
//! - **E24** generates a pool of capability-consistent campaigns from
//!   the calibrated attack graph and sweeps the bottom-up posture
//!   ladder ([`DefensePosture::depth`]) over it. Replay uses common
//!   random numbers, so each campaign's breach indicator is *exactly*
//!   weakly decreasing in depth; the per-row `monotone` verdict checks
//!   that with no tolerance (`ok`/`NONMONO` — the CI scengen job greps
//!   for the latter).
//! - **E25** rolls the generated pool up into the STRIDE×layer
//!   coverage matrix: per cell, how many graph edges model the
//!   class/layer pair, how many campaigns exercise it, and the mean
//!   calibrated rates, with the grep-able verdicts `covered` / `GAP` /
//!   `n/a` (unmodeled — e.g. the whole repudiation row, the
//!   workbench's audit-trail gap).
//!
//! The attack graph is calibrated once per experiment and shared
//! across the sweep; generation is single-stream and `ctx.jobs` only
//! parallelizes the Monte-Carlo replays (jobs-invariant through
//! `par_trials`).

use autosec_adversary::{calibrated_graph, AttackGraph, CalibrationConfig};
use autosec_core::campaign::DefensePosture;
use autosec_fleet::posture_label;
use autosec_runner::RunCtx;
use autosec_scengen::{evaluate_campaign, generate, CoverageMatrix, GenConfig};
use autosec_sim::ArchLayer;

use crate::Table;

/// Campaign pool size for the E24 depth sweep at `--trials-scale 1`.
pub const E24_CAMPAIGNS: usize = 16;
/// Monte-Carlo replays per campaign × posture at `--trials-scale 1`.
pub const E24_TRIALS: usize = 200;
/// Maximum steps per generated campaign.
pub const E24_MAX_LEN: usize = 6;
/// Campaign pool size for the E25 coverage matrix (larger than E24's:
/// coverage wants breadth, not replay depth).
pub const E25_CAMPAIGNS: usize = 64;
/// Calibration trials per attack-graph edge at `--trials-scale 1`.
pub const CALIBRATION_TRIALS: usize = 12;

/// One shared calibrated graph per experiment.
fn scengen_graph(ctx: &RunCtx, label: &str) -> AttackGraph {
    let calib = CalibrationConfig::new(ctx.trials(CALIBRATION_TRIALS), ctx.jobs);
    calibrated_graph(&calib, &ctx.rng(label))
}

/// E24 — generated-campaign breach/detect sweep over the posture
/// depth ladder, with an exact CRN monotonicity verdict per row.
pub fn e24_scengen_sweep_table(ctx: &RunCtx) -> Table {
    let graph = scengen_graph(ctx, "e24/calibration");
    let pool = generate(
        &graph,
        &GenConfig::new(ctx.trials(E24_CAMPAIGNS).max(1), E24_MAX_LEN, ctx.seed),
    );
    let trials = ctx.trials(E24_TRIALS).max(2);
    let mut t = Table::new(
        "E24",
        "§VIII — generated-campaign sweep over the defense-depth ladder",
        &[
            "depth",
            "posture",
            "campaigns",
            "mean_breach",
            "max_breach",
            "mean_detect",
            "monotone",
        ],
    );
    // CRN discipline: one base stream per campaign, shared by every
    // depth, so per-campaign breach rates are exactly comparable.
    let mut prev: Vec<f64> = vec![f64::INFINITY; pool.len()];
    for depth in 0..=ArchLayer::ALL.len() {
        let posture = DefensePosture::depth(depth);
        let mut breaches = Vec::with_capacity(pool.len());
        let mut detects = Vec::with_capacity(pool.len());
        let mut monotone = true;
        for (ci, campaign) in pool.iter().enumerate() {
            let base = ctx.rng(&format!("e24/eval/{}", campaign.id));
            let s = evaluate_campaign(&graph, campaign, &posture, &base, trials, ctx.jobs);
            monotone &= s.breach <= prev[ci];
            prev[ci] = s.breach;
            breaches.push(s.breach);
            detects.push(s.detect);
        }
        let n = pool.len().max(1) as f64;
        t.push_row(vec![
            depth.to_string(),
            posture_label(&posture),
            pool.len().to_string(),
            format!("{:.4}", breaches.iter().sum::<f64>() / n),
            format!("{:.4}", breaches.iter().cloned().fold(0.0, f64::max)),
            format!("{:.4}", detects.iter().sum::<f64>() / n),
            if monotone { "ok" } else { "NONMONO" }.to_owned(),
        ]);
    }
    t
}

/// E25 — STRIDE×layer coverage matrix of the generated pool.
pub fn e25_coverage_matrix_table(ctx: &RunCtx) -> Table {
    let graph = scengen_graph(ctx, "e25/calibration");
    let pool = generate(
        &graph,
        &GenConfig::new(E25_CAMPAIGNS, E24_MAX_LEN, ctx.seed),
    );
    let matrix = CoverageMatrix::build(&graph, &pool);
    let mut t = Table::new(
        "E25",
        "§VIII — STRIDE×layer coverage matrix of the generated scenario pool",
        &[
            "stride",
            "layer",
            "edges",
            "campaign_hits",
            "undef_success",
            "def_success",
            "def_detect",
            "verdict",
        ],
    );
    for cell in &matrix.cells {
        t.push_row(vec![
            cell.stride.label().to_owned(),
            cell.layer.to_string(),
            cell.pool_edges.to_string(),
            cell.campaign_hits.to_string(),
            format!("{:.4}", cell.undefended_success),
            format!("{:.4}", cell.defended_success),
            format!("{:.4}", cell.defended_detect),
            cell.verdict.label().to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx(jobs: usize) -> RunCtx {
        RunCtx::new(7, jobs).with_trials_scale(0.1)
    }

    #[test]
    fn e24_has_one_row_per_depth_and_is_monotone() {
        let t = e24_scengen_sweep_table(&tiny_ctx(2));
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.rows[0][1], "none");
        assert_eq!(t.rows[6][1], "full");
        for row in &t.rows {
            assert_eq!(row[6], "ok", "depth {} broke CRN monotonicity", row[0]);
        }
        let first: f64 = t.rows[0][3].parse().unwrap();
        let last: f64 = t.rows[6][3].parse().unwrap();
        assert!(last <= first, "mean breach must not rise with depth");
    }

    #[test]
    fn e24_is_jobs_invariant() {
        let a = e24_scengen_sweep_table(&tiny_ctx(1));
        let b = e24_scengen_sweep_table(&tiny_ctx(4));
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn e25_emits_all_36_cells_with_grepable_verdicts() {
        let t = e25_coverage_matrix_table(&tiny_ctx(2));
        assert_eq!(t.rows.len(), 36, "6 STRIDE classes x 6 layers");
        let covered = t.rows.iter().filter(|r| r[7] == "covered").count();
        let modeled = t
            .rows
            .iter()
            .filter(|r| r[2].parse::<usize>().unwrap() > 0)
            .count();
        assert!(
            covered as f64 / modeled as f64 >= 0.8,
            "covered {covered}/{modeled} modeled cells"
        );
        for row in &t.rows {
            assert!(
                row[7] == "covered" || row[7] == "GAP" || row[7] == "n/a",
                "verdict must be grep-able, got {:?}",
                row[7]
            );
            // Unmodeled cells never claim hits.
            if row[7] == "n/a" {
                assert_eq!(row[2], "0");
                assert_eq!(row[3], "0");
            }
        }
        // The repudiation row is the audit-trail gap: entirely n/a.
        for row in t.rows.iter().filter(|r| r[0] == "repudiation") {
            assert_eq!(row[7], "n/a");
        }
    }

    #[test]
    fn e25_is_jobs_invariant() {
        let a = e25_coverage_matrix_table(&tiny_ctx(1));
        let b = e25_coverage_matrix_table(&tiny_ctx(3));
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
