//! E9: the Fig. 8 kill chain versus defense configuration, plus the
//! attack-surface growth curve of §V-B3.

use autosec_data::killchain::{Attacker, KillChainStage};
use autosec_data::service::{DefenseConfig, TelemetryBackend};
use autosec_data::surface::SurfaceInventory;
use autosec_runner::{par_trials, RunCtx};
use autosec_sim::SimRng;

use crate::Table;

/// Seed every E9 kill-chain configuration replays — pinned so the
/// published table stays byte-stable across harness changes.
const KILLCHAIN_SEED: u64 = 38;

/// The defense configurations E9 sweeps, labelled.
pub fn defense_matrix() -> Vec<(&'static str, DefenseConfig)> {
    let mut out: Vec<(&'static str, DefenseConfig)> = vec![("none", DefenseConfig::none())];
    let mut d = DefenseConfig::none();
    d.debug_endpoints_disabled = true;
    out.push(("no-debug-endpoints", d));
    let mut d = DefenseConfig::none();
    d.secret_scanning = true;
    out.push(("vaulted-secrets", d));
    let mut d = DefenseConfig::none();
    d.scoped_keys = true;
    out.push(("scoped-keys", d));
    let mut d = DefenseConfig::none();
    d.rate_limiting = true;
    d.exfiltration_detection = true;
    out.push(("detection-only", d));
    out.push(("hardened", DefenseConfig::hardened()));
    out
}

/// One kill-chain run, used by the bench.
pub fn killchain_run(fleet: usize, defenses: DefenseConfig, seed: u64) -> usize {
    let mut rng = SimRng::seed(seed);
    let backend = TelemetryBackend::build(fleet, defenses, &mut rng);
    Attacker::new()
        .execute(&backend, &mut rng)
        .records_exfiltrated
}

/// E9 main table.
///
/// Each defense configuration replays the same pinned-seed kill chain
/// independently, so the six runs fan out over [`par_trials`] and the
/// rows match the historical serial output for every `ctx.jobs`.
pub fn e9_killchain_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E9",
        "Fig. 8 — CARIAD kill chain vs defense configuration",
        &[
            "defense",
            "stages done",
            "blocked at",
            "detected at",
            "records lost",
        ],
    );
    let matrix = defense_matrix();
    let base = ctx.rng("e9-killchain");
    let rows = par_trials(ctx.jobs, matrix.len(), &base, |i, _rng| {
        let (label, cfg) = matrix[i];
        let mut rng = SimRng::seed(KILLCHAIN_SEED);
        let backend = TelemetryBackend::build(5000, cfg, &mut rng);
        let r = Attacker::new().execute(&backend, &mut rng);
        vec![
            label.to_owned(),
            format!("{}/{}", r.completed.len(), KillChainStage::ALL.len()),
            r.blocked_at
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            r.detected_at
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            r.records_exfiltrated.to_string(),
        ]
    });
    for row in rows {
        t.push_row(row);
    }
    t
}

/// E9 companion: attack-surface score versus connected cloud services,
/// and the §V-C minimization payoff.
pub fn e9_surface_table() -> Table {
    let mut t = Table::new(
        "E9",
        "§V-B3/§V-C — attack surface vs connected services, and minimization",
        &[
            "cloud services",
            "interfaces",
            "surface score",
            "after minimization",
        ],
    );
    for n in [0usize, 2, 5, 10, 20] {
        let inv = SurfaceInventory::connected_vehicle(n);
        let min = inv.minimized();
        t.push_row(vec![
            n.to_string(),
            inv.len().to_string(),
            format!("{:.1}", inv.score()),
            format!("{:.1}", min.score()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_undefended_and_detection_only_lose_records() {
        let t = e9_killchain_table(&RunCtx::default());
        for row in &t.rows {
            let lost: usize = row[4].parse().expect("number");
            match row[0].as_str() {
                "none" | "detection-only" => assert!(lost > 0, "{row:?}"),
                _ => assert_eq!(lost, 0, "{row:?}"),
            }
        }
    }

    #[test]
    fn surface_grows_then_shrinks_with_minimization() {
        let t = e9_surface_table();
        let first: f64 = t.rows[0][2].parse().expect("number");
        let last: f64 = t.rows[4][2].parse().expect("number");
        assert!(last > first * 2.0);
        for row in &t.rows {
            let full: f64 = row[2].parse().expect("number");
            let min: f64 = row[3].parse().expect("number");
            assert!(min <= full);
        }
    }

    #[test]
    fn killchain_run_scales_with_fleet() {
        assert_eq!(killchain_run(100, DefenseConfig::none(), 1), 100);
        assert_eq!(killchain_run(100, DefenseConfig::hardened(), 1), 0);
    }
}
