//! E16 / E17: adversarial planning experiments over the calibrated
//! attack graph.
//!
//! E16 pits the [`adaptive_trial`] planner against the static
//! [`replay_trial`] campaign order on the same graph, across the
//! bottom-up defense postures of E1 — measuring what attacker
//! *intelligence* is worth at each defense depth. E17 runs the greedy
//! [`greedy_frontier`] defense-budget optimizer and reports the best-K
//! success/detection Pareto curve next to E1's fixed bottom-up
//! ordering.
//!
//! Both experiments calibrate their graph from the live models
//! ([`calibrated_graph`]) with trials fanned out via `par_trials`, so
//! every number is bit-identical across `--jobs` values at a fixed
//! seed.

use autosec_adversary::{
    adaptive_trial, bottom_up_curve, calibrated_graph, greedy_frontier, replay_trial, AttackConfig,
    AttackGraph, AttackRun, CalibrationConfig,
};
use autosec_core::campaign::DefensePosture;
use autosec_core::layers::ArchLayer;
use autosec_runner::{par_trials, RunCtx};

use crate::Table;

/// Monte-Carlo trials per edge per posture side during calibration.
/// The dominant cost of both experiments: every trial executes a real
/// subsystem model (bus simulations, SDV placements, kill chains).
pub const CALIB_TRIALS: usize = 120;

/// Attack runs per posture per attacker in E16.
pub const ATTACK_TRIALS: usize = 400;

/// Attack runs per candidate evaluation in E17's greedy search.
pub const EVAL_TRIALS: usize = 240;

/// Step budget for every attacker run: enough for the longest graph
/// route (the seven-hop staged kill chain plus retries).
pub const STEP_BUDGET: usize = 10;

/// Calibrates the shared attack graph for one experiment.
fn graph_for(ctx: &RunCtx, label: &str) -> AttackGraph {
    let cfg = CalibrationConfig::new(ctx.trials(CALIB_TRIALS), ctx.jobs);
    calibrated_graph(&cfg, &ctx.rng(label))
}

/// Success rate and mean alerts over a batch of runs.
fn summarize(runs: &[AttackRun]) -> (f64, f64) {
    let n = runs.len() as f64;
    (
        runs.iter().filter(|r| r.reached_goal).count() as f64 / n,
        runs.iter().map(|r| r.alerts as f64).sum::<f64>() / n,
    )
}

/// E16 table: adaptive planner vs. static replay across the bottom-up
/// postures. The `advantage` column is adaptive minus replay success —
/// what re-planning buys at that defense depth.
pub fn e16_planner_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E16",
        "§VIII — adaptive attack planner vs static campaign replay",
        &[
            "defended layers",
            "replay success",
            "replay alerts",
            "adaptive success",
            "adaptive alerts",
            "advantage",
        ],
    );
    let graph = graph_for(ctx, "e16/calib");
    let base = ctx.rng("e16/attacks");
    let trials = ctx.trials(ATTACK_TRIALS);
    let cfg = AttackConfig::new(STEP_BUDGET);

    let mut posture = DefensePosture::none();
    for depth in 0..=ArchLayer::ALL.len() {
        if depth > 0 {
            posture.set(ArchLayer::ALL[depth - 1], true);
        }
        let label = if depth == 0 {
            "none".to_owned()
        } else {
            format!("bottom-up {depth}")
        };
        // Common random numbers: both attackers face the same trial
        // streams at every depth.
        let stream = base.fork(&format!("depth/{depth}"));
        let g = &graph;
        let p = posture;
        let replays: Vec<AttackRun> = par_trials(ctx.jobs, trials, &stream, move |_, mut rng| {
            replay_trial(g, &p, &cfg, &mut rng)
        });
        let adaptives: Vec<AttackRun> = par_trials(ctx.jobs, trials, &stream, move |_, mut rng| {
            adaptive_trial(g, &p, &cfg, &mut rng)
        });
        let (rs, ra) = summarize(&replays);
        let (as_, aa) = summarize(&adaptives);
        t.push_row(vec![
            label,
            format!("{:.1}%", rs * 100.0),
            format!("{ra:.2}"),
            format!("{:.1}%", as_ * 100.0),
            format!("{aa:.2}"),
            format!("{:+.1}pp", (as_ - rs) * 100.0),
        ]);
    }
    t
}

/// E17 table: the greedy defense-budget frontier. Row K shows the knob
/// the optimizer buys K-th, the adaptive attacker's success/alerts
/// against the best-K allocation, and the fixed bottom-up curve's
/// success at the same budget (layers only; `-` once the six layers are
/// spent).
pub fn e17_defense_frontier_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E17",
        "§VIII — greedy defense-budget frontier vs bottom-up ordering",
        &[
            "K",
            "knob added",
            "greedy success",
            "greedy alerts",
            "bottom-up success",
        ],
    );
    let graph = graph_for(ctx, "e17/calib");
    let trials = ctx.trials(EVAL_TRIALS);
    // One shared evaluation stream: every candidate allocation in the
    // greedy search and every bottom-up posture sees the same trial
    // randomness (common random numbers).
    let eval = ctx.rng("e17/eval");
    let frontier = greedy_frontier(&graph, STEP_BUDGET, trials, ctx.jobs, &eval);
    let bottom_up = bottom_up_curve(&graph, STEP_BUDGET, trials, ctx.jobs, &eval);

    t.push_row(vec![
        "0".to_owned(),
        "(undefended)".to_owned(),
        format!("{:.1}%", bottom_up[0].success * 100.0),
        format!("{:.2}", bottom_up[0].mean_alerts),
        format!("{:.1}%", bottom_up[0].success * 100.0),
    ]);
    for (i, alloc) in frontier.iter().enumerate() {
        let k = i + 1;
        let bu = bottom_up
            .get(k)
            .map(|p| format!("{:.1}%", p.success * 100.0))
            .unwrap_or_else(|| "-".to_owned());
        t.push_row(vec![
            k.to_string(),
            alloc
                .knobs
                .last()
                .expect("one knob per step")
                .label()
                .to_owned(),
            format!("{:.1}%", alloc.eval.success * 100.0),
            format!("{:.2}", alloc.eval.mean_alerts),
            bu,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> RunCtx {
        // Scale the heavy published counts down hard: these tests check
        // invariants, not estimator precision.
        RunCtx::new(42, 1).with_trials_scale(0.25)
    }

    fn pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("percent cell")
    }

    #[test]
    fn e16_adaptive_dominates_replay_at_a_partial_posture() {
        let t = e16_planner_table(&small_ctx());
        assert_eq!(t.rows.len(), 7);
        // Strict dominance at some partial posture (rows 1..=5): higher
        // success or (equal success and fewer alerts).
        let dominated = t.rows[1..6].iter().any(|r| {
            let (rs, ra) = (pct(&r[1]), r[2].parse::<f64>().expect("alerts"));
            let (as_, aa) = (pct(&r[3]), r[4].parse::<f64>().expect("alerts"));
            as_ > rs || (as_ == rs && aa < ra)
        });
        assert!(
            dominated,
            "adaptive must beat replay somewhere: {:?}",
            t.rows
        );
    }

    #[test]
    fn e17_greedy_curve_is_monotone_and_dominates_bottom_up() {
        let t = e17_defense_frontier_table(&small_ctx());
        assert_eq!(t.rows.len(), 9, "K = 0..=8");
        let greedy: Vec<f64> = t.rows.iter().map(|r| pct(&r[2])).collect();
        for w in greedy.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "greedy not monotone: {greedy:?}");
        }
        for r in &t.rows {
            if r[4] != "-" {
                assert!(
                    pct(&r[2]) <= pct(&r[4]) + 1e-9,
                    "greedy must be at least as strong as bottom-up at K={}: {:?}",
                    r[0],
                    r
                );
            }
        }
    }

    #[test]
    fn tables_are_jobs_invariant() {
        let a = e16_planner_table(&RunCtx::new(7, 1).with_trials_scale(0.1));
        let b = e16_planner_table(&RunCtx::new(7, 3).with_trials_scale(0.1));
        assert_eq!(a.rows, b.rows);
    }
}
