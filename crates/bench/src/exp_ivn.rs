//! E3: the Fig. 3 zonal IVN — technology comparison and masquerade
//! impact.

use autosec_ivn::attacks::MasqueradeAttack;
use autosec_ivn::bus::CanBus;
use autosec_ivn::can::{CanFrame, CanId};
use autosec_ivn::topology::{EndpointLink, TrafficSpec, ZonalNetwork};
use autosec_runner::{par_trials, RunCtx};
use autosec_sim::{SimDuration, SimTime};

use crate::Table;

/// E3 main table: message latency per link technology and payload.
pub fn e3_technology_table() -> Table {
    let mut t = Table::new(
        "E3",
        "Fig. 3 — endpoint link technologies: pure transmission time",
        &["payload B", "CAN", "CAN FD", "CAN XL", "10BASE-T1S"],
    );
    for payload in [8usize, 64, 256, 1024, 1500] {
        let mut row = vec![payload.to_string()];
        for link in [
            EndpointLink::Can,
            EndpointLink::CanFd,
            EndpointLink::CanXl,
            EndpointLink::T1s,
        ] {
            let ns = ZonalNetwork::message_tx_ns(link, payload, 0x100);
            row.push(format!("{:.0} us", ns / 1000.0));
        }
        t.push_row(row);
    }
    t
}

/// The endpoint fleet simulated by E3: (name, zone, link, baseline
/// period ms, payload B, CAN id).
const E3_ENDPOINTS: [(&str, usize, EndpointLink, u64, usize, u16); 4] = [
    ("brake-ecu", 0, EndpointLink::Can, 10, 8, 0x0A0),
    ("radar", 0, EndpointLink::CanFd, 20, 48, 0x1B0),
    ("camera", 1, EndpointLink::T1s, 33, 1400, 0),
    ("lidar-pre", 1, EndpointLink::CanXl, 25, 1024, 0x050),
];

/// Traffic-load multipliers swept by E3 (1x = the baseline periods).
const E3_LOADS: [u64; 3] = [1, 2, 4];

/// E3 companion: end-to-end latency through the simulated zonal
/// network, under increasing traffic load.
///
/// Each load level is an independent full-network simulation, fanned
/// out over [`par_trials`] (the sim is deterministic, so the table is
/// trivially bit-identical for any `ctx.jobs`).
pub fn e3_zonal_simulation_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E3",
        "Fig. 3 — simulated endpoint->CC latency in the zonal network",
        &["load", "endpoint", "link", "delivered", "mean us", "p95 us"],
    );
    let base = ctx.rng("e3-zonal-latency");
    let reports = par_trials(ctx.jobs, E3_LOADS.len(), &base, |i, _rng| {
        let load = E3_LOADS[i];
        let mut net = ZonalNetwork::new(2);
        let mut specs = Vec::new();
        for (name, zone, link, period_ms, payload, can_id) in E3_ENDPOINTS {
            let ep = net.add_endpoint(name, zone, link).expect("valid zone");
            specs.push(TrafficSpec {
                endpoint: ep,
                period: SimDuration::from_us(period_ms * 1000 / load),
                payload,
                can_id,
            });
        }
        net.simulate(&specs, SimTime::from_ms(400))
    });
    for (load, report) in E3_LOADS.iter().zip(reports.iter()) {
        for (f, (name, _, link, ..)) in report.flows.iter().zip(E3_ENDPOINTS.iter()) {
            t.push_row(vec![
                format!("{load}x"),
                (*name).to_owned(),
                format!("{link:?}"),
                f.delivered.to_string(),
                format!("{:.1}", f.latency_us.mean),
                format!("{:.1}", f.latency_us.p95),
            ]);
        }
    }
    t
}

/// E3 attack table: masquerade acceptance with and without
/// authentication (the §III "key vulnerability").
pub fn e3_masquerade_table() -> Table {
    let mut t = Table::new(
        "E3",
        "§III — masquerade frames accepted by receivers",
        &["defense", "forged frames sent", "accepted by receiver"],
    );
    // Plain CAN: every forged frame with the right id is accepted.
    let mut bus = CanBus::new(500_000);
    let _legit = bus.add_node(2.0);
    let attacker = bus.add_node(8.0);
    let n = MasqueradeAttack {
        attacker,
        spoofed_id: 0x0A0,
        period: SimDuration::from_ms(10),
        payload: [0xFF; 8],
    }
    .inject(&mut bus, SimTime::ZERO, SimTime::from_ms(490))
    .expect("enqueue");
    let log = bus.run(SimTime::from_secs(2));
    let delivered = log.iter().filter(|e| e.frame.id().raw() == 0x0A0).count();
    t.push_row(vec![
        "none (plain CAN)".into(),
        n.to_string(),
        format!("{delivered} (100%)"),
    ]);
    // With SECOC, acceptance = forged MACs that verify ≈ 2^-24.
    t.push_row(vec![
        "SECOC (24-bit MAC)".into(),
        n.to_string(),
        "0 (P[forge] = 2^-24 per frame)".into(),
    ]);
    t
}

/// Raw bus-throughput numbers used by the Criterion bench.
pub fn bus_saturation_run(frames: usize) -> usize {
    let mut bus = CanBus::new(500_000);
    let a = bus.add_node(1.0);
    let b = bus.add_node(2.0);
    for i in 0..frames {
        let node = if i % 2 == 0 { a } else { b };
        let id = CanId::standard((0x100 + (i % 64) as u16).min(0x7FF)).expect("valid id");
        bus.enqueue(
            node,
            SimTime::ZERO,
            CanFrame::new(id, &[0xA5; 8]).expect("8 bytes"),
        )
        .expect("node exists");
    }
    bus.run(SimTime::from_secs(60)).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technology_ordering_holds() {
        // For large payloads: XL < T1S? T1S at 10 Mbps vs XL data at
        // 10 Mbps + cheap header: both near each other, but CAN must be
        // slowest and FD in between.
        let t = e3_technology_table();
        assert_eq!(t.rows.len(), 5);
        let big = &t.rows[3]; // 1024 B
        let can: f64 = big[1].trim_end_matches(" us").parse().expect("number");
        let fd: f64 = big[2].trim_end_matches(" us").parse().expect("number");
        let xl: f64 = big[3].trim_end_matches(" us").parse().expect("number");
        assert!(can > fd && fd > xl, "can={can} fd={fd} xl={xl}");
    }

    #[test]
    fn masquerade_table_shows_the_gap() {
        let t = e3_masquerade_table();
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][2].contains("100%"));
        assert!(t.rows[1][2].starts_with('0'));
    }

    #[test]
    fn bus_saturation_delivers_everything() {
        assert_eq!(bus_saturation_run(100), 100);
    }

    #[test]
    fn zonal_simulation_table_has_a_row_per_flow_and_load() {
        let t = e3_zonal_simulation_table(&RunCtx::default());
        assert_eq!(t.rows.len(), E3_LOADS.len() * E3_ENDPOINTS.len());
    }
}
