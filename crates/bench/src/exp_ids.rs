//! E1 / E13: the layered framework — defense-in-depth curve and the
//! multi-layer synergy table (Fig. 1 and §VIII).

use autosec_core::assessment::score;
use autosec_core::campaign::{run_campaign, DefensePosture};
use autosec_core::layers::ArchLayer;
use autosec_runner::{par_trials, RunCtx};

use crate::Table;

/// Campaign seed of the depth sweep — pinned (not `ctx.seed`) so the
/// published curve matches `core::assessment::depth_sweep(2025)`.
const DEPTH_SWEEP_SEED: u64 = 2025;

/// E1 table: the defense-in-depth curve.
///
/// One campaign per depth (none, then layers enabled bottom-up). The
/// campaigns are independent, so they fan out over [`par_trials`];
/// each replays the same pinned seed, so rows match the historical
/// serial output for every `ctx.jobs`.
pub fn e1_depth_sweep(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E1",
        "Fig. 1 — defense-in-depth: campaign outcomes vs defended layers",
        &["defended layers", "attack success", "detection"],
    );
    let mut postures = vec![DefensePosture::none()];
    let mut p = DefensePosture::none();
    for layer in ArchLayer::ALL {
        p.set(layer, true);
        postures.push(p);
    }
    let base = ctx.rng("e1-depth-sweep");
    let rows = par_trials(ctx.jobs, postures.len(), &base, |i, _rng| {
        let r = run_campaign(&postures[i], DEPTH_SWEEP_SEED);
        let s = score(&r);
        vec![
            postures[i].enabled_count().to_string(),
            format!("{:.0}%", s.attack_success_rate * 100.0),
            format!("{:.0}%", s.detection_rate * 100.0),
        ]
    });
    for row in rows {
        t.push_row(row);
    }
    t
}

/// E13 table: single-layer coverage versus the fused view.
///
/// Every posture replays the *same* campaign (one shared seed derived
/// from `ctx`) so rows differ only in the defense, not the attacks.
/// Postures are independent, so they fan out through [`par_trials`].
pub fn e13_synergy_table(ctx: &RunCtx) -> Table {
    let mut t = Table::new(
        "E13",
        "§VIII — IDS synergy: coverage per defended layer vs full stack",
        &[
            "posture",
            "attacks succeeded",
            "detected",
            "fused coverage",
            "synergy gain",
        ],
    );
    let mut postures = vec![("none".to_owned(), DefensePosture::none())];
    for layer in ArchLayer::ALL {
        postures.push((format!("only {layer}"), DefensePosture::only(layer)));
    }
    postures.push(("full stack".to_owned(), DefensePosture::full()));

    let base = ctx.rng("e13-campaign");
    let campaign_seed = base.master_seed();
    let rows = par_trials(ctx.jobs, postures.len(), &base, |i, _rng| {
        let (label, posture) = &postures[i];
        let r = run_campaign(posture, campaign_seed);
        let s = score(&r);
        vec![
            label.clone(),
            format!("{}/{}", r.succeeded_attacks(), r.total_attacks()),
            format!("{}/{}", r.detected_attacks(), r.total_attacks()),
            format!("{:.0}%", s.fused_coverage * 100.0),
            format!("{:+.0}pp", s.synergy_gain * 100.0),
        ]
    });
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Campaign run used by the Criterion bench.
pub fn campaign_run(full: bool, seed: u64) -> usize {
    let posture = if full {
        DefensePosture::full()
    } else {
        DefensePosture::none()
    };
    run_campaign(&posture, seed).detected_attacks()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synergy_table_full_stack_dominates() {
        let t = e13_synergy_table(&RunCtx::default());
        let full = t.rows.last().expect("nonempty");
        let full_detected: usize = full[2]
            .split('/')
            .next()
            .expect("a/b")
            .parse()
            .expect("number");
        for row in &t.rows[1..t.rows.len() - 1] {
            let detected: usize = row[2]
                .split('/')
                .next()
                .expect("a/b")
                .parse()
                .expect("number");
            assert!(
                detected < full_detected,
                "{} should detect less than the full stack",
                row[0]
            );
        }
    }

    #[test]
    fn depth_table_has_a_row_per_depth() {
        assert_eq!(
            e1_depth_sweep(&RunCtx::default()).rows.len(),
            ArchLayer::ALL.len() + 1
        );
    }

    #[test]
    fn depth_table_matches_core_sweep() {
        // The parallel table must reproduce the serial core sweep.
        let t = e1_depth_sweep(&RunCtx::new(42, 4));
        let core = autosec_core::assessment::depth_sweep(super::DEPTH_SWEEP_SEED);
        assert_eq!(t.rows.len(), core.len());
        for (row, p) in t.rows.iter().zip(core.iter()) {
            assert_eq!(row[0], p.defended_layers.to_string());
            assert_eq!(row[1], format!("{:.0}%", p.attack_success_rate * 100.0));
        }
    }

    #[test]
    fn campaign_run_full_detects_more() {
        assert!(campaign_run(true, 3) > campaign_run(false, 3));
    }
}
