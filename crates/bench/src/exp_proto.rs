//! E4–E7: protocol matrix (Table I) and scenario comparison (Figs. 4–6).

use autosec_secproto::cansec::{CansecRx, CansecTx};
use autosec_secproto::dtls::DtlsSession;
use autosec_secproto::ipsec::EspSa;
use autosec_secproto::macsec::{MacsecFrame, MacsecMode, MacsecRx, MacsecTx};
use autosec_secproto::scenarios::{evaluate, table1, Scenario};
use autosec_secproto::secoc::{SecOcAuthenticator, SecOcConfig};

use crate::Table;

/// E4: the paper's Table I, regenerated from the implementation.
pub fn e4_table1() -> Table {
    let mut t = Table::new(
        "E4",
        "Table I — existing security protocols for in-vehicle communication",
        &["ISO-OSI", "layer", "Ethernet", "CAN XL"],
    );
    for row in table1() {
        t.push_row(vec![
            row.osi_layer.to_string(),
            row.layer_name.to_owned(),
            row.ethernet.unwrap_or("-").to_owned(),
            row.can_xl.unwrap_or("-").to_owned(),
        ]);
    }
    t
}

/// Per-protocol wire overhead, measured by running each protocol.
pub fn e4_overhead_table() -> Table {
    let mut t = Table::new(
        "E4",
        "Table I protocols — measured per-message overhead (64 B payload)",
        &[
            "protocol",
            "layer",
            "overhead B",
            "confidential",
            "replay protection",
        ],
    );
    let payload = vec![0xA5u8; 64];

    // SECOC.
    let cfg = SecOcConfig::default();
    let mut secoc = SecOcAuthenticator::new_sender(cfg, [1; 16], 1);
    let pdu = secoc.protect(&payload).expect("fresh counter");
    t.push_row(vec![
        "SECOC".into(),
        "7 application".into(),
        (pdu.wire_len(&cfg) - payload.len()).to_string(),
        "no".into(),
        "freshness counters".into(),
    ]);

    // DTLS.
    let (mut client, _) = DtlsSession::establish(b"psk", b"nonce");
    let rec = client.seal(&payload).expect("fresh seq");
    t.push_row(vec![
        "(D)TLS".into(),
        "4 transport".into(),
        (rec.wire_len() - payload.len()).to_string(),
        "yes".into(),
        "sequence numbers".into(),
    ]);

    // IPsec ESP.
    let mut esp = EspSa::new([2; 16], 7);
    let pkt = esp.encapsulate(&payload).expect("fresh seq");
    t.push_row(vec![
        "IPsec ESP".into(),
        "3 network".into(),
        (pkt.wire_len() - payload.len()).to_string(),
        "yes".into(),
        "sequence window".into(),
    ]);

    // MACsec: SecTAG + ICV around the (here encrypted) payload.
    let mut mtx = MacsecTx::new([3; 16], 5, MacsecMode::AuthenticatedEncryption);
    let frame = mtx.protect(&payload).expect("fresh pn");
    debug_assert_eq!(
        frame.wire_len() - payload.len(),
        MacsecFrame::overhead_bytes()
    );
    t.push_row(vec![
        "MACsec".into(),
        "2 data link".into(),
        MacsecFrame::overhead_bytes().to_string(),
        "optional".into(),
        "packet numbers".into(),
    ]);

    // CANsec.
    let mut ctx = CansecTx::new([4; 16], 1, true);
    let xl = ctx.protect(0x50, 0, &payload).expect("fits XL");
    t.push_row(vec![
        "CANsec".into(),
        "2 data link".into(),
        (xl.data().len() - payload.len()).to_string(),
        "optional".into(),
        "freshness values".into(),
    ]);
    t
}

/// E5–E7: the full S1/S2/S3 comparison at several payload sizes.
pub fn e567_scenario_table() -> Table {
    let mut t = Table::new(
        "E5-E7",
        "Figs. 4-6 — deployment scenarios S1/S2/S3",
        &[
            "scenario",
            "payload B",
            "overhead B",
            "frames",
            "crypto ops",
            "ZC keys",
            "latency us",
            "confidential",
        ],
    );
    for payload in [8usize, 64, 256, 1024] {
        for s in Scenario::ALL {
            let r = evaluate(s, payload);
            t.push_row(vec![
                s.label().to_owned(),
                payload.to_string(),
                r.segment_overhead_bytes.to_string(),
                r.segment_frames.to_string(),
                r.crypto_ops.to_string(),
                r.zc_session_keys.to_string(),
                format!("{:.1}", r.e2e_latency_us),
                if r.confidential_on_segment {
                    "yes"
                } else {
                    "no"
                }
                .into(),
            ]);
        }
    }
    t
}

/// Protocol throughput helpers for the Criterion benches.
pub fn macsec_round_trip(payload: &[u8]) -> usize {
    let mut tx = MacsecTx::new([9; 16], 1, MacsecMode::AuthenticatedEncryption);
    let mut rx = MacsecRx::new([9; 16], 1);
    let f = tx.protect(payload).expect("fresh pn");
    rx.verify(&f).expect("authentic").len()
}

/// CANsec round trip for the benches.
pub fn cansec_round_trip(payload: &[u8]) -> usize {
    let mut tx = CansecTx::new([9; 16], 1, true);
    let mut rx = CansecRx::new([9; 16], 1);
    let f = tx.protect(0x40, 0, payload).expect("fits XL");
    rx.verify(&f).expect("authentic").len()
}

/// SECOC round trip for the benches.
pub fn secoc_round_trip(payload: &[u8]) -> usize {
    let cfg = SecOcConfig::default();
    let mut tx = SecOcAuthenticator::new_sender(cfg, [9; 16], 1);
    let mut rx = SecOcAuthenticator::new_receiver(cfg, [9; 16], 1);
    let pdu = tx.protect(payload).expect("fresh counter");
    rx.verify(&pdu).expect("authentic").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_shape() {
        let t = e4_table1();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0][2], "SECOC");
        assert_eq!(t.rows[3][3], "CANsec");
    }

    #[test]
    fn overhead_table_has_all_five_protocols() {
        let t = e4_overhead_table();
        assert_eq!(t.rows.len(), 5);
        // SECOC is the lightest; MACsec-family heavier.
        let secoc: usize = t.rows[0][2].parse().expect("number");
        let macsec: usize = t.rows[3][2].parse().expect("number");
        assert!(secoc < macsec);
    }

    #[test]
    fn scenario_table_covers_all_combinations() {
        let t = e567_scenario_table();
        assert_eq!(t.rows.len(), 4 * 4);
    }

    #[test]
    fn round_trip_helpers() {
        assert_eq!(macsec_round_trip(&[1; 100]), 100);
        assert_eq!(cansec_round_trip(&[1; 100]), 100);
        assert_eq!(secoc_round_trip(&[1; 100]), 100);
    }
}
