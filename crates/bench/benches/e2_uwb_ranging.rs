//! E2/E2b: UWB ranging measurement throughput per receiver kind and the
//! enlargement detector.

use autosec_bench::exp_phy;
use autosec_phy::attacks::HrpAttack;
use autosec_phy::hrp::{HrpConfig, HrpRanging, ReceiverKind};
use autosec_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_uwb_ranging");
    for kind in [
        ReceiverKind::NaiveLeadingEdge,
        ReceiverKind::IntegrityChecked,
    ] {
        let session = HrpRanging::new(HrpConfig::default(), kind);
        g.bench_function(format!("measure_clean_{kind:?}"), |b| {
            let mut rng = SimRng::seed(1);
            b.iter(|| session.measure(20.0, None, &mut rng))
        });
        let attack = HrpAttack::cicada(8.0, 3.0);
        g.bench_function(format!("measure_attacked_{kind:?}"), |b| {
            let mut rng = SimRng::seed(2);
            b.iter(|| session.measure(20.0, Some(&attack), &mut rng))
        });
    }
    g.bench_function("e2_hrp_sweep_point", |b| {
        let base = SimRng::seed(7);
        b.iter(|| exp_phy::hrp_sweep(ReceiverKind::IntegrityChecked, 0.0, &[3.0], &base, 1, 200))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
