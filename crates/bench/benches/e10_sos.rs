//! E10: cascade Monte-Carlo cost.

use autosec_bench::exp_sos;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_sos");
    for trials in [100usize, 1000] {
        g.bench_function(format!("cascade_{trials}_trials"), |b| {
            b.iter(|| exp_sos::cascade_run(trials))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
