//! E16/E17: attack-graph calibration, planning, and execution cost.

use autosec_adversary::{
    adaptive_trial, best_path, calibrated_graph, replay_trial, AttackConfig, CalibrationConfig,
    CapabilitySet, EdgeSet,
};
use autosec_core::campaign::DefensePosture;
use autosec_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_adversary");
    g.sample_size(10); // calibration runs real subsystem models

    let base = SimRng::seed(42).fork("bench-adversary");
    let graph = calibrated_graph(&CalibrationConfig::new(20, 1), &base.fork("graph"));
    let posture = DefensePosture::only(autosec_sim::ArchLayer::Network);
    let cfg = AttackConfig {
        active_response: true,
        alert_correlation: true,
        ..AttackConfig::new(10)
    };

    g.bench_function("calibrate_graph_20_trials", |b| {
        b.iter(|| calibrated_graph(&CalibrationConfig::new(20, 1), &base.fork("graph")))
    });
    g.bench_function("plan_best_path", |b| {
        b.iter(|| {
            best_path(
                &graph,
                &posture,
                10,
                &CapabilitySet::start(),
                &EdgeSet::empty(),
            )
        })
    });
    g.bench_function("adaptive_trial", |b| {
        b.iter(|| adaptive_trial(&graph, &posture, &cfg, &mut base.fork("adaptive")))
    });
    g.bench_function("replay_trial", |b| {
        b.iter(|| replay_trial(&graph, &posture, &cfg, &mut base.fork("replay")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
