//! E19/E20: live-fleet tick throughput at different shard counts and
//! fidelity tiers.
//!
//! The headline number is vehicle-ticks per second — the scaling
//! record in `BENCH_fleet.json`. Graph and outcome-table calibration
//! (and engine construction generally, ~0.7 s of scenario-model
//! Monte-Carlo) happen **outside** the timed region: each iteration
//! clones a pre-built engine and runs it, so the figure measures the
//! tick loop + snapshots — the part that scales with
//! vehicles × ticks — not a fixed setup cost that earlier revisions
//! of this bench mistakenly folded in.

use autosec_adversary::{calibrated_graph, CalibrationConfig};
use autosec_bench::exp_fleet;
use autosec_fleet::{Fidelity, FleetConfig, FleetEngine};
use autosec_runner::RunCtx;
use autosec_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

const VEHICLES: usize = 5_000;
const TICKS: u64 = 20;

fn bench(c: &mut Criterion) {
    let graph = calibrated_graph(
        &CalibrationConfig::new(8, 4),
        &SimRng::seed(42).fork("bench-fleet"),
    );

    let mut g = c.benchmark_group("e19_fleet");
    g.sample_size(10); // each sample is a full 100k-vehicle-tick run

    for (label, fidelity) in [("", Fidelity::Live), ("calibrated_", Fidelity::Calibrated)] {
        for shards in [1usize, 4] {
            let cfg = FleetConfig {
                vehicles: VEHICLES,
                ticks: TICKS,
                shards,
                seed: 42,
                fidelity,
                ..FleetConfig::default()
            };
            // Construction calibrates the outcome table (calibrated
            // mode) — hoist it; the iteration clones the ready engine.
            let engine = FleetEngine::with_graph(cfg, graph.clone());
            g.bench_function(format!("fleet_5k_x20_{label}shards{shards}"), |b| {
                b.iter(|| engine.clone().run())
            });
        }
    }

    g.bench_function("e19_table_small", |b| {
        let ctx = RunCtx::new(42, 4).with_trials_scale(0.1);
        b.iter(|| exp_fleet::e19_epidemic_table(&ctx))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
