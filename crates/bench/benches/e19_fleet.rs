//! E19/E20: live-fleet tick throughput at different shard counts.
//!
//! The headline number is vehicle-ticks per second — the scaling
//! record in `BENCH_fleet.json`. The attack graph is calibrated once
//! outside the timed region; each iteration then runs a complete fleet
//! (construction + ticks + snapshots), so the figure covers the whole
//! service loop, not just the inner step.

use autosec_adversary::{calibrated_graph, CalibrationConfig};
use autosec_bench::exp_fleet;
use autosec_fleet::{FleetConfig, FleetEngine};
use autosec_runner::RunCtx;
use autosec_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

const VEHICLES: usize = 5_000;
const TICKS: u64 = 20;

fn bench(c: &mut Criterion) {
    let graph = calibrated_graph(
        &CalibrationConfig::new(8, 4),
        &SimRng::seed(42).fork("bench-fleet"),
    );

    let mut g = c.benchmark_group("e19_fleet");
    g.sample_size(10); // each sample is a full 100k-vehicle-tick run

    for shards in [1usize, 4] {
        g.bench_function(format!("fleet_5k_x20_shards{shards}"), |b| {
            b.iter(|| {
                let cfg = FleetConfig {
                    vehicles: VEHICLES,
                    ticks: TICKS,
                    shards,
                    seed: 42,
                    ..FleetConfig::default()
                };
                FleetEngine::with_graph(cfg, graph.clone()).run()
            })
        });
    }

    g.bench_function("e19_table_small", |b| {
        let ctx = RunCtx::new(42, 4).with_trials_scale(0.1);
        b.iter(|| exp_fleet::e19_epidemic_table(&ctx))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
