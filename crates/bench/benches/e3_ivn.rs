//! E3: zonal IVN simulation throughput.

use autosec_bench::{exp_ivn, RunCtx};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_ivn");
    for frames in [100usize, 1000] {
        g.bench_function(format!("bus_saturation_{frames}"), |b| {
            b.iter(|| exp_ivn::bus_saturation_run(frames))
        });
    }
    g.bench_function("zonal_simulation_table", |b| {
        let ctx = RunCtx::default();
        b.iter(|| exp_ivn::e3_zonal_simulation_table(&ctx))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
