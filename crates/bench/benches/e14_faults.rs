//! E14/E15: fault-injection and recovery-engine cost.

use autosec_faults::{FaultPlan, RecoveryEngine};
use autosec_sim::{ArchLayer, FaultEffect, SimRng};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_faults");
    g.sample_size(20); // adapters run real subsystem models

    g.bench_function("inject_bus_drop", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed(1).fork("bench-bus");
            autosec_faults::target_for(ArchLayer::Network).apply(
                &[FaultEffect::DropFrames { p: 0.4 }],
                true,
                &mut rng,
            )
        })
    });
    g.bench_function("inject_perception_ghosts", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed(1).fork("bench-ghosts");
            autosec_faults::target_for(ArchLayer::Collaboration).apply(
                &[FaultEffect::FabricateDetections { count: 5 }],
                true,
                &mut rng,
            )
        })
    });
    g.bench_function("recovery_standard_plan", |b| {
        let base = SimRng::seed(42).fork("bench-recovery");
        let plan = FaultPlan::standard(&base);
        let engine = RecoveryEngine::new(true);
        b.iter(|| engine.run(&plan, &base))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
