//! E5-E7: end-to-end scenario evaluation cost (S1/S2/S3).

use autosec_secproto::scenarios::{evaluate, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e567_scenarios");
    for s in Scenario::ALL {
        g.bench_function(format!("{}_64B", s.label().replace(' ', "_")), |b| {
            b.iter(|| evaluate(s, 64))
        });
        g.bench_function(format!("{}_1024B", s.label().replace(' ', "_")), |b| {
            b.iter(|| evaluate(s, 1024))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
