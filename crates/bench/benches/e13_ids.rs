//! E1/E13: full cross-layer campaign cost.

use autosec_bench::exp_ids;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_ids");
    g.sample_size(10); // campaigns build SSI key material
    g.bench_function("campaign_undefended", |b| {
        b.iter(|| exp_ids::campaign_run(false, 1))
    });
    g.bench_function("campaign_full_defense", |b| {
        b.iter(|| exp_ids::campaign_run(true, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
