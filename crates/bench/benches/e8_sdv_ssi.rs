//! E8/E8b: SDV reconfiguration ceremony and charging flows.

use autosec_bench::exp_sdv;
use autosec_sdv::charging::{iso15118_flow, ssi_flow};
use autosec_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_sdv_ssi");
    g.sample_size(10); // hash-based keygen dominates; keep runs short
    g.bench_function("reconfiguration_run_3", |b| {
        let mut rng = SimRng::seed(1);
        b.iter(|| exp_sdv::reconfiguration_run(3, &mut rng))
    });
    g.bench_function("iso15118_flow", |b| {
        let mut rng = SimRng::seed(1);
        b.iter(|| iso15118_flow(&mut rng, 4).expect("flow completes"))
    });
    g.bench_function("ssi_flow_offline", |b| {
        let mut rng = SimRng::seed(2);
        b.iter(|| ssi_flow(&mut rng, true).expect("flow completes"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
