//! E4: per-protocol protect+verify round-trip cost.

use autosec_bench::exp_proto;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_protocols");
    for size in [8usize, 64, 512] {
        let payload = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("secoc_{size}B"), |b| {
            b.iter(|| exp_proto::secoc_round_trip(&payload))
        });
        g.bench_function(format!("macsec_{size}B"), |b| {
            b.iter(|| exp_proto::macsec_round_trip(&payload))
        });
        g.bench_function(format!("cansec_{size}B"), |b| {
            b.iter(|| exp_proto::cansec_round_trip(&payload))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
