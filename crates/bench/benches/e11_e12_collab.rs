//! E11/E12: intersection rounds and misbehaviour detection rounds.

use autosec_bench::exp_collab;
use autosec_collab::intersection::{simulate, Agent};
use autosec_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_e12_collab");
    g.bench_function("intersection_10k_rounds", |b| {
        let mut rng = SimRng::seed(1);
        b.iter(|| simulate(&[Agent::selfish(0.3); 4], 10_000, &mut rng))
    });
    g.bench_function("ghost_detection_20_rounds_4_observers", |b| {
        let base = SimRng::seed(9);
        b.iter(|| exp_collab::ghost_detection_rate(4, 20, &base, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
