//! E24/E25: generative scenario composition and replay throughput.
//!
//! Graph calibration (~0.5 s of scenario-model Monte-Carlo) happens
//! outside the timed regions; the benches measure what scales —
//! walk generation over the 20-edge graph, Monte-Carlo campaign
//! replay under a posture, coverage-matrix roll-up, and the fleet
//! tick loop in `--campaign generated:N` mode.

use autosec_adversary::{calibrated_graph, CalibrationConfig};
use autosec_bench::exp_scengen;
use autosec_core::campaign::DefensePosture;
use autosec_fleet::{CampaignMode, FleetConfig, FleetEngine};
use autosec_runner::RunCtx;
use autosec_scengen::{evaluate_campaign, generate, CoverageMatrix, GenConfig};
use autosec_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

const VEHICLES: usize = 5_000;
const TICKS: u64 = 20;

fn bench(c: &mut Criterion) {
    let graph = calibrated_graph(
        &CalibrationConfig::new(8, 4),
        &SimRng::seed(42).fork("bench-scengen"),
    );

    let mut g = c.benchmark_group("e24_scengen");
    g.sample_size(10);

    g.bench_function("generate_16_campaigns", |b| {
        b.iter(|| generate(&graph, &GenConfig::new(16, 6, 42)))
    });
    g.bench_function("generate_64_campaigns", |b| {
        b.iter(|| generate(&graph, &GenConfig::new(64, 6, 42)))
    });

    let pool = generate(&graph, &GenConfig::new(16, 6, 42));
    let posture = DefensePosture::depth(3);
    let base = SimRng::seed(42).fork("bench-eval");
    g.bench_function("replay_16x200_trials", |b| {
        b.iter(|| {
            pool.iter()
                .map(|c| evaluate_campaign(&graph, c, &posture, &base, 200, 4).breach)
                .sum::<f64>()
        })
    });

    let wide = generate(&graph, &GenConfig::new(64, 6, 42));
    g.bench_function("coverage_matrix_64", |b| {
        b.iter(|| CoverageMatrix::build(&graph, &wide).coverage())
    });

    for shards in [1usize, 4] {
        let cfg = FleetConfig {
            vehicles: VEHICLES,
            ticks: TICKS,
            shards,
            seed: 42,
            campaign: CampaignMode::Generated { count: 8 },
            ..FleetConfig::default()
        };
        // Construction calibrates the table and composes the pool —
        // hoist it; the iteration clones the ready engine.
        let engine = FleetEngine::with_graph(cfg, graph.clone());
        g.bench_function(format!("fleet_generated_5k_x20_shards{shards}"), |b| {
            b.iter(|| engine.clone().run())
        });
    }

    g.bench_function("e24_table_small", |b| {
        let ctx = RunCtx::new(42, 4).with_trials_scale(0.1);
        b.iter(|| exp_scengen::e24_scengen_sweep_table(&ctx))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
