//! E9: kill-chain execution across defense configurations.

use autosec_bench::exp_data;
use autosec_data::service::DefenseConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_killchain");
    for (label, cfg) in [
        ("undefended", DefenseConfig::none()),
        ("hardened", DefenseConfig::hardened()),
    ] {
        g.bench_function(format!("killchain_5000_{label}"), |b| {
            b.iter(|| exp_data::killchain_run(5000, cfg, 38))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
