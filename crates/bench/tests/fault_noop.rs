//! The fault-free no-op guarantee, end to end: an empty (or
//! zero-intensity) fault plan must leave every consumer bit-identical
//! to a run with no fault machinery at all. This is the property that
//! makes E14's intensity-0 rows and the PR's "faults ride along without
//! perturbing baselines" claim trustworthy.

use autosec_bench::exp_faults::sweep_families;
use autosec_core::campaign::{run_campaign, run_campaign_faulted, DefensePosture};
use autosec_faults::{target_for, FaultPlan, RecoveryEngine};
use autosec_sim::{ArchLayer, InjectionRecord, SimRng};
use rand::RngCore;

/// Seeds the property is checked across (≥3 per the acceptance bar).
const SEEDS: &[u64] = &[7, 42, 101];

#[test]
fn empty_plan_campaign_matches_baseline_bit_for_bit() {
    for &seed in SEEDS {
        for posture in [DefensePosture::none(), DefensePosture::full()] {
            let plain = run_campaign(&posture, seed);
            let plan = FaultPlan::empty();
            let faulted = run_campaign_faulted(&posture, seed, plan.campaign_faults());
            assert_eq!(plain.steps, faulted.steps, "seed {seed}");
            assert_eq!(plain.alerts, faulted.alerts, "seed {seed}");
        }
    }
}

#[test]
fn zero_intensity_effects_apply_clean_without_consuming_rng() {
    for &seed in SEEDS {
        for (family, make) in sweep_families() {
            let effect = make(0.0);
            let layer = effect.layer();
            let mut target = target_for(layer);
            let base = SimRng::seed(seed).fork(family);
            let mut rng = base.fork("apply");
            let rec = target.apply(&[effect], true, &mut rng);
            assert_eq!(
                rec,
                InjectionRecord::clean(layer, target.name()),
                "{family} at intensity 0 (seed {seed})"
            );
            // The stream must be untouched: the next draw equals the
            // first draw of a fresh fork.
            assert_eq!(
                rng.next_u64(),
                base.fork("apply").next_u64(),
                "{family} consumed randomness on a no-op (seed {seed})"
            );
        }
    }
}

#[test]
fn no_effects_at_all_apply_clean_on_every_layer() {
    for &seed in SEEDS {
        for layer in ArchLayer::ALL {
            let mut target = target_for(layer);
            let base = SimRng::seed(seed).fork("bare");
            let mut rng = base.fork("apply");
            let rec = target.apply(&[], true, &mut rng);
            assert_eq!(rec, InjectionRecord::clean(layer, target.name()));
            assert_eq!(rng.next_u64(), base.fork("apply").next_u64());
        }
    }
}

#[test]
fn recovery_engine_on_empty_plan_is_perfectly_healthy() {
    for &seed in SEEDS {
        for defended in [false, true] {
            let base = SimRng::seed(seed);
            let report = RecoveryEngine::new(defended).run(&FaultPlan::empty(), &base);
            assert!(report.incidents.is_empty(), "seed {seed}");
            assert_eq!(report.availability(), 1.0, "seed {seed}");
            assert_eq!(report.mttr_ms(), 0.0, "seed {seed}");
        }
    }
}
