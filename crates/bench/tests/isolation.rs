//! End-to-end process isolation of the `experiments` binary: under
//! `--isolate on` a deadline SIGKILLs the worker child for real (with
//! bounded suite wall time), resource budgets land `oom_killed` /
//! `cpu_exceeded` manifest statuses, healthy artifacts stay
//! bit-identical between isolate on and off, `--retries` drives a
//! flaky probe back to green, and a suite killed mid-child leaves a
//! parseable incremental manifest that `--resume` finishes.
//!
//! The workload is the hidden `x0-chaos` probe (registered only when
//! `AUTOSEC_CHAOS` is set — env vars are passed per child process, so
//! these tests never mutate their own environment).

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

use serde_json::Value;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autosec-isolation-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the chaos probe alone, isolated, against `out`.
fn run_chaos(mode: &str, out: &Path, extra: &[&str]) -> Output {
    Command::new(bin())
        .env("AUTOSEC_CHAOS", mode)
        .args(["--filter", "x0-chaos", "--json", "--keep-going", "--out"])
        .arg(out)
        .args(extra)
        .output()
        .expect("binary runs")
}

fn manifest(out: &Path) -> Value {
    let text = std::fs::read_to_string(out.join("manifest.json")).expect("manifest exists");
    serde_json::from_str(&text).expect("manifest parses")
}

fn entry<'a>(m: &'a Value, slug: &str) -> &'a Value {
    m["experiments"]
        .as_array()
        .expect("experiments array")
        .iter()
        .find(|e| e["slug"].as_str() == Some(slug))
        .unwrap_or_else(|| panic!("no manifest entry for {slug}"))
}

#[test]
fn isolated_deadline_kills_the_sleeper_with_bounded_wall_time() {
    let out = tmp("deadline");
    let start = Instant::now();
    // A 30 s sleeper under a 1 s deadline: in-process this worker would
    // detach and run to completion; isolated it dies by SIGKILL.
    let slow = run_chaos(
        "sleep:30000",
        &out,
        &["--isolate", "on", "--deadline-secs", "1"],
    );
    let wall = start.elapsed();
    assert_eq!(slow.status.code(), Some(1));
    assert!(
        wall < Duration::from_secs(20),
        "deadline must bound the suite, took {wall:?}"
    );
    let m = manifest(&out);
    let e = entry(&m, "x0-chaos");
    assert_eq!(e["status"].as_str(), Some("timed_out"));
    assert_eq!(e["deadline_secs"].as_f64(), Some(1.0));
    assert!(
        e.get("overtime_detached").is_none(),
        "an isolated kill leaves nothing running: {e}"
    );
    // True elapsed time, not the 30 s the sleeper wanted.
    let secs = e["duration_ms"].as_f64().expect("duration recorded") / 1e3;
    assert!(secs < 15.0, "recorded {secs} s for a 1 s deadline");

    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn rss_budget_lands_oom_killed() {
    let out = tmp("oom");
    // The leaker wants 300 MiB; the budget is 64. --isolate auto must
    // switch isolation on because a budget flag is present.
    let killed = run_chaos("alloc:300", &out, &["--rss-limit-mb", "64"]);
    assert_eq!(killed.status.code(), Some(1));
    let m = manifest(&out);
    let e = entry(&m, "x0-chaos");
    assert_eq!(e["status"].as_str(), Some("oom_killed"));
    assert_eq!(e["rss_limit_mb"].as_u64(), Some(64));
    let peak = e["peak_rss_mb"].as_u64().expect("peak recorded");
    assert!(peak >= 64, "kill fired below the limit: peak {peak} MiB");
    assert!(!out.join("x0-chaos.json").exists());

    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn cpu_budget_lands_cpu_exceeded() {
    let out = tmp("cpu");
    let start = Instant::now();
    // The spinner wants 30 s of CPU; the ceiling is 1 CPU-second, which
    // fires long before the cost-derived wall deadline.
    let killed = run_chaos("spin:30", &out, &["--cpu-limit-secs", "1"]);
    let wall = start.elapsed();
    assert_eq!(killed.status.code(), Some(1));
    assert!(
        wall < Duration::from_secs(20),
        "CPU ceiling must bound the suite, took {wall:?}"
    );
    let m = manifest(&out);
    let e = entry(&m, "x0-chaos");
    assert_eq!(e["status"].as_str(), Some("cpu_exceeded"));
    assert_eq!(e["cpu_limit_secs"].as_u64(), Some(1));
    assert!(e["cpu_secs"].as_f64().expect("usage recorded") >= 1.0);

    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn healthy_artifacts_are_bit_identical_between_isolate_on_and_off() {
    let isolated = tmp("identity-on");
    let inprocess = tmp("identity-off");
    for (out, mode) in [(&isolated, "on"), (&inprocess, "off")] {
        let run = Command::new(bin())
            .args([
                "--filter",
                "e3-technologies",
                "--filter",
                "e4-protocol-matrix",
                "--json",
                "--canonical",
                "--isolate",
                mode,
                "--out",
            ])
            .arg(out)
            .output()
            .expect("binary runs");
        assert_eq!(run.status.code(), Some(0), "isolate {mode} failed");
    }
    // No handoff residue may survive a clean isolated run...
    assert!(!isolated.join(".workers").exists(), "handoff dir leaked");
    // ...and the whole canonical artifact tree must diff clean,
    // manifest included.
    let mut names: Vec<String> = std::fs::read_dir(&isolated)
        .expect("dir")
        .map(|f| f.expect("entry").file_name().into_string().expect("utf8"))
        .collect();
    names.sort();
    assert_eq!(
        names,
        [
            "e3-technologies.json",
            "e4-protocol-matrix.json",
            "manifest.json"
        ],
        "unexpected artifact set"
    );
    for name in names {
        let a = std::fs::read(isolated.join(&name)).expect("isolated artifact");
        let b = std::fs::read(inprocess.join(&name)).expect("in-process artifact");
        assert_eq!(a, b, "{name} differs between isolate on and off");
    }

    let _ = std::fs::remove_dir_all(&isolated);
    let _ = std::fs::remove_dir_all(&inprocess);
}

#[test]
fn retries_drive_a_flaky_probe_back_to_green() {
    let out = tmp("retry");
    let marker = std::env::temp_dir().join("autosec-isolation-retry.marker");
    let _ = std::fs::remove_file(&marker);
    // First attempt panics and drops the marker; the retry (a fresh
    // child) finds it and succeeds.
    let run = run_chaos(
        &format!("flaky:{}", marker.display()),
        &out,
        &["--isolate", "on", "--retries", "2"],
    );
    assert_eq!(run.status.code(), Some(0), "retries must end green");
    let m = manifest(&out);
    let e = entry(&m, "x0-chaos");
    assert_eq!(e["status"].as_str(), Some("ok"));
    assert_eq!(e["attempts"].as_u64(), Some(2));
    assert!(out.join("x0-chaos.json").exists());

    let _ = std::fs::remove_file(&marker);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn a_suite_killed_mid_child_resumes_to_green() {
    let out = tmp("kill-resume");
    // Healthy members first (registration order), then the sleeper;
    // the incremental manifest is rewritten after every record.
    let filters = [
        "--filter",
        "e3-technologies",
        "--filter",
        "e4-protocol-matrix",
        "--filter",
        "x0-chaos",
    ];
    let mut suite = Command::new(bin())
        .env("AUTOSEC_CHAOS", "sleep:60000")
        .args(filters)
        .args(["--json", "--isolate", "on", "--out"])
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("suite starts");

    // Wait until both healthy records are on disk — the sleeper child
    // is then the one in flight — and kill the supervising parent.
    // (Grepping the manifest text would trip on the `filter` field,
    // which also names every slug; parse the records instead.)
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "suite never reached the sleeper");
        let healthy_done = std::fs::read_to_string(out.join("manifest.json"))
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .is_some_and(|m: Value| {
                let has = |slug| {
                    m["experiments"]
                        .as_array()
                        .is_some_and(|a| a.iter().any(|e| e["slug"].as_str() == Some(slug)))
                };
                has("e3-technologies") && has("e4-protocol-matrix")
            });
        if healthy_done {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    suite.kill().expect("kill the parent");
    suite.wait().expect("reap the parent");

    // The interrupted manifest parses and already carries the healthy
    // entries.
    let m = manifest(&out);
    for slug in ["e3-technologies", "e4-protocol-matrix"] {
        assert_eq!(entry(&m, slug)["status"].as_str(), Some("ok"));
    }

    // Resume with the chaos healed: healthy artifacts are reused, only
    // the killed entry re-runs, the suite goes green.
    let resumed = Command::new(bin())
        .env("AUTOSEC_CHAOS", "ok")
        .args(filters)
        .args(["--json", "--isolate", "on", "--resume", "--out"])
        .arg(&out)
        .output()
        .expect("binary runs");
    assert_eq!(resumed.status.code(), Some(0), "resume must finish green");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("skipped e3-technologies"),
        "healthy artifact not reused:\n{stderr}"
    );
    let m = manifest(&out);
    assert_eq!(m["failures"].as_u64(), Some(0));
    assert_eq!(entry(&m, "x0-chaos")["status"].as_str(), Some("ok"));
    assert!(out.join("x0-chaos.json").exists());

    let _ = std::fs::remove_dir_all(&out);
}
