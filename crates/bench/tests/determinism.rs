//! Jobs-independence: the engine's core promise is that `--jobs` only
//! changes wall-clock time, never output. These tests run real
//! experiments serially and with four workers and require bit-identical
//! tables and artifacts (modulo the volatile duration keys).

use std::time::Duration;

use autosec_bench::{registry, ExperimentRecord, RunCtx};
use autosec_runner::artifact::strip_durations;
use autosec_sim::SimRng;
use rand::RngCore;

/// The cheapest parallel-migrated experiments (still real Monte-Carlo
/// sweeps). E10/E11 are the heavier ones; two suffice for CI time.
const PROBES: &[&str] = &["e2-lrp-rounds", "e12-removal"];

#[test]
fn tables_identical_for_any_job_count() {
    let reg = registry();
    for slug in PROBES {
        let exp = &reg.select(slug)[0];
        let serial = exp.run(&RunCtx::new(42, 1));
        let parallel = exp.run(&RunCtx::new(42, 4));
        assert_eq!(
            serial, parallel,
            "{slug} diverged between jobs=1 and jobs=4"
        );
    }
}

#[test]
fn seed_actually_changes_the_tables() {
    // Guard against a stuck RNG plumbing: different seeds must differ
    // somewhere across the probe experiments.
    let reg = registry();
    let differs = PROBES.iter().any(|slug| {
        let exp = &reg.select(slug)[0];
        exp.run(&RunCtx::new(42, 1)) != exp.run(&RunCtx::new(43, 1))
    });
    assert!(differs, "seed is ignored by every probe experiment");
}

#[test]
fn artifacts_identical_modulo_duration() {
    let reg = registry();
    let exp = &reg.select("e12-removal")[0];
    let record = |jobs: usize, fake_ms: u64| {
        ExperimentRecord::ok(
            exp.slug,
            exp.id,
            Duration::from_millis(fake_ms),
            exp.run(&RunCtx::new(42, jobs)),
        )
    };
    let a = strip_durations(&record(1, 3).to_json(42, 1, 1.0));
    let b = strip_durations(&record(4, 9000).to_json(42, 1, 1.0));
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn fork_idx_streams_partition_the_trial_space() {
    // Adjacent trial indices must get unrelated streams: collect the
    // first draw of many indexed forks and check they don't collide.
    let base = SimRng::seed(42);
    let mut firsts = std::collections::BTreeSet::new();
    for i in 0..512u64 {
        let mut rng = base.fork_idx(i);
        firsts.insert(rng.next_u64());
    }
    assert_eq!(firsts.len(), 512, "fork_idx streams collided");

    // And the same index must reproduce the same stream.
    let mut a = base.fork_idx(7);
    let mut b = base.fork_idx(7);
    for _ in 0..16 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

/// Every experiment migrated onto `par_trials`: E2 HRP sweep, E2b
/// enlargement, E3 zonal, E8 reconfiguration, the A1/A5 ablations
/// (scenario-engine refactor), plus E1 depth sweep, E9 kill chain, E10
/// realtime and the E14/E15 resilience suite (fault-injection PR).
const MIGRATED: &[&str] = &[
    "e1-depth-sweep",
    "e2-hrp-attacks",
    "e2b-enlargement",
    "e3-zonal-latency",
    "e8-reconfiguration",
    "e9-killchain",
    "e10-realtime",
    "e14-fault-sweep",
    "e15-recovery",
    "e18-harness-resilience",
    "a1-hrp-threshold",
    "a5-vrange",
];

#[test]
fn migrated_experiments_are_jobs_invariant() {
    let reg = registry();
    for slug in MIGRATED {
        let exp = &reg.select(slug)[0];
        let serial = exp.run(&RunCtx::new(42, 1));
        let parallel = exp.run(&RunCtx::new(42, 4));
        assert_eq!(
            serial, parallel,
            "{slug} diverged between jobs=1 and jobs=4"
        );
    }
}

#[test]
fn quarantined_outcome_sequences_are_jobs_invariant() {
    // The fault-tolerance counterpart of the tables test: when trials
    // panic, the full TrialOutcome sequence — which slots died and
    // with what message — must also be independent of the job count.
    use autosec_runner::try_par_trials;
    let base = SimRng::seed(42).fork("quarantine-probe");
    let run = |jobs: usize| {
        try_par_trials(jobs, 151, &base, |i, mut rng| {
            if rng.chance(0.2) {
                panic!("probe trial {i} panicked");
            }
            rng.next_u64()
        })
    };
    let serial = run(1);
    assert!(serial.iter().any(|o| !o.is_ok()), "no trial panicked");
    assert!(serial.iter().any(|o| o.is_ok()), "every trial panicked");
    assert_eq!(
        serial,
        run(4),
        "quarantine diverged between jobs=1 and jobs=4"
    );
}

#[test]
fn every_parallel_tagged_experiment_declares_itself() {
    // The "parallel" tag is the registry's record of which experiments
    // fan out through par_trials; all migrated slugs must carry it.
    let reg = registry();
    for slug in MIGRATED {
        let exp = &reg.select(slug)[0];
        assert!(
            exp.tags.contains(&"parallel"),
            "{slug} migrated but not tagged parallel"
        );
    }
}
