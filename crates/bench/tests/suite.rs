//! End-to-end fault tolerance of the `experiments` binary: a suite
//! with a deterministically failing member must degrade (not abort)
//! under `--keep-going`, leave healthy artifacts bit-identical to a
//! clean run, and come back to green via `--resume` / `failed:`.
//!
//! The failing member is the hidden `x0-chaos` probe, registered only
//! when `AUTOSEC_CHAOS` is set — env vars are passed per child
//! process, so these tests never mutate their own environment.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use serde_json::Value;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autosec-suite-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the binary with the chaos probe in `mode` against `out`.
///
/// Plain `--json`, not `--canonical`: canonical manifests strip
/// `trials_scale`, which (by design, conservatively) disables resume.
/// The byte-identity test below passes `--canonical` explicitly.
fn run(mode: &str, out: &Path, extra: &[&str]) -> Output {
    Command::new(bin())
        .env("AUTOSEC_CHAOS", mode)
        .args([
            "--filter",
            "e3-technologies",
            "--filter",
            "e4-protocol-matrix",
            "--filter",
            "x0-chaos",
            "--json",
            "--out",
        ])
        .arg(out)
        .args(extra)
        .output()
        .expect("binary runs")
}

fn manifest(out: &Path) -> Value {
    let text = std::fs::read_to_string(out.join("manifest.json")).expect("manifest exists");
    serde_json::from_str(&text).expect("manifest parses")
}

fn entry<'a>(m: &'a Value, slug: &str) -> &'a Value {
    m["experiments"]
        .as_array()
        .expect("experiments array")
        .iter()
        .find(|e| e["slug"].as_str() == Some(slug))
        .unwrap_or_else(|| panic!("no manifest entry for {slug}"))
}

#[test]
fn keep_going_records_the_failure_and_spares_the_neighbors() {
    let chaotic = tmp("keep-going");
    let clean = tmp("keep-going-clean");

    // Degraded run: the probe panics, the suite continues, exit is 1.
    let degraded = run("panic", &chaotic, &["--keep-going", "--canonical"]);
    assert_eq!(degraded.status.code(), Some(1), "failures must exit 1");
    let m = manifest(&chaotic);
    assert_eq!(m["failures"].as_u64(), Some(1));
    let failed = entry(&m, "x0-chaos");
    assert_eq!(failed["status"].as_str(), Some("failed"));
    assert_eq!(
        failed["message"].as_str(),
        Some("chaos probe: injected panic (AUTOSEC_CHAOS=panic)")
    );
    assert!(!chaotic.join("x0-chaos.json").exists());
    for slug in ["e3-technologies", "e4-protocol-matrix"] {
        assert_eq!(entry(&m, slug)["status"].as_str(), Some("ok"));
    }

    // The healthy artifacts are byte-identical to a run with no chaos.
    let ok = run("ok", &clean, &["--keep-going", "--canonical"]);
    assert_eq!(ok.status.code(), Some(0));
    for slug in ["e3-technologies", "e4-protocol-matrix"] {
        let a = std::fs::read(chaotic.join(format!("{slug}.json"))).expect("degraded artifact");
        let b = std::fs::read(clean.join(format!("{slug}.json"))).expect("clean artifact");
        assert_eq!(a, b, "{slug} artifact perturbed by a neighbor's panic");
    }

    let _ = std::fs::remove_dir_all(&chaotic);
    let _ = std::fs::remove_dir_all(&clean);
}

#[test]
fn without_keep_going_the_suite_aborts_but_stays_resumable() {
    let out = tmp("abort");

    // x0-chaos sorts... runs last (registration order), so the healthy
    // experiments complete first, then the abort happens; the manifest
    // written so far must already be on disk.
    let aborted = run("panic", &out, &[]);
    assert_eq!(aborted.status.code(), Some(1));
    let m = manifest(&out);
    assert_eq!(entry(&m, "x0-chaos")["status"].as_str(), Some("failed"));

    // --resume with the chaos healed: healthy artifacts are skipped,
    // the probe re-runs, the suite goes green.
    let resumed = run("ok", &out, &["--resume"]);
    assert_eq!(resumed.status.code(), Some(0), "resume must finish green");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("skipped e3-technologies"),
        "healthy artifact not reused:\n{stderr}"
    );
    let m = manifest(&out);
    assert_eq!(m["failures"].as_u64(), Some(0));
    assert_eq!(entry(&m, "x0-chaos")["status"].as_str(), Some("ok"));
    assert_eq!(
        entry(&m, "e3-technologies")["status"].as_str(),
        Some("skipped")
    );
    assert!(out.join("x0-chaos.json").exists());

    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn resume_reruns_everything_when_the_parameters_changed() {
    let out = tmp("resume-mismatch");
    assert_eq!(run("ok", &out, &["--keep-going"]).status.code(), Some(0));

    // Same filters, different seed: nothing may be reused.
    let reseeded = run("ok", &out, &["--resume", "--seed", "7"]);
    assert_eq!(reseeded.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&reseeded.stderr);
    assert!(
        stderr.contains("does not match this run"),
        "seed change must disable resume:\n{stderr}"
    );
    assert!(!stderr.contains("skipped e3-technologies"));

    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn failed_pseudo_filter_reselects_only_the_failures() {
    let out = tmp("failed-filter");
    assert_eq!(run("panic", &out, &["--keep-going"]).status.code(), Some(1));

    // Re-run just the manifest's failures, healed; write elsewhere so
    // the prior manifest stays what failed: reads.
    let retry_out = tmp("failed-filter-retry");
    let retry = Command::new(bin())
        .env("AUTOSEC_CHAOS", "ok")
        .arg("--filter")
        .arg(format!("failed:{}", out.display()))
        .args(["--json", "--out"])
        .arg(&retry_out)
        .output()
        .expect("binary runs");
    assert_eq!(retry.status.code(), Some(0));
    let m = manifest(&retry_out);
    let slugs: Vec<&str> = m["experiments"]
        .as_array()
        .expect("array")
        .iter()
        .filter_map(|e| e["slug"].as_str())
        .collect();
    assert_eq!(slugs, vec!["x0-chaos"], "only the failure re-runs");

    let _ = std::fs::remove_dir_all(&out);
    let _ = std::fs::remove_dir_all(&retry_out);
}

#[test]
fn deadline_override_times_a_sleeper_out() {
    let out = tmp("deadline");
    let slow = Command::new(bin())
        .env("AUTOSEC_CHAOS", "sleep:3000")
        .args([
            "--filter",
            "x0-chaos",
            "--json",
            "--keep-going",
            "--deadline-secs",
            "1",
            "--out",
        ])
        .arg(&out)
        .output()
        .expect("binary runs");
    assert_eq!(slow.status.code(), Some(1));
    let m = manifest(&out);
    let e = entry(&m, "x0-chaos");
    assert_eq!(e["status"].as_str(), Some("timed_out"));
    assert_eq!(e["deadline_secs"].as_f64(), Some(1.0));

    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn list_shows_the_deadline_column() {
    let out = Command::new(bin())
        .args(["--list"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    let header = text.lines().next().expect("header line");
    assert!(header.contains("deadline"), "missing column:\n{header}");
    let e18 = text
        .lines()
        .find(|l| l.starts_with("e18-harness-resilience"))
        .expect("E18 listed");
    assert!(e18.contains("120s"), "moderate deadline shown:\n{e18}");
}
