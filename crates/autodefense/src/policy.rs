//! The defender's decision policy: a deterministic rule table with
//! per-rule weights, plus a feedback-learning pass that reweights the
//! rules from observed incident outcomes.
//!
//! The policy is intentionally a *table*, not a search: every firing
//! condition is a pure function of the defender's observation state
//! (alert counts, playbook recommendations, monitoring level), so the
//! whole closed loop consumes **zero** RNG draws — a duel's randomness
//! is exactly the attacker's two draws per step, which is what keeps
//! self-play artifacts bit-identical across `--jobs` and `--shards`.
//!
//! Learning is two-pass rather than online: a training batch of duels
//! runs under the default weights via
//! [`par_trials`](autosec_runner::par_trials), per-rule outcome credit
//! is folded **in trial order**, and the reweighted table is then
//! evaluated on fresh substreams. Online per-trial mutation would make
//! trial `i` depend on which worker ran trial `i − 1`; the two-pass
//! design keeps the learned table a pure function of `(seed, trials)`.

use autosec_adversary::{AttackGraph, DefenseKnob};
use autosec_runner::par_trials;
use autosec_sim::SimRng;

use crate::duel::{duel_trial, DuelConfig, DuelRun};

/// Number of policy rules.
pub const N_RULES: usize = 5;

/// The rule table, in default priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleId {
    /// Deployment-time hardening of the configured priority knobs
    /// (fires once, before the incident clock starts).
    DeployPriority,
    /// Execute a response-playbook isolation recommendation.
    IsolatePlaybook,
    /// Rotate credentials behind an edge that keeps alerting.
    RotateRepeat,
    /// Harden the layer generating the most alerts.
    HardenAlerting,
    /// Buy monitoring (counter-stealth sensor spend).
    BoostMonitoring,
}

impl RuleId {
    /// Every rule, index order.
    pub const ALL: [RuleId; N_RULES] = [
        RuleId::DeployPriority,
        RuleId::IsolatePlaybook,
        RuleId::RotateRepeat,
        RuleId::HardenAlerting,
        RuleId::BoostMonitoring,
    ];

    /// Stable index into weight/credit arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            RuleId::DeployPriority => "deploy-priority",
            RuleId::IsolatePlaybook => "isolate-playbook",
            RuleId::RotateRepeat => "rotate-repeat",
            RuleId::HardenAlerting => "harden-alerting",
            RuleId::BoostMonitoring => "boost-monitoring",
        }
    }
}

/// Per-rule priority weights. Runtime rules are evaluated highest
/// weight first (ties break toward [`RuleId::ALL`] order), so
/// reweighting reorders which move the defender reaches for when the
/// rate limit only allows a few.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleWeights(pub [f64; N_RULES]);

impl Default for RuleWeights {
    fn default() -> Self {
        Self([1.0; N_RULES])
    }
}

impl RuleWeights {
    /// Runtime rule evaluation order: weight-descending, stable.
    pub fn runtime_order(&self) -> Vec<RuleId> {
        let mut order: Vec<RuleId> = RuleId::ALL
            .into_iter()
            .filter(|r| *r != RuleId::DeployPriority)
            .collect();
        // Stable sort: equal weights keep the table's default order.
        order.sort_by(|a, b| {
            self.0[b.index()]
                .partial_cmp(&self.0[a.index()])
                .expect("weights are finite")
        });
        order
    }
}

/// How the closed-loop defender is parameterized.
#[derive(Debug, Clone)]
pub struct DefenderConfig {
    /// Total defense dollars (shared by deployment and runtime moves).
    pub budget: f64,
    /// Runtime actions allowed per defender turn.
    pub rate_limit: usize,
    /// Knobs to harden at deployment time, in priority order, one
    /// [`crate::action::HARDEN_COST`] each while budget lasts.
    pub pre_spend: Vec<DefenseKnob>,
    /// Rule priorities (default or learned).
    pub weights: RuleWeights,
}

impl DefenderConfig {
    /// A pure-reactive defender: no pre-deployment, default weights,
    /// two actions per turn.
    pub fn reactive(budget: f64) -> Self {
        Self {
            budget,
            rate_limit: 2,
            pre_spend: Vec::new(),
            weights: RuleWeights::default(),
        }
    }
}

/// Learning-rate of the reweighting pass.
pub const LEARN_ETA: f64 = 2.0;
/// Weight clamp after learning.
pub const LEARN_MIN_WEIGHT: f64 = 0.25;
/// Weight clamp after learning.
pub const LEARN_MAX_WEIGHT: f64 = 4.0;

/// Reweights the rule table from a training batch of duels.
///
/// Each training duel credits every rule that fired with `+1` if the
/// run ended unbreached and `−1` if the attacker got through; weights
/// move by [`LEARN_ETA`] × mean credit and are clamped. Jobs-invariant:
/// the batch runs on `base.fork_idx(i)` substreams and the fold walks
/// trials in index order.
pub fn learn_weights(
    graph: &AttackGraph,
    cfg: &DuelConfig,
    trials: usize,
    jobs: usize,
    base: &SimRng,
) -> RuleWeights {
    let runs: Vec<DuelRun> = par_trials(jobs, trials, base, move |_, mut rng| {
        duel_trial(graph, cfg, &mut rng)
    });
    let mut credit = [0i64; N_RULES];
    for run in &runs {
        for (i, fired) in run.rules_fired.iter().enumerate() {
            if *fired > 0 {
                credit[i] += if run.breached { -1 } else { 1 };
            }
        }
    }
    let n = trials.max(1) as f64;
    let mut weights = cfg.defense.weights;
    for (w, c) in weights.0.iter_mut().zip(credit) {
        *w = (*w + LEARN_ETA * c as f64 / n).clamp(LEARN_MIN_WEIGHT, LEARN_MAX_WEIGHT);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runtime_order_follows_the_table() {
        let order = RuleWeights::default().runtime_order();
        assert_eq!(
            order,
            vec![
                RuleId::IsolatePlaybook,
                RuleId::RotateRepeat,
                RuleId::HardenAlerting,
                RuleId::BoostMonitoring,
            ]
        );
    }

    #[test]
    fn reweighting_reorders_runtime_rules() {
        let mut w = RuleWeights::default();
        w.0[RuleId::BoostMonitoring.index()] = 3.0;
        assert_eq!(w.runtime_order()[0], RuleId::BoostMonitoring);
    }

    #[test]
    fn rule_indices_are_stable() {
        for (i, r) in RuleId::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
