//! One closed-loop duel: the adaptive attacker vs the runtime
//! defender, turn by turn.
//!
//! The attacker side is the PR 4 [`AttackerState`] stepped externally:
//! it re-plans before every step exactly like
//! [`adaptive_trial`](autosec_adversary::adaptive_trial). After every
//! attempted step the defender takes a turn — it sees only **detected**
//! steps (the alert stream), plus the silence itself — and may fire
//! rule-table actions under its [`DefenseBudget`]:
//!
//! * execute a playbook isolation recommendation (ban the edge),
//! * rotate credentials behind a repeat-alerting edge (ban it),
//! * harden the loudest layer (flip a posture bit the attacker's next
//!   plan must route around),
//! * buy monitoring (raise every edge's detect probability — the
//!   counter-stealth move, and the only rule that can fire while the
//!   alert stream is silent).
//!
//! The defender consumes **no RNG draws**; a duel's randomness is the
//! attacker's fixed two draws per attempted step. A defender whose
//! budget is zero (or already fully pre-spent on deployment) therefore
//! replays `adaptive_trial` bit-identically on the same stream — the
//! property the E23 equal-cost comparison and the zero-budget fleet
//! test pin down.

use autosec_adversary::{
    detector_for, AttackConfig, AttackGraph, AttackerState, DefenseKnob, StepReport,
};
use autosec_core::campaign::DefensePosture;
use autosec_ids::response::{ResponseAction, ResponseEngine};
use autosec_ids::Alert;
use autosec_sim::{ArchLayer, SimDuration, SimRng, SimTime};

use crate::action::{
    DefenseBudget, HARDEN_COST, ISOLATE_COST, MONITOR_COST, MONITOR_STEP, ROTATE_COST,
};
use crate::policy::{DefenderConfig, RuleId, N_RULES};

/// Alerts on one edge before the rotate-credentials rule triggers.
pub const ROTATE_THRESHOLD: u32 = 2;

/// Monitoring purchases allowed per duel
/// ([`crate::action::MONITOR_CAP`] / [`MONITOR_STEP`], kept as an
/// integer so the cap check never depends on float division).
pub const MONITOR_MAX_PURCHASES: usize = 3;

/// Attack-graph edge capacity (mirrors `EdgeSet`'s 32-edge bound).
const MAX_EDGES: usize = 32;

/// One self-play matchup.
#[derive(Debug, Clone)]
pub struct DuelConfig {
    /// The attacker profile (budget, stealth weight, runtime knobs the
    /// defender may already have pre-deployed).
    pub attack: AttackConfig,
    /// The defender policy and budget.
    pub defense: DefenderConfig,
}

/// Outcome of one duel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuelRun {
    /// Did the attacker reach the goal?
    pub breached: bool,
    /// Capabilities gained beyond the external foothold.
    pub depth: usize,
    /// Attack steps attempted.
    pub steps: usize,
    /// Steps consumed at the moment of breach (`None` if held).
    pub time_to_breach: Option<usize>,
    /// Alerts raised during the run.
    pub alerts: usize,
    /// Defense dollars actually spent.
    pub spend: f64,
    /// Defense actions taken (deployment + runtime).
    pub actions: usize,
    /// Firing count per [`RuleId`] (index order).
    pub rules_fired: [u32; N_RULES],
}

/// The defender's observation + actuation state during a duel.
struct DefenderState {
    posture: DefensePosture,
    attack: AttackConfig,
    budget: DefenseBudget,
    soc: ResponseEngine,
    edge_alerts: [u32; MAX_EDGES],
    layer_alerts: [u32; 6],
    isolate_queue: [bool; MAX_EDGES],
    monitor_purchases: usize,
    rules_fired: [u32; N_RULES],
    actions: usize,
    runtime_order: Vec<RuleId>,
}

impl DefenderState {
    fn new(cfg: &DuelConfig) -> Self {
        let mut d = Self {
            posture: DefensePosture::none(),
            attack: cfg.attack,
            budget: DefenseBudget::new(cfg.defense.budget, cfg.defense.rate_limit),
            soc: ResponseEngine::new(),
            edge_alerts: [0; MAX_EDGES],
            layer_alerts: [0; 6],
            isolate_queue: [false; MAX_EDGES],
            monitor_purchases: 0,
            rules_fired: [0; N_RULES],
            actions: 0,
            runtime_order: cfg.defense.weights.runtime_order(),
        };
        // Deployment phase: harden the configured priority knobs while
        // budget lasts, before the incident clock starts (exempt from
        // the runtime rate limit).
        for knob in &cfg.defense.pre_spend {
            if !d.budget.try_prespend(HARDEN_COST) {
                break;
            }
            match knob {
                DefenseKnob::Layer(l) => d.posture.set(*l, true),
                DefenseKnob::ActiveResponse => d.attack.active_response = true,
                DefenseKnob::AlertCorrelation => d.attack.alert_correlation = true,
            }
            d.fired(RuleId::DeployPriority);
        }
        d
    }

    fn fired(&mut self, rule: RuleId) {
        self.rules_fired[rule.index()] += 1;
        self.actions += 1;
    }

    /// Ingest one detected step: update alert tallies and feed the SOC
    /// response engine, queueing playbook isolation recommendations.
    fn observe(&mut self, graph: &AttackGraph, report: &StepReport) {
        self.edge_alerts[report.edge] += 1;
        self.layer_alerts[report.layer as usize] += 1;
        let edge = &graph.edges()[report.edge];
        let alert = Alert {
            detector: detector_for(report.layer),
            subject: report.edge as u32,
            at: SimTime::ZERO + SimDuration::from_ms(self.edge_alerts[report.edge] as u64 * 10),
            detail: edge.name.to_string(),
        };
        let response = self.soc.handle(&alert);
        if response.action.cost() >= ResponseAction::IsolateNode.cost() {
            self.isolate_queue[report.edge] = true;
        }
    }

    /// One defender turn: walk the runtime rules in priority order,
    /// each firing at most once, under the budget's rate limit.
    fn turn(&mut self, graph: &AttackGraph, attacker: &mut AttackerState) {
        self.budget.begin_turn();
        let order = std::mem::take(&mut self.runtime_order);
        for rule in &order {
            match rule {
                RuleId::IsolatePlaybook => self.try_isolate(attacker),
                RuleId::RotateRepeat => self.try_rotate(graph, attacker),
                RuleId::HardenAlerting => self.try_harden(),
                RuleId::BoostMonitoring => self.try_monitor(),
                RuleId::DeployPriority => {}
            }
        }
        self.runtime_order = order;
    }

    /// Execute the lowest-index pending playbook isolation.
    fn try_isolate(&mut self, attacker: &mut AttackerState) {
        let Some(edge) =
            (0..MAX_EDGES).find(|&e| self.isolate_queue[e] && !attacker.banned().contains(e))
        else {
            return;
        };
        if self.budget.try_spend(ISOLATE_COST) {
            attacker.ban_edge(edge);
            self.isolate_queue[edge] = false;
            self.fired(RuleId::IsolatePlaybook);
        }
    }

    /// Rotate credentials behind the loudest repeat-alerting edge.
    fn try_rotate(&mut self, graph: &AttackGraph, attacker: &mut AttackerState) {
        let mut best: Option<(usize, u32)> = None;
        for e in 0..graph.len() {
            let count = self.edge_alerts[e];
            if count >= ROTATE_THRESHOLD
                && !attacker.banned().contains(e)
                && best.is_none_or(|(_, c)| count > c)
            {
                best = Some((e, count));
            }
        }
        let Some((edge, _)) = best else { return };
        if self.budget.try_spend(ROTATE_COST) {
            attacker.ban_edge(edge);
            self.fired(RuleId::RotateRepeat);
        }
    }

    /// Harden the layer with the most alerts so far.
    fn try_harden(&mut self) {
        let mut best: Option<(ArchLayer, u32)> = None;
        for layer in ArchLayer::ALL {
            let count = self.layer_alerts[layer as usize];
            if count > 0 && !self.posture.enabled(layer) && best.is_none_or(|(_, c)| count > c) {
                best = Some((layer, count));
            }
        }
        let Some((layer, _)) = best else { return };
        if self.budget.try_spend(HARDEN_COST) {
            self.posture.set(layer, true);
            self.fired(RuleId::HardenAlerting);
        }
    }

    /// Buy monitoring up to the cap — fires even while the alert
    /// stream is silent (a silent stream against a live threat model is
    /// exactly when sensors are worth buying).
    fn try_monitor(&mut self) {
        if self.monitor_purchases >= MONITOR_MAX_PURCHASES {
            return;
        }
        if self.budget.try_spend(MONITOR_COST) {
            self.monitor_purchases += 1;
            self.attack.monitor_boost += MONITOR_STEP;
            self.fired(RuleId::BoostMonitoring);
        }
    }
}

/// Runs one attacker-vs-defender duel on `rng`'s stream.
///
/// Draw order matches [`adaptive_trial`](autosec_adversary::adaptive_trial)
/// exactly: two `chance` draws per attempted step, nothing else.
pub fn duel_trial(graph: &AttackGraph, cfg: &DuelConfig, rng: &mut SimRng) -> DuelRun {
    debug_assert!(graph.len() <= MAX_EDGES);
    let mut defender = DefenderState::new(cfg);
    let mut attacker = AttackerState::new();
    let mut time_to_breach = None;
    // Turn 0: the defender may act before the first attack step (e.g.
    // buy monitoring when it starts blind).
    defender.turn(graph, &mut attacker);
    while attacker.steps() < defender.attack.budget && !attacker.reached_goal() {
        let Some(plan) = attacker.plan(graph, &defender.posture, &defender.attack) else {
            break;
        };
        let Some(&idx) = plan.edges.first() else {
            break;
        };
        let report = attacker.attempt(graph, &defender.posture, &defender.attack, idx, rng);
        if report.detected {
            defender.observe(graph, &report);
        }
        if attacker.reached_goal() {
            time_to_breach = Some(attacker.steps());
            break;
        }
        defender.turn(graph, &mut attacker);
    }
    let steps = attacker.steps();
    let alerts = attacker.alerts();
    let depth = attacker.owned().len().saturating_sub(1);
    DuelRun {
        breached: attacker.reached_goal(),
        depth,
        steps,
        time_to_breach,
        alerts,
        spend: defender.budget.spent(),
        actions: defender.actions,
        rules_fired: defender.rules_fired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_adversary::{
        adaptive_trial, resolve_knobs, AttackEdge, Capability, EdgeSource, ProbPoint,
    };

    fn edge(
        name: &'static str,
        from: Capability,
        to: Capability,
        layer: ArchLayer,
        success: f64,
        detect: f64,
    ) -> AttackEdge {
        AttackEdge {
            name,
            from,
            to,
            layer,
            stride: autosec_sim::Stride::Tampering,
            source: EdgeSource::Scenario(name),
            undefended: ProbPoint { success, detect },
            defended: ProbPoint {
                success: 0.0,
                detect: 1.0,
            },
        }
    }

    /// A loud two-hop route: every step has a real detect probability,
    /// so a reactive defender gets signal to act on.
    fn loud_graph() -> AttackGraph {
        let mut g = AttackGraph::new();
        g.add_edge(edge(
            "foothold",
            Capability::External,
            Capability::PlatformFoothold,
            ArchLayer::SoftwarePlatform,
            0.9,
            0.6,
        ));
        g.add_edge(edge(
            "payload",
            Capability::PlatformFoothold,
            Capability::SafetyImpact,
            ArchLayer::SystemOfSystems,
            0.9,
            0.6,
        ));
        g
    }

    #[test]
    fn zero_budget_duel_replays_adaptive_trial_bit_identically() {
        let g = loud_graph();
        let cfg = DuelConfig {
            attack: AttackConfig::new(8),
            defense: DefenderConfig::reactive(0.0),
        };
        for i in 0..200 {
            let duel = duel_trial(&g, &cfg, &mut SimRng::seed(11).fork_idx(i));
            let solo = adaptive_trial(
                &g,
                &DefensePosture::none(),
                &cfg.attack,
                &mut SimRng::seed(11).fork_idx(i),
            );
            assert_eq!(duel.breached, solo.reached_goal, "trial {i}");
            assert_eq!(duel.steps, solo.steps_attempted, "trial {i}");
            assert_eq!(duel.alerts, solo.alerts, "trial {i}");
            assert_eq!(duel.spend, 0.0);
            assert_eq!(duel.actions, 0);
        }
    }

    #[test]
    fn exhausted_prespend_matches_the_static_posture_bit_identically() {
        // Full greedy-style pre-deployment with nothing in reserve is
        // the E23 equal-cost configuration: the duel must collapse to
        // adaptive_trial against the resolved static posture.
        let g = loud_graph();
        let knobs = [
            DefenseKnob::Layer(ArchLayer::SoftwarePlatform),
            DefenseKnob::ActiveResponse,
        ];
        let attack = AttackConfig::new(8);
        let (posture, static_cfg) = resolve_knobs(&knobs, &attack);
        let cfg = DuelConfig {
            attack,
            defense: DefenderConfig {
                budget: knobs.len() as f64,
                pre_spend: knobs.to_vec(),
                ..DefenderConfig::reactive(0.0)
            },
        };
        for i in 0..200 {
            let duel = duel_trial(&g, &cfg, &mut SimRng::seed(12).fork_idx(i));
            let solo = adaptive_trial(&g, &posture, &static_cfg, &mut SimRng::seed(12).fork_idx(i));
            assert_eq!(duel.breached, solo.reached_goal, "trial {i}");
            assert_eq!(duel.steps, solo.steps_attempted, "trial {i}");
            assert_eq!(duel.alerts, solo.alerts, "trial {i}");
            assert_eq!(duel.spend, knobs.len() as f64);
        }
    }

    #[test]
    fn reactive_budget_suppresses_breaches_on_a_loud_graph() {
        let g = loud_graph();
        let open = DuelConfig {
            attack: AttackConfig::new(8),
            defense: DefenderConfig::reactive(0.0),
        };
        let defended = DuelConfig {
            attack: AttackConfig::new(8),
            defense: DefenderConfig::reactive(6.0),
        };
        let trials = 300;
        let count = |cfg: &DuelConfig| {
            (0..trials)
                .filter(|&i| duel_trial(&g, cfg, &mut SimRng::seed(13).fork_idx(i)).breached)
                .count()
        };
        let open_breaches = count(&open);
        let defended_breaches = count(&defended);
        assert!(
            defended_breaches < open_breaches,
            "defense must bite: {defended_breaches} vs {open_breaches}"
        );
    }

    #[test]
    fn duels_are_deterministic_per_stream() {
        let g = loud_graph();
        let cfg = DuelConfig {
            attack: AttackConfig {
                stealth_weight: 0.4,
                ..AttackConfig::new(8)
            },
            defense: DefenderConfig::reactive(4.0),
        };
        for i in 0..50 {
            let a = duel_trial(&g, &cfg, &mut SimRng::seed(14).fork_idx(i));
            let b = duel_trial(&g, &cfg, &mut SimRng::seed(14).fork_idx(i));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn spend_never_exceeds_budget() {
        let g = loud_graph();
        for budget in [0.0, 0.5, 1.0, 2.5, 6.0] {
            let cfg = DuelConfig {
                attack: AttackConfig::new(8),
                defense: DefenderConfig::reactive(budget),
            };
            for i in 0..100 {
                let run = duel_trial(&g, &cfg, &mut SimRng::seed(15).fork_idx(i));
                assert!(run.spend <= budget, "budget {budget}: spent {}", run.spend);
            }
        }
    }
}
