//! Self-play tournament driver: Monte-Carlo batches of duels over
//! swept (attacker budget × defender budget) pairs.
//!
//! One **cell** of the tournament matrix is `trials` independent duels
//! of a fixed [`DuelConfig`], run via
//! [`par_trials`](autosec_runner::par_trials) so trial `i` always sits
//! on `base.fork_idx(i)` — cells are bit-identical for every `--jobs`
//! value, and two cells sharing a base stream are compared under
//! common random numbers.

use autosec_adversary::AttackGraph;
use autosec_runner::par_trials;
use autosec_sim::SimRng;

use crate::duel::{duel_trial, DuelConfig, DuelRun};

/// Aggregate outcome of one tournament cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSummary {
    /// Fraction of duels the attacker won.
    pub breach_rate: f64,
    /// Mean capabilities gained beyond the external foothold.
    pub mean_depth: f64,
    /// Mean steps to breach, over breached duels only (0 when the
    /// defense held every duel).
    pub mean_ttb: f64,
    /// Mean defense dollars spent.
    pub mean_spend: f64,
    /// Mean alerts per duel.
    pub mean_alerts: f64,
}

/// Folds a batch of duel outcomes (trial order) into its summary.
pub fn summarize(runs: &[DuelRun]) -> CellSummary {
    let n = runs.len().max(1) as f64;
    let breached: Vec<&DuelRun> = runs.iter().filter(|r| r.breached).collect();
    let mean_ttb = if breached.is_empty() {
        0.0
    } else {
        breached
            .iter()
            .map(|r| r.time_to_breach.unwrap_or(r.steps) as f64)
            .sum::<f64>()
            / breached.len() as f64
    };
    CellSummary {
        breach_rate: breached.len() as f64 / n,
        mean_depth: runs.iter().map(|r| r.depth as f64).sum::<f64>() / n,
        mean_ttb,
        mean_spend: runs.iter().map(|r| r.spend).sum::<f64>() / n,
        mean_alerts: runs.iter().map(|r| r.alerts as f64).sum::<f64>() / n,
    }
}

/// Runs one tournament cell: `trials` duels of `cfg` on `base`'s
/// substreams.
pub fn run_cell(
    graph: &AttackGraph,
    cfg: &DuelConfig,
    trials: usize,
    jobs: usize,
    base: &SimRng,
) -> CellSummary {
    let runs: Vec<DuelRun> = par_trials(jobs, trials, base, move |_, mut rng| {
        duel_trial(graph, cfg, &mut rng)
    });
    summarize(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DefenderConfig;
    use autosec_adversary::{calibrated_graph, AttackConfig, CalibrationConfig};

    fn small_graph() -> AttackGraph {
        calibrated_graph(
            &CalibrationConfig::new(8, 2),
            &SimRng::seed(21).fork("tournament/graph"),
        )
    }

    #[test]
    fn cells_are_jobs_invariant() {
        let g = small_graph();
        let cfg = DuelConfig {
            attack: AttackConfig {
                stealth_weight: 0.4,
                ..AttackConfig::new(8)
            },
            defense: DefenderConfig::reactive(4.0),
        };
        let base = SimRng::seed(22).fork("tournament/cell");
        let a = run_cell(&g, &cfg, 120, 1, &base);
        let b = run_cell(&g, &cfg, 120, 4, &base);
        assert_eq!(a, b);
    }

    #[test]
    fn bigger_defense_budget_never_helps_the_attacker() {
        // Under common random numbers on a calibrated graph, a richer
        // reactive defender weakly reduces the breach rate.
        let g = small_graph();
        let base = SimRng::seed(23).fork("tournament/cell");
        let rate = |budget: f64| {
            let cfg = DuelConfig {
                attack: AttackConfig {
                    stealth_weight: 0.4,
                    ..AttackConfig::new(10)
                },
                defense: DefenderConfig::reactive(budget),
            };
            run_cell(&g, &cfg, 150, 2, &base).breach_rate
        };
        let open = rate(0.0);
        let defended = rate(6.0);
        assert!(
            defended <= open,
            "reactive spend must not help the attacker: {defended} vs {open}"
        );
    }

    #[test]
    fn summarize_handles_the_all_held_case() {
        let s = summarize(&[]);
        assert_eq!(s.breach_rate, 0.0);
        assert_eq!(s.mean_ttb, 0.0);
    }
}
