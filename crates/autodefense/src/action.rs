//! Defense actions and the budget / rate limit they spend against.
//!
//! Every runtime move the closed-loop defender can make is a
//! [`DefenseAction`] with a fixed cost in abstract defense dollars —
//! the same unit the static `greedy_frontier` optimizer spends (one
//! dollar per knob), so closed-loop and static allocations compare at
//! equal total cost. Costs are multiples of 0.5, which keeps every
//! budget sum exact in binary floating point: budget arithmetic is
//! bit-deterministic by construction, not by tolerance.

use autosec_adversary::DefenseKnob;
use autosec_sim::ArchLayer;

/// Cost of toggling one defense knob on (a posture layer or a runtime
/// knob) — matches the static optimizer's one-dollar-per-knob unit.
pub const HARDEN_COST: f64 = 1.0;
/// Cost of rotating the credentials behind one attack-graph edge
/// (burning the attacker's tool for the rest of the run).
pub const ROTATE_COST: f64 = 0.5;
/// Cost of executing a playbook isolation against one subject/edge.
pub const ISOLATE_COST: f64 = 0.5;
/// Cost of one monitoring increment.
pub const MONITOR_COST: f64 = 0.5;
/// Detect-probability added per monitoring purchase.
pub const MONITOR_STEP: f64 = 0.15;
/// Ceiling on total monitoring boost.
pub const MONITOR_CAP: f64 = 0.45;

/// One runtime defense move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseAction {
    /// Toggle one defense knob on (posture layer or runtime knob).
    Harden(DefenseKnob),
    /// Rotate credentials: retire the tool behind attack-graph edge
    /// `edge` (the attacker can never use it again this run).
    RotateCredential {
        /// Edge index into the attack graph.
        edge: usize,
    },
    /// Execute the response playbook's isolation against the subject
    /// behind `edge`.
    IsolateSubject {
        /// Edge index into the attack graph.
        edge: usize,
    },
    /// Buy one monitoring increment ([`MONITOR_STEP`] extra detect
    /// probability on every attempted edge, up to [`MONITOR_CAP`]).
    BoostMonitoring,
}

impl DefenseAction {
    /// Budget cost of the action.
    pub fn cost(&self) -> f64 {
        match self {
            DefenseAction::Harden(_) => HARDEN_COST,
            DefenseAction::RotateCredential { .. } => ROTATE_COST,
            DefenseAction::IsolateSubject { .. } => ISOLATE_COST,
            DefenseAction::BoostMonitoring => MONITOR_COST,
        }
    }

    /// Stable display label (artifact / log value).
    pub fn label(&self) -> String {
        match self {
            DefenseAction::Harden(k) => format!("harden:{}", k.label()),
            DefenseAction::RotateCredential { edge } => format!("rotate:{edge}"),
            DefenseAction::IsolateSubject { edge } => format!("isolate:{edge}"),
            DefenseAction::BoostMonitoring => "monitor".to_owned(),
        }
    }

    /// The layer a harden action toggles, if it is a layer knob.
    pub fn hardened_layer(&self) -> Option<ArchLayer> {
        match self {
            DefenseAction::Harden(DefenseKnob::Layer(l)) => Some(*l),
            _ => None,
        }
    }
}

/// Spend tracker: total budget plus a per-turn action rate limit.
///
/// The rate limit models actuation latency — a SOC can only push so
/// many changes per attack step / fleet tick. Deployment-time spending
/// ([`DefenseBudget::try_prespend`]) happens before the incident clock
/// starts and is exempt from the rate limit; runtime spending
/// ([`DefenseBudget::try_spend`]) is not.
#[derive(Debug, Clone)]
pub struct DefenseBudget {
    total: f64,
    spent: f64,
    rate_limit: usize,
    turn_actions: usize,
}

impl DefenseBudget {
    /// A budget of `total` dollars at `rate_limit` actions per turn.
    pub fn new(total: f64, rate_limit: usize) -> Self {
        Self {
            total,
            spent: 0.0,
            rate_limit,
            turn_actions: 0,
        }
    }

    /// Starts a new defender turn (resets the rate-limit window).
    pub fn begin_turn(&mut self) {
        self.turn_actions = 0;
    }

    /// Spends `cost` under the rate limit. Returns whether the spend
    /// went through.
    pub fn try_spend(&mut self, cost: f64) -> bool {
        if self.turn_actions >= self.rate_limit || !self.affordable(cost) {
            return false;
        }
        self.spent += cost;
        self.turn_actions += 1;
        true
    }

    /// Spends `cost` at deployment time (no rate limit).
    pub fn try_prespend(&mut self, cost: f64) -> bool {
        if !self.affordable(cost) {
            return false;
        }
        self.spent += cost;
        true
    }

    /// Whether `cost` fits in the remaining budget.
    pub fn affordable(&self, cost: f64) -> bool {
        self.spent + cost <= self.total
    }

    /// Dollars spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Dollars left.
    pub fn remaining(&self) -> f64 {
        self.total - self.spent
    }

    /// The configured total.
    pub fn total(&self) -> f64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_half_dollar_multiples() {
        // Exact budget arithmetic depends on this.
        for cost in [
            HARDEN_COST,
            ROTATE_COST,
            ISOLATE_COST,
            MONITOR_COST,
            DefenseAction::BoostMonitoring.cost(),
        ] {
            assert_eq!(cost * 2.0, (cost * 2.0).round(), "{cost}");
        }
    }

    #[test]
    fn rate_limit_caps_a_turn_and_resets() {
        let mut b = DefenseBudget::new(10.0, 2);
        assert!(b.try_spend(1.0));
        assert!(b.try_spend(0.5));
        assert!(!b.try_spend(0.5), "third action in one turn");
        b.begin_turn();
        assert!(b.try_spend(0.5));
        assert_eq!(b.spent(), 2.0);
    }

    #[test]
    fn budget_is_exactly_exhaustible() {
        let mut b = DefenseBudget::new(2.0, 100);
        assert!(b.try_spend(0.5));
        assert!(b.try_spend(0.5));
        assert!(b.try_spend(1.0));
        assert_eq!(b.remaining(), 0.0);
        assert!(!b.try_spend(0.5));
        assert!(!b.try_prespend(0.5));
    }

    #[test]
    fn prespend_ignores_the_rate_limit() {
        let mut b = DefenseBudget::new(3.0, 1);
        assert!(b.try_prespend(1.0));
        assert!(b.try_prespend(1.0));
        assert!(b.try_prespend(1.0));
        assert!(!b.try_prespend(1.0), "budget still binds");
    }

    #[test]
    fn action_labels_are_stable() {
        assert_eq!(
            DefenseAction::Harden(DefenseKnob::Layer(ArchLayer::Data)).label(),
            "harden:layer:data"
        );
        assert_eq!(
            DefenseAction::RotateCredential { edge: 3 }.label(),
            "rotate:3"
        );
        assert_eq!(DefenseAction::BoostMonitoring.label(), "monitor");
    }
}
