//! # autosec-autodefense
//!
//! The closed-loop runtime defender and the attacker-vs-defender
//! self-play tournament driver.
//!
//! Everything before this crate chooses the defense **once**: a
//! [`DefensePosture`](autosec_core::campaign::DefensePosture) is fixed
//! before the run and the attacker adapts against a static target. The
//! paper's core argument — attacks on autonomous systems adapt at
//! machine speed, so defenses must too — needs the other half: a
//! defender that watches the alert stream *during* the incident and
//! spends a bounded budget on runtime actions:
//!
//! * **Harden** a layer (flip a posture bit the attacker's next plan
//!   must route around) — [`action::HARDEN_COST`].
//! * **Isolate** a subject the response playbook escalated on
//!   (ban the attack-graph edge) — [`action::ISOLATE_COST`].
//! * **Rotate credentials** behind a repeat-alerting edge (burn the
//!   attacker's tool) — [`action::ROTATE_COST`].
//! * **Buy monitoring** (raise detect probability everywhere — the
//!   counter-stealth move) — [`action::MONITOR_COST`].
//!
//! Actions are chosen by a deterministic weighted **rule table**
//! ([`policy`]) under a per-turn **rate limit** and total budget
//! ([`action::DefenseBudget`]); a feedback-learning pass
//! ([`policy::learn_weights`]) reweights the rules from observed duel
//! outcomes. The defender draws **no randomness**: a duel's RNG
//! consumption is exactly the adaptive attacker's two draws per step
//! ([`duel`]), which makes every tournament artifact bit-identical
//! across `--jobs` ([`tournament`]) and lets a fully pre-spent or
//! zero-budget defender replay the static-posture run bit-for-bit —
//! the equal-cost anchor of experiment E23 and the `--defender off`
//! equivalence property in the fleet.

pub mod action;
pub mod duel;
pub mod policy;
pub mod tournament;

pub use action::{
    DefenseAction, DefenseBudget, HARDEN_COST, ISOLATE_COST, MONITOR_CAP, MONITOR_COST,
    MONITOR_STEP, ROTATE_COST,
};
pub use duel::{duel_trial, DuelConfig, DuelRun, MONITOR_MAX_PURCHASES, ROTATE_THRESHOLD};
pub use policy::{learn_weights, DefenderConfig, RuleId, RuleWeights, N_RULES};
pub use tournament::{run_cell, summarize, CellSummary};
