//! Attack-surface accounting (§V-B3 and the §V-C design-philosophy
//! argument: "the answer is to reduce attack surfaces").
//!
//! A deliberately simple, auditable metric: every externally reachable
//! interface contributes risk weighted by exposure and authentication;
//! the score is the sum. The E9/E10 benches use it to show how surface
//! grows with connected services — and how feature removal shrinks it.

/// How reachable an interface is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exposure {
    /// Reachable from the public Internet.
    Internet,
    /// Reachable from a paired device / local radio range.
    Proximity,
    /// Requires physical access.
    Physical,
}

impl Exposure {
    /// Risk weight of this exposure class.
    pub fn weight(self) -> f64 {
        match self {
            Exposure::Internet => 10.0,
            Exposure::Proximity => 4.0,
            Exposure::Physical => 1.0,
        }
    }
}

/// One externally reachable interface.
#[derive(Debug, Clone, PartialEq)]
pub struct Interface {
    /// Name, e.g. `"telematics-api"`.
    pub name: String,
    /// Exposure class.
    pub exposure: Exposure,
    /// Whether access requires authentication.
    pub authenticated: bool,
    /// Whether the interface is strictly needed for the product
    /// function (the §V-C question: can we just remove it?).
    pub essential: bool,
}

impl Interface {
    /// Risk contribution: exposure weight, halved when authenticated.
    pub fn risk(&self) -> f64 {
        let base = self.exposure.weight();
        if self.authenticated {
            base / 2.0
        } else {
            base
        }
    }
}

/// An inventory of interfaces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SurfaceInventory {
    interfaces: Vec<Interface>,
}

impl SurfaceInventory {
    /// Empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an interface (builder-style).
    pub fn with(mut self, iface: Interface) -> Self {
        self.interfaces.push(iface);
        self
    }

    /// Adds an interface.
    pub fn add(&mut self, iface: Interface) {
        self.interfaces.push(iface);
    }

    /// Number of interfaces.
    pub fn len(&self) -> usize {
        self.interfaces.len()
    }

    /// Whether the inventory is empty.
    pub fn is_empty(&self) -> bool {
        self.interfaces.is_empty()
    }

    /// Total attack-surface score.
    pub fn score(&self) -> f64 {
        self.interfaces.iter().map(Interface::risk).sum()
    }

    /// The §V-C simplification: drop every non-essential interface.
    /// Returns the reduced inventory.
    pub fn minimized(&self) -> SurfaceInventory {
        SurfaceInventory {
            interfaces: self
                .interfaces
                .iter()
                .filter(|i| i.essential)
                .cloned()
                .collect(),
        }
    }

    /// A representative connected-vehicle inventory with
    /// `n_cloud_services` Internet-facing services (used by E9/E10).
    pub fn connected_vehicle(n_cloud_services: usize) -> Self {
        let mut inv = SurfaceInventory::new()
            .with(Interface {
                name: "obd-port".into(),
                exposure: Exposure::Physical,
                authenticated: false,
                essential: true,
            })
            .with(Interface {
                name: "bluetooth-pairing".into(),
                exposure: Exposure::Proximity,
                authenticated: true,
                essential: false,
            })
            .with(Interface {
                name: "uwb-pkes".into(),
                exposure: Exposure::Proximity,
                authenticated: true,
                essential: true,
            })
            .with(Interface {
                name: "ota-update".into(),
                exposure: Exposure::Internet,
                authenticated: true,
                essential: true,
            });
        for i in 0..n_cloud_services {
            inv.add(Interface {
                name: format!("cloud-service-{i}"),
                exposure: Exposure::Internet,
                authenticated: i % 3 != 0, // every third one misconfigured
                essential: false,
            });
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_ordering() {
        assert!(Exposure::Internet.weight() > Exposure::Proximity.weight());
        assert!(Exposure::Proximity.weight() > Exposure::Physical.weight());
    }

    #[test]
    fn authentication_halves_risk() {
        let open = Interface {
            name: "x".into(),
            exposure: Exposure::Internet,
            authenticated: false,
            essential: true,
        };
        let auth = Interface {
            authenticated: true,
            ..open.clone()
        };
        assert_eq!(open.risk(), 2.0 * auth.risk());
    }

    #[test]
    fn score_is_additive() {
        let inv = SurfaceInventory::connected_vehicle(0);
        let bigger = SurfaceInventory::connected_vehicle(5);
        assert!(bigger.score() > inv.score());
        assert_eq!(bigger.len(), inv.len() + 5);
    }

    #[test]
    fn surface_grows_with_cloud_services() {
        let scores: Vec<f64> = (0..20)
            .step_by(5)
            .map(|n| SurfaceInventory::connected_vehicle(n).score())
            .collect();
        for w in scores.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn minimization_reduces_score() {
        let inv = SurfaceInventory::connected_vehicle(10);
        let min = inv.minimized();
        assert!(min.score() < inv.score());
        assert!(min.len() < inv.len());
        // Essential interfaces survive.
        assert!(min.len() >= 3);
    }

    #[test]
    fn empty_inventory_scores_zero() {
        assert_eq!(SurfaceInventory::new().score(), 0.0);
        assert!(SurfaceInventory::new().is_empty());
    }
}
