//! # autosec-data
//!
//! Data layer — §V of the paper: the CARIAD/Volkswagen telemetry data
//! breach, rebuilt as an executable kill chain against a simulated cloud
//! backend.
//!
//! - [`telemetry`] — synthetic vehicle fleet: VINs, owners, and the
//!   geolocation traces whose exposure made the real breach a national-
//!   security story
//! - [`service`] — the simulated cloud telemetry service: routes, debug
//!   endpoints, framework fingerprints, embedded cloud keys, and the
//!   [`service::DefenseConfig`] knobs the E9 experiment sweeps
//! - [`killchain`] — Fig. 8's six stages (traffic analysis → directory
//!   enumeration → supply-chain identification → heap dump → key
//!   extraction → data extraction) executed against the service
//! - [`access`] — §VIII's owner-controlled access: "data owners retain
//!   the rights to grant or restrict access"
//! - [`surface`] — an attack-surface metric over service inventories
//!   (§V-B3: "attack surfaces for automotive systems are increasing")
//!
//! ## Example
//!
//! ```
//! use autosec_data::killchain::{Attacker, KillChainStage};
//! use autosec_data::service::{DefenseConfig, TelemetryBackend};
//! use autosec_sim::SimRng;
//!
//! let mut rng = SimRng::seed(38);
//! let backend = TelemetryBackend::build(1000, DefenseConfig::none(), &mut rng);
//! let report = Attacker::new().execute(&backend, &mut rng);
//! // Undefended backend: the full CARIAD outcome.
//! assert!(report.reached(KillChainStage::DataExtraction));
//! assert!(report.records_exfiltrated > 0);
//! ```

pub mod access;
pub mod killchain;
pub mod service;
pub mod surface;
pub mod telemetry;
