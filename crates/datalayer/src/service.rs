//! The simulated cloud telemetry backend.
//!
//! Reproduces the structural facts of the CARIAD incident (§V-A): a web
//! service with an enumerable directory structure, a framework whose
//! debug feature can dump process memory over plain HTTP, cloud master
//! keys living inside that memory, and a token service that will mint
//! access keys for any user when shown the master key.
//!
//! [`DefenseConfig`] holds the hardening knobs; experiment E9 shows which
//! knob breaks which stage of the kill chain.

use std::collections::HashMap;

use autosec_sim::SimRng;

use crate::telemetry::{generate_fleet, VehicleRecord};

/// What a route serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteKind {
    /// Normal API route (authenticated).
    Api,
    /// Static/info route leaking framework hints.
    Info,
    /// Debug route that dumps process memory (the Spring
    /// "heapdump" actuator).
    HeapDump,
}

/// One HTTP-ish route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Path, e.g. `"/actuator/heapdump"`.
    pub path: String,
    /// Kind.
    pub kind: RouteKind,
    /// Whether the route demands a valid access key.
    pub requires_auth: bool,
}

/// Hardening configuration — the levers the E9 sweep pulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefenseConfig {
    /// Debug endpoints removed from production.
    pub debug_endpoints_disabled: bool,
    /// Secrets scrubbed from memory dumps (vaulted keys / enclave).
    pub secret_scanning: bool,
    /// Master keys cannot mint arbitrary user tokens (least privilege).
    pub scoped_keys: bool,
    /// Request-rate anomaly detection (catches enumeration).
    pub rate_limiting: bool,
    /// Bulk-export anomaly detection (catches mass extraction).
    pub exfiltration_detection: bool,
}

impl DefenseConfig {
    /// The CARIAD starting point: nothing hardened.
    pub fn none() -> Self {
        Self {
            debug_endpoints_disabled: false,
            secret_scanning: false,
            scoped_keys: false,
            rate_limiting: false,
            exfiltration_detection: false,
        }
    }

    /// Everything on.
    pub fn hardened() -> Self {
        Self {
            debug_endpoints_disabled: true,
            secret_scanning: true,
            scoped_keys: true,
            rate_limiting: true,
            exfiltration_detection: true,
        }
    }

    /// Number of enabled defenses.
    pub fn enabled_count(&self) -> usize {
        usize::from(self.debug_endpoints_disabled)
            + usize::from(self.secret_scanning)
            + usize::from(self.scoped_keys)
            + usize::from(self.rate_limiting)
            + usize::from(self.exfiltration_detection)
    }
}

/// The backend under attack.
#[derive(Debug)]
pub struct TelemetryBackend {
    routes: Vec<Route>,
    /// Fleet records, keyed by VIN.
    records: HashMap<String, VehicleRecord>,
    /// The cloud master key (present in process memory unless vaulted).
    master_key: [u8; 16],
    /// Defense posture.
    pub defenses: DefenseConfig,
    /// Framework banner visible in responses.
    pub framework: &'static str,
}

impl TelemetryBackend {
    /// Builds a backend holding `fleet_size` vehicle records.
    pub fn build(fleet_size: usize, defenses: DefenseConfig, rng: &mut SimRng) -> Self {
        let fleet = generate_fleet(fleet_size, 20, rng);
        let mut routes = vec![
            Route {
                path: "/api/v1/telemetry".into(),
                kind: RouteKind::Api,
                requires_auth: true,
            },
            Route {
                path: "/api/v1/vehicles".into(),
                kind: RouteKind::Api,
                requires_auth: true,
            },
            Route {
                path: "/info".into(),
                kind: RouteKind::Info,
                requires_auth: false,
            },
        ];
        if !defenses.debug_endpoints_disabled {
            routes.push(Route {
                path: "/actuator/heapdump".into(),
                kind: RouteKind::HeapDump,
                requires_auth: false, // the actual misconfiguration
            });
        }
        Self {
            routes,
            records: fleet.into_iter().map(|v| (v.vin.clone(), v)).collect(),
            master_key: [0xC1; 16],
            defenses,
            framework: "Spring",
        }
    }

    /// Routes reachable by crawling/enumeration.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Fleet size.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Serves a memory dump if the route exists. Returns the dump's
    /// embedded secrets: `Some(master_key)` unless secrets are vaulted.
    pub fn heap_dump(&self) -> Option<Option<[u8; 16]>> {
        let has_route = self.routes.iter().any(|r| r.kind == RouteKind::HeapDump);
        if !has_route {
            return None;
        }
        if self.defenses.secret_scanning {
            Some(None) // dump served, but no secrets inside
        } else {
            Some(Some(self.master_key))
        }
    }

    /// The token service: exchanges a master key for an all-users access
    /// token. With [`DefenseConfig::scoped_keys`] the master key only
    /// grants service-to-service scopes, not user data access.
    pub fn mint_user_token(&self, presented_key: &[u8; 16]) -> Option<AccessToken> {
        if presented_key != &self.master_key {
            return None;
        }
        if self.defenses.scoped_keys {
            return None;
        }
        Some(AccessToken { all_users: true })
    }

    /// Bulk export with a token. Returns the records the token can read.
    pub fn export(&self, token: &AccessToken) -> Vec<&VehicleRecord> {
        if token.all_users {
            self.records.values().collect()
        } else {
            Vec::new()
        }
    }
}

/// A minted API access token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessToken {
    /// Whether the token can read every user's data.
    pub all_users: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed(9)
    }

    #[test]
    fn undefended_backend_has_heapdump_route() {
        let b = TelemetryBackend::build(10, DefenseConfig::none(), &mut rng());
        assert!(b.routes().iter().any(|r| r.path.contains("heapdump")));
        let dump = b.heap_dump().expect("route exists");
        assert!(dump.is_some(), "master key in the dump");
    }

    #[test]
    fn disabled_debug_endpoint_removes_route() {
        let mut d = DefenseConfig::none();
        d.debug_endpoints_disabled = true;
        let b = TelemetryBackend::build(10, d, &mut rng());
        assert!(b.heap_dump().is_none());
    }

    #[test]
    fn vaulted_secrets_survive_dump() {
        let mut d = DefenseConfig::none();
        d.secret_scanning = true;
        let b = TelemetryBackend::build(10, d, &mut rng());
        assert_eq!(b.heap_dump(), Some(None));
    }

    #[test]
    fn master_key_mints_global_token_without_scoping() {
        let b = TelemetryBackend::build(10, DefenseConfig::none(), &mut rng());
        let key = b.heap_dump().unwrap().unwrap();
        let token = b.mint_user_token(&key).expect("unscoped master key");
        assert_eq!(b.export(&token).len(), 10);
    }

    #[test]
    fn scoped_keys_block_token_minting() {
        let mut d = DefenseConfig::none();
        d.scoped_keys = true;
        let b = TelemetryBackend::build(10, d, &mut rng());
        let key = b.heap_dump().unwrap().unwrap();
        assert!(b.mint_user_token(&key).is_none());
    }

    #[test]
    fn wrong_key_rejected() {
        let b = TelemetryBackend::build(10, DefenseConfig::none(), &mut rng());
        assert!(b.mint_user_token(&[0u8; 16]).is_none());
    }

    #[test]
    fn defense_counting() {
        assert_eq!(DefenseConfig::none().enabled_count(), 0);
        assert_eq!(DefenseConfig::hardened().enabled_count(), 5);
    }
}
