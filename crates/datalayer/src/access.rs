//! Owner-controlled data access (§VIII): *"the widespread distribution
//! of data within such systems necessitates controlled access mechanisms
//! that allow data owners to retain the rights to grant or restrict
//! access"* — across ecosystems with multiple stakeholders (ref \[55\]).

use std::collections::{BTreeSet, HashMap};

/// A data access scope.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// Aggregate, anonymized statistics.
    Aggregate,
    /// Vehicle diagnostics (DTCs, battery health).
    Diagnostics,
    /// Precise geolocation traces.
    Geolocation,
    /// Personal identity (name, email).
    Identity,
}

/// A grant: owner allows `party` the listed scopes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// The grantee (e.g. `"oem"`, `"insurance"`, `"workshop"`).
    pub party: String,
    /// Allowed scopes.
    pub scopes: BTreeSet<Scope>,
}

/// Per-owner access policy: deny-by-default, explicit grants, revocable.
#[derive(Debug, Clone, Default)]
pub struct OwnerPolicy {
    grants: HashMap<String, BTreeSet<Scope>>,
    /// Audit log of access decisions: (party, scope, allowed).
    audit: Vec<(String, Scope, bool)>,
}

impl OwnerPolicy {
    /// New empty (deny-everything) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `party` the given scopes (additive).
    pub fn grant(&mut self, party: &str, scopes: impl IntoIterator<Item = Scope>) {
        self.grants
            .entry(party.to_owned())
            .or_default()
            .extend(scopes);
    }

    /// Revokes a single scope from a party.
    pub fn revoke(&mut self, party: &str, scope: &Scope) {
        if let Some(s) = self.grants.get_mut(party) {
            s.remove(scope);
        }
    }

    /// Revokes everything from a party.
    pub fn revoke_all(&mut self, party: &str) {
        self.grants.remove(party);
    }

    /// Access check with audit logging.
    pub fn check(&mut self, party: &str, scope: Scope) -> bool {
        let allowed = self
            .grants
            .get(party)
            .map(|s| s.contains(&scope))
            .unwrap_or(false);
        self.audit.push((party.to_owned(), scope, allowed));
        allowed
    }

    /// The audit log.
    pub fn audit_log(&self) -> &[(String, Scope, bool)] {
        &self.audit
    }

    /// Current grants of a party.
    pub fn scopes_of(&self, party: &str) -> BTreeSet<Scope> {
        self.grants.get(party).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_by_default() {
        let mut p = OwnerPolicy::new();
        assert!(!p.check("oem", Scope::Geolocation));
    }

    #[test]
    fn grant_then_allow() {
        let mut p = OwnerPolicy::new();
        p.grant("workshop", [Scope::Diagnostics]);
        assert!(p.check("workshop", Scope::Diagnostics));
        assert!(!p.check("workshop", Scope::Geolocation));
    }

    #[test]
    fn revocation_takes_effect() {
        let mut p = OwnerPolicy::new();
        p.grant("insurance", [Scope::Geolocation, Scope::Aggregate]);
        assert!(p.check("insurance", Scope::Geolocation));
        p.revoke("insurance", &Scope::Geolocation);
        assert!(!p.check("insurance", Scope::Geolocation));
        assert!(p.check("insurance", Scope::Aggregate));
        p.revoke_all("insurance");
        assert!(!p.check("insurance", Scope::Aggregate));
    }

    #[test]
    fn grants_are_per_party() {
        let mut p = OwnerPolicy::new();
        p.grant("oem", [Scope::Diagnostics]);
        assert!(!p.check("insurance", Scope::Diagnostics));
    }

    #[test]
    fn audit_records_denials_too() {
        let mut p = OwnerPolicy::new();
        p.grant("oem", [Scope::Aggregate]);
        p.check("oem", Scope::Aggregate);
        p.check("oem", Scope::Identity);
        let log = p.audit_log();
        assert_eq!(log.len(), 2);
        assert!(log[0].2);
        assert!(!log[1].2);
    }

    #[test]
    fn grants_accumulate() {
        let mut p = OwnerPolicy::new();
        p.grant("oem", [Scope::Aggregate]);
        p.grant("oem", [Scope::Diagnostics]);
        assert_eq!(p.scopes_of("oem").len(), 2);
    }
}
